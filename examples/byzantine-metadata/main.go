// Byzantine metadata store: a cluster-metadata service that tolerates
// Byzantine replicas with only n = 2f+1 replicas, using Fast & Robust.
//
// The scenario mirrors the paper's motivation: in the common case the
// fast-path leader commits metadata updates in two delays; when the leader
// misbehaves (here: it stays silent), the followers revoke its write
// permission over the RDMA-like memories and fall back to the
// Byzantine-tolerant backup path, which still needs only 2f+1 replicas
// instead of the classic 3f+1.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"rdmaagreement"
)

func main() {
	fmt.Println("== common case: correct leader, fast path ==")
	commonCase()

	fmt.Println("\n== faulty leader: silent Byzantine leader, backup path ==")
	faultyLeader()
}

// commonCase commits a metadata update with every replica correct.
func commonCase() {
	cluster, err := rdmaagreement.NewCluster(rdmaagreement.ProtocolFastRobust, rdmaagreement.Options{
		Processes: 3, // n = 2f+1 with f = 1
		Memories:  3,
	})
	if err != nil {
		log.Fatalf("byzantine-metadata: %v", err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, rdmaagreement.Value(`{"shard-map-epoch": 7}`))
	if err != nil {
		log.Fatalf("byzantine-metadata: propose: %v", err)
	}
	fmt.Printf("committed %s on the fast path in %d delays\n", res.Value, res.DecisionDelays)
}

// faultyLeader commits a metadata update while the fast-path leader is
// Byzantine-silent: the two correct followers must agree on their own.
func faultyLeader() {
	cluster, err := rdmaagreement.NewCluster(rdmaagreement.ProtocolFastRobust, rdmaagreement.Options{
		Processes:   3,
		Memories:    3,
		FastTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("byzantine-metadata: %v", err)
	}
	defer cluster.Close()

	// The fast-path leader (p1) never proposes. The backup path's leadership
	// is moved to a correct follower.
	cluster.SetLeader(2)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var mu sync.Mutex
	decisions := make(map[rdmaagreement.ProcID]rdmaagreement.Result)
	for _, p := range []rdmaagreement.ProcID{2, 3} {
		wg.Add(1)
		go func(p rdmaagreement.ProcID) {
			defer wg.Done()
			res, err := cluster.Proposer(p).Propose(ctx, rdmaagreement.Value(fmt.Sprintf(`{"proposed-by": %d}`, p)))
			if err != nil {
				log.Printf("replica %v: %v", p, err)
				return
			}
			mu.Lock()
			decisions[p] = res
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	for p, res := range decisions {
		fmt.Printf("replica %v decided %s (fast path: %v)\n", p, res.Value, res.FastPath)
	}
	if len(decisions) == 2 && !decisions[2].Value.Equal(decisions[3].Value) {
		log.Fatalf("byzantine-metadata: agreement violated")
	}
	fmt.Println("agreement held despite the Byzantine leader, with only 2f+1 = 3 replicas")
}
