// Live shard rebalancing: growing (and shrinking) a sharded replicated
// key-value store under traffic, with no downtime and no lost or forked keys.
//
// The store starts with three shard groups. Writers keep committing while
// AddShard drains the moved key ranges — an expected 1/(S+1) fraction, per
// consistent hashing's minimal movement — into a fourth group: each ceding
// group commits a migrate-out through its OWN log (after a barrier, so the
// export covers every earlier write), the new group commits the matching
// migrate-in, and from the moment a cede commits, the old owner's machine
// refuses operations on the moved keys so a racing write provably cannot
// land in the ceded range. Refused operations are transparently retried
// against the new owner (the Forwarded counter) — membership changes ride
// the logs they affect, the Chubby/ZooKeeper reconfiguration pattern.
//
// The example then shrinks back with RemoveShard — the retired group's whole
// key space fans out to the survivors — and audits the end state: every
// acknowledged write readable with its value, every key living in exactly
// one group.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"rdmaagreement"
)

const (
	initialShards = 3
	writers       = 4
	writeFor      = 150 * time.Millisecond
)

func main() {
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: initialShards,
		Log: rdmaagreement.LogOptions{
			Cluster: rdmaagreement.Options{
				Processes:     3,
				Memories:      3,
				MemoryLatency: 200 * time.Microsecond,
			},
			MaxBatch: 8,
		},
	})
	if err != nil {
		log.Fatalf("NewShardedKV: %v", err)
	}
	defer kv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	fmt.Printf("== sharded KV: %d groups, writers running throughout ==\n", initialShards)

	// Continuous write traffic: each writer commits its own key sequence and
	// records what was acknowledged — the audit's ground truth.
	var (
		mu    sync.Mutex
		acked = make(map[string]string)
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	put := func(key, value string) {
		if _, _, err := kv.Put(ctx, key, value); err != nil {
			log.Fatalf("Put(%s) under rebalance: %v", key, err)
		}
		mu.Lock()
		acked[key] = value
		mu.Unlock()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					put(fmt.Sprintf("user/%d/%d", w, i), fmt.Sprintf("v%d", i))
				}
			}
		}(w)
	}
	time.Sleep(writeFor) // let the key space build up under load

	// Grow: one new group, moved ranges drained under the live writers.
	t0 := time.Now()
	if err := kv.AddShard(ctx, fmt.Sprintf("shard-%d", initialShards)); err != nil {
		log.Fatalf("AddShard: %v", err)
	}
	grow := kv.Stats()
	fmt.Printf("\n== AddShard(shard-%d) under live traffic: %s ==\n", initialShards, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("   %d keys migrated, %d in-flight ops forwarded to new owners, shards now %v\n",
		grow.Migrated, grow.Forwarded, kv.Shards())

	time.Sleep(writeFor) // traffic on the grown ring

	// Shrink: retire shard-0; its whole key space fans out to the survivors.
	t0 = time.Now()
	if err := kv.RemoveShard(ctx, "shard-0"); err != nil {
		log.Fatalf("RemoveShard: %v", err)
	}
	shrink := kv.Stats()
	fmt.Printf("\n== RemoveShard(shard-0) under live traffic: %s ==\n", time.Since(t0).Round(time.Millisecond))
	fmt.Printf("   %d keys migrated in total, %d ops forwarded, shards now %v\n",
		shrink.Migrated, shrink.Forwarded, kv.Shards())

	close(stop)
	wg.Wait()

	// Audit: every acknowledged write must be readable with its value
	// (linearizable, wherever it lives now) and must live in EXACTLY one
	// group's machine — the raw per-group probe bypasses routing and the
	// ownership gate, so a forked key could not hide.
	lost, forked := 0, 0
	for key, want := range acked {
		if v, ok, err := kv.GetLinearizable(ctx, key); err != nil || !ok || v != want {
			lost++
			continue
		}
		homes := 0
		for _, name := range kv.Shards() {
			resp, err := kv.ShardLog(name).Read(ctx, []byte(key))
			if err != nil {
				log.Fatalf("audit read on %s: %v", name, err)
			}
			_, found, err := rdmaagreement.DecodeKVResult(resp)
			if err != nil {
				log.Fatalf("audit read on %s: %v", name, err)
			}
			if found {
				homes++
			}
		}
		if homes != 1 {
			forked++
		}
	}
	fmt.Printf("\n== audit: %d acked writes across two rebalances — %d lost, %d forked ==\n", len(acked), lost, forked)
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		fmt.Printf("   %s: %d entries over %d slots\n", name, l.Len(), l.Slots())
	}
	if lost > 0 || forked > 0 {
		log.Fatalf("rebalance audit failed")
	}
	fmt.Println("\nEvery write survived both rebalances exactly once: the ring grew and")
	fmt.Println("shrank under load, with moved ranges drained through the logs they left")
	fmt.Println("and entered — agreement surviving reconfiguration, the paper's point.")
}
