// Zombie failover: the scenario from §7 of the paper that motivates treating
// processes and memories as separate failure domains. A "zombie server" is a
// machine whose CPU (process) is dead while its RDMA-accessible memory keeps
// serving requests.
//
// Here the initial Protected Memory Paxos leader commits a value and then its
// process crashes. Its memory — and the rest of the memory pool — stays up,
// so a new leader steals the exclusive write permission, reads the surviving
// slots and finishes with the same decision. No data is lost even though the
// old leader never comes back.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rdmaagreement"
)

func main() {
	cluster, err := rdmaagreement.NewCluster(rdmaagreement.ProtocolProtectedMemoryPaxos, rdmaagreement.Options{
		Processes: 3,
		Memories:  3,
	})
	if err != nil {
		log.Fatalf("zombie-failover: %v", err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Step 1: the initial leader commits a value in two delays.
	first, err := cluster.Proposer(1).Propose(ctx, rdmaagreement.Value("epoch-1:leader=node-1"))
	if err != nil {
		log.Fatalf("zombie-failover: initial propose: %v", err)
	}
	fmt.Printf("leader p1 committed %s in %d delays\n", first.Value, first.DecisionDelays)

	// Step 2: the leader's process dies, but the memories stay reachable —
	// the zombie-server failure mode that RDMA makes survivable.
	cluster.CrashProcess(1)
	fmt.Println("leader process p1 crashed; its memory remains reachable (zombie server)")

	// Step 3: a new leader takes over the write permission and must reach
	// the same decision by reading the surviving slots.
	cluster.SetLeader(2)
	second, err := cluster.Proposer(2).Propose(ctx, rdmaagreement.Value("epoch-1:leader=node-2"))
	if err != nil {
		log.Fatalf("zombie-failover: failover propose: %v", err)
	}
	fmt.Printf("new leader p2 decided %s after taking over the write permission\n", second.Value)

	if !second.Value.Equal(first.Value) {
		log.Fatalf("zombie-failover: agreement violated: %s vs %s", first.Value, second.Value)
	}
	fmt.Println("agreement preserved across the zombie failover: the committed value survived the leader's death")
}
