// Zombie failover: the scenario from §7 of the paper that motivates treating
// processes and memories as separate failure domains — a "zombie server" is a
// machine whose CPU (process) is dead while its RDMA-accessible memory keeps
// serving requests — demonstrated end to end on the replicated state-machine
// layer with leader leases.
//
// A lease-enabled log group commits a workload through its leader, then
// serves linearizable reads LOCALLY under the leader's lease — zero
// consensus slots, same guarantee. The leader's process then stalls: its
// heartbeats stop while its memory stays reachable. During the remaining
// lease window the group keeps committing through the zombie's memory path
// (exactly the behavior RDMA makes survivable); when the lease expires, a
// follower takes over under a bumped epoch — the measured failover — and the
// epoch fence plus the recovery rounds' phase-1 permission steal guarantee
// that nothing the dead leader had in flight can decide under its old epoch,
// while every acknowledged entry survives. Lease reads resume on the
// survivor without interruption.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"rdmaagreement"
)

// registry is the example's StateMachine: a plain key-value map. Apply
// executes "key=value" and responds with the previous value; Query answers a
// key lookup.
type registry struct{ state map[string]string }

func newRegistry() rdmaagreement.StateMachine {
	return &registry{state: make(map[string]string)}
}

func (r *registry) Apply(e rdmaagreement.LogEntry) ([]byte, error) {
	key, value, ok := strings.Cut(string(e.Cmd), "=")
	if !ok {
		return nil, fmt.Errorf("registry: malformed command %q", e.Cmd)
	}
	prev := r.state[key]
	r.state[key] = value
	return []byte(prev), nil
}

func (r *registry) Query(query []byte) ([]byte, error) { return []byte(r.state[string(query)]), nil }

func (r *registry) Snapshot() ([]byte, error) {
	var b strings.Builder
	for k, v := range r.state {
		fmt.Fprintf(&b, "%s=%s\n", k, v)
	}
	return []byte(b.String()), nil
}

func (r *registry) Restore(snapshot []byte, _ uint64) error {
	state := make(map[string]string)
	for _, line := range strings.Split(string(snapshot), "\n") {
		if key, value, ok := strings.Cut(line, "="); ok {
			state[key] = value
		}
	}
	r.state = state
	return nil
}

func main() {
	const leaseDuration = 150 * time.Millisecond
	rlog, err := rdmaagreement.NewLog(rdmaagreement.LogOptions{
		Cluster: rdmaagreement.Options{
			Processes:     3,
			Memories:      3,
			LeaseDuration: leaseDuration,
			MemoryLatency: 500 * time.Microsecond,
		},
		NewSM:          newRegistry,
		Pipeline:       4,
		ReplicaCatchUp: 250 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("zombie-failover: %v", err)
	}
	defer rlog.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Step 1: commit a workload through the epoch-1 lease holder.
	const keys = 20
	for i := 0; i < keys; i++ {
		if _, _, err := rlog.Propose(ctx, []byte(fmt.Sprintf("cfg/%d=epoch-1:%d", i, i))); err != nil {
			log.Fatalf("zombie-failover: propose: %v", err)
		}
	}
	leader := rlog.Cluster().LeaseHolder()
	fmt.Printf("leader %s committed %d entries under epoch %d\n", leader, rlog.Len(), rlog.Cluster().LeaseEpoch())

	// Step 2: linearizable reads under the healthy lease are local — zero
	// consensus slots.
	slotsBefore := rlog.Slots()
	for i := 0; i < 50; i++ {
		if _, err := rlog.Read(ctx, []byte(fmt.Sprintf("cfg/%d", i%keys))); err != nil {
			log.Fatalf("zombie-failover: lease read: %v", err)
		}
	}
	stats := rlog.Stats()
	fmt.Printf("50 linearizable reads under the lease: %d lease-served, %d barrier, %d extra consensus slots\n",
		stats.LeaseReads, stats.BarrierReads, rlog.Slots()-slotsBefore)

	// Step 3: the leader's process dies while its memory stays reachable —
	// the zombie-server failure mode. Its heartbeats stop; the lease clock
	// is now ticking.
	stall := time.Now()
	rlog.Cluster().CrashProcess(leader)
	fmt.Printf("leader process %s crashed; its memory remains reachable (zombie server)\n", leader)

	// Step 4: automatic failover. Wait for the takeover epoch, then commit
	// the first entry of the new reign; the span from stall to that commit
	// is the measured failover time.
	oldEpoch := rlog.Cluster().LeaseEpoch()
	for rlog.Cluster().LeaseEpoch() == oldEpoch {
		if ctx.Err() != nil {
			log.Fatalf("zombie-failover: no takeover before the deadline")
		}
		time.Sleep(time.Millisecond)
	}
	takeover := time.Since(stall)
	index, _, err := rlog.Propose(ctx, []byte("cfg/0=epoch-2:healed"))
	if err != nil {
		log.Fatalf("zombie-failover: post-takeover propose: %v", err)
	}
	failover := time.Since(stall)
	survivor := rlog.Cluster().LeaseHolder()
	fmt.Printf("follower %s took over under epoch %d: lease expired after %s, first commit of the new reign after %s\n",
		survivor, rlog.Cluster().LeaseEpoch(), takeover.Round(time.Millisecond), failover.Round(time.Millisecond))

	// The fence held: the slot of the new reign's first commit was decided
	// by the survivor, not by anything the zombie still had in flight.
	if e, ok := rlog.Get(index); ok {
		if d, ok := rlog.DeciderOf(e.Slot); ok {
			fmt.Printf("slot %d decided by %s under epoch %d (old leader fenced by the phase-1 permission steal)\n",
				e.Slot, d.Proposer, d.Epoch)
		}
	}

	// Step 5: uninterrupted lease reads on the survivor, and no committed
	// entry lost across the failover.
	slotsBefore = rlog.Slots()
	for i := 0; i < keys; i++ {
		want := fmt.Sprintf("epoch-1:%d", i)
		if i == 0 {
			want = "epoch-2:healed"
		}
		got, err := rlog.Read(ctx, []byte(fmt.Sprintf("cfg/%d", i)))
		if err != nil {
			log.Fatalf("zombie-failover: read after failover: %v", err)
		}
		if string(got) != want {
			log.Fatalf("zombie-failover: entry lost across failover: cfg/%d = %q, want %q", i, got, want)
		}
	}
	stats = rlog.Stats()
	fmt.Printf("%d post-failover reads served under %s's lease (%d lease reads total, %d extra slots)\n",
		keys, survivor, stats.LeaseReads, rlog.Slots()-slotsBefore)
	fmt.Printf("agreement preserved across the zombie failover: every acknowledged entry survived (%d committed, %d takeover, %d recovered slots)\n",
		rlog.Len(), stats.Takeovers, stats.Recovered)
}
