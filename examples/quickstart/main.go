// Quickstart: run the paper's Fast & Robust algorithm (weak Byzantine
// agreement with n = 2f+1 processes, 2-deciding) on a 3-process, 3-memory
// simulated RDMA cluster and print the decision.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rdmaagreement"
)

func main() {
	// Build a cluster: 3 processes, 3 simulated RDMA memories, tolerating 1
	// Byzantine process and 1 memory crash.
	cluster, err := rdmaagreement.NewCluster(rdmaagreement.ProtocolFastRobust, rdmaagreement.Options{
		Processes: 3,
		Memories:  3,
	})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The fast-path leader proposes; in the failure-free common case it
	// decides after a single replicated RDMA write — two network delays.
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, rdmaagreement.Value("deploy-config-v42"))
	if err != nil {
		log.Fatalf("quickstart: propose: %v", err)
	}

	fmt.Printf("decided value:   %s\n", res.Value)
	fmt.Printf("decision delays: %d (the paper's 2-deciding fast path)\n", res.DecisionDelays)
	fmt.Printf("fast path used:  %v\n", res.FastPath)
	fmt.Printf("wall-clock time: %s\n", res.Elapsed)
}
