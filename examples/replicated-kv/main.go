// Replicated KV: a crash-tolerant replicated key-value store built on the
// replicated-log subsystem (package smr) over Protected Memory Paxos.
//
// One long-lived cluster commits the entire workload: every log entry is one
// consensus slot multiplexed over the same memories and network, so the
// store pays the paper's two delays per slot without rebuilding anything
// between entries. The store survives the crash of all processes but one
// (n ≥ f_P + 1) and of a minority of memories (m ≥ 2f_M + 1) — Theorem 5.1's
// resilience — demonstrated below by crashing two of the five memories
// mid-workload and committing straight through it.
//
// The second half shards a key space across independent log groups with a
// consistent-hash ring (rdmaagreement.NewShardedKV): unrelated keys commit in
// parallel, so aggregate throughput scales with the shard count.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"rdmaagreement"
)

// command is one state-machine operation appended to the replicated log.
type command struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	singleGroup(ctx)
	shardedGroups(ctx)
}

// singleGroup drives one replicated-log group end to end: 120 committed
// entries through a single long-lived cluster, with a mid-workload memory
// failure.
func singleGroup(ctx context.Context) {
	state := make(map[string]string)
	var mu sync.Mutex

	rlog, err := rdmaagreement.NewLog(rdmaagreement.LogOptions{
		Cluster: rdmaagreement.Options{Processes: 3, Memories: 5},
		OnCommit: func(e rdmaagreement.LogEntry) {
			var cmd command
			if err := json.Unmarshal(e.Cmd, &cmd); err != nil {
				return
			}
			mu.Lock()
			state[cmd.Key] = cmd.Value
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatalf("replicated-kv: %v", err)
	}
	defer rlog.Close()

	commit := func(cmd command) {
		blob, err := json.Marshal(cmd)
		if err != nil {
			log.Fatalf("replicated-kv: encode: %v", err)
		}
		if _, err := rlog.Apply(ctx, blob); err != nil {
			log.Fatalf("replicated-kv: apply: %v", err)
		}
	}

	start := time.Now()
	const entries = 120
	for i := 0; i < entries; i++ {
		if i == entries/2 {
			// Crash a minority of the memories mid-workload: a majority
			// (3 of 5) suffices, so the log keeps committing at two delays.
			crashed := rlog.Cluster().CrashMemories(2)
			fmt.Printf("log[%d]: crashed memories %v, committing through it\n", i, crashed)
		}
		commit(command{Key: fmt.Sprintf("user/%d", i%10), Value: fmt.Sprintf("v%d", i)})
	}
	elapsed := time.Since(start)

	fmt.Printf("committed %d entries over %d slots through ONE long-lived cluster in %s (%.0f entries/s)\n",
		rlog.Len(), rlog.Slots(), elapsed.Round(time.Millisecond), float64(rlog.Len())/elapsed.Seconds())

	mu.Lock()
	fmt.Println("final state (last write per key):")
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("user/%d", i)
		fmt.Printf("  %s = %q\n", k, state[k])
	}
	mu.Unlock()

	// Every replica applied the identical log.
	for _, p := range rlog.Cluster().Procs {
		replicaLog, gapFree := rlog.ReplicaLog(p)
		fmt.Printf("replica %s learned %d commands (gap-free: %v)\n", p, len(replicaLog), gapFree)
	}
}

// shardedGroups spreads keys over independent log groups and commits to them
// concurrently.
func shardedGroups(ctx context.Context) {
	const shards = 4
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: shards,
		Log: rdmaagreement.LogOptions{
			Cluster: rdmaagreement.Options{Processes: 3, Memories: 3},
		},
	})
	if err != nil {
		log.Fatalf("replicated-kv: sharded: %v", err)
	}
	defer kv.Close()

	const keys = 64
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, keys)
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := kv.Put(ctx, fmt.Sprintf("session/%d", i), fmt.Sprintf("token-%d", i)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatalf("replicated-kv: sharded put: %v", err)
	}
	elapsed := time.Since(start)

	perShard := make(map[string]int)
	for i := 0; i < keys; i++ {
		perShard[kv.Shard(fmt.Sprintf("session/%d", i))]++
	}
	fmt.Printf("\nsharded: %d keys over %d groups in %s (%.0f puts/s), distribution: %v\n",
		keys, shards, elapsed.Round(time.Millisecond), float64(keys)/elapsed.Seconds(), perShard)
	if v, ok := kv.Get("session/7"); ok {
		fmt.Printf("sharded: session/7 = %q via shard %s\n", v, kv.Shard("session/7"))
	}
}
