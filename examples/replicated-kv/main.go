// Replicated KV: a crash-tolerant replicated key-value store built on
// Protected Memory Paxos. Each log position is one consensus instance; the
// store survives the crash of all processes but one (n ≥ f_P + 1) and of a
// minority of memories (m ≥ 2f_M + 1), which is the paper's Theorem 5.1
// resilience at two delays per committed entry.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"rdmaagreement"
)

// command is one state-machine operation appended to the replicated log.
type command struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// replicatedKV drives one consensus instance per log index and applies the
// decided commands to an in-memory map.
type replicatedKV struct {
	state   map[string]string
	log     []command
	timeout time.Duration
}

func newReplicatedKV() *replicatedKV {
	return &replicatedKV{state: make(map[string]string), timeout: 30 * time.Second}
}

// commit agrees on the next log entry through a fresh Protected Memory Paxos
// instance and applies it. The proposing process may be any replica: the
// protocol needs only one live process.
func (kv *replicatedKV) commit(cmd command, crashedMemories int) error {
	cluster, err := rdmaagreement.NewCluster(rdmaagreement.ProtocolProtectedMemoryPaxos, rdmaagreement.Options{
		Processes: 3,
		Memories:  5,
	})
	if err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	defer cluster.Close()
	if crashedMemories > 0 {
		cluster.CrashMemories(crashedMemories)
	}

	payload, err := json.Marshal(cmd)
	if err != nil {
		return fmt.Errorf("commit: encode: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), kv.timeout)
	defer cancel()
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, payload)
	if err != nil {
		return fmt.Errorf("commit: %w", err)
	}

	var decided command
	if err := json.Unmarshal(res.Value, &decided); err != nil {
		return fmt.Errorf("commit: decode decision: %w", err)
	}
	kv.log = append(kv.log, decided)
	kv.state[decided.Key] = decided.Value
	fmt.Printf("log[%d] committed in %d delays: %s = %q\n", len(kv.log)-1, res.DecisionDelays, decided.Key, decided.Value)
	return nil
}

func main() {
	kv := newReplicatedKV()

	workload := []command{
		{Key: "region", Value: "eu-west"},
		{Key: "replicas", Value: "5"},
		{Key: "leader", Value: "node-1"},
	}
	for _, cmd := range workload {
		if err := kv.commit(cmd, 0); err != nil {
			log.Fatalf("replicated-kv: %v", err)
		}
	}

	// Commit one more entry while 2 of the 5 memories are crashed: still two
	// delays, because a majority of memories suffices.
	if err := kv.commit(command{Key: "maintenance", Value: "memory-3-4-down"}, 2); err != nil {
		log.Fatalf("replicated-kv: %v", err)
	}

	fmt.Println("\nfinal state:")
	for k, v := range kv.state {
		fmt.Printf("  %s = %q\n", k, v)
	}
}
