// Replicated KV: a crash-tolerant replicated key-value store built on the
// replicated state-machine subsystem (package smr) over Protected Memory
// Paxos.
//
// The first half plugs a custom StateMachine — a tiny versioned session store
// written for this example — into one long-lived log group: Propose returns
// the machine's response for each command, Read serves linearizable queries
// through a read-index (no-op slot) barrier, and every SnapshotInterval
// entries the committer snapshots the machine and truncates the decided slot
// prefix, releasing its memory regions. The group survives the crash of a
// minority of memories (m ≥ 2f_M + 1, Theorem 5.1), demonstrated by crashing
// two of the five memories mid-workload and committing straight through it.
//
// The second half uses ShardedKV — itself just a thin client of the same
// generic layer (rdmaagreement.NewSharded) — to spread a key space across
// independent log groups with a consistent-hash ring: unrelated keys commit
// in parallel, so aggregate throughput scales with the shard count.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"rdmaagreement"
)

// sessionStore is the example's custom StateMachine: a key-value map that
// versions every write. It shows everything a workload plugs in: Apply
// (command → response), Query (reads), Snapshot/Restore (slot GC and
// lagging-replica catch-up). The owning log serializes all calls.
type sessionStore struct {
	Sessions map[string]string `json:"sessions"`
	Versions map[string]int    `json:"versions"`
}

func newSessionStore() rdmaagreement.StateMachine {
	return &sessionStore{Sessions: make(map[string]string), Versions: make(map[string]int)}
}

// Apply executes "key=value" commands and responds with the new version.
func (s *sessionStore) Apply(e rdmaagreement.LogEntry) ([]byte, error) {
	key, value, ok := strings.Cut(string(e.Cmd), "=")
	if !ok {
		return nil, fmt.Errorf("session store: malformed command %q", e.Cmd)
	}
	s.Sessions[key] = value
	s.Versions[key]++
	return []byte(fmt.Sprintf("v%d", s.Versions[key])), nil
}

// Query answers "key" with "value@version".
func (s *sessionStore) Query(query []byte) ([]byte, error) {
	key := string(query)
	v, ok := s.Sessions[key]
	if !ok {
		return nil, nil
	}
	return []byte(fmt.Sprintf("%s@v%d", v, s.Versions[key])), nil
}

func (s *sessionStore) Snapshot() ([]byte, error) { return json.Marshal(s) }

func (s *sessionStore) Restore(snapshot []byte, _ uint64) error {
	fresh := sessionStore{Sessions: make(map[string]string), Versions: make(map[string]int)}
	if len(snapshot) > 0 {
		if err := json.Unmarshal(snapshot, &fresh); err != nil {
			return err
		}
	}
	*s = fresh
	return nil
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	singleGroup(ctx)
	shardedGroups(ctx)
}

// singleGroup drives one replicated state-machine group end to end: 120
// committed entries through a single long-lived cluster, with a mid-workload
// memory failure, snapshot-driven slot GC and a linearizable read.
func singleGroup(ctx context.Context) {
	rlog, err := rdmaagreement.NewLog(rdmaagreement.LogOptions{
		Cluster:          rdmaagreement.Options{Processes: 3, Memories: 5},
		NewSM:            newSessionStore,
		SnapshotInterval: 32, // snapshot + truncate every 32 entries
	})
	if err != nil {
		log.Fatalf("replicated-kv: %v", err)
	}
	defer rlog.Close()

	start := time.Now()
	const entries = 120
	for i := 0; i < entries; i++ {
		if i == entries/2 {
			// Crash a minority of the memories mid-workload: a majority
			// (3 of 5) suffices, so the log keeps committing at two delays.
			crashed := rlog.Cluster().CrashMemories(2)
			fmt.Printf("log[%d]: crashed memories %v, committing through it\n", i, crashed)
		}
		cmd := fmt.Sprintf("user/%d=v%d", i%10, i)
		if _, _, err := rlog.Propose(ctx, []byte(cmd)); err != nil {
			log.Fatalf("replicated-kv: propose: %v", err)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("committed %d entries over %d slots through ONE long-lived cluster in %s (%.0f entries/s)\n",
		rlog.Len(), rlog.Slots(), elapsed.Round(time.Millisecond), float64(rlog.Len())/elapsed.Seconds())
	fmt.Printf("slot GC: %d snapshots taken, first retained index %d, %d live memory regions (bounded, not %d slots' worth)\n",
		rlog.Snapshots(), rlog.FirstIndex(), rlog.Cluster().LiveRegions(), rlog.Slots())

	// A linearizable read: the read-index barrier guarantees it observes
	// every Propose that returned above.
	resp, err := rlog.Read(ctx, []byte("user/9"))
	if err != nil {
		log.Fatalf("replicated-kv: read: %v", err)
	}
	fmt.Printf("linearizable read: user/9 = %s\n", resp)
	if stale, err := rlog.StaleRead(rlog.Cluster().Leader(), []byte("user/9")); err == nil {
		fmt.Printf("stale read (leader view, no barrier): user/9 = %s\n", stale)
	}

	// Every replica applied the identical log over the retained window.
	for _, p := range rlog.Cluster().Procs {
		applied, _ := rlog.ReplicaApplied(p)
		fmt.Printf("replica %s applied %d commands (restored from snapshot %d times)\n", p, applied, rlog.Restores(p))
	}
}

// shardedGroups spreads keys over independent log groups and commits to them
// concurrently, through the ShardedKV thin client.
func shardedGroups(ctx context.Context) {
	const shards = 4
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: shards,
		Log: rdmaagreement.LogOptions{
			Cluster: rdmaagreement.Options{Processes: 3, Memories: 3},
		},
	})
	if err != nil {
		log.Fatalf("replicated-kv: sharded: %v", err)
	}
	defer kv.Close()

	const keys = 64
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, keys)
	for i := 0; i < keys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := kv.Put(ctx, fmt.Sprintf("session/%d", i), fmt.Sprintf("token-%d", i)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatalf("replicated-kv: sharded put: %v", err)
	}
	elapsed := time.Since(start)

	perShard := make(map[string]int)
	for i := 0; i < keys; i++ {
		perShard[kv.Shard(fmt.Sprintf("session/%d", i))]++
	}
	fmt.Printf("\nsharded: %d keys over %d groups in %s (%.0f puts/s), distribution: %v\n",
		keys, shards, elapsed.Round(time.Millisecond), float64(keys)/elapsed.Seconds(), perShard)
	if v, ok := kv.Get("session/7"); ok {
		fmt.Printf("sharded: session/7 = %q via shard %s (stale read)\n", v, kv.Shard("session/7"))
	}
	if v, ok, err := kv.GetLinearizable(ctx, "session/7"); err == nil && ok {
		fmt.Printf("sharded: session/7 = %q (linearizable)\n", v)
	}
}
