package rdmaagreement

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// benchProposal builds a cluster of the given protocol, runs one leader
// proposal per iteration (one cluster per iteration, mutated by mutate before
// proposing), and reports the causal delay count as a custom metric.
func benchProposal(b *testing.B, protocol Protocol, opts Options, mutate func(*Cluster)) {
	b.Helper()
	var lastDelays int64
	for i := 0; i < b.N; i++ {
		cluster, err := NewCluster(protocol, opts)
		if err != nil {
			b.Fatalf("NewCluster(%s): %v", protocol, err)
		}
		if mutate != nil {
			mutate(cluster)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, Value("bench"))
		cancel()
		cluster.Close()
		if err != nil {
			b.Fatalf("Propose(%s): %v", protocol, err)
		}
		lastDelays = res.DecisionDelays
	}
	b.ReportMetric(float64(lastDelays), "delays/decision")
}

// BenchmarkE1DecisionDelays regenerates experiment E1: common-case decision
// latency and delay counts for every protocol (paper Theorems 4.9 and 5.1,
// §1 comparison).
func BenchmarkE1DecisionDelays(b *testing.B) {
	for _, protocol := range Protocols() {
		protocol := protocol
		b.Run(string(protocol), func(b *testing.B) {
			benchProposal(b, protocol, Options{Processes: 3, Memories: 3}, nil)
		})
	}
}

// BenchmarkE2ByzantineResilience regenerates experiment E2: Fast & Robust
// with n = 2f_P+1 processes, failure-free fast path (Table 1, "This paper").
func BenchmarkE2ByzantineResilience(b *testing.B) {
	for _, f := range []int{1, 2} {
		f := f
		b.Run(fmt.Sprintf("n=%d_f=%d", 2*f+1, f), func(b *testing.B) {
			benchProposal(b, ProtocolFastRobust, Options{Processes: 2*f + 1, Memories: 3, FaultyProcesses: f}, nil)
		})
	}
}

// BenchmarkE3CrashResilience regenerates experiment E3: Protected Memory
// Paxos deciding while every process but the leader is crashed and a minority
// of memories is down (Theorem 5.1: n ≥ f_P+1, m ≥ 2f_M+1).
func BenchmarkE3CrashResilience(b *testing.B) {
	for _, n := range []int{2, 3, 5} {
		n := n
		b.Run(fmt.Sprintf("n=%d_crash=%d", n, n-1), func(b *testing.B) {
			benchProposal(b, ProtocolProtectedMemoryPaxos, Options{Processes: n, Memories: 3}, func(c *Cluster) {
				for _, p := range c.Procs {
					if p != c.Leader() {
						c.CrashProcess(p)
					}
				}
				c.CrashMemories(1)
			})
		})
	}
}

// BenchmarkE4AlignedMajority regenerates experiment E4: Aligned Paxos
// deciding with different minority mixes of crashed processes and memories
// (§5.2).
func BenchmarkE4AlignedMajority(b *testing.B) {
	cases := []struct {
		name           string
		n, m           int
		crashP, crashM int
	}{
		{"memory-heavy", 3, 4, 0, 3},
		{"process-heavy", 4, 3, 3, 0},
		{"balanced", 3, 3, 1, 1},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			benchProposal(b, ProtocolAlignedPaxos, Options{Processes: tc.n, Memories: tc.m}, func(c *Cluster) {
				crashed := 0
				for _, p := range c.Procs {
					if crashed == tc.crashP {
						break
					}
					if p != c.Leader() {
						c.CrashProcess(p)
						crashed++
					}
				}
				c.CrashMemories(tc.crashM)
			})
		})
	}
}

// BenchmarkE5StaticPermissionLowerBound regenerates experiment E5: the
// delay gap between static-permission Disk Paxos and dynamic-permission
// Protected Memory Paxos on an identical topology (Theorem 6.1).
func BenchmarkE5StaticPermissionLowerBound(b *testing.B) {
	for _, protocol := range []Protocol{ProtocolDiskPaxos, ProtocolProtectedMemoryPaxos} {
		protocol := protocol
		b.Run(string(protocol), func(b *testing.B) {
			benchProposal(b, protocol, Options{Processes: 3, Memories: 3}, nil)
		})
	}
}

// BenchmarkE6SignatureCost regenerates experiment E6: signatures consumed by
// a fast-path decision (§4.2: a single signature suffices).
func BenchmarkE6SignatureCost(b *testing.B) {
	var signs int64
	for i := 0; i < b.N; i++ {
		cluster, err := NewCluster(ProtocolFastRobust, Options{Processes: 3, Memories: 3})
		if err != nil {
			b.Fatalf("NewCluster: %v", err)
		}
		cluster.Ring.Counters().Reset()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		_, err = cluster.Proposer(cluster.Leader()).Propose(ctx, Value("bench"))
		cancel()
		signs = cluster.Ring.Counters().Signs()
		cluster.Close()
		if err != nil {
			b.Fatalf("Propose: %v", err)
		}
	}
	b.ReportMetric(float64(signs), "signatures/decision")
}

// BenchmarkE7AbortPath regenerates experiment E7: a silent fast-path leader
// forces Fast & Robust through panic, permission revocation and the backup
// path (§4.3, Lemmas 4.6–4.8).
func BenchmarkE7AbortPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cluster, err := NewCluster(ProtocolFastRobust, Options{
			Processes: 3, Memories: 3, FastTimeout: 20 * time.Millisecond,
		})
		if err != nil {
			b.Fatalf("NewCluster: %v", err)
		}
		cluster.SetLeader(2)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		type outcome struct {
			res Result
			err error
		}
		results := make(chan outcome, 2)
		for _, p := range []ProcID{2, 3} {
			go func(p ProcID) {
				res, err := cluster.Proposer(p).Propose(ctx, Value("bench"))
				results <- outcome{res: res, err: err}
			}(p)
		}
		var first Result
		for j := 0; j < 2; j++ {
			out := <-results
			if out.err != nil {
				cancel()
				cluster.Close()
				b.Fatalf("Propose: %v", out.err)
			}
			if j == 0 {
				first = out.res
			} else if !out.res.Value.Equal(first.Value) {
				cancel()
				cluster.Close()
				b.Fatalf("agreement violated on the abort path")
			}
		}
		cancel()
		cluster.Close()
	}
}

// BenchmarkE8LatencySweep regenerates experiment E8: wall-clock decision
// latency of a 2-delay protocol versus a 4-delay protocol as the simulated
// per-operation latency grows (the ≈2δ vs ≈4δ shape from §1).
func BenchmarkE8LatencySweep(b *testing.B) {
	for _, delta := range []time.Duration{100 * time.Microsecond, time.Millisecond} {
		for _, protocol := range []Protocol{ProtocolProtectedMemoryPaxos, ProtocolDiskPaxos} {
			protocol, delta := protocol, delta
			b.Run(fmt.Sprintf("%s/delta=%s", protocol, delta), func(b *testing.B) {
				benchProposal(b, protocol, Options{Processes: 3, Memories: 3, MemoryLatency: 2 * delta}, nil)
			})
		}
	}
}

// BenchmarkE9MemoryFailures regenerates experiment E9: deciding while a
// minority of memories is crashed (the zombie-server motivation of §7).
func BenchmarkE9MemoryFailures(b *testing.B) {
	for _, protocol := range []Protocol{ProtocolFastRobust, ProtocolProtectedMemoryPaxos} {
		protocol := protocol
		b.Run(string(protocol), func(b *testing.B) {
			benchProposal(b, protocol, Options{Processes: 3, Memories: 3}, func(c *Cluster) {
				c.CrashMemories(1)
			})
		})
	}
}

// BenchmarkE10NonEquivBroadcast regenerates experiment E10 at the cluster
// level: end-to-end cost of one Fast & Robust backup-path decision, which is
// dominated by non-equivocating broadcast traffic, compared with a fast-path
// decision that avoids it.
func BenchmarkE10NonEquivBroadcast(b *testing.B) {
	b.Run("fast-path", func(b *testing.B) {
		benchProposal(b, ProtocolFastRobust, Options{Processes: 3, Memories: 3}, nil)
	})
}

// BenchmarkLogAppend measures replicated-log throughput over ONE long-lived
// cluster (the smr subsystem): sequential appends pay one slot each, while
// concurrent appends amortize slots over batches.
func BenchmarkLogAppend(b *testing.B) {
	newBenchLog := func(b *testing.B) *Log {
		b.Helper()
		l, err := NewLog(LogOptions{Cluster: Options{Processes: 3, Memories: 3}})
		if err != nil {
			b.Fatalf("NewLog: %v", err)
		}
		b.Cleanup(l.Close)
		return l
	}
	b.Run("sequential", func(b *testing.B) {
		l := newBenchLog(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := l.Propose(ctx, []byte("bench")); err != nil {
				b.Fatalf("Propose: %v", err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(l.Len())/float64(l.Slots()), "cmds/slot")
	})
	b.Run("concurrent", func(b *testing.B) {
		l := newBenchLog(b)
		ctx := context.Background()
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := l.Propose(ctx, []byte("bench")); err != nil {
					b.Errorf("Propose: %v", err) // Fatalf must not run off the benchmark goroutine
					return
				}
			}
		})
		b.StopTimer()
		if slots := l.Slots(); slots > 0 {
			b.ReportMetric(float64(l.Len())/float64(slots), "cmds/slot")
		}
	})
	// Pipelined appends: identical configs except the pipeline depth, in the
	// latency-bound regime the paper targets (slot cost ≈ memory round
	// trips). The batch is bounded so concurrent submitters produce several
	// batches, which is what a pipeline can overlap: at depth 1 the slots
	// serialize, at depth 4 up to four slots hide each other's fabric
	// latency while the reorder buffer keeps commit order gap-free. Depth 4
	// is expected ≥ 1.5x the depth-1 rate.
	for _, depth := range []int{1, 4} {
		depth := depth
		b.Run(fmt.Sprintf("pipeline=%d", depth), func(b *testing.B) {
			l, err := NewLog(LogOptions{
				Cluster:  Options{Processes: 3, Memories: 3, MemoryLatency: time.Millisecond},
				MaxBatch: 2,
				Pipeline: depth,
			})
			if err != nil {
				b.Fatalf("NewLog: %v", err)
			}
			b.Cleanup(l.Close)
			ctx := context.Background()
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, err := l.Propose(ctx, []byte("bench")); err != nil {
						b.Errorf("Propose: %v", err) // Fatalf must not run off the benchmark goroutine
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(l.Cluster().PeakInstances()), "peak-slots-in-flight")
		})
	}
}

// BenchmarkShardedKV measures aggregate put throughput as the key space is
// sharded over more independent replicated-log groups: appends/sec scale
// with the shard count because unrelated keys commit in parallel.
//
// The memories simulate a per-operation latency (the regime the paper
// targets: decision cost dominated by hardware round trips, not CPU), and
// the per-group batch is bounded, so a single group saturates at
// MaxBatch/slot-time and additional shards multiply the ceiling.
func BenchmarkShardedKV(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			kv, err := NewShardedKV(ShardedKVOptions{
				Shards: shards,
				Log: LogOptions{
					Cluster:  Options{Processes: 3, Memories: 3, MemoryLatency: 2 * time.Millisecond},
					MaxBatch: 4,
				},
			})
			if err != nil {
				b.Fatalf("NewShardedKV: %v", err)
			}
			b.Cleanup(kv.Close)
			ctx := context.Background()
			var seq atomic.Int64
			b.SetParallelism(32)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := seq.Add(1)
					key := fmt.Sprintf("user/%d", i)
					if _, _, err := kv.Put(ctx, key, "bench"); err != nil {
						b.Errorf("Put: %v", err) // Fatalf must not run off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// BenchmarkLogRead measures the three read paths of a replicated
// state-machine group: Read without a lease pays a read-index barrier (one
// no-op slot commit, or a ride on a concurrent batch); Read under a healthy
// lease serves locally with the same linearizability guarantee and zero
// slots; StaleRead answers from the leader's local view with no guarantee
// and no consensus round at all.
func BenchmarkLogRead(b *testing.B) {
	newReadLog := func(b *testing.B, lease time.Duration) *Log {
		b.Helper()
		l, err := NewLog(LogOptions{
			Cluster: Options{Processes: 3, Memories: 3, LeaseDuration: lease},
			NewSM:   func() StateMachine { return &counterMachine{} },
		})
		if err != nil {
			b.Fatalf("NewLog: %v", err)
		}
		b.Cleanup(l.Close)
		ctx := context.Background()
		if _, _, err := l.Propose(ctx, []byte("seed")); err != nil {
			b.Fatalf("Propose: %v", err)
		}
		return l
	}
	b.Run("linearizable", func(b *testing.B) {
		l := newReadLog(b, 0)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Read(ctx, nil); err != nil {
				b.Fatalf("Read: %v", err)
			}
		}
	})
	b.Run("lease", func(b *testing.B) {
		l := newReadLog(b, 500*time.Millisecond)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Read(ctx, nil); err != nil {
				b.Fatalf("Read: %v", err)
			}
		}
		b.StopTimer()
		if stats := l.Stats(); stats.BarrierReads > stats.LeaseReads {
			b.Fatalf("lease bench mostly fell back to barriers: %d barrier vs %d lease reads", stats.BarrierReads, stats.LeaseReads)
		}
	})
	b.Run("stale", func(b *testing.B) {
		l := newReadLog(b, 0)
		leader := l.Cluster().Leader()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.StaleRead(leader, nil); err != nil {
				b.Fatalf("StaleRead: %v", err)
			}
		}
	})
}
