package rdmaagreement_test

import (
	"context"
	"fmt"
	"time"

	"rdmaagreement"
)

// The sharded store in a dozen lines: routes keys over a consistent-hash
// ring to per-shard replicated logs, each committing through the paper's
// Protected Memory Paxos at two delays.
func ExampleNewShardedKV() {
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{Shards: 2})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	defer kv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, _, err := kv.Put(ctx, "user/42", "hello"); err != nil {
		fmt.Println("put:", err)
		return
	}
	value, found, err := kv.GetLinearizable(ctx, "user/42")
	if err != nil {
		fmt.Println("get:", err)
		return
	}
	fmt.Println(value, found)
	// Output: hello true
}

// One replicated log group: commands are batched into consensus slots and
// applied, in slot order, to the pluggable state machine (the default is a
// byte-appending register; NewSM swaps in your own).
func ExampleNewLog() {
	l, err := rdmaagreement.NewLog(rdmaagreement.LogOptions{
		Cluster: rdmaagreement.Options{Processes: 3, Memories: 3},
	})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, _, err := l.Propose(ctx, []byte("set x=1")); err != nil {
		fmt.Println("propose:", err)
		return
	}
	index, _, err := l.Propose(ctx, []byte("set y=2"))
	if err != nil {
		fmt.Println("propose:", err)
		return
	}
	fmt.Println("second command committed at slot", index)
	// Output: second command committed at slot 1
}
