package rdmaagreement

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"rdmaagreement/internal/shard"
	"rdmaagreement/internal/smr"
)

// Log is a replicated state-machine log: one long-lived cluster serving an
// unbounded sequence of consensus instances (slots), with command batching.
// See package smr for the semantics.
type Log = smr.Log

// LogOptions configure a Log.
type LogOptions = smr.Options

// LogEntry is one committed command of a Log.
type LogEntry = smr.Entry

// NewLog builds a replicated log over one long-lived cluster of the
// configured protocol (Protected Memory Paxos by default). Unlike NewCluster,
// which wires a single-shot deployment, a Log multiplexes any number of
// decisions over the same memories and network.
func NewLog(opts LogOptions) (*Log, error) { return smr.NewLog(opts) }

// Ring is a deterministic consistent-hash ring used to route keys across
// independent replicated-log groups.
type Ring = shard.Ring

// NewRing builds a ring over the given shard names with vnodes virtual nodes
// per shard (≤ 0 means shard.DefaultVirtualNodes).
func NewRing(shards []string, vnodes int) *Ring { return shard.New(shards, vnodes) }

// ShardedKVOptions configure a ShardedKV.
type ShardedKVOptions struct {
	// Shards is the number of independent replicated-log groups. Zero means 4.
	Shards int
	// VirtualNodes is the ring's virtual-node count per shard. Zero means
	// shard.DefaultVirtualNodes.
	VirtualNodes int
	// Log configures each shard's replicated log (protocol, topology,
	// batching). The zero value is a 3-process, 3-memory Protected Memory
	// Paxos group.
	Log LogOptions
}

// kvCommand is the state-machine operation replicated by ShardedKV.
type kvCommand struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// ShardedKV is a crash-tolerant key-value store sharded over S independent
// replicated-log groups by a consistent-hash ring. Each group owns one
// long-lived cluster; unrelated keys therefore commit in parallel, scaling
// aggregate throughput with the shard count while each key still enjoys the
// underlying protocol's resilience.
type ShardedKV struct {
	ring *shard.Ring
	logs map[string]*smr.Log

	mu    sync.RWMutex
	state map[string]string
}

// NewShardedKV builds the ring and one replicated-log group per shard.
func NewShardedKV(opts ShardedKVOptions) (*ShardedKV, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	names := shard.ShardNames(opts.Shards)
	kv := &ShardedKV{
		ring:  shard.New(names, opts.VirtualNodes),
		logs:  make(map[string]*smr.Log, opts.Shards),
		state: make(map[string]string),
	}
	for _, name := range names {
		logOpts := opts.Log
		userHook := opts.Log.OnCommit
		logOpts.OnCommit = func(e LogEntry) {
			kv.applyEntry(e)
			// Chain a caller-supplied hook rather than silently dropping it.
			if userHook != nil {
				userHook(e)
			}
		}
		l, err := smr.NewLog(logOpts)
		if err != nil {
			kv.Close()
			return nil, fmt.Errorf("sharded kv: shard %s: %w", name, err)
		}
		kv.logs[name] = l
	}
	return kv, nil
}

// applyEntry materializes one committed command into the store's state. Each
// shard's committer calls it in that shard's log order; keys never span
// shards, so per-key ordering is exactly per-shard log ordering.
func (kv *ShardedKV) applyEntry(e LogEntry) {
	var cmd kvCommand
	if err := json.Unmarshal(e.Cmd, &cmd); err != nil {
		return // foreign entry appended directly through the shard's Log
	}
	kv.mu.Lock()
	kv.state[cmd.Key] = cmd.Value
	kv.mu.Unlock()
}

// Put replicates key=value through the owning shard's log and returns the
// shard's name and the command's index in that shard's log. When Put returns,
// the write is committed and visible to Get.
func (kv *ShardedKV) Put(ctx context.Context, key, value string) (string, uint64, error) {
	name := kv.ring.Shard(key)
	l, ok := kv.logs[name]
	if !ok {
		return "", 0, fmt.Errorf("sharded kv: no shard for key %q", key)
	}
	blob, err := json.Marshal(kvCommand{Key: key, Value: value})
	if err != nil {
		return "", 0, fmt.Errorf("sharded kv: encode: %w", err)
	}
	index, err := l.Apply(ctx, blob)
	if err != nil {
		return "", 0, fmt.Errorf("sharded kv: put %q: %w", key, err)
	}
	return name, index, nil
}

// Get returns the last committed value of key.
func (kv *ShardedKV) Get(key string) (string, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.state[key]
	return v, ok
}

// Shard returns the name of the shard that owns key.
func (kv *ShardedKV) Shard(key string) string { return kv.ring.Shard(key) }

// ShardLog returns the replicated log behind the named shard (for fault
// injection and inspection).
func (kv *ShardedKV) ShardLog(name string) *smr.Log { return kv.logs[name] }

// Shards returns the shard names in stable order.
func (kv *ShardedKV) Shards() []string { return kv.ring.Shards() }

// Len returns the total number of committed commands across all shards.
func (kv *ShardedKV) Len() uint64 {
	var total uint64
	for _, l := range kv.logs {
		total += l.Len()
	}
	return total
}

// Close shuts every shard's log down.
func (kv *ShardedKV) Close() {
	var wg sync.WaitGroup
	for _, l := range kv.logs {
		wg.Add(1)
		go func(l *smr.Log) {
			defer wg.Done()
			l.Close()
		}(l)
	}
	wg.Wait()
}
