package rdmaagreement

import (
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/shard"
	"rdmaagreement/internal/smr"
)

// Log is a replicated state-machine group: one long-lived cluster serving an
// unbounded sequence of consensus instances (slots), with command batching,
// pipelined slot commit (LogOptions.Pipeline slots in flight, applied
// gap-free in slot order), ambiguous-slot recovery, leader leases (the
// proposer role follows the cluster's lease, reads under a healthy lease
// serve locally with zero slots, and a stalled holder is replaced under a
// bumped, fenced epoch), a pluggable StateMachine, linearizable reads and
// snapshot-driven slot GC. See package smr for the semantics.
type Log = smr.Log

// LogOptions configure a Log.
type LogOptions = smr.Options

// LogEntry is one committed command of a Log.
type LogEntry = smr.Entry

// LogStats are a group's recovery, lease and pipeline counters (Log.Stats,
// Sharded.Stats): Recovered counts slots whose timed-out agreement was
// resolved by a no-op recovery round instead of halting the group, Refused
// the subset where the no-op lost because the original batch had persisted
// and was re-decided; Epoch/Takeovers report the lease view (current epoch,
// takeovers so far), LeaseReads/BarrierReads split the linearizable reads
// into lease-served (zero slots) and read-index-barrier ones, and
// PipelineDepth/PipelineBackoffs surface the adaptive slot pipeline.
type LogStats = smr.Stats

// Lease is an epoch-stamped, time-bounded leadership grant of a cluster
// (Cluster.Lease): who may propose — and serve local linearizable reads —
// until when, under which fencing epoch. Enable leases with
// Options.LeaseDuration.
type Lease = omega.Lease

// StateMachine is the pluggable application contract of a replicated log
// group: Apply consumes committed entries and produces Propose responses,
// Snapshot/Restore power slot garbage collection and lagging-replica
// catch-up.
type StateMachine = smr.StateMachine

// Querier is optionally implemented by state machines that serve reads
// (Log.Read, Log.ReadFrom, Log.StaleRead).
type Querier = smr.Querier

// Lifecycle errors of the replication layer, matchable with errors.Is.
var (
	// ErrLogClosed is returned by Propose/Read/StaleRead after Close.
	ErrLogClosed = smr.ErrClosed
	// ErrLogHalted is returned once a group halted on an ambiguous slot.
	ErrLogHalted = smr.ErrHalted
	// ErrNotQueryable is returned by reads when the group's state machine
	// does not implement Querier.
	ErrNotQueryable = smr.ErrNotQueryable
	// ErrLeaseLost is the typed retryable error returned to waiters whose
	// command was displaced from its slots by a leadership change without
	// committing: the command provably did not commit and is safe to
	// resubmit.
	ErrLeaseLost = smr.ErrLeaseLost
)

// NewLog builds a replicated state-machine group over one long-lived cluster
// of the configured protocol (Protected Memory Paxos by default). Unlike
// NewCluster, which wires a single-shot deployment, a Log multiplexes any
// number of decisions over the same memories and network; LogOptions.NewSM
// plugs the application in.
func NewLog(opts LogOptions) (*Log, error) { return smr.NewLog(opts) }

// Ring is a deterministic consistent-hash ring used to route keys across
// independent replicated-log groups.
type Ring = shard.Ring

// NewRing builds a ring over the given shard names with vnodes virtual nodes
// per shard (≤ 0 means shard.DefaultVirtualNodes).
func NewRing(shards []string, vnodes int) *Ring { return shard.New(shards, vnodes) }
