package rdmaagreement

import (
	"rdmaagreement/internal/shard"
	"rdmaagreement/internal/smr"
)

// Log is a replicated state-machine group: one long-lived cluster serving an
// unbounded sequence of consensus instances (slots), with command batching,
// pipelined slot commit (LogOptions.Pipeline slots in flight, applied
// gap-free in slot order), ambiguous-slot recovery, a pluggable
// StateMachine, linearizable reads and snapshot-driven slot GC. See package
// smr for the semantics.
type Log = smr.Log

// LogOptions configure a Log.
type LogOptions = smr.Options

// LogEntry is one committed command of a Log.
type LogEntry = smr.Entry

// LogStats are a group's ambiguous-slot recovery counters (Log.Stats,
// Sharded.Stats): Recovered counts slots whose timed-out agreement was
// resolved by a no-op recovery round instead of halting the group, Refused
// the subset where the no-op lost because the original batch had persisted
// and was re-decided.
type LogStats = smr.Stats

// StateMachine is the pluggable application contract of a replicated log
// group: Apply consumes committed entries and produces Propose responses,
// Snapshot/Restore power slot garbage collection and lagging-replica
// catch-up.
type StateMachine = smr.StateMachine

// Querier is optionally implemented by state machines that serve reads
// (Log.Read, Log.ReadFrom, Log.StaleRead).
type Querier = smr.Querier

// Lifecycle errors of the replication layer, matchable with errors.Is.
var (
	// ErrLogClosed is returned by Propose/Read/StaleRead after Close.
	ErrLogClosed = smr.ErrClosed
	// ErrLogHalted is returned once a group halted on an ambiguous slot.
	ErrLogHalted = smr.ErrHalted
	// ErrNotQueryable is returned by reads when the group's state machine
	// does not implement Querier.
	ErrNotQueryable = smr.ErrNotQueryable
)

// NewLog builds a replicated state-machine group over one long-lived cluster
// of the configured protocol (Protected Memory Paxos by default). Unlike
// NewCluster, which wires a single-shot deployment, a Log multiplexes any
// number of decisions over the same memories and network; LogOptions.NewSM
// plugs the application in.
func NewLog(opts LogOptions) (*Log, error) { return smr.NewLog(opts) }

// Ring is a deterministic consistent-hash ring used to route keys across
// independent replicated-log groups.
type Ring = shard.Ring

// NewRing builds a ring over the given shard names with vnodes virtual nodes
// per shard (≤ 0 means shard.DefaultVirtualNodes).
func NewRing(shards []string, vnodes int) *Ring { return shard.New(shards, vnodes) }
