package rdmaagreement

import (
	"rdmaagreement/internal/metrics"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/shard"
	"rdmaagreement/internal/smr"
)

// Log is a replicated state-machine group: one long-lived cluster serving an
// unbounded sequence of consensus instances (slots), with command batching,
// pipelined slot commit (LogOptions.Pipeline slots in flight, applied
// gap-free in slot order), ambiguous-slot recovery, leader leases (the
// proposer role follows the cluster's lease, reads under a healthy lease
// serve locally with zero slots, and a stalled holder is replaced under a
// bumped, fenced epoch), a pluggable StateMachine, linearizable reads and
// snapshot-driven slot GC. See package smr for the semantics.
type Log = smr.Log

// LogOptions configure a Log.
type LogOptions = smr.Options

// LogEntry is one committed command of a Log.
type LogEntry = smr.Entry

// LogStats are a group's recovery, lease and pipeline counters (Log.Stats,
// Sharded.Stats): Recovered counts slots whose timed-out agreement was
// resolved by a no-op recovery round instead of halting the group, Refused
// the subset where the no-op lost because the original batch had persisted
// and was re-decided; Epoch/Takeovers report the lease view (current epoch,
// takeovers so far), LeaseReads/BarrierReads split the linearizable reads
// into lease-served (zero slots) and read-index-barrier ones, and
// PipelineDepth/PipelineBackoffs surface the adaptive slot pipeline.
type LogStats = smr.Stats

// LogMetrics is a point-in-time snapshot of a group's — or, via
// Sharded.Metrics, a whole deployment's — slot-lifecycle instrumentation:
// monotone commit counters, per-stage latency histograms decomposing a
// command's end-to-end latency (batch wait → agreement → commit wait →
// apply), and queue-depth gauges with high-water marks. Safe to snapshot
// from any goroutine mid-workload; the record path is lock- and
// allocation-free, so observing never stalls the committer.
type LogMetrics = smr.Metrics

// StageLatency summarizes one slot-lifecycle stage of LogMetrics.
type StageLatency = smr.StageLatency

// GaugeStats is a LogMetrics level gauge: current value plus peak.
type GaugeStats = smr.GaugeStats

// MetricsRegistry is the named-instrument registry behind LogMetrics
// (LogOptions.Metrics, Log.Registry, Sharded.Registry): counters, gauges and
// fixed-bucket latency histograms, snapshot-able as typed values
// (LogMetrics), as an expvar-friendly map (Snapshot), or as
// Prometheus-style text (WriteText). Groups sharing one registry aggregate.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry builds an empty registry, for callers that want several
// groups recording into one aggregated view (LogOptions.Metrics) or a
// custom exposition of the built-in instrumentation.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Lease is an epoch-stamped, time-bounded leadership grant of a cluster
// (Cluster.Lease): who may propose — and serve local linearizable reads —
// until when, under which fencing epoch. Enable leases with
// Options.LeaseDuration.
type Lease = omega.Lease

// StateMachine is the pluggable application contract of a replicated log
// group: Apply consumes committed entries and produces Propose responses,
// Snapshot/Restore power slot garbage collection and lagging-replica
// catch-up.
type StateMachine = smr.StateMachine

// Querier is optionally implemented by state machines that serve reads
// (Log.Read, Log.ReadFrom, Log.StaleRead).
type Querier = smr.Querier

// Lifecycle errors of the replication layer, matchable with errors.Is.
var (
	// ErrLogClosed is returned by Propose/Read/StaleRead after Close.
	ErrLogClosed = smr.ErrClosed
	// ErrLogHalted is returned once a group halted on an ambiguous slot.
	ErrLogHalted = smr.ErrHalted
	// ErrNotQueryable is returned by reads when the group's state machine
	// does not implement Querier.
	ErrNotQueryable = smr.ErrNotQueryable
	// ErrLeaseLost is the typed retryable error returned to waiters whose
	// command was displaced from its slots by a leadership change without
	// committing: the command provably did not commit and is safe to
	// resubmit.
	ErrLeaseLost = smr.ErrLeaseLost
)

// NewLog builds a replicated state-machine group over one long-lived cluster
// of the configured protocol (Protected Memory Paxos by default). Unlike
// NewCluster, which wires a single-shot deployment, a Log multiplexes any
// number of decisions over the same memories and network; LogOptions.NewSM
// plugs the application in.
func NewLog(opts LogOptions) (*Log, error) { return smr.NewLog(opts) }

// Ring is a deterministic consistent-hash ring used to route keys across
// independent replicated-log groups.
type Ring = shard.Ring

// NewRing builds a ring over the given shard names with vnodes virtual nodes
// per shard (≤ 0 means shard.DefaultVirtualNodes).
func NewRing(shards []string, vnodes int) *Ring { return shard.New(shards, vnodes) }
