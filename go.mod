module rdmaagreement

go 1.24
