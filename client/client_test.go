package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rdmaagreement"
	"rdmaagreement/internal/wire"
)

// fakeRing serves /v1/ring with the given endpoint map on every fake server,
// so the client's mirror routes exactly where the test wants.
func fakeRing(shards []string, vnodes int, endpoints map[string]string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.RingResponse{Shards: shards, VNodes: vnodes, Endpoints: endpoints})
	}
}

func refuseWith(status int, werr wire.Error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(werr)
	}
}

// newTestClient builds a client whose sleeps are recorded instead of slept
// and whose jitter source is pinned to 0 (jitter(d) = d/2, deterministic).
func newTestClient(t *testing.T, opts Options) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	waits := &[]time.Duration{}
	c.sleep = func(_ context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return nil
	}
	c.random = func() float64 { return 0 }
	return c, waits
}

func TestRetriesBoundedOnPersistentShed(t *testing.T) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ring", fakeRing([]string{"shard-0"}, 16, nil))
	mux.HandleFunc("/v1/kv/", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		refuseWith(http.StatusServiceUnavailable, wire.Error{Code: wire.CodeOverloaded, Message: "shed"})(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, waits := newTestClient(t, Options{
		Endpoints:   []string{srv.URL},
		MaxRetries:  3,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  40 * time.Millisecond,
	})
	_, _, err := c.Put(context.Background(), "k", "v")
	if err == nil {
		t.Fatal("Put against a permanently shedding server succeeded")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want errors.Is(_, ErrOverloaded)", err)
	}
	if got := hits.Load(); got != 4 { // MaxRetries+1 attempts
		t.Fatalf("server saw %d attempts, want 4", got)
	}
	// Backoff doubles then caps: 10, 20, 40ms — jittered by the pinned source
	// to exactly half. No fourth sleep: the last attempt's failure returns.
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	if len(*waits) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(*waits), *waits, len(want))
	}
	for i, d := range want {
		if (*waits)[i] != d {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, (*waits)[i], d, *waits)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	c, _ := newTestClient(t, Options{Endpoints: []string{"http://127.0.0.1:1"}})
	const d = 100 * time.Millisecond
	c.random = func() float64 { return 0 }
	if got := c.jitter(d); got != d/2 {
		t.Fatalf("jitter at random=0: %v, want %v", got, d/2)
	}
	c.random = func() float64 { return 0.999999 }
	if got := c.jitter(d); got < d/2 || got >= d {
		t.Fatalf("jitter at random→1: %v, want in [%v, %v)", got, d/2, d)
	}
}

func TestRetryHonorsServerRetryAfter(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ring", fakeRing([]string{"shard-0"}, 16, nil))
	mux.HandleFunc("/v1/kv/", refuseWith(http.StatusServiceUnavailable,
		wire.Error{Code: wire.CodeOverloaded, Message: "shed", RetryAfterMS: 200}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, waits := newTestClient(t, Options{
		Endpoints:   []string{srv.URL},
		MaxRetries:  1,
		BackoffBase: time.Millisecond, // far below the server's hint
	})
	if _, _, err := c.Put(context.Background(), "k", "v"); err == nil {
		t.Fatal("Put succeeded against shedding server")
	}
	// The server's 200ms hint must beat the 1ms local schedule (jittered to
	// half: 100ms).
	if len(*waits) != 1 || (*waits)[0] != 100*time.Millisecond {
		t.Fatalf("waits = %v, want exactly [100ms]", *waits)
	}
}

func TestCtxCancellationMidRetry(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ring", fakeRing([]string{"shard-0"}, 16, nil))
	mux.HandleFunc("/v1/kv/", refuseWith(http.StatusServiceUnavailable,
		wire.Error{Code: wire.CodeOverloaded, Message: "shed"}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := New(Options{
		Endpoints:   []string{srv.URL},
		MaxRetries:  10,
		BackoffBase: 10 * time.Second, // would retry for minutes; ctx must cut in
		BackoffMax:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = c.Put(ctx, "k", "v")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to surface, want prompt", elapsed)
	}
}

func TestKeyMovedReRoutesToOwner(t *testing.T) {
	// Two servers: the ring names owner endpoints for both shards, the key
	// routes to shard-0 (server A), A refuses with owner=shard-1, and the
	// client must land the retry on B — immediately, with no backoff sleep.
	shards := []string{"shard-0", "shard-1"}
	const vnodes = 16

	var aHits, bHits atomic.Int64
	endpoints := map[string]string{}

	muxA := http.NewServeMux()
	muxA.HandleFunc("/v1/kv/", func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		refuseWith(http.StatusMisdirectedRequest,
			wire.Error{Code: wire.CodeKeyMoved, Message: "moved", Owner: "shard-1"})(w, r)
	})
	muxA.HandleFunc("/v1/ring", func(w http.ResponseWriter, r *http.Request) {
		fakeRing(shards, vnodes, endpoints)(w, r)
	})
	srvA := httptest.NewServer(muxA)
	defer srvA.Close()

	muxB := http.NewServeMux()
	muxB.HandleFunc("/v1/kv/", func(w http.ResponseWriter, r *http.Request) {
		bHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.PutResponse{Shard: "shard-1", Index: 7})
	})
	srvB := httptest.NewServer(muxB)
	defer srvB.Close()

	endpoints["shard-0"], endpoints["shard-1"] = srvA.URL, srvB.URL

	// A key the mirrored ring routes to shard-0, so the first attempt is A's.
	ring := rdmaagreement.NewRing(shards, vnodes)
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe/%d", i)
		if ring.Shard(wire.TenantKey("", k)) == "shard-0" {
			key = k
			break
		}
	}

	c, waits := newTestClient(t, Options{Endpoints: []string{srvA.URL}})
	shard, index, err := c.Put(context.Background(), key, "v")
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if shard != "shard-1" || index != 7 {
		t.Fatalf("Put = %s/%d, want shard-1/7", shard, index)
	}
	if aHits.Load() != 1 || bHits.Load() != 1 {
		t.Fatalf("hits A=%d B=%d, want exactly one each", aHits.Load(), bHits.Load())
	}
	if len(*waits) != 0 {
		t.Fatalf("key_moved re-route slept %v, want no backoff", *waits)
	}
}

func TestTerminalErrorsAreNotRetried(t *testing.T) {
	var hits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ring", fakeRing([]string{"shard-0"}, 16, nil))
	mux.HandleFunc("/v1/kv/", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		refuseWith(http.StatusConflict, wire.Error{Code: wire.CodeRebalanceInProgress, Message: "busy"})(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, waits := newTestClient(t, Options{Endpoints: []string{srv.URL}, MaxRetries: 5})
	_, _, err := c.Put(context.Background(), "k", "v")
	if !errors.Is(err, rdmaagreement.ErrRebalanceInProgress) {
		t.Fatalf("err = %v, want errors.Is(_, ErrRebalanceInProgress)", err)
	}
	if hits.Load() != 1 || len(*waits) != 0 {
		t.Fatalf("terminal error retried: %d attempts, %d sleeps", hits.Load(), len(*waits))
	}
}

func TestTenantHeaderOnEveryRequest(t *testing.T) {
	var sawTenant atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ring", fakeRing([]string{"shard-0"}, 16, nil))
	mux.HandleFunc("/v1/kv/", func(w http.ResponseWriter, r *http.Request) {
		sawTenant.Store(r.Header.Get("X-KV-Tenant"))
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(wire.GetResponse{Found: false})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, _ := newTestClient(t, Options{Endpoints: []string{srv.URL}, Tenant: "acme"})
	if _, _, err := c.Get(context.Background(), "k"); err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got, _ := sawTenant.Load().(string); got != "acme" {
		t.Fatalf("server saw tenant %q, want acme", got)
	}
}
