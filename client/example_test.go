package client_test

import (
	"context"
	"fmt"
	"net"
	"time"

	"rdmaagreement"
	"rdmaagreement/client"
	"rdmaagreement/kvserver"
)

// A complete served round trip: a ShardedKV behind a loopback kvserver,
// driven by the ring-aware client. The client mirrors the server's ring
// from /v1/ring and routes each key to its owning shard's endpoint; typed
// refusals (key_moved, lease_lost, shed 503s) are retried transparently.
func ExampleNew() {
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{Shards: 2})
	if err != nil {
		fmt.Println("store:", err)
		return
	}
	defer kv.Close()

	srv, err := kvserver.New(kvserver.Options{Store: kv})
	if err != nil {
		fmt.Println("server:", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	c, err := client.New(client.Options{Endpoints: []string{"http://" + ln.Addr().String()}})
	if err != nil {
		fmt.Println("client:", err)
		return
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, _, err := c.Put(ctx, "user/42", "hello"); err != nil {
		fmt.Println("put:", err)
		return
	}
	value, found, err := c.GetLinearizable(ctx, "user/42")
	if err != nil {
		fmt.Println("get:", err)
		return
	}
	fmt.Println(value, found)
	// Output: hello true
}
