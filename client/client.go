// Package client is the ring-aware network client of the kvserver front-end:
// the router's mirror image on the other side of the socket.
//
// The client fetches the server's ring geometry once (GET /v1/ring), rebuilds
// the identical consistent-hash ring locally (rdmaagreement.NewRing — same
// hash, same virtual nodes, same tie-breaking), and routes every request to
// the endpoint serving the owning shard first, so in the common case a
// request costs one hop. When routing is stale it self-corrects: a typed
// key_moved refusal carries the new owner's shard name, and the client
// re-routes directly — no ring rediscovery on the hot path — refreshing its
// ring mirror in the background of the retry.
//
// Retries are transparent and bounded: key_moved, lease_lost (the store's
// provably-did-not-commit contract makes resubmission safe), shed 503s and
// transport errors are retried with jittered exponential backoff (server
// Retry-After hints respected), up to Options.MaxRetries attempts and never
// past ctx. Every other failure surfaces as a typed error that round-trips
// the server's taxonomy: errors.Is(err, rdmaagreement.ErrKeyMoved),
// errors.Is(err, client.ErrOverloaded) and friends work exactly as they
// would in-process.
//
// Connections are pooled (one shared http.Transport with generous per-host
// idle limits) so a closed-loop workload reuses sockets instead of
// re-dialing per request.
//
//smrlint:wire consumer
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement"
	"rdmaagreement/internal/wire"
)

// Serving-layer errors, matchable with errors.Is. Store-layer errors
// (ErrKeyMoved, ErrLeaseLost, ErrRebalanceInProgress, …) round-trip to the
// rdmaagreement sentinels instead.
var (
	// ErrOverloaded is the client-side form of a shed request: the server
	// refused it at admission (global or per-connection in-flight bound), so
	// it provably did not touch the store.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrDraining means the server is shutting down gracefully and refused
	// the request at admission.
	ErrDraining = errors.New("client: server draining")
)

// Error is a typed server response: the wire taxonomy plus the HTTP status
// it rode in on. Use errors.As to inspect the code/owner, errors.Is against
// the sentinels for dispatch.
type Error struct {
	// Code is the wire taxonomy code ("key_moved", "overloaded", …).
	Code string
	// Message is the server's human-readable description.
	Message string
	// Owner names the shard that owns the key (key_moved only, best effort).
	Owner string
	// Status is the HTTP status code of the response.
	Status int
	// RetryAfter is the server's backoff hint, if any.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Owner != "" {
		return fmt.Sprintf("server %d %s: %s (owner %s)", e.Status, e.Code, e.Message, e.Owner)
	}
	return fmt.Sprintf("server %d %s: %s", e.Status, e.Code, e.Message)
}

// Unwrap maps the wire code back to its canonical sentinel, so the error
// taxonomy survives the network: errors.Is(err, rdmaagreement.ErrKeyMoved)
// on a decoded key_moved, errors.Is(err, ErrOverloaded) on a shed request.
func (e *Error) Unwrap() error {
	switch e.Code {
	case wire.CodeOverloaded, wire.CodeConnBusy:
		return ErrOverloaded
	case wire.CodeDraining:
		return ErrDraining
	}
	return wire.Sentinel(e.Code)
}

// Stats is the served form of the store's aggregate counters.
type Stats struct {
	rdmaagreement.ShardedStats
	ForeignEntries int64 `json:"foreign_entries"`
}

// Options configure a Client.
type Options struct {
	// Endpoints are base URLs of kvserver instances ("http://host:port"), in
	// preference order for requests the ring cannot route. At least one is
	// required; the ring geometry is fetched from the first reachable one.
	Endpoints []string
	// Tenant is the key namespace every request runs under. Empty means the
	// server default ("default").
	Tenant string
	// MaxRetries bounds transparent retries per operation (total attempts =
	// MaxRetries + 1). Zero means 8; negative disables retries.
	MaxRetries int
	// BackoffBase is the first retry's backoff; it doubles per attempt with
	// uniform jitter in [d/2, d). Zero means 5ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Zero means 500ms.
	BackoffMax time.Duration
	// HTTPClient overrides the pooled default (for TLS, proxies, tests).
	HTTPClient *http.Client
}

// Client is a ring-aware KV client. Safe for concurrent use.
type Client struct {
	opts Options
	hc   *http.Client
	own  *http.Transport // set when the client built its own pooled transport

	mu        sync.RWMutex
	ring      *rdmaagreement.Ring // guarded by mu
	endpoints map[string]string   // guarded by mu; shard name → base URL

	rr atomic.Uint64 // round-robin cursor over Options.Endpoints

	// Test seams: jittered sleep and the jitter source itself.
	sleep  func(ctx context.Context, d time.Duration) error
	random func() float64
}

// New builds a Client over the given endpoints. It does not touch the
// network; the ring mirror is fetched lazily on first use (or explicitly via
// RefreshRing).
func New(opts Options) (*Client, error) {
	if len(opts.Endpoints) == 0 {
		return nil, errors.New("client: at least one endpoint is required")
	}
	for i, ep := range opts.Endpoints {
		u, err := url.Parse(ep)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("client: endpoint %q is not a base URL", ep)
		}
		opts.Endpoints[i] = u.Scheme + "://" + u.Host
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 8
	} else if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 5 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 500 * time.Millisecond
	}
	c := &Client{opts: opts, sleep: sleepCtx, random: rand.Float64}
	if opts.HTTPClient != nil {
		c.hc = opts.HTTPClient
	} else {
		c.own = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}
		c.hc = &http.Client{Transport: c.own}
	}
	return c, nil
}

// Close releases pooled idle connections. In-flight requests finish.
func (c *Client) Close() {
	if c.own != nil {
		c.own.CloseIdleConnections()
	}
}

// Put replicates key=value through the owning shard's log, returning the
// shard's name and the command's log index. Like ShardedKV.Put, a nil error
// means committed and applied.
func (c *Client) Put(ctx context.Context, key, value string) (shard string, index uint64, err error) {
	var resp wire.PutResponse
	err = c.withRetry(ctx, "put", key, func(base string) error {
		return c.do(ctx, http.MethodPut, base+"/v1/kv/"+url.PathEscape(key), wire.PutRequest{Value: value}, &resp)
	})
	return resp.Shard, resp.Index, err
}

// Get returns the key's last committed value from the owning shard's
// freshest local replica view — local and fast, formally a stale read.
func (c *Client) Get(ctx context.Context, key string) (string, bool, error) {
	return c.get(ctx, key, false)
}

// GetLinearizable returns the key's value with the full linearizability
// guarantee (the lease fast path serves it locally when healthy).
func (c *Client) GetLinearizable(ctx context.Context, key string) (string, bool, error) {
	return c.get(ctx, key, true)
}

func (c *Client) get(ctx context.Context, key string, linearizable bool) (string, bool, error) {
	var resp wire.GetResponse
	verb, suffix := "get", ""
	if linearizable {
		verb, suffix = "linearizable get", "?linearizable=1"
	}
	err := c.withRetry(ctx, verb, key, func(base string) error {
		return c.do(ctx, http.MethodGet, base+"/v1/kv/"+url.PathEscape(key)+suffix, nil, &resp)
	})
	if err != nil {
		return "", false, err
	}
	return resp.Value, resp.Found, nil
}

// Stats fetches the store-wide counters from any reachable endpoint.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var stats Stats
	err := c.withRetry(ctx, "stats", "", func(base string) error {
		return c.do(ctx, http.MethodGet, base+"/v1/stats", nil, &stats)
	})
	return stats, err
}

// AddShard grows the served ring by one shard group under live traffic (the
// admin endpoint; see ShardedKV.AddShard for the handoff semantics). The
// ring mirror refreshes on success.
func (c *Client) AddShard(ctx context.Context, name string) error {
	return c.adminShard(ctx, http.MethodPost, name)
}

// RemoveShard drains the named shard into the survivors and retires it.
func (c *Client) RemoveShard(ctx context.Context, name string) error {
	return c.adminShard(ctx, http.MethodDelete, name)
}

func (c *Client) adminShard(ctx context.Context, method, name string) error {
	var resp wire.AdminResponse
	err := c.withRetry(ctx, "admin shard", "", func(base string) error {
		return c.do(ctx, method, base+"/v1/admin/shards/"+url.PathEscape(name), nil, &resp)
	})
	if err != nil {
		return err
	}
	// Routing changed; refresh the mirror now rather than discovering it one
	// key_moved at a time. Best effort — stale routing self-corrects anyway.
	_ = c.RefreshRing(ctx)
	return nil
}

// Shards returns the ring mirror's shard names (fetching the ring on first
// use).
func (c *Client) Shards(ctx context.Context) ([]string, error) {
	c.mu.RLock()
	ring := c.ring
	c.mu.RUnlock()
	if ring == nil {
		if err := c.RefreshRing(ctx); err != nil {
			return nil, err
		}
		c.mu.RLock()
		ring = c.ring
		c.mu.RUnlock()
	}
	return ring.Shards(), nil
}

// RefreshRing fetches the ring geometry from the first reachable endpoint
// and swaps the local mirror. Called lazily on first routed request, after
// admin shard changes, and when a key_moved refusal arrives without a usable
// owner endpoint.
func (c *Client) RefreshRing(ctx context.Context) error {
	var lastErr error
	for range c.opts.Endpoints {
		base := c.nextEndpoint()
		var resp wire.RingResponse
		if err := c.do(ctx, http.MethodGet, base+"/v1/ring", nil, &resp); err != nil {
			lastErr = err
			continue
		}
		endpoints := make(map[string]string, len(resp.Shards))
		for _, name := range resp.Shards {
			if ep := resp.Endpoints[name]; ep != "" {
				endpoints[name] = ep
			} else {
				endpoints[name] = base
			}
		}
		c.mu.Lock()
		c.ring = rdmaagreement.NewRing(resp.Shards, resp.VNodes)
		c.endpoints = endpoints
		c.mu.Unlock()
		return nil
	}
	return fmt.Errorf("client: refresh ring: %w", lastErr)
}

// route resolves the endpoint to try first for key: the owning shard's, by
// the ring mirror, falling back to round-robin over the configured
// endpoints while no mirror exists.
func (c *Client) route(key string) string {
	if key == "" {
		return c.nextEndpoint()
	}
	storeKey := wire.TenantKey(c.opts.Tenant, key)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.ring == nil {
		return c.opts.Endpoints[0]
	}
	if ep := c.endpoints[c.ring.Shard(storeKey)]; ep != "" {
		return ep
	}
	return c.opts.Endpoints[0]
}

// endpointOf looks a shard's endpoint up in the mirror.
func (c *Client) endpointOf(shard string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ep, ok := c.endpoints[shard]
	return ep, ok
}

func (c *Client) nextEndpoint() string {
	n := c.rr.Add(1)
	return c.opts.Endpoints[int(n-1)%len(c.opts.Endpoints)]
}

// withRetry runs do against key's routed endpoint, transparently retrying
// the retryable taxonomy — immediate re-route on key_moved (the refusal
// names the owner), jittered exponential backoff on shed/lease-lost/
// transport errors — bounded by MaxRetries and ctx.
func (c *Client) withRetry(ctx context.Context, verb, key string, do func(base string) error) error {
	// Routing wants a ring mirror; fetch it lazily once. A failure is not
	// fatal — requests fall back to the configured endpoints.
	c.mu.RLock()
	haveRing := c.ring != nil
	c.mu.RUnlock()
	if !haveRing && key != "" {
		_ = c.RefreshRing(ctx)
	}
	base := c.route(key)
	for attempt := 0; ; attempt++ {
		err := do(base)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client: %s %q: %w", verb, key, ctx.Err())
		}
		var werr *Error
		wait := time.Duration(0)
		switch {
		case errors.As(err, &werr) && werr.Code == wire.CodeKeyMoved:
			// The refusal names the new owner: re-route directly, no
			// backoff. Without a usable owner endpoint, refresh the ring and
			// re-route by the new mirror.
			if ep, ok := c.endpointOf(werr.Owner); werr.Owner != "" && ok {
				base = ep
			} else {
				_ = c.RefreshRing(ctx)
				base = c.route(key)
			}
		case errors.As(err, &werr) && wire.Retryable(werr.Code):
			wait = c.backoff(attempt)
			if werr.RetryAfter > wait {
				wait = werr.RetryAfter
			}
			if werr.Code == wire.CodeDraining {
				base = c.nextEndpoint() // this server is going away
			}
		case errors.As(err, &werr):
			// Typed and terminal (bad_request, rebalance_in_progress,
			// internal, …): surface it.
			return fmt.Errorf("client: %s %q: %w", verb, key, err)
		default:
			// Transport error: the endpoint may be down; rotate and back
			// off.
			base = c.nextEndpoint()
			wait = c.backoff(attempt)
		}
		if attempt >= c.opts.MaxRetries {
			return fmt.Errorf("client: %s %q: retries exhausted after %d attempts: %w", verb, key, attempt+1, err)
		}
		if wait > 0 {
			if serr := c.sleep(ctx, c.jitter(wait)); serr != nil {
				return fmt.Errorf("client: %s %q: %w", verb, key, serr)
			}
		}
	}
}

// backoff is the exponential schedule before jitter: base·2^attempt, capped.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase
	for i := 0; i < attempt && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	return d
}

// jitter spreads a backoff uniformly over [d/2, d): retries desynchronize
// instead of stampeding the server that just shed them all at once.
func (c *Client) jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(c.random()*float64(d/2))
}

// do performs one HTTP exchange: marshal, send, classify. A non-2xx
// response decodes into *Error (typed, taxonomy-preserving); transport
// failures return as-is.
func (c *Client) do(ctx context.Context, method, u string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.opts.Tenant != "" {
		req.Header.Set("X-KV-Tenant", c.opts.Tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp, blob)
	}
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

// decodeError turns a non-2xx response into a typed *Error, preserving the
// taxonomy when the body carries one and synthesizing an internal error when
// it does not (a proxy's bare 502, a truncated body).
func decodeError(resp *http.Response, blob []byte) error {
	e := &Error{Status: resp.StatusCode, Code: wire.CodeInternal, Message: http.StatusText(resp.StatusCode)}
	var werr wire.Error
	if err := json.Unmarshal(blob, &werr); err == nil && werr.Code != "" {
		e.Code, e.Message, e.Owner = werr.Code, werr.Message, werr.Owner
		e.RetryAfter = time.Duration(werr.RetryAfterMS) * time.Millisecond
	}
	if e.RetryAfter == 0 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.ParseFloat(ra, 64); err == nil && secs > 0 {
				e.RetryAfter = time.Duration(secs * float64(time.Second))
			}
		}
	}
	return e
}

// sleepCtx is a context-bounded sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
