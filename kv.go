package rdmaagreement

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
)

// kvMagic tags every command replicated by ShardedKV. Entries appended to a
// shard's log by other clients (raw Log.Propose) lack the tag and are
// reported as foreign instead of being guessed at: before the tag existed,
// any blob that happened to json.Unmarshal (`null`, `{}`) was silently
// applied as a KV write. The trailing byte versions the wire format:
// version 2 is the binary framing (magic | keylen uvarint | key | value),
// version 1 the original JSON object, still decoded for entries already
// committed by older code.
var (
	kvMagic     = []byte("rkv\x00\x02")
	kvMagicJSON = []byte("rkv\x00\x01")
)

// ErrForeignCommand is the response of the KV state machine to a committed
// entry that does not carry the KV wire tag. The entry stays in the log
// (commitment is the log's business), but it does not touch the store and its
// proposer is told explicitly.
var ErrForeignCommand = errors.New("kv: committed entry is not a tagged KV command")

// kvCommand is the state-machine operation replicated by ShardedKV.
type kvCommand struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// kvResult is the machine's response to writes (the key's previous value) and
// queries (the key's current value).
type kvResult struct {
	Found bool   `json:"found"`
	Value string `json:"value"`
}

//smrlint:noalloc
func encodeKVCommand(key, value string) ([]byte, error) {
	out := make([]byte, 0, len(kvMagic)+binary.MaxVarintLen64+len(key)+len(value))
	out = append(out, kvMagic...)
	out = binary.AppendUvarint(out, uint64(len(key)))
	out = append(out, key...)
	out = append(out, value...)
	return out, nil
}

// decodeKVCommand rejects untagged blobs and decodes tagged ones — the
// binary framing, or the legacy JSON object for pre-binary entries.
func decodeKVCommand(raw []byte) (kvCommand, error) {
	if bytes.HasPrefix(raw, kvMagic) {
		rest := raw[len(kvMagic):]
		klen, n := binary.Uvarint(rest)
		if n <= 0 {
			return kvCommand{}, fmt.Errorf("truncated KV key length")
		}
		rest = rest[n:]
		if klen > uint64(len(rest)) {
			return kvCommand{}, fmt.Errorf("KV key overruns payload")
		}
		return kvCommand{Key: string(rest[:klen]), Value: string(rest[klen:])}, nil
	}
	if bytes.HasPrefix(raw, kvMagicJSON) {
		var cmd kvCommand
		if err := json.Unmarshal(raw[len(kvMagicJSON):], &cmd); err != nil {
			return kvCommand{}, err
		}
		return cmd, nil
	}
	return kvCommand{}, fmt.Errorf("missing KV wire tag")
}

// encodeKVResult is the machine's response framing: one found byte plus the
// value bytes. A legacy JSON response (always starting '{') stays decodable.
//
//smrlint:noalloc
func encodeKVResult(found bool, value string) []byte {
	out := make([]byte, 1, 1+len(value))
	if found {
		out[0] = 1
	}
	return append(out, value...)
}

func decodeKVResult(resp []byte) (string, bool, error) {
	if len(resp) > 0 && resp[0] == '{' {
		var res kvResult
		if err := json.Unmarshal(resp, &res); err != nil {
			return "", false, fmt.Errorf("kv: decode response: %w", err)
		}
		return res.Value, res.Found, nil
	}
	if len(resp) == 0 || resp[0] > 1 {
		return "", false, fmt.Errorf("kv: decode response: not a KV result")
	}
	return string(resp[1:]), resp[0] == 1, nil
}

// DecodeKVResult decodes a kvMachine response obtained outside the ShardedKV
// client — a raw Log.Read/StaleRead against a shard's log, the path audit
// tooling uses to probe individual replicas — into (value, found).
func DecodeKVResult(resp []byte) (string, bool, error) { return decodeKVResult(resp) }

// kvMachine is the string-map StateMachine behind ShardedKV. The owning Log
// serializes all calls, so no internal locking is needed. Foreign entries are
// counted by the ShardedKV's OnCommit hook — exactly once per committed entry
// — not here: one entry is applied by the authoritative machine and every
// replica view, and counting in Apply would multiply it by the replica count.
type kvMachine struct {
	state map[string]string
}

func newKVMachine() StateMachine {
	return &kvMachine{state: make(map[string]string)}
}

// Apply executes one committed write and responds with the key's previous
// value. Untagged entries are skipped and reported via ErrForeignCommand.
func (m *kvMachine) Apply(e LogEntry) ([]byte, error) {
	cmd, err := decodeKVCommand(e.Cmd)
	if err != nil {
		return nil, fmt.Errorf("%w (index %d)", ErrForeignCommand, e.Index)
	}
	prev, found := m.state[cmd.Key]
	m.state[cmd.Key] = cmd.Value
	return encodeKVResult(found, prev), nil
}

// Query answers a key lookup; the query payload is the raw key.
func (m *kvMachine) Query(query []byte) ([]byte, error) {
	v, found := m.state[string(query)]
	return encodeKVResult(found, v), nil
}

// Snapshot serializes the full store.
func (m *kvMachine) Snapshot() ([]byte, error) { return json.Marshal(m.state) }

// MigrateOut removes and serializes the keys a rebalance routes elsewhere.
// Deterministic as the Migrator contract requires: the removal is a pure set
// operation and json.Marshal emits map keys sorted.
func (m *kvMachine) MigrateOut(moved func(key string) bool) ([]byte, int, error) {
	out := make(map[string]string)
	for k, v := range m.state {
		if moved(k) {
			out[k] = v
			delete(m.state, k)
		}
	}
	if len(out) == 0 {
		return nil, 0, nil
	}
	blob, err := json.Marshal(out)
	if err != nil {
		return nil, 0, fmt.Errorf("kv: migrate out: %w", err)
	}
	return blob, len(out), nil
}

// MigrateIn merges a MigrateOut export, keeping only the keys this group owns
// under the new ring (a removed shard's export fans out to every survivor).
func (m *kvMachine) MigrateIn(data []byte, owned func(key string) bool) (int, error) {
	if len(data) == 0 {
		return 0, nil
	}
	in := make(map[string]string)
	if err := json.Unmarshal(data, &in); err != nil {
		return 0, fmt.Errorf("kv: migrate in: %w", err)
	}
	n := 0
	for k, v := range in {
		if owned(k) {
			m.state[k] = v
			n++
		}
	}
	return n, nil
}

// Restore replaces the store with a snapshot.
func (m *kvMachine) Restore(snapshot []byte, _ uint64) error {
	state := make(map[string]string)
	if len(snapshot) > 0 {
		if err := json.Unmarshal(snapshot, &state); err != nil {
			return fmt.Errorf("kv: restore: %w", err)
		}
	}
	m.state = state
	return nil
}

// ShardedKVOptions configure a ShardedKV.
type ShardedKVOptions = ShardedOptions

// ShardedKV is a crash-tolerant key-value store sharded over independent
// replicated-log groups: a thin client of the generic Sharded layer with
// kvMachine plugged in as the StateMachine. Everything consensus-shaped —
// batching, read indexes, snapshots, slot GC — lives below; this type only
// encodes commands and decodes responses, which is the template for any new
// workload (a counter, a queue, a lock service).
type ShardedKV struct {
	s       *Sharded
	foreign atomic.Int64
}

// NewShardedKV builds the ring and one replicated-log group per shard, each
// applying its own kvMachine replicas. Foreign (untagged) committed entries
// are tallied through the commit hook — once per entry, regardless of how
// many machine instances apply it — chaining any caller-supplied OnCommit.
func NewShardedKV(opts ShardedKVOptions) (*ShardedKV, error) {
	kv := &ShardedKV{}
	userHook := opts.Log.OnCommit
	opts.Log.OnCommit = func(e LogEntry) {
		// Just the cheap tag check on the hot commit path (the hook runs on
		// the committer): a tagged-but-malformed command is the proposer's
		// bug, reported to them through Apply's ErrForeignCommand response.
		if !bytes.HasPrefix(e.Cmd, kvMagic) && !bytes.HasPrefix(e.Cmd, kvMagicJSON) {
			kv.foreign.Add(1)
		}
		if userHook != nil {
			userHook(e)
		}
	}
	s, err := NewSharded(func() StateMachine { return newKVMachine() }, opts)
	if err != nil {
		return nil, fmt.Errorf("sharded kv: %w", err)
	}
	kv.s = s
	return kv, nil
}

// Put replicates key=value through the owning shard's log and returns the
// shard's name and the command's index in that shard's log. When Put returns,
// the write is committed and applied on every live replica.
func (kv *ShardedKV) Put(ctx context.Context, key, value string) (string, uint64, error) {
	cmd, err := encodeKVCommand(key, value)
	if err != nil {
		return "", 0, fmt.Errorf("sharded kv: %w", err)
	}
	name, index, _, err := kv.s.Propose(ctx, key, cmd)
	if err != nil {
		return name, index, fmt.Errorf("sharded kv: put %q: %w", key, err)
	}
	return name, index, nil
}

// Get returns the last committed value of key from the owning shard's
// freshest local replica view — the lease holder's while its lease is in
// force, otherwise the most-applied view, so a stalled or deposed leader's
// frozen view never serves it. Local and immediate, but formally a stale
// read (use GetLinearizable for a full linearizability guarantee).
func (kv *ShardedKV) Get(key string) (string, bool) {
	resp, err := kv.s.StaleRead(key, []byte(key))
	if err != nil {
		return "", false
	}
	v, found, err := decodeKVResult(resp)
	if err != nil {
		return "", false
	}
	return v, found
}

// GetWithContext is Get bounded by ctx, with the error surfaced instead of
// folded into "not found": the read itself is local and immediate, but a key
// whose range is mid-handoff waits for the handoff to commit, and that wait
// honors ctx — so a network front-end can enforce its request deadline on
// the stale-read path. Same consistency contract as Get: local, formally
// stale, served from the owning shard's freshest available replica view.
func (kv *ShardedKV) GetWithContext(ctx context.Context, key string) (string, bool, error) {
	resp, err := kv.s.StaleReadContext(ctx, key, []byte(key))
	if err != nil {
		return "", false, fmt.Errorf("sharded kv: get %q: %w", key, err)
	}
	return decodeKVResult(resp)
}

// GetLinearizable returns the value of key with a full linearizability
// guarantee: it observes every Put that returned before the call started,
// wherever it was issued. While the owning shard's leader holds an unexpired
// lease (Options.LeaseDuration > 0) the read is served locally with ZERO
// consensus slots — the lease fast path — and only falls back to the
// read-index barrier (one no-op slot commit, or a ride on a concurrent
// batch) when the lease is absent, expired or in doubt. LogStats splits the
// two paths into LeaseReads and BarrierReads.
func (kv *ShardedKV) GetLinearizable(ctx context.Context, key string) (string, bool, error) {
	resp, err := kv.s.Read(ctx, key, []byte(key))
	if err != nil {
		return "", false, fmt.Errorf("sharded kv: get %q: %w", key, err)
	}
	return decodeKVResult(resp)
}

// AddShard grows the store by one shard group under live traffic: the moved
// key ranges (an expected 1/(S+1) fraction) are drained into the new group
// with no downtime and no lost or forked keys. See Sharded.AddShard for the
// handoff, forwarding and failure semantics.
func (kv *ShardedKV) AddShard(ctx context.Context, name string) error {
	return kv.s.AddShard(ctx, name)
}

// RemoveShard drains the named shard's whole key space into the surviving
// groups and retires its log. See Sharded.RemoveShard.
func (kv *ShardedKV) RemoveShard(ctx context.Context, name string) error {
	return kv.s.RemoveShard(ctx, name)
}

// ForeignEntries reports how many committed entries across all shards were
// skipped because they did not carry the KV wire tag.
func (kv *ShardedKV) ForeignEntries() int64 { return kv.foreign.Load() }

// Shard returns the name of the shard that owns key.
func (kv *ShardedKV) Shard(key string) string { return kv.s.Shard(key) }

// ShardLog returns the replicated log behind the named shard (for fault
// injection and inspection).
func (kv *ShardedKV) ShardLog(name string) *Log { return kv.s.ShardLog(name) }

// Shards returns the shard names in stable order.
func (kv *ShardedKV) Shards() []string { return kv.s.Shards() }

// RingConfig returns the authoritative ring's geometry (shard names plus
// virtual-node count), from which a remote client rebuilds an identically
// routing ring. See Sharded.RingConfig.
func (kv *ShardedKV) RingConfig() ([]string, int) { return kv.s.RingConfig() }

// Len returns the total number of committed commands across all shards.
func (kv *ShardedKV) Len() uint64 { return kv.s.Len() }

// Stats aggregates the per-shard log counters plus the rebalancing view
// (shards, completed rebalances, migrated keys, forwarded operations).
func (kv *ShardedKV) Stats() ShardedStats { return kv.s.Stats() }

// Metrics snapshots the store-wide slot-lifecycle instrumentation (all
// shards aggregate into one registry; see Sharded.Metrics and LogMetrics).
func (kv *ShardedKV) Metrics() LogMetrics { return kv.s.Metrics() }

// Registry returns the store's shared metrics registry, for text exposition
// and expvar publication.
func (kv *ShardedKV) Registry() *MetricsRegistry { return kv.s.Registry() }

// Close shuts every shard's log down. Idempotent.
func (kv *ShardedKV) Close() { kv.s.Close() }
