// Command kvserver serves a sharded, replicated key-value store — the full
// agreement stack of "The Impact of RDMA on Agreement" under a consistent-
// hash ring — over HTTP/JSON on a real TCP socket.
//
// The store runs in-process: -shards replicated-log groups (3 processes and
// 3 memories each over the simulated RDMA fabric, -latency per memory
// operation), leader leases (-lease) for local linearizable reads and
// automatic failover, and live rebalancing driven through the admin
// endpoints. The serving layer adds per-tenant key namespacing (X-KV-Tenant
// header), bounded in-flight admission (global -max-inflight, per-connection
// -max-inflight-conn) shed with typed 503s + Retry-After, and graceful drain
// on SIGTERM/SIGINT: new requests are refused, in-flight ones finish (up to
// -drain-timeout), then the store shuts down.
//
// See package kvserver for the endpoints and internal/wire for the wire
// shapes and error taxonomy; package client is the matching ring-aware
// client.
//
// Usage:
//
//	kvserver -addr :8080 -shards 4 -lease 250ms
//	kvserver -addr 127.0.0.1:0 -shards 2 -latency 200us -max-inflight 512
//
// Diagnostics go to stderr. Exit codes: 0 clean shutdown, 1 runtime failure,
// 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rdmaagreement"
	"rdmaagreement/kvserver"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.CommandLine.SetOutput(os.Stderr)
	addr := flag.String("addr", ":8080", "TCP address to serve on")
	advertise := flag.String("advertise", "", "base URL clients should use to reach this server (default: derived from the request's Host header)")
	shards := flag.Int("shards", 4, "replicated-log groups behind the ring")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the ring (0 = default)")
	batch := flag.Int("batch", 8, "max commands agreed as one consensus slot")
	pipeline := flag.Int("pipeline", 0, "slots in flight per group (0 = smr default)")
	lease := flag.Duration("lease", 250*time.Millisecond, "leader lease duration (0 disables leases; linearizable reads then pay the read-index barrier)")
	latency := flag.Duration("latency", 0, "simulated per-operation memory latency of the RDMA fabric")
	snapInterval := flag.Int("snap-interval", 0, "per-group snapshot interval driving slot GC (0 = smr default)")
	maxInflight := flag.Int("max-inflight", 1024, "server-wide bound on admitted in-flight data requests; excess is shed with a typed 503")
	maxInflightConn := flag.Int("max-inflight-conn", 64, "per-connection bound on admitted in-flight data requests")
	retryAfter := flag.Duration("retry-after", 50*time.Millisecond, "backoff hint attached to shed responses")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long a SIGTERM drain waits for in-flight requests before forcing shutdown")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "kvserver: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return 2
	}

	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards:       *shards,
		VirtualNodes: *vnodes,
		Log: rdmaagreement.LogOptions{
			Cluster:          rdmaagreement.Options{Processes: 3, Memories: 3, MemoryLatency: *latency, LeaseDuration: *lease},
			MaxBatch:         *batch,
			Pipeline:         *pipeline,
			SnapshotInterval: *snapInterval,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: build store: %v\n", err)
		return 1
	}
	defer kv.Close()

	srv, err := kvserver.New(kvserver.Options{
		Store:              kv,
		Advertise:          *advertise,
		MaxInflight:        *maxInflight,
		MaxInflightPerConn: *maxInflightConn,
		RetryAfter:         *retryAfter,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "kvserver: serving %d shards on http://%s/ (lease %s, batch ≤ %d)\n",
		*shards, ln.Addr(), *lease, *batch)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "kvserver: %s — draining (in-flight requests finish, new ones refused; up to %s)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "kvserver: drain: %v\n", err)
			return 1
		}
		<-serveErr // Serve has returned http.ErrServerClosed by now
		fmt.Fprintln(os.Stderr, "kvserver: drained clean")
		return 0
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "kvserver: serve: %v\n", err)
		return 1
	}
}
