// Command agreementsim runs a single consensus instance of any implemented
// protocol over the simulated message-and-memory substrate, optionally
// injecting process and memory crashes, and prints the decision together with
// the full event trace (proposals, permission changes, panics, decisions).
//
// Usage examples:
//
//	agreementsim -protocol fast-robust -n 3 -m 3 -value hello
//	agreementsim -protocol protected-memory-paxos -n 5 -m 5 -crash-processes 4 -crash-memories 2
//	agreementsim -protocol disk-paxos -trace=false
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rdmaagreement"
)

func main() {
	var (
		protocol     = flag.String("protocol", string(rdmaagreement.ProtocolFastRobust), "protocol to run (fast-robust, protected-memory-paxos, aligned-paxos, disk-paxos, paxos, fast-paxos)")
		n            = flag.Int("n", 3, "number of processes")
		m            = flag.Int("m", 3, "number of memories")
		value        = flag.String("value", "hello-rdma", "value proposed by the leader")
		crashProcs   = flag.Int("crash-processes", 0, "number of non-leader processes to crash before proposing")
		crashMems    = flag.Int("crash-memories", 0, "number of memories to crash before proposing")
		timeout      = flag.Duration("timeout", 30*time.Second, "overall timeout")
		showTrace    = flag.Bool("trace", true, "print the event trace")
		memoryDelay  = flag.Duration("memory-latency", 0, "simulated latency per memory operation")
		networkDelay = flag.Duration("network-delay", 0, "simulated one-way message delay")
	)
	flag.Parse()
	if err := run(*protocol, *n, *m, *value, *crashProcs, *crashMems, *timeout, *showTrace, *memoryDelay, *networkDelay); err != nil {
		fmt.Fprintf(os.Stderr, "agreementsim: %v\n", err)
		os.Exit(1)
	}
}

func run(protocol string, n, m int, value string, crashProcs, crashMems int, timeout time.Duration, showTrace bool, memoryDelay, networkDelay time.Duration) error {
	recorder := &rdmaagreement.Recorder{}
	cluster, err := rdmaagreement.NewCluster(rdmaagreement.Protocol(protocol), rdmaagreement.Options{
		Processes:     n,
		Memories:      m,
		Recorder:      recorder,
		MemoryLatency: memoryDelay,
		NetworkDelay:  networkDelay,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	crashed := 0
	for _, p := range cluster.Procs {
		if crashed == crashProcs {
			break
		}
		if p != cluster.Leader() {
			cluster.CrashProcess(p)
			crashed++
		}
	}
	if crashMems > 0 {
		cluster.CrashMemories(crashMems)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, rdmaagreement.Value(value))
	if err != nil {
		return fmt.Errorf("propose: %w", err)
	}

	fmt.Printf("protocol:        %s\n", protocol)
	fmt.Printf("topology:        n=%d processes, m=%d memories (crashed: %d processes, %d memories)\n", n, m, crashed, crashMems)
	fmt.Printf("decision:        %s\n", res.Value)
	fmt.Printf("decision delays: %d\n", res.DecisionDelays)
	fmt.Printf("fast path:       %v\n", res.FastPath)
	fmt.Printf("wall clock:      %s\n", res.Elapsed)
	if showTrace {
		fmt.Println("\nevent trace:")
		fmt.Print(recorder.String())
	}
	return nil
}
