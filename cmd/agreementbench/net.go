package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement"
	"rdmaagreement/client"
	"rdmaagreement/internal/wire"
	"rdmaagreement/kvserver"
)

// runNet is the throughput workload over the REAL serving stack: the same
// sharded KV as runThroughput, fronted by an in-process kvserver on a
// loopback TCP listener and driven closed-loop through the ring-aware client
// package — cfg.Clients workers, each with its own Client (and therefore its
// own pooled connection), HTTP/JSON both ways. The record has the same shape
// as the in-process modes plus the served counters, so -compare puts the two
// on one axis and the cost of the network front-end is a number, not a vibe.
//
// With cfg.Rebalance the mid-soak shard add goes through the ADMIN ENDPOINT
// (the full network path, not kv.AddShard), and the audit afterwards replays
// every acknowledged key through the served read path plus a raw per-group
// probe: zero lost responses, zero lost keys, zero forked keys, or the run
// fails.
func runNet(cfg throughputConfig, jsonPath string) error {
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: cfg.Shards,
		Log:    benchLogOptions(cfg),
	})
	if err != nil {
		return err
	}
	defer kv.Close()
	liveRegistry.Store(kv.Registry())

	// The closed loop has at most one data request in flight per worker, so
	// the global bound only has to clear cfg.Clients; keeping headroom means
	// any shed the clients absorb comes from deliberate tests, not the bench.
	srv, err := kvserver.New(kvserver.Options{
		Store:       kv,
		MaxInflight: max(1024, 2*cfg.Clients),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	adminC, err := client.New(client.Options{Endpoints: []string{base}})
	if err != nil {
		return err
	}
	defer adminC.Close()
	if err := adminC.RefreshRing(ctx); err != nil {
		return fmt.Errorf("fetch ring over %s: %w", base, err)
	}

	var (
		committed atomic.Int64
		lost      atomic.Int64
		lastErrMu sync.Mutex
		lastErr   error
		ackedMu   sync.Mutex
		acked     = make(map[string]string, cfg.Ops)
	)

	// Sampler: same cadence as runRebalance, so the handoff dip under the
	// served path is measured the same way as in-process.
	samples := []sample{}
	sampleStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case at := <-tick.C:
				samples = append(samples, sample{at: at, n: committed.Load()})
			}
		}
	}()

	// Rebalancer: once 40% of the ops have committed, add one shard — through
	// the admin endpoint, so the handoff races the served traffic end to end.
	newShard := fmt.Sprintf("shard-%d", cfg.Shards)
	var (
		rebalanceErr           error
		handoffFrom, handoffTo time.Time
		rebalancerWG           sync.WaitGroup
	)
	workloadDone := make(chan struct{})
	if cfg.Rebalance {
		rebalancerWG.Add(1)
		go func() {
			defer rebalancerWG.Done()
			trigger := int64(cfg.Ops * 2 / 5)
			for committed.Load() < trigger {
				select {
				case <-workloadDone:
					return // the workload outran the trigger; rebalance on quiet traffic below
				case <-time.After(5 * time.Millisecond):
				}
			}
			handoffFrom = time.Now()
			rebalanceErr = adminC.AddShard(ctx, newShard)
			handoffTo = time.Now()
		}()
	}

	// One Client per worker: separate transports, separate TCP connections —
	// cfg.Clients is a connection count, not just a goroutine count.
	workers := make([]*client.Client, cfg.Clients)
	defer func() {
		for _, cl := range workers {
			if cl != nil {
				cl.Close()
			}
		}
	}()
	for c := range workers {
		if workers[c], err = client.New(client.Options{Endpoints: []string{base}}); err != nil {
			return err
		}
	}

	// Warmup rides the full served path — client, HTTP framing, server,
	// store — so connection pools and server-side state settle too.
	if err := runWarmup(cfg, func(c, i int) error {
		_, _, err := workers[c].Put(ctx, fmt.Sprintf("warm/%d", i), "w")
		return err
	}); err != nil {
		return err
	}

	work := make(chan int)
	var wg sync.WaitGroup
	perClient := make([][]time.Duration, cfg.Clients)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := workers[c]
			for i := range work {
				key, value := fmt.Sprintf("key/%d", i), fmt.Sprintf("v%d", i)
				t0 := time.Now()
				if _, _, err := cl.Put(ctx, key, value); err != nil {
					// A put whose whole retry budget ran out is a LOST
					// RESPONSE. The loop keeps going so the record still
					// reports the full run; the error fails it at the end.
					lost.Add(1)
					lastErrMu.Lock()
					lastErr = err
					lastErrMu.Unlock()
					continue
				}
				perClient[c] = append(perClient[c], time.Since(t0))
				committed.Add(1)
				ackedMu.Lock()
				acked[key] = value
				ackedMu.Unlock()
			}
		}(c)
	}
	for i := 0; i < cfg.Ops; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	close(workloadDone)
	rebalancerWG.Wait()
	close(sampleStop)
	samplerWG.Wait()
	if cfg.Rebalance && handoffFrom.IsZero() {
		// The workload never reached the trigger (tiny -ops): hand off on
		// quiet traffic so the audit still runs.
		handoffFrom = time.Now()
		rebalanceErr = adminC.AddShard(ctx, newShard)
		handoffTo = time.Now()
	}
	if rebalanceErr != nil {
		return fmt.Errorf("AddShard(%s) through the admin endpoint under live traffic: %w", newShard, rebalanceErr)
	}

	// Linearizable reads over the wire, serial: the point is served read
	// latency, not read throughput.
	var readLat []time.Duration
	if cfg.Reads > 0 && cfg.Ops > 0 {
		for i := 0; i < cfg.Reads; i++ {
			key := fmt.Sprintf("key/%d", i%cfg.Ops)
			t0 := time.Now()
			if _, _, err := adminC.GetLinearizable(ctx, key); err != nil {
				return fmt.Errorf("served linearizable read: %w", err)
			}
			readLat = append(readLat, time.Since(t0))
		}
		sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
	}

	var appendLat []time.Duration
	for _, lats := range perClient {
		appendLat = append(appendLat, lats...)
	}
	sort.Slice(appendLat, func(i, j int) bool { return appendLat[i] < appendLat[j] })

	reg := kv.Registry()
	stats := kv.Stats()
	result := throughputResult{
		Config:        cfg,
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		AppendsPerSec: float64(committed.Load()) / elapsed.Seconds(),
		AppendP50MS:   millis(percentile(appendLat, 50)),
		AppendP99MS:   millis(percentile(appendLat, 99)),
		Recovered:     stats.Recovered,
		Refused:       stats.Refused,
		LeaseReads:    stats.LeaseReads,
		BarrierReads:  stats.BarrierReads,
		Epoch:         stats.Epoch,
		Takeovers:     stats.Takeovers,
		ServedOps:     uint64(reg.Counter("server_requests").Load()),
		LostResponses: lost.Load(),
		ShedResponses: uint64(reg.Counter("server_shed_overloaded").Load() +
			reg.Counter("server_shed_conn_busy").Load() +
			reg.Counter("server_shed_draining").Load()),
	}
	if len(readLat) > 0 {
		readElapsed := time.Duration(0)
		for _, d := range readLat {
			readElapsed += d
		}
		result.ReadsPerSec = float64(len(readLat)) / readElapsed.Seconds()
		result.ReadP50MS = millis(percentile(readLat, 50))
		result.ReadP99MS = millis(percentile(readLat, 99))
	}
	if cfg.Rebalance {
		result.RebalanceHandoffMS = millis(handoffTo.Sub(handoffFrom))
		result.RebalanceMovedKeys = stats.Migrated
		result.RebalanceForwarded = stats.Forwarded
		result.RebalanceRateBefore, result.RebalanceRateDuring, result.RebalanceRateAfter =
			windowRates(samples, handoffFrom, handoffTo)
	}
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		result.Slots += l.Slots()
		result.Snapshots += l.Snapshots()
		result.LiveRegions += l.Cluster().LiveRegions()
		result.LiveInstances += l.Cluster().LiveInstances()
		result.PeakInstances += l.Cluster().PeakInstances()
	}

	// Safety audit (with -rebalance): every acknowledged key must come back
	// through the served read path with its value (no lost keys) and live in
	// exactly one group's machine (no forked keys). The per-group probe is
	// raw and in-process — it must see the machines' true contents, hidden
	// ceded state included — and probes the tenant-prefixed store key the
	// server actually wrote.
	if cfg.Rebalance {
		for key, want := range acked {
			if v, ok, err := adminC.GetLinearizable(ctx, key); err != nil || !ok || v != want {
				result.RebalanceLostKeys++
				continue
			}
			storeKey := wire.TenantKey("", key)
			homes := 0
			for _, name := range kv.Shards() {
				resp, err := kv.ShardLog(name).Read(ctx, []byte(storeKey))
				if err != nil {
					return fmt.Errorf("audit read of %q on %s: %w", key, name, err)
				}
				_, found, err := rdmaagreement.DecodeKVResult(resp)
				if err != nil {
					return fmt.Errorf("audit read of %q on %s: %w", key, name, err)
				}
				if found {
					homes++
				}
			}
			if homes > 1 {
				result.RebalanceForkedKeys++
			}
		}
	}

	// Drain the front-end before the store goes away: in-flight audit reads
	// are done, so this should complete immediately.
	drainCtx, drainCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer drainCancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain kvserver: %w", err)
	}
	<-serveDone

	fmt.Printf("served front-end — %d groups behind kvserver on %s, %d client connections, batch ≤ %d, memory latency %s, lease %s\n",
		cfg.Shards, base, cfg.Clients, cfg.Batch, cfg.Latency, leaseLabel(cfg.Lease))
	fmt.Printf("  committed %d/%d puts over HTTP in %s (%.0f appends/sec aggregate, latency p50 %s / p99 %s)\n",
		committed.Load(), cfg.Ops, elapsed.Round(time.Millisecond), result.AppendsPerSec,
		percentile(appendLat, 50).Round(time.Microsecond), percentile(appendLat, 99).Round(time.Microsecond))
	fmt.Printf("  server admitted %d requests; clients absorbed %d shed 503s by retrying; %d responses lost\n",
		result.ServedOps, result.ShedResponses, result.LostResponses)
	if len(readLat) > 0 {
		fmt.Printf("  served linearizable reads: %.0f reads/sec, p50 %s / p99 %s (%d lease-local, %d barrier)\n",
			result.ReadsPerSec, percentile(readLat, 50).Round(time.Microsecond), percentile(readLat, 99).Round(time.Microsecond),
			result.LeaseReads, result.BarrierReads)
	}
	if cfg.Rebalance {
		fmt.Printf("  admin AddShard(%s) took %s mid-soak: %d keys migrated, %d ops forwarded\n",
			newShard, handoffTo.Sub(handoffFrom).Round(time.Millisecond),
			result.RebalanceMovedKeys, result.RebalanceForwarded)
		if result.RebalanceRateBefore > 0 && result.RebalanceRateDuring > 0 {
			fmt.Printf("  throughput: %.0f puts/sec before, %.0f during the handoff (%.0f%% dip), %.0f after\n",
				result.RebalanceRateBefore, result.RebalanceRateDuring,
				100*(1-result.RebalanceRateDuring/result.RebalanceRateBefore), result.RebalanceRateAfter)
		}
		fmt.Printf("  audit: %d acked keys checked — %d lost, %d forked\n",
			len(acked), result.RebalanceLostKeys, result.RebalanceForkedKeys)
	}
	fillObservability(&result, kv.Metrics(), memBefore, memAfter, int(committed.Load()))

	if jsonPath != "" {
		blob, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return fmt.Errorf("encode result: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", jsonPath, err)
		}
	}
	if lost.Load() > 0 {
		return fmt.Errorf("%d responses lost (last error: %v)", lost.Load(), lastErr)
	}
	if result.RebalanceLostKeys > 0 || result.RebalanceForkedKeys > 0 {
		return fmt.Errorf("rebalance audit failed: %d lost, %d forked keys", result.RebalanceLostKeys, result.RebalanceForkedKeys)
	}
	return nil
}
