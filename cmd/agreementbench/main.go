// Command agreementbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: the delay, resilience and signature-cost measurements that
// reproduce the quantitative claims of "The Impact of RDMA on Agreement".
//
// It also benchmarks the replicated-log subsystem built on top of the paper's
// protocols: -shards switches to throughput mode, which drives a sharded
// key-value store over long-lived consensus groups and reports aggregate
// appends/sec plus append latency percentiles; -pipeline sets the per-group
// slot pipeline depth, -lease enables leader leases (linearizable reads then
// serve locally while the lease is healthy, counted as lease vs barrier
// reads), -failover stalls a lease holder after the workload and reports the
// measured failover time, -rebalance adds a shard mid-workload and reports
// the live handoff (moved keys, forwarded ops, throughput dip, lost/forked-
// key audit), and -json writes the run's results as a machine-readable
// record for CI. -compare gates two such records against each other on
// appends/sec or, with -metric reads, on linearizable reads/sec (the
// bench-smoke CI job uses both to fail on regressions, and additionally
// floors the current run against the committed BENCH_baseline.json).
//
// Throughput and rebalance runs also report the slot-lifecycle stage
// decomposition from the store's built-in metrics registry (batch wait →
// agreement → commit wait → apply, plus queue-depth high-water marks and
// allocations per committed op), both on stdout and in the -json record.
// Profiling hooks: -cpuprofile/-memprofile/-trace-out write pprof/runtime-
// trace artifacts for the run, and -metrics-addr serves a live debug HTTP
// endpoint (/metrics Prometheus-style text, /debug/vars expvar,
// /debug/pprof/ profiles) while the benchmark runs.
//
// Usage:
//
//	agreementbench                   # run every experiment table
//	agreementbench -table e1         # run a single experiment (e1..e6, e8, e9)
//	agreementbench -shards 4         # sharded-log throughput, 4 groups
//	agreementbench -shards 4 -batch 8 -ops 2000 -clients 64 -latency 1ms
//	agreementbench -shards 2 -snap-interval 64   # snapshot-driven slot GC: report live regions
//	agreementbench -shards 2 -reads 200          # read-index (linearizable) read latency
//	agreementbench -shards 2 -reads 200 -lease 250ms   # lease-served linearizable reads
//	agreementbench -shards 1 -lease 250ms -failover    # measured lease failover time
//	agreementbench -shards 1 -pipeline 4 -json out.json   # pipelined commit, JSON record
//	agreementbench -shards 2 -rebalance -json out.json    # live shard add: handoff + audit
//	agreementbench -shards 1 -cpuprofile cpu.prof -memprofile mem.prof   # pprof artifacts
//	agreementbench -shards 4 -metrics-addr localhost:6060   # live /metrics + /debug/pprof/
//	agreementbench -compare base.json new.json   # exit 3 unless new appends faster than base
//	agreementbench -compare -metric reads barrier.json lease.json   # gate on reads/sec
//
// Diagnostics and usage go to stderr; only results go to stdout. Exit codes
// are distinct so CI can tell failure modes apart:
//
//	0  success
//	1  the benchmark failed to run (cluster error, commit failure, bad file)
//	2  usage error (unknown flag, malformed invocation)
//	3  -compare found a regression (the benchmarks ran fine; the numbers did not)
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement"
	"rdmaagreement/internal/chaos"
)

// Exit codes. flag.ExitOnError also exits 2 on parse errors, matching
// exitUsage.
const (
	exitOK         = 0
	exitRuntime    = 1
	exitUsage      = 2
	exitRegression = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.CommandLine.SetOutput(os.Stderr)
	table := flag.String("table", "all", "experiment to run (e1..e9, or 'all')")
	shards := flag.Int("shards", 0, "run sharded-log throughput mode with this many groups (0 = experiment tables)")
	batch := flag.Int("batch", 8, "throughput mode: max commands agreed as one slot value")
	batchBytes := flag.Int("batch-bytes", 0, "throughput mode: byte budget per slot value for adaptive group commit (0 = smr default, negative disables)")
	batchWait := flag.Duration("batch-wait", 0, "throughput mode: adaptive group-commit coalescing horizon — how long a non-full batch may wait for company (0 = cut immediately)")
	warmup := flag.Float64("warmup", 0.1, "throughput mode: warmup puts as a fraction of -ops, committed before the measurement window opens so the allocator, pools and key maps settle")
	ops := flag.Int("ops", 1000, "throughput mode: total puts to commit")
	clients := flag.Int("clients", 32, "throughput mode: concurrent client goroutines")
	latency := flag.Duration("latency", time.Millisecond, "throughput mode: simulated per-operation memory latency")
	reads := flag.Int("reads", 0, "throughput mode: linearizable (read-index) reads to issue after the puts, reporting their latency")
	snapInterval := flag.Int("snap-interval", 0, "throughput mode: per-group snapshot interval driving slot GC (0 = smr default, <0 disables)")
	pipeline := flag.Int("pipeline", 0, "throughput mode: slots in flight per group (0 = smr default, 1 = serial commit)")
	lease := flag.Duration("lease", 0, "throughput mode: leader lease duration per group (0 = leases disabled; linearizable reads then pay the read-index barrier)")
	failover := flag.Bool("failover", false, "throughput mode: after the workload, stall one group's lease holder and report the measured failover time (requires -lease)")
	rebalance := flag.Bool("rebalance", false, "throughput mode: mid-workload, add one shard under live traffic and report the handoff (moved keys, forwarded ops, throughput dip) plus a lost/forked-key audit")
	netMode := flag.Bool("net", false, "throughput mode: serve the store through an in-process kvserver on loopback TCP and drive it with the ring-aware client (-clients concurrent connections); with -rebalance the shard add goes through the admin endpoint")
	jsonPath := flag.String("json", "", "throughput mode: also write the results as JSON to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve a debug HTTP endpoint on this address while the benchmark runs: /metrics (Prometheus-style text), /debug/vars (expvar), /debug/pprof/ (profiles)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file (go tool pprof)")
	traceOut := flag.String("trace-out", "", "write a runtime execution trace of the run to this file (go tool trace)")
	chaosMode := flag.Bool("chaos", false, "run one seeded chaos schedule (fault injection + linearizability check) instead of a benchmark; composes with -shards, -clients, -latency, -lease, -net, -json")
	chaosSeed := flag.Int64("seed", -1, "chaos mode: schedule seed; -1 picks one at random and prints it")
	chaosWindow := flag.Duration("chaos-window", 0, "chaos mode: workload-and-fault window (0 = chaos default)")
	compare := flag.Bool("compare", false, "compare two -json records (base, new): exit 3 unless new beats base on -metric by -min-speedup")
	metric := flag.String("metric", "appends", "compare mode: which rate to gate on, 'appends' (appends/sec) or 'reads' (linearizable reads/sec)")
	minSpeedup := flag.Float64("min-speedup", 1.0, "compare mode: required rate ratio new/base (1.0 = strictly faster)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "agreementbench: -compare needs exactly two arguments: base.json new.json")
			flag.Usage()
			return exitUsage
		}
		if *metric != "appends" && *metric != "reads" {
			fmt.Fprintf(os.Stderr, "agreementbench: unknown -metric %q (want 'appends' or 'reads')\n", *metric)
			flag.Usage()
			return exitUsage
		}
		return runCompare(flag.Arg(0), flag.Arg(1), *metric, *minSpeedup)
	}
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "agreementbench: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return exitUsage
	}
	if *chaosMode {
		// Chaos brings its own defaults (shards, clients, window) and its own
		// served mode, so the benchmark-specific flag couplings below do not
		// apply. Violations are safety failures: exit 1.
		return runChaosMode(chaosConfig(*chaosSeed, *chaosWindow, *shards, *clients, *latency, *lease, *netMode), *jsonPath)
	}
	if *failover && *lease <= 0 {
		fmt.Fprintln(os.Stderr, "agreementbench: -failover requires -lease (there is no lease to expire without one)")
		flag.Usage()
		return exitUsage
	}
	if *rebalance && *shards <= 0 {
		fmt.Fprintln(os.Stderr, "agreementbench: -rebalance requires -shards (it adds one to a running sharded store)")
		flag.Usage()
		return exitUsage
	}
	if *netMode && *shards <= 0 {
		fmt.Fprintln(os.Stderr, "agreementbench: -net requires -shards (it serves a sharded store over TCP)")
		flag.Usage()
		return exitUsage
	}
	if *netMode && *failover {
		fmt.Fprintln(os.Stderr, "agreementbench: -net does not support -failover (failover is measured in-process)")
		flag.Usage()
		return exitUsage
	}

	if *metricsAddr != "" {
		stopMetrics, merr := serveMetrics(*metricsAddr)
		if merr != nil {
			fmt.Fprintf(os.Stderr, "agreementbench: %v\n", merr)
			return exitRuntime
		}
		defer stopMetrics()
	}
	stopProfiles, err := startProfiles(*cpuprofile, *traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreementbench: %v\n", err)
		return exitRuntime
	}

	cfg := throughputConfig{
		Shards:       *shards,
		Batch:        *batch,
		BatchBytes:   *batchBytes,
		BatchWait:    *batchWait,
		Warmup:       *warmup,
		Ops:          *ops,
		Clients:      *clients,
		Latency:      *latency,
		Reads:        *reads,
		SnapInterval: *snapInterval,
		Pipeline:     *pipeline,
		Lease:        *lease,
		Failover:     *failover,
		Rebalance:    *rebalance,
		Net:          *netMode,
	}
	switch {
	case *netMode:
		err = runNet(cfg, *jsonPath)
	case *rebalance:
		err = runRebalance(cfg, *jsonPath)
	case *shards > 0:
		err = runThroughput(cfg, *jsonPath)
	default:
		err = runTables(*table)
	}
	stopProfiles()
	if *memprofile != "" {
		if werr := writeHeapProfile(*memprofile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreementbench: %v\n", err)
		return exitRuntime
	}
	return exitOK
}

// liveRegistry is the metrics registry of the benchmark currently running, if
// any, published to the -metrics-addr endpoint. The benchmark stores it once
// its store is built; the HTTP handlers load it on every request so a scrape
// before the store exists degrades gracefully instead of crashing.
var liveRegistry atomic.Pointer[rdmaagreement.MetricsRegistry]

// publishSMROnce guards the process-global expvar key: expvar.Publish panics
// on duplicates, so repeated serveMetrics calls (tests, embedding) register
// it exactly once. The mux and listener below are per-call and private.
var publishSMROnce sync.Once

// serveMetrics starts the debug HTTP endpoint: /metrics serves the live
// registry as Prometheus-style text, /debug/vars is expvar (the registry is
// published under the "smr" key), /debug/pprof/ the usual runtime profiles.
// Everything is registered on a DEDICATED mux behind a private http.Server —
// never http.DefaultServeMux, whose process-global registrations collided
// with any other server in the process (the in-process kvserver of -net runs
// next to this endpoint) and panicked on re-registration. The returned
// shutdown function stops the listener gracefully.
func serveMetrics(addr string) (shutdown func(), err error) {
	publishSMROnce.Do(func() {
		expvar.Publish("smr", expvar.Func(func() any {
			reg := liveRegistry.Load()
			if reg == nil {
				return nil
			}
			return reg.Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := liveRegistry.Load()
		if reg == nil {
			http.Error(w, "no benchmark running yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			fmt.Fprintf(os.Stderr, "agreementbench: /metrics write: %v\n", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics endpoint: %w", err)
	}
	srv := &http.Server{Handler: mux}
	fmt.Fprintf(os.Stderr, "agreementbench: debug endpoint on http://%s/ (/metrics, /debug/vars, /debug/pprof/)\n", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "agreementbench: metrics endpoint: %v\n", err)
		}
	}()
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}, nil
}

// startProfiles begins CPU profiling and runtime tracing as requested and
// returns the function that stops both (safe to call once, always non-nil).
func startProfiles(cpuprofile, traceOut string) (stop func(), err error) {
	var stops []func()
	stop = func() {
		for _, f := range stops {
			f()
		}
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			stop()
			return func() {}, fmt.Errorf("trace-out: %w", err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			stop()
			return func() {}, fmt.Errorf("trace-out: %w", err)
		}
		stops = append(stops, func() {
			rtrace.Stop()
			f.Close()
		})
	}
	return stop, nil
}

// writeHeapProfile snapshots the heap after a GC so the profile reflects live
// objects, not garbage the run already dropped.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

func runTables(which string) error {
	experiments := rdmaagreement.Experiments()
	ids := rdmaagreement.ExperimentIDs()
	if which != "all" {
		runner, ok := experiments[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (available: %v)", which, ids)
		}
		return runOne(which, runner)
	}
	for _, id := range ids {
		if err := runOne(id, experiments[id]); err != nil {
			return err
		}
	}
	return nil
}

func runOne(id string, runner func() (rdmaagreement.Table, error)) error {
	table, err := runner()
	if err != nil {
		return fmt.Errorf("experiment %s: %w", id, err)
	}
	fmt.Println(table.String())
	return nil
}

// throughputConfig is one throughput run's knobs, echoed into the JSON record
// so a comparison knows what it is comparing.
type throughputConfig struct {
	Shards       int           `json:"shards"`
	Batch        int           `json:"batch"`
	BatchBytes   int           `json:"batch_bytes,omitempty"`
	BatchWait    time.Duration `json:"batch_wait_ns,omitempty"`
	Warmup       float64       `json:"warmup_frac,omitempty"`
	Ops          int           `json:"ops"`
	Clients      int           `json:"clients"`
	Latency      time.Duration `json:"latency_ns"`
	Reads        int           `json:"reads"`
	SnapInterval int           `json:"snap_interval"`
	Pipeline     int           `json:"pipeline"`
	Lease        time.Duration `json:"lease_ns"`
	Failover     bool          `json:"failover"`
	Rebalance    bool          `json:"rebalance"`
	Net          bool          `json:"net,omitempty"`
}

// warmupOps is how many unmeasured puts precede the measurement window.
func (c throughputConfig) warmupOps() int {
	if c.Warmup <= 0 || c.Ops <= 0 {
		return 0
	}
	return int(float64(c.Ops) * c.Warmup)
}

// benchLogOptions is the per-group log configuration every throughput mode
// shares, so a flag added here reaches the in-process, rebalance and served
// variants alike.
func benchLogOptions(cfg throughputConfig) rdmaagreement.LogOptions {
	return rdmaagreement.LogOptions{
		Cluster:          rdmaagreement.Options{Processes: 3, Memories: 3, MemoryLatency: cfg.Latency, LeaseDuration: cfg.Lease},
		MaxBatch:         cfg.Batch,
		BatchBytes:       cfg.BatchBytes,
		BatchWait:        cfg.BatchWait,
		Pipeline:         cfg.Pipeline,
		SnapshotInterval: cfg.SnapInterval,
	}
}

// runWarmup commits the warmup fraction of the workload — same concurrency,
// keys outside the measured key space — before the caller reads its memstats
// baseline and opens the timing window. Steady-state costs (pool refills, map
// growth already paid) then dominate the measured run instead of cold-start
// noise, which is what makes small -ops invocations comparable.
func runWarmup(cfg throughputConfig, put func(worker, i int) error) error {
	n := cfg.warmupOps()
	if n == 0 {
		return nil
	}
	work := make(chan int)
	errs := make(chan error, cfg.Clients)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range work {
				if err := put(c, i); err != nil {
					errs <- err
					stopOnce.Do(func() { close(stop) })
					return
				}
			}
		}(c)
	}
producer:
	for i := 0; i < n; i++ {
		select {
		case work <- i:
		case <-stop:
			break producer
		}
	}
	close(work)
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("warmup put: %w", err)
	}
	return nil
}

// throughputResult is the machine-readable record -json writes and -compare
// gates on.
type throughputResult struct {
	Config        throughputConfig `json:"config"`
	ElapsedMS     float64          `json:"elapsed_ms"`
	AppendsPerSec float64          `json:"appends_per_sec"`
	AppendP50MS   float64          `json:"append_p50_ms"`
	AppendP99MS   float64          `json:"append_p99_ms"`
	Slots         uint64           `json:"slots"`
	Snapshots     int              `json:"snapshots"`
	LiveRegions   int              `json:"live_regions"`
	LiveInstances int              `json:"live_instances"`
	PeakInstances int              `json:"peak_instances"`
	Recovered     uint64           `json:"recovered_slots"`
	Refused       uint64           `json:"refused_noops"`
	ReadsPerSec   float64          `json:"reads_per_sec,omitempty"`
	ReadP50MS     float64          `json:"read_p50_ms,omitempty"`
	ReadP99MS     float64          `json:"read_p99_ms,omitempty"`
	LeaseReads    uint64           `json:"lease_reads"`
	BarrierReads  uint64           `json:"barrier_reads"`
	Epoch         uint64           `json:"lease_epoch,omitempty"`
	Takeovers     uint64           `json:"lease_takeovers"`
	// FailoverEpochMS is the span from stalling a lease holder to the
	// successor's epoch being in force; FailoverCommitMS extends it to the
	// first command committed under the new epoch.
	FailoverEpochMS  float64 `json:"failover_epoch_ms,omitempty"`
	FailoverCommitMS float64 `json:"failover_commit_ms,omitempty"`
	// Rebalance audit (-rebalance): the AddShard handoff's span, the keys it
	// migrated, the operations its moving ranges forwarded, the put rate in
	// the sampling windows before/during/after it — and the safety audit,
	// which must report zero lost and zero forked keys.
	RebalanceHandoffMS  float64 `json:"rebalance_handoff_ms,omitempty"`
	RebalanceMovedKeys  uint64  `json:"rebalance_moved_keys,omitempty"`
	RebalanceForwarded  uint64  `json:"rebalance_forwarded_ops,omitempty"`
	RebalanceRateBefore float64 `json:"rebalance_rate_before,omitempty"`
	RebalanceRateDuring float64 `json:"rebalance_rate_during,omitempty"`
	RebalanceRateAfter  float64 `json:"rebalance_rate_after,omitempty"`
	RebalanceLostKeys   int     `json:"rebalance_lost_keys"`
	RebalanceForkedKeys int     `json:"rebalance_forked_keys"`
	// Served front-end (-net): requests the kvserver admitted, responses the
	// driving clients never got an answer for (every retry budget exhausted —
	// must be zero), and 503s the clients absorbed by retrying.
	ServedOps     uint64 `json:"served_ops,omitempty"`
	LostResponses int64  `json:"lost_responses"`
	ShedResponses uint64 `json:"shed_503s,omitempty"`
	// Slot-lifecycle stage decomposition from the store's metrics registry:
	// where a committed command's end-to-end latency went (waiting to be
	// batched, the agreement round, waiting for in-order release, apply),
	// plus the queue-depth high-water marks and the run's heap allocations
	// per committed op (whole-process, so client bookkeeping is included).
	StageBatchWaitP50MS  float64 `json:"stage_batch_wait_p50_ms"`
	StageBatchWaitP99MS  float64 `json:"stage_batch_wait_p99_ms"`
	StageAgreementP50MS  float64 `json:"stage_agreement_p50_ms"`
	StageAgreementP99MS  float64 `json:"stage_agreement_p99_ms"`
	StageCommitWaitP50MS float64 `json:"stage_commit_wait_p50_ms"`
	StageCommitWaitP99MS float64 `json:"stage_commit_wait_p99_ms"`
	StageApplyP50MS      float64 `json:"stage_apply_p50_ms"`
	StageApplyP99MS      float64 `json:"stage_apply_p99_ms"`
	StageE2EP50MS        float64 `json:"stage_e2e_p50_ms"`
	StageE2EP99MS        float64 `json:"stage_e2e_p99_ms"`
	QueueDepthPeak       int64   `json:"queue_depth_peak"`
	InflightSlotsPeak    int64   `json:"inflight_slots_peak"`
	ReorderDepthPeak     int64   `json:"reorder_depth_peak"`
	// Adaptive group commit's chosen batch sizes (commands per cut batch).
	BatchSizeMean float64 `json:"batch_size_mean"`
	BatchSizeP50  float64 `json:"batch_size_p50"`
	BatchSizeP99  float64 `json:"batch_size_p99"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
}

// fillObservability folds the store's slot-lifecycle metrics and the run's
// allocation deltas into the record and prints the stage breakdown. before /
// after bracket the put workload; ops normalizes the allocation deltas.
func fillObservability(r *throughputResult, m rdmaagreement.LogMetrics, before, after runtime.MemStats, ops int) {
	r.StageBatchWaitP50MS, r.StageBatchWaitP99MS = millis(m.BatchWait.P50), millis(m.BatchWait.P99)
	r.StageAgreementP50MS, r.StageAgreementP99MS = millis(m.Agreement.P50), millis(m.Agreement.P99)
	r.StageCommitWaitP50MS, r.StageCommitWaitP99MS = millis(m.CommitWait.P50), millis(m.CommitWait.P99)
	r.StageApplyP50MS, r.StageApplyP99MS = millis(m.Apply.P50), millis(m.Apply.P99)
	r.StageE2EP50MS, r.StageE2EP99MS = millis(m.EndToEnd.P50), millis(m.EndToEnd.P99)
	r.QueueDepthPeak = m.QueueDepth.Peak
	r.InflightSlotsPeak = m.InflightSlots.Peak
	r.ReorderDepthPeak = m.ReorderDepth.Peak
	r.BatchSizeMean = m.BatchSize.Mean
	r.BatchSizeP50, r.BatchSizeP99 = m.BatchSize.P50, m.BatchSize.P99
	if ops > 0 {
		r.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
		r.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	}
	fmt.Printf("  stages (p50/p99): batch-wait %.3f/%.3fms, agreement %.3f/%.3fms, commit-wait %.3f/%.3fms, apply %.3f/%.3fms — e2e %.3f/%.3fms\n",
		r.StageBatchWaitP50MS, r.StageBatchWaitP99MS,
		r.StageAgreementP50MS, r.StageAgreementP99MS,
		r.StageCommitWaitP50MS, r.StageCommitWaitP99MS,
		r.StageApplyP50MS, r.StageApplyP99MS,
		r.StageE2EP50MS, r.StageE2EP99MS)
	fmt.Printf("  depth peaks: queue %d, inflight slots %d, reorder buffer %d; batch size mean %.1f (p50 %.0f / p99 %.0f); allocations %.0f/op (%.0f B/op)\n",
		r.QueueDepthPeak, r.InflightSlotsPeak, r.ReorderDepthPeak,
		r.BatchSizeMean, r.BatchSizeP50, r.BatchSizeP99, r.AllocsPerOp, r.BytesPerOp)
}

// runThroughput drives a sharded KV over long-lived replicated-log groups and
// reports aggregate throughput, append latency percentiles, per-group
// batching statistics, the snapshot/slot-GC footprint, pipeline/recovery
// counters and (with -reads) linearizable read latency.
func runThroughput(cfg throughputConfig, jsonPath string) error {
	logOpts := benchLogOptions(cfg)
	if cfg.Failover {
		// The first slot committed after a takeover waits one replica
		// catch-up window for the dead leader's learner; bound it by the
		// lease so the reported failover time measures the protocol, not a
		// 5-second default.
		logOpts.ReplicaCatchUp = 2 * cfg.Lease
	}
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: cfg.Shards,
		Log:    logOpts,
	})
	if err != nil {
		return err
	}
	defer kv.Close()
	liveRegistry.Store(kv.Registry())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	if err := runWarmup(cfg, func(_, i int) error {
		_, _, err := kv.Put(ctx, fmt.Sprintf("warm/%d", i), "w")
		return err
	}); err != nil {
		return err
	}

	work := make(chan int)
	errs := make(chan error, cfg.Clients)
	stop := make(chan struct{}) // closed on the first Put error so the producer never blocks on dead workers
	var stopOnce sync.Once
	var wg sync.WaitGroup
	perClient := make([][]time.Duration, cfg.Clients)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				if _, _, err := kv.Put(ctx, fmt.Sprintf("key/%d", i), fmt.Sprintf("v%d", i)); err != nil {
					errs <- err
					stopOnce.Do(func() { close(stop) })
					return
				}
				perClient[c] = append(perClient[c], time.Since(t0))
			}
		}(c)
	}
producer:
	for i := 0; i < cfg.Ops; i++ {
		select {
		case work <- i:
		case <-stop:
			break producer
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	close(errs)
	for err := range errs {
		return fmt.Errorf("throughput put: %w", err)
	}

	var appendLat []time.Duration
	for _, lats := range perClient {
		appendLat = append(appendLat, lats...)
	}
	sort.Slice(appendLat, func(i, j int) bool { return appendLat[i] < appendLat[j] })

	result := throughputResult{
		Config:        cfg,
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		AppendsPerSec: float64(cfg.Ops) / elapsed.Seconds(),
		AppendP50MS:   millis(percentile(appendLat, 50)),
		AppendP99MS:   millis(percentile(appendLat, 99)),
	}

	fmt.Printf("sharded-log throughput — %d groups, %d clients, batch ≤ %d, pipeline %s, memory latency %s, lease %s\n",
		cfg.Shards, cfg.Clients, cfg.Batch, pipelineLabel(cfg.Pipeline), cfg.Latency, leaseLabel(cfg.Lease))
	fmt.Printf("  committed %d puts in %s: %.0f appends/sec aggregate, latency p50 %s / p99 %s\n",
		cfg.Ops, elapsed.Round(time.Millisecond), result.AppendsPerSec,
		percentile(appendLat, 50).Round(time.Microsecond), percentile(appendLat, 99).Round(time.Microsecond))
	var slots uint64
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		slots += l.Slots()
		avg := 0.0
		if l.Slots() > 0 {
			avg = float64(l.Len()) / float64(l.Slots())
		}
		fmt.Printf("  %s: %d entries over %d slots (%.1f cmds/slot)\n", name, l.Len(), l.Slots(), avg)
	}
	if slots > 0 {
		fmt.Printf("  batching amortization: %.1f commands per consensus slot overall\n", float64(cfg.Ops)/float64(slots))
	}
	result.Slots = slots

	var firstIndex uint64
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		result.Snapshots += l.Snapshots()
		result.LiveRegions += l.Cluster().LiveRegions()
		result.LiveInstances += l.Cluster().LiveInstances()
		result.PeakInstances += l.Cluster().PeakInstances()
		firstIndex += l.FirstIndex()
	}
	fmt.Printf("  slot GC: %d snapshots, %d entries truncated, %d live memory regions for %d total slots\n",
		result.Snapshots, firstIndex, result.LiveRegions, slots)
	stats := kv.Stats()
	result.Recovered, result.Refused = stats.Recovered, stats.Refused
	fmt.Printf("  pipeline: %d peak concurrent slot instances; recovery: %d slots recovered (%d refused no-ops)\n",
		result.PeakInstances, stats.Recovered, stats.Refused)
	fillObservability(&result, kv.Metrics(), memBefore, memAfter, cfg.Ops)

	if cfg.Reads > 0 {
		keySpace := cfg.Ops
		if keySpace < 1 {
			keySpace = 1 // reads-only invocation (-ops 0): probe one key
		}
		readLat := make([]time.Duration, 0, cfg.Reads)
		readStart := time.Now()
		for i := 0; i < cfg.Reads; i++ {
			key := fmt.Sprintf("key/%d", i%keySpace)
			t0 := time.Now()
			if _, _, err := kv.GetLinearizable(ctx, key); err != nil {
				return fmt.Errorf("linearizable read: %w", err)
			}
			readLat = append(readLat, time.Since(t0))
		}
		readElapsed := time.Since(readStart)
		sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
		var sum time.Duration
		for _, d := range readLat {
			sum += d
		}
		result.ReadsPerSec = float64(cfg.Reads) / readElapsed.Seconds()
		result.ReadP50MS = millis(percentile(readLat, 50))
		result.ReadP99MS = millis(percentile(readLat, 99))
		fmt.Printf("  linearizable reads: %d in %s (%.0f reads/sec), latency mean %s / p50 %s / p99 %s\n",
			cfg.Reads, readElapsed.Round(time.Millisecond), result.ReadsPerSec,
			(sum / time.Duration(cfg.Reads)).Round(time.Microsecond),
			percentile(readLat, 50).Round(time.Microsecond),
			percentile(readLat, 99).Round(time.Microsecond))
	}

	if cfg.Failover {
		// Stall the first shard's lease holder and time the takeover: to the
		// successor's epoch being in force, and to the first command
		// committed under it (through a probe key owned by that shard).
		name := kv.Shards()[0]
		l := kv.ShardLog(name)
		old := l.Cluster().LeaseHolder()
		epochBefore := l.Cluster().LeaseEpoch()
		probe := ""
		for i := 0; ; i++ {
			if key := fmt.Sprintf("failover-probe/%d", i); kv.Shard(key) == name {
				probe = key
				break
			}
		}
		t0 := time.Now()
		l.Cluster().CrashProcess(old)
		for l.Cluster().LeaseEpoch() == epochBefore {
			if ctx.Err() != nil {
				return fmt.Errorf("failover: no takeover before the deadline")
			}
			time.Sleep(time.Millisecond)
		}
		epochAt := time.Since(t0)
		if _, _, err := kv.Put(ctx, probe, "takeover"); err != nil {
			return fmt.Errorf("failover probe put: %w", err)
		}
		commitAt := time.Since(t0)
		result.FailoverEpochMS = millis(epochAt)
		result.FailoverCommitMS = millis(commitAt)
		fmt.Printf("  failover: stalled %s's leader %s; epoch %d in force after %s, first commit under it after %s\n",
			name, old, l.Cluster().LeaseEpoch(), epochAt.Round(time.Millisecond), commitAt.Round(time.Millisecond))
	}

	leaseStats := kv.Stats()
	result.LeaseReads, result.BarrierReads = leaseStats.LeaseReads, leaseStats.BarrierReads
	result.Epoch, result.Takeovers = leaseStats.Epoch, leaseStats.Takeovers
	if cfg.Reads > 0 {
		fmt.Printf("  read paths: %d lease-served (zero slots), %d barrier (read-index slot)\n",
			leaseStats.LeaseReads, leaseStats.BarrierReads)
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return fmt.Errorf("encode result: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", jsonPath, err)
		}
	}
	return nil
}

// runRebalance drives a continuous put workload over a sharded KV and, once
// ~40% of the ops have committed, grows the ring by one shard under the live
// traffic. It reports the handoff's span, the keys it migrated, the
// operations forwarded to new owners, the put rate before/during/after the
// handoff (the throughput dip), and a safety audit: every acknowledged key
// must still be readable with its value (no lost keys) and live in exactly
// one group's machine (no forked keys).
func runRebalance(cfg throughputConfig, jsonPath string) error {
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: cfg.Shards,
		Log:    benchLogOptions(cfg),
	})
	if err != nil {
		return err
	}
	defer kv.Close()
	liveRegistry.Store(kv.Registry())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	if err := runWarmup(cfg, func(_, i int) error {
		_, _, err := kv.Put(ctx, fmt.Sprintf("warm/%d", i), "w")
		return err
	}); err != nil {
		return err
	}

	var (
		committed atomic.Int64
		ackedMu   sync.Mutex
		acked     = make(map[string]string, cfg.Ops)
	)

	// Sampler: the committed count every 100ms, so the handoff window's rate
	// can be compared against steady state.
	samples := []sample{}
	sampleStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case at := <-tick.C:
				samples = append(samples, sample{at: at, n: committed.Load()})
			}
		}
	}()

	// Rebalancer: once 40% of the ops have committed, add one shard.
	newShard := fmt.Sprintf("shard-%d", cfg.Shards)
	var (
		rebalanceErr           error
		handoffFrom, handoffTo time.Time
		rebalancerWG           sync.WaitGroup
	)
	workloadDone := make(chan struct{})
	rebalancerWG.Add(1)
	go func() {
		defer rebalancerWG.Done()
		trigger := int64(cfg.Ops * 2 / 5)
		for committed.Load() < trigger {
			select {
			case <-workloadDone:
				return // the workload outran the trigger; rebalance on quiet traffic below
			case <-time.After(5 * time.Millisecond):
			}
		}
		handoffFrom = time.Now()
		rebalanceErr = kv.AddShard(ctx, newShard)
		handoffTo = time.Now()
	}()

	work := make(chan int)
	errs := make(chan error, cfg.Clients)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	perClient := make([][]time.Duration, cfg.Clients)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range work {
				key, value := fmt.Sprintf("key/%d", i), fmt.Sprintf("v%d", i)
				t0 := time.Now()
				if _, _, err := kv.Put(ctx, key, value); err != nil {
					errs <- err
					stopOnce.Do(func() { close(stop) })
					return
				}
				perClient[c] = append(perClient[c], time.Since(t0))
				committed.Add(1)
				ackedMu.Lock()
				acked[key] = value
				ackedMu.Unlock()
			}
		}(c)
	}
producer:
	for i := 0; i < cfg.Ops; i++ {
		select {
		case work <- i:
		case <-stop:
			break producer
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	close(workloadDone)
	rebalancerWG.Wait()
	close(sampleStop)
	samplerWG.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("rebalance put: %w", err)
	}
	if handoffFrom.IsZero() {
		// The workload never reached the trigger (tiny -ops): hand off on
		// quiet traffic so the audit still runs.
		handoffFrom = time.Now()
		rebalanceErr = kv.AddShard(ctx, newShard)
		handoffTo = time.Now()
	}
	if rebalanceErr != nil {
		return fmt.Errorf("AddShard(%s) under live traffic: %w", newShard, rebalanceErr)
	}

	var appendLat []time.Duration
	for _, lats := range perClient {
		appendLat = append(appendLat, lats...)
	}
	sort.Slice(appendLat, func(i, j int) bool { return appendLat[i] < appendLat[j] })

	stats := kv.Stats()
	result := throughputResult{
		Config:             cfg,
		ElapsedMS:          float64(elapsed) / float64(time.Millisecond),
		AppendsPerSec:      float64(cfg.Ops) / elapsed.Seconds(),
		AppendP50MS:        millis(percentile(appendLat, 50)),
		AppendP99MS:        millis(percentile(appendLat, 99)),
		Recovered:          stats.Recovered,
		Refused:            stats.Refused,
		Epoch:              stats.Epoch,
		Takeovers:          stats.Takeovers,
		RebalanceHandoffMS: millis(handoffTo.Sub(handoffFrom)),
		RebalanceMovedKeys: stats.Migrated,
		RebalanceForwarded: stats.Forwarded,
	}
	result.RebalanceRateBefore, result.RebalanceRateDuring, result.RebalanceRateAfter =
		windowRates(samples, handoffFrom, handoffTo)
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		result.Slots += l.Slots()
		result.Snapshots += l.Snapshots()
		result.LiveRegions += l.Cluster().LiveRegions()
		result.LiveInstances += l.Cluster().LiveInstances()
		result.PeakInstances += l.Cluster().PeakInstances()
	}

	// Safety audit: no acknowledged key lost, none forked across groups. The
	// per-group probe is a RAW (untagged) query, which bypasses the routing
	// layer and the ownership gate and therefore sees each machine's true
	// contents, hidden ceded state included.
	for key, want := range acked {
		if v, ok, err := kv.GetLinearizable(ctx, key); err != nil || !ok || v != want {
			result.RebalanceLostKeys++
			continue
		}
		homes := 0
		for _, name := range kv.Shards() {
			resp, err := kv.ShardLog(name).Read(ctx, []byte(key))
			if err != nil {
				return fmt.Errorf("audit read of %q on %s: %w", key, name, err)
			}
			_, found, err := rdmaagreement.DecodeKVResult(resp)
			if err != nil {
				return fmt.Errorf("audit read of %q on %s: %w", key, name, err)
			}
			if found {
				homes++
			}
		}
		if homes > 1 {
			result.RebalanceForkedKeys++
		}
	}

	fmt.Printf("live rebalance — %d→%d groups, %d clients, batch ≤ %d, memory latency %s, lease %s\n",
		cfg.Shards, cfg.Shards+1, cfg.Clients, cfg.Batch, cfg.Latency, leaseLabel(cfg.Lease))
	fmt.Printf("  committed %d puts in %s (%.0f appends/sec aggregate, latency p50 %s / p99 %s); AddShard(%s) took %s mid-workload\n",
		cfg.Ops, elapsed.Round(time.Millisecond), result.AppendsPerSec,
		percentile(appendLat, 50).Round(time.Microsecond), percentile(appendLat, 99).Round(time.Microsecond),
		newShard, handoffTo.Sub(handoffFrom).Round(time.Millisecond))
	fmt.Printf("  handoff: %d keys migrated (≈1/%d of the key space expected), %d ops forwarded to new owners\n",
		result.RebalanceMovedKeys, cfg.Shards+1, result.RebalanceForwarded)
	if result.RebalanceRateBefore > 0 && result.RebalanceRateDuring > 0 {
		fmt.Printf("  throughput: %.0f puts/sec before, %.0f during the handoff (%.0f%% dip), %.0f after\n",
			result.RebalanceRateBefore, result.RebalanceRateDuring,
			100*(1-result.RebalanceRateDuring/result.RebalanceRateBefore), result.RebalanceRateAfter)
	}
	fmt.Printf("  audit: %d acked keys checked — %d lost, %d forked\n",
		len(acked), result.RebalanceLostKeys, result.RebalanceForkedKeys)
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		fmt.Printf("  %s: %d entries over %d slots\n", name, l.Len(), l.Slots())
	}
	fillObservability(&result, kv.Metrics(), memBefore, memAfter, cfg.Ops)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(result, "", "  ")
		if err != nil {
			return fmt.Errorf("encode result: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", jsonPath, err)
		}
	}
	if result.RebalanceLostKeys > 0 || result.RebalanceForkedKeys > 0 {
		return fmt.Errorf("rebalance audit failed: %d lost, %d forked keys", result.RebalanceLostKeys, result.RebalanceForkedKeys)
	}
	return nil
}

// sample is one sampler reading: the cumulative committed count at an
// instant.
type sample struct {
	at time.Time
	n  int64
}

// windowRates turns the sampler's cumulative counts into put rates for the
// spans before, during and after the handoff: mean rate over the fully-before
// and fully-after windows, MINIMUM windowed rate during (the dip is the
// point). Phases without a complete sampling window report 0.
func windowRates(samples []sample, from, to time.Time) (before, during, after float64) {
	var (
		beforeOps, afterOps int64
		beforeDur, afterDur time.Duration
		duringMin           = -1.0
	)
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		dt := cur.at.Sub(prev.at)
		if dt <= 0 {
			continue
		}
		rate := float64(cur.n-prev.n) / dt.Seconds()
		switch {
		case !cur.at.After(from):
			beforeOps += cur.n - prev.n
			beforeDur += dt
		case !prev.at.Before(to):
			afterOps += cur.n - prev.n
			afterDur += dt
		default:
			if duringMin < 0 || rate < duringMin {
				duringMin = rate
			}
		}
	}
	if beforeDur > 0 {
		before = float64(beforeOps) / beforeDur.Seconds()
	}
	if afterDur > 0 {
		after = float64(afterOps) / afterDur.Seconds()
	}
	if duringMin >= 0 {
		during = duringMin
	}
	return before, during, after
}

func pipelineLabel(pipeline int) string {
	if pipeline == 0 {
		return "default"
	}
	return fmt.Sprintf("%d", pipeline)
}

func leaseLabel(lease time.Duration) string {
	if lease <= 0 {
		return "off"
	}
	return lease.String()
}

// percentile returns the p-th percentile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runCompare gates one throughput record against another on the chosen
// metric — appends/sec, or linearizable reads/sec with -metric reads (how CI
// asserts lease reads beat the read-index path). It exits with
// exitRegression when the new record does not beat the base by minSpeedup.
// Runtime problems (unreadable files, zero rates, records without the
// metric) are exitRuntime — a bench that failed to run is a different signal
// than a bench that ran slower.
func runCompare(basePath, newPath, metric string, minSpeedup float64) int {
	base, err := readResult(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreementbench: %v\n", err)
		return exitRuntime
	}
	new_, err := readResult(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreementbench: %v\n", err)
		return exitRuntime
	}
	baseRate, basePct := base.AppendsPerSec, base.AppendP99MS
	newRate, newPct := new_.AppendsPerSec, new_.AppendP99MS
	unit := "appends/sec"
	if metric == "reads" {
		baseRate, basePct = base.ReadsPerSec, base.ReadP99MS
		newRate, newPct = new_.ReadsPerSec, new_.ReadP99MS
		unit = "reads/sec"
	}
	if baseRate <= 0 || newRate <= 0 {
		fmt.Fprintf(os.Stderr, "agreementbench: compare: non-positive %s (base %.2f, new %.2f) — was the metric recorded?\n",
			unit, baseRate, newRate)
		return exitRuntime
	}
	ratio := newRate / baseRate
	fmt.Printf("compare: base %.0f %s (p99 %.2fms) vs new %.0f %s (p99 %.2fms): %.2fx (need > %.2fx)\n",
		baseRate, unit, basePct, newRate, unit, newPct, ratio, minSpeedup)
	if ratio <= minSpeedup {
		fmt.Fprintf(os.Stderr, "agreementbench: regression: %s is not faster than %s on %s (%.2fx <= %.2fx)\n",
			newPath, basePath, unit, ratio, minSpeedup)
		return exitRegression
	}
	return exitOK
}

func readResult(path string) (throughputResult, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return throughputResult{}, fmt.Errorf("compare: %w", err)
	}
	var res throughputResult
	if err := json.Unmarshal(blob, &res); err != nil {
		return throughputResult{}, fmt.Errorf("compare %s: %w", path, err)
	}
	return res, nil
}

// chaosConfig maps the benchmark's shared flags onto a chaos run.
func chaosConfig(seed int64, window time.Duration, shards, clients int, latency, lease time.Duration, netMode bool) chaos.Config {
	if seed < 0 {
		seed = time.Now().UnixNano() & 0x7fffffff
		fmt.Fprintf(os.Stderr, "agreementbench: -chaos picked seed %d\n", seed)
	}
	return chaos.Config{
		Seed:    seed,
		Shards:  shards,
		Clients: clients,
		Window:  window,
		Latency: latency,
		Lease:   lease,
		Served:  netMode,
		Out:     os.Stderr,
	}
}

// chaosRecord is the -json shape of a chaos run, mirroring the human-readable
// verdict line.
type chaosRecord struct {
	Seed          int64          `json:"seed"`
	Window        string         `json:"window"`
	Ops           int            `json:"ops"`
	Puts          int            `json:"puts"`
	Gets          int            `json:"gets"`
	Dropped       int            `json:"dropped"`
	Unknown       int            `json:"unknown"`
	Faults        map[string]int `json:"faults"`
	Takeovers     uint64         `json:"takeovers"`
	CheckMS       float64        `json:"check_ms"`
	Linearizable  bool           `json:"linearizable"`
	ViolatingKeys []string       `json:"violating_keys,omitempty"`
	Repro         string         `json:"repro"`
}

// runChaosMode runs one seeded chaos schedule and reports the verdict. A
// linearizability violation is a safety failure and exits 1 — the run
// completed; the store broke its contract.
func runChaosMode(cfg chaos.Config, jsonPath string) int {
	res, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreementbench: chaos: %v\nrepro: %s\n", err, cfg.ReproLine())
		return exitRuntime
	}
	record := chaosRecord{
		Seed:         res.Config.Seed,
		Window:       res.Config.Window.String(),
		Ops:          res.Ops,
		Puts:         res.Puts,
		Gets:         res.Gets,
		Dropped:      res.Dropped,
		Unknown:      res.Unknown,
		Faults:       res.Faults,
		Takeovers:    res.Takeovers,
		CheckMS:      float64(res.CheckDuration.Microseconds()) / 1000,
		Linearizable: res.Linearizable,
		Repro:        res.Config.ReproLine(),
	}
	for _, v := range res.Violations {
		record.ViolatingKeys = append(record.ViolatingKeys, v.Key)
	}
	if jsonPath != "" {
		blob, jerr := json.MarshalIndent(record, "", "  ")
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "agreementbench: chaos: %v\n", jerr)
			return exitRuntime
		}
		if werr := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "agreementbench: chaos: write %s: %v\n", jsonPath, werr)
			return exitRuntime
		}
	}
	if !res.Linearizable {
		fmt.Printf("FAIL chaos seed=%d: history not linearizable (%d violating keys)\nrepro: %s\n",
			res.Config.Seed, len(res.Violations), cfg.ReproLine())
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, v.Report())
		}
		return exitRuntime
	}
	fmt.Printf("PASS chaos seed=%d ops=%d unknown=%d takeovers=%d check=%s\n",
		res.Config.Seed, res.Ops, res.Unknown, res.Takeovers, res.CheckDuration.Round(time.Millisecond))
	return exitOK
}
