// Command agreementbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: the delay, resilience and signature-cost measurements that
// reproduce the quantitative claims of "The Impact of RDMA on Agreement".
//
// Usage:
//
//	agreementbench               # run every experiment
//	agreementbench -table e1     # run a single experiment (e1, e2, e3, e4, e5, e6, e8, e9)
package main

import (
	"flag"
	"fmt"
	"os"

	"rdmaagreement"
)

func main() {
	table := flag.String("table", "all", "experiment to run (e1..e9, or 'all')")
	flag.Parse()
	if err := run(*table); err != nil {
		fmt.Fprintf(os.Stderr, "agreementbench: %v\n", err)
		os.Exit(1)
	}
}

func run(which string) error {
	experiments := rdmaagreement.Experiments()
	ids := rdmaagreement.ExperimentIDs()
	if which != "all" {
		runner, ok := experiments[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (available: %v)", which, ids)
		}
		return runOne(which, runner)
	}
	for _, id := range ids {
		if err := runOne(id, experiments[id]); err != nil {
			return err
		}
	}
	return nil
}

func runOne(id string, runner func() (rdmaagreement.Table, error)) error {
	table, err := runner()
	if err != nil {
		return fmt.Errorf("experiment %s: %w", id, err)
	}
	fmt.Println(table.String())
	return nil
}
