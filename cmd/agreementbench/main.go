// Command agreementbench regenerates the experiment tables recorded in
// EXPERIMENTS.md: the delay, resilience and signature-cost measurements that
// reproduce the quantitative claims of "The Impact of RDMA on Agreement".
//
// It also benchmarks the replicated-log subsystem built on top of the paper's
// protocols: -shards switches to throughput mode, which drives a sharded
// key-value store over long-lived consensus groups and reports aggregate
// appends/sec.
//
// Usage:
//
//	agreementbench                   # run every experiment table
//	agreementbench -table e1         # run a single experiment (e1..e6, e8, e9)
//	agreementbench -shards 4         # sharded-log throughput, 4 groups
//	agreementbench -shards 4 -batch 8 -ops 2000 -clients 64 -latency 1ms
//	agreementbench -shards 2 -snap-interval 64   # snapshot-driven slot GC: report live regions
//	agreementbench -shards 2 -reads 200          # read-index (linearizable) read latency
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"rdmaagreement"
)

func main() {
	table := flag.String("table", "all", "experiment to run (e1..e9, or 'all')")
	shards := flag.Int("shards", 0, "run sharded-log throughput mode with this many groups (0 = experiment tables)")
	batch := flag.Int("batch", 8, "throughput mode: max commands agreed as one slot value")
	ops := flag.Int("ops", 1000, "throughput mode: total puts to commit")
	clients := flag.Int("clients", 32, "throughput mode: concurrent client goroutines")
	latency := flag.Duration("latency", time.Millisecond, "throughput mode: simulated per-operation memory latency")
	reads := flag.Int("reads", 0, "throughput mode: linearizable (read-index) reads to issue after the puts, reporting their latency")
	snapInterval := flag.Int("snap-interval", 0, "throughput mode: per-group snapshot interval driving slot GC (0 = smr default, <0 disables)")
	flag.Parse()

	var err error
	if *shards > 0 {
		err = runThroughput(*shards, *batch, *ops, *clients, *latency, *reads, *snapInterval)
	} else {
		err = run(*table)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "agreementbench: %v\n", err)
		os.Exit(1)
	}
}

func run(which string) error {
	experiments := rdmaagreement.Experiments()
	ids := rdmaagreement.ExperimentIDs()
	if which != "all" {
		runner, ok := experiments[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (available: %v)", which, ids)
		}
		return runOne(which, runner)
	}
	for _, id := range ids {
		if err := runOne(id, experiments[id]); err != nil {
			return err
		}
	}
	return nil
}

func runOne(id string, runner func() (rdmaagreement.Table, error)) error {
	table, err := runner()
	if err != nil {
		return fmt.Errorf("experiment %s: %w", id, err)
	}
	fmt.Println(table.String())
	return nil
}

// runThroughput drives a sharded KV over long-lived replicated-log groups and
// reports aggregate throughput, per-group batching statistics, the
// snapshot/slot-GC footprint and (with -reads) linearizable read latency.
func runThroughput(shards, batch, ops, clients int, latency time.Duration, reads, snapInterval int) error {
	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: shards,
		Log: rdmaagreement.LogOptions{
			Cluster:          rdmaagreement.Options{Processes: 3, Memories: 3, MemoryLatency: latency},
			MaxBatch:         batch,
			SnapshotInterval: snapInterval,
		},
	})
	if err != nil {
		return err
	}
	defer kv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	work := make(chan int)
	errs := make(chan error, clients)
	stop := make(chan struct{}) // closed on the first Put error so the producer never blocks on dead workers
	var stopOnce sync.Once
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if _, _, err := kv.Put(ctx, fmt.Sprintf("key/%d", i), fmt.Sprintf("v%d", i)); err != nil {
					errs <- err
					stopOnce.Do(func() { close(stop) })
					return
				}
			}
		}()
	}
producer:
	for i := 0; i < ops; i++ {
		select {
		case work <- i:
		case <-stop:
			break producer
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return fmt.Errorf("throughput put: %w", err)
	}

	fmt.Printf("sharded-log throughput — %d groups, %d clients, batch ≤ %d, memory latency %s\n",
		shards, clients, batch, latency)
	fmt.Printf("  committed %d puts in %s: %.0f appends/sec aggregate\n",
		ops, elapsed.Round(time.Millisecond), float64(ops)/elapsed.Seconds())
	var slots uint64
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		slots += l.Slots()
		avg := 0.0
		if l.Slots() > 0 {
			avg = float64(l.Len()) / float64(l.Slots())
		}
		fmt.Printf("  %s: %d entries over %d slots (%.1f cmds/slot)\n", name, l.Len(), l.Slots(), avg)
	}
	if slots > 0 {
		fmt.Printf("  batching amortization: %.1f commands per consensus slot overall\n", float64(ops)/float64(slots))
	}

	var snapshots, liveRegions int
	var firstIndex uint64
	for _, name := range kv.Shards() {
		l := kv.ShardLog(name)
		snapshots += l.Snapshots()
		liveRegions += l.Cluster().LiveRegions()
		firstIndex += l.FirstIndex()
	}
	fmt.Printf("  slot GC: %d snapshots, %d entries truncated, %d live memory regions for %d total slots\n",
		snapshots, firstIndex, liveRegions, slots)

	if reads > 0 {
		keySpace := ops
		if keySpace < 1 {
			keySpace = 1 // reads-only invocation (-ops 0): probe one key
		}
		latencies := make([]time.Duration, 0, reads)
		readStart := time.Now()
		for i := 0; i < reads; i++ {
			key := fmt.Sprintf("key/%d", i%keySpace)
			t0 := time.Now()
			if _, _, err := kv.GetLinearizable(ctx, key); err != nil {
				return fmt.Errorf("linearizable read: %w", err)
			}
			latencies = append(latencies, time.Since(t0))
		}
		readElapsed := time.Since(readStart)
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, d := range latencies {
			sum += d
		}
		fmt.Printf("  linearizable reads: %d in %s (%.0f reads/sec), latency mean %s / p50 %s / p99 %s\n",
			reads, readElapsed.Round(time.Millisecond), float64(reads)/readElapsed.Seconds(),
			(sum / time.Duration(reads)).Round(time.Microsecond),
			latencies[len(latencies)/2].Round(time.Microsecond),
			latencies[len(latencies)*99/100].Round(time.Microsecond))
	}
	return nil
}
