// Command agreementchaos runs seed-reproducible chaos campaigns against the
// replicated KV stack: each schedule composes random faults the simulators
// already model — memory crashes, lease-holder stalls, message jitter, forced
// lease transfers, interrupted mid-handoff rebalances — while concurrent
// clients (in-process and, with -net, through the kvserver/client served
// path) record a full operation history that internal/linearize then checks.
//
// The schedule is a pure function of the flags: the same invocation replays
// the identical fault plan byte for byte, so a failing run's repro is the
// one-line command it prints. Commit failing seeds to
// internal/chaos/regression_test.go so they replay on every PR.
//
//	agreementchaos                      # one schedule, random seed (printed)
//	agreementchaos -seed 7              # replay seed 7 exactly
//	agreementchaos -seed 7 -net         # half the clients via kvserver/client
//	agreementchaos -seed 1 -schedules 8 # seeds 1..8, one schedule each
//	agreementchaos -duration 10m        # seeded campaign until the budget ends
//	agreementchaos -seed 7 -dry-run     # print the schedule, run nothing
//	agreementchaos -faults stall,jitter # restrict the fault mix
//	agreementchaos -history-out h.txt   # on violation, dump the refuted ops
//
// Diagnostics and schedules go to stderr; the verdict goes to stdout. Exit
// codes are distinct so CI can tell failure modes apart:
//
//	0  every schedule linearizable
//	1  a run itself broke (cluster error, audit read failed)
//	2  usage error (unknown flag, malformed invocation)
//	3  linearizability violation (the history refutes the store's contract)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rdmaagreement/internal/chaos"
)

// Exit codes. flag.ExitOnError also exits 2 on parse errors, matching
// exitUsage.
const (
	exitOK        = 0
	exitRuntime   = 1
	exitUsage     = 2
	exitViolation = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.CommandLine.SetOutput(os.Stderr)
	seed := flag.Int64("seed", -1, "schedule seed; -1 picks one at random and prints it")
	schedules := flag.Int("schedules", 1, "schedules to run, seeds seed, seed+1, ...")
	duration := flag.Duration("duration", 0, "instead of -schedules, keep running consecutive seeds until this wall-clock budget is spent")
	shards := flag.Int("shards", 0, "initial shard groups (0 = chaos default)")
	clients := flag.Int("clients", 0, "concurrent workload clients (0 = chaos default)")
	keys := flag.Int("keys", 0, "keyspace size; smaller means more contention (0 = chaos default)")
	events := flag.Int("events", 0, "faults per schedule (0 = chaos default)")
	window := flag.Duration("window", 0, "workload-and-fault window per schedule (0 = chaos default)")
	latency := flag.Duration("latency", 0, "simulated one-way memory/network latency (0 = chaos default)")
	lease := flag.Duration("lease", 0, "leader lease duration; negative disables leases and the stall fault (0 = chaos default)")
	putPercent := flag.Int("put-percent", 0, "write share of the workload in percent (0 = chaos default)")
	batch := flag.Int("batch", 0, "max commands agreed as one slot value (0 = smr default)")
	batchWait := flag.Duration("batch-wait", 0, "adaptive group-commit coalescing horizon (0 = cut immediately)")
	faults := flag.String("faults", "", "comma-separated fault kinds to enable (empty = all: "+strings.Join(chaos.AllFaults, ",")+")")
	netMode := flag.Bool("net", false, "route half the clients through an in-process kvserver on loopback TCP and the ring-aware client package")
	dryRun := flag.Bool("dry-run", false, "print each schedule and exit without running it")
	historyOut := flag.String("history-out", "", "on violation, write the refuted operation windows to this file (default: stdout)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "agreementchaos: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return exitUsage
	}
	if *schedules < 1 {
		fmt.Fprintln(os.Stderr, "agreementchaos: -schedules must be at least 1")
		flag.Usage()
		return exitUsage
	}

	baseSeed := *seed
	if baseSeed < 0 {
		baseSeed = time.Now().UnixNano() & 0x7fffffff
		fmt.Fprintf(os.Stderr, "agreementchaos: picked seed %d\n", baseSeed)
	}

	var kinds []string
	if *faults != "" {
		for _, k := range strings.Split(*faults, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds = append(kinds, k)
			}
		}
	}

	cfg := chaos.Config{
		Shards:     *shards,
		Clients:    *clients,
		Keys:       *keys,
		Window:     *window,
		Events:     *events,
		Latency:    *latency,
		Lease:      *lease,
		Batch:      *batch,
		BatchWait:  *batchWait,
		PutPercent: *putPercent,
		Faults:     kinds,
		Served:     *netMode,
		Out:        os.Stderr,
	}

	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	totals := struct {
		schedules, ops, unknown int
		faults                  map[string]int
		check                   time.Duration
	}{faults: make(map[string]int)}

	for i := 0; ; i++ {
		if deadline.IsZero() {
			if i >= *schedules {
				break
			}
		} else if i > 0 && time.Now().After(deadline) {
			break
		}
		cfg.Seed = baseSeed + int64(i)

		if *dryRun {
			fmt.Fprint(os.Stderr, chaos.Build(cfg).String())
			continue
		}

		res, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agreementchaos: seed %d: %v\n", cfg.Seed, err)
			fmt.Fprintf(os.Stderr, "repro: %s\n", cfg.ReproLine())
			return exitRuntime
		}
		if !res.Linearizable {
			return reportViolation(cfg, res, *historyOut)
		}
		totals.schedules++
		totals.ops += res.Ops
		totals.unknown += res.Unknown
		totals.check += res.CheckDuration
		for k, n := range res.Faults {
			totals.faults[k] += n
		}
	}

	if *dryRun {
		return exitOK
	}
	parts := make([]string, 0, len(totals.faults))
	for _, k := range chaos.AllFaults {
		if n := totals.faults[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	fmt.Printf("PASS schedules=%d ops=%d unknown=%d faults[%s] check=%s\n",
		totals.schedules, totals.ops, totals.unknown, strings.Join(parts, " "), totals.check.Round(time.Millisecond))
	return exitOK
}

// reportViolation prints the repro line and writes the refuted operation
// windows where the user asked for them.
func reportViolation(cfg chaos.Config, res chaos.Result, historyOut string) int {
	fmt.Printf("FAIL seed=%d: history not linearizable (%d violating keys)\n", cfg.Seed, len(res.Violations))
	fmt.Printf("repro: %s\n", cfg.ReproLine())
	var sink *os.File
	if historyOut != "" {
		f, err := os.Create(historyOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agreementchaos: -history-out: %v\n", err)
			return exitRuntime
		}
		defer f.Close()
		fmt.Fprint(f, res.Schedule.String())
		sink = f
		fmt.Printf("refuted histories written to %s\n", historyOut)
	} else {
		sink = os.Stdout
	}
	for _, v := range res.Violations {
		fmt.Fprintln(sink, v.Report())
	}
	return exitViolation
}
