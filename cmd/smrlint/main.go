// Command smrlint machine-checks the repository's hand-maintained invariants:
// determinism of the Apply path (applydet), allocation discipline on
// annotated hot paths (noalloc), the read-only command-buffer contract
// (retained), mutex guard annotations (guardedby), and the closed wire
// error-code taxonomy (wireclosed).
//
// It runs two ways:
//
//	smrlint ./...                 # standalone: loads, typechecks, analyzes
//	go vet -vettool=$(which smrlint) ./...   # as a go vet tool
//
// In vet mode it speaks cmd/go's vet protocol: -V=full prints a version line
// with a content-derived build ID, -flags prints the (empty) flag schema, and
// a trailing vet.cfg argument selects unit mode, in which one package is
// analyzed against export data and serialized facts from its dependencies.
//
// Exit status: 0 clean, 1 tool failure, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/applydet"
	"rdmaagreement/internal/lint/checker"
	"rdmaagreement/internal/lint/guardedby"
	"rdmaagreement/internal/lint/load"
	"rdmaagreement/internal/lint/noalloc"
	"rdmaagreement/internal/lint/retained"
	"rdmaagreement/internal/lint/wireclosed"
)

// analyzers is the smrlint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	applydet.Analyzer,
	guardedby.Analyzer,
	noalloc.Analyzer,
	retained.Analyzer,
	wireclosed.Analyzer,
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V" || strings.HasPrefix(a, "-V="):
			printVersion()
			return
		case a == "-flags":
			// No tool-specific flags; cmd/go wants the JSON schema.
			fmt.Println("[]")
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(unit(args[n-1]))
	}
	os.Exit(standalone(args))
}

// printVersion implements the -V=full handshake: cmd/go caches vet results
// keyed on this line, so it must change when the tool's code changes — hash
// the executable.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("smrlint version devel buildID=%x\n", h.Sum(nil))
}

// standalone loads the named patterns (default ./...) with the go command and
// analyzes every main-module package in dependency order.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smrlint:", err)
		return 1
	}
	facts := checker.NewFacts()
	total := 0
	for _, p := range res.Packages {
		findings, err := checker.Analyze(checker.Target{Fset: res.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info}, analyzers, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smrlint:", err)
			return 1
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f.String())
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "smrlint: %d finding(s)\n", total)
		return 2
	}
	return 0
}

// vetConfig is the JSON cmd/go writes to <objdir>/vet.cfg for each unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// unit analyzes one package under the vet protocol.
func unit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smrlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "smrlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The invariants are module-local: analyzing standard-library or external
	// units would walk fmt into the runtime and drown the module's signal
	// (everything transitively "spawns a goroutine" via the GC). Units outside
	// any module get an empty fact file and a clean exit.
	if cfg.ModulePath == "" {
		return writeVetx(cfg.VetxOutput, nil, nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput, nil, nil)
			}
			fmt.Fprintln(os.Stderr, "smrlint:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := cfgImporter(fset, &cfg)
	pkg, info, err := load.Check(fset, imp, cfg.ImportPath, cfg.GoVersion, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg.VetxOutput, nil, nil)
		}
		fmt.Fprintln(os.Stderr, "smrlint:", err)
		return 1
	}

	facts := checker.NewFacts()
	if err := readDepFacts(facts, &cfg, imp); err != nil {
		fmt.Fprintln(os.Stderr, "smrlint:", err)
		return 1
	}

	findings, err := checker.Analyze(checker.Target{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers, facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smrlint:", err)
		return 1
	}
	if rc := writeVetx(cfg.VetxOutput, facts, pkg); rc != 0 {
		return rc
	}
	if cfg.VetxOnly || len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	return 2
}

// cfgImporter resolves imports through the unit's ImportMap and PackageFile
// export data.
func cfgImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// vetxFact is the serialized form of one object fact: the object is named
// "Func" for package-scope objects or "Type.Method" for methods.
type vetxFact struct {
	Obj  string
	Fact analysis.Fact
}

func registerFactTypes() {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// writeVetx serializes the current package's exported facts. cmd/go always
// expects the output file, even when empty.
func writeVetx(path string, facts *checker.Facts, pkg *types.Package) int {
	if path == "" {
		return 0
	}
	registerFactTypes()
	var out []vetxFact
	if facts != nil && pkg != nil {
		for obj, byType := range facts.All() {
			if obj.Pkg() != pkg {
				continue
			}
			name, ok := factObjName(obj)
			if !ok {
				continue
			}
			for _, fact := range byType {
				out = append(out, vetxFact{Obj: name, Fact: fact})
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smrlint:", err)
		return 1
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "smrlint: encoding %s: %v\n", path, err)
		return 1
	}
	return 0
}

// readDepFacts decodes each dependency's vetx file and re-keys its facts onto
// the objects of this unit's imported package view.
func readDepFacts(facts *checker.Facts, cfg *vetConfig, imp types.Importer) error {
	registerFactTypes()
	for path, file := range cfg.PackageVetx {
		pkg, err := imp.Import(path)
		if err != nil {
			continue // dependency not imported by this unit's sources
		}
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		var in []vetxFact
		if err := gob.NewDecoder(strings.NewReader(string(data))).Decode(&in); err != nil {
			return fmt.Errorf("decoding facts of %s: %v", path, err)
		}
		for _, vf := range in {
			if obj := lookupFactObj(pkg, vf.Obj); obj != nil {
				facts.ExportObjectFact(obj, vf.Fact)
			}
		}
	}
	return nil
}

// factObjName names an object for serialization; objects that cannot be
// resolved through export data (locals, unexported method shapes the importer
// drops) are skipped — their facts are unreachable across packages anyway.
func factObjName(obj types.Object) (string, bool) {
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name() + "." + fn.Name(), true
}

func lookupFactObj(pkg *types.Package, name string) types.Object {
	typeName, method, isMethod := strings.Cut(name, ".")
	obj := pkg.Scope().Lookup(typeName)
	if !isMethod {
		return obj
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	m, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, method)
	return m
}
