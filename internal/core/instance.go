package core

import (
	"context"
	"fmt"

	"rdmaagreement/internal/fastpaxos"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/paxos"
	"rdmaagreement/internal/pmpaxos"
	"rdmaagreement/internal/types"
)

// SlotProposer is the per-process handle of one multiplexed consensus
// instance. Beyond proposing, it exposes the learner side: WaitDecision
// blocks until this process learns the instance's decision (through its own
// proposal or a decide broadcast), which is what replicated-log replicas need
// to apply slots in order.
type SlotProposer interface {
	Proposer
	// WaitDecision blocks until this process learns the decision.
	WaitDecision(ctx context.Context) (types.Value, error)
}

// Instance is one consensus instance (log slot) multiplexed over a long-lived
// cluster. The instance shares the cluster's memories, network endpoints,
// routers, key ring and leader oracle; only the per-slot protocol state
// (memory regions, message kinds, proposer/acceptor nodes) is fresh. Closing
// an instance stops its nodes and removes its router subscriptions, so a
// cluster can serve an unbounded sequence of instances at constant cost.
type Instance struct {
	// Slot is the instance's identifier in the log.
	Slot uint64

	cluster  *Cluster
	handles  map[types.ProcID]SlotProposer
	cleanups []func()
	counted  bool // this instance is in the cluster's live-instance count
}

// NewInstance creates consensus instance slot over the cluster's long-lived
// substrates. Slots are independent: their memory regions and message kinds
// never collide, so any number of instances may run concurrently — the
// pipelined committer keeps several open at once, and the cluster tracks the
// live count (LiveInstances/PeakInstances).
//
// Instances are supported for the slot-capable protocols: Protected Memory
// Paxos, Paxos and Fast Paxos. The remaining protocols hard-code their
// single-shot memory layout (Cheap Quorum's panic region, Disk Paxos's
// blocks) and report an error.
//
// A new instance is laid out for the CURRENT lease holder: its region's
// initial write permission (and the skip-phase-1 fast path) go to the holder
// at creation time, so slots stay 2-deciding across lease takeovers — the
// post-failover holder proposes into fresh slots as cheaply as the initial
// leader did. A stale holder view only costs liveness, never safety: the
// real holder's first proposal runs the full phase 1 and steals the
// permission.
func (c *Cluster) NewInstance(slot uint64) (*Instance, error) {
	return c.newInstance(slot, c.Oracle, c.Oracle.Leader(), false)
}

// NewRecoveryInstance creates a consensus instance for slot whose nodes all
// treat proposer as the leader, regardless of the cluster's Ω oracle. It is
// the substrate of ambiguous-slot recovery: when the regular proposer's
// attempt at a slot times out mid-agreement, a recovery proposer must re-run
// the slot to learn its fate, and the oracle — which still points at the
// regular leader — would otherwise keep every other process from proposing.
//
// The oracle override is liveness-only (protocol safety never depends on Ω).
// For Protected Memory Paxos the instance shares the slot's durable state in
// the cluster's memories: the recovery proposer's phase 1 steals the write
// permission — fencing any still-in-flight write of the original attempt —
// and adopts the highest accepted value it reads, so a persisted original
// value is re-decided, never lost. The message-passing protocols keep
// acceptor state inside an instance's nodes, so a recovery instance starts
// from scratch there; that is safe exactly because a timed-out proposal has
// never disseminated a decision (see smr's recovery for the argument), but
// callers must not expect value adoption from those backends.
func (c *Cluster) NewRecoveryInstance(slot uint64, proposer types.ProcID) (*Instance, error) {
	if proposer == types.NoProcess {
		return nil, fmt.Errorf("%w: recovery instance needs a proposer", types.ErrInvalidConfig)
	}
	// forcePhase1: the recovery proposer may BE the current lease holder
	// (post-takeover fencing re-runs a superseded epoch's slots from the new
	// holder), and a holder-laid-out instance would let it skip phase 1 —
	// bypassing exactly the permission steal and value adoption recovery
	// exists for.
	return c.newInstance(slot, omega.NewStatic(proposer), c.Opts.Leader, true)
}

func (c *Cluster) newInstance(slot uint64, oracle omega.Oracle, initialLeader types.ProcID, forcePhase1 bool) (*Instance, error) {
	inst := &Instance{
		Slot:    slot,
		cluster: c,
		handles: make(map[types.ProcID]SlotProposer, len(c.Procs)),
	}
	var build func(p types.ProcID) (SlotProposer, func(), error)
	switch c.Protocol {
	case ProtocolProtectedMemoryPaxos:
		// Lay the slot's region out on every memory. EnsureRegion is
		// idempotent, so concurrent instance creation for the same slot (for
		// example two sharded-log clients racing, or a recovery instance
		// rebuilt over a region the original attempt already wrote) is safe:
		// the permission and contents of an existing region are never reset.
		spec := pmpaxos.InstanceLayout(slot, c.Procs, initialLeader)
		for _, mem := range c.Pool.Memories() {
			mem.EnsureRegion(spec)
		}
		build = func(p types.ProcID) (SlotProposer, func(), error) {
			return c.buildPMPaxosSlot(slot, p, oracle, initialLeader, forcePhase1)
		}
	case ProtocolPaxos:
		build = func(p types.ProcID) (SlotProposer, func(), error) {
			return c.buildPaxosSlot(slot, p, oracle)
		}
	case ProtocolFastPaxos:
		build = func(p types.ProcID) (SlotProposer, func(), error) {
			return c.buildFastPaxosSlot(slot, p, oracle)
		}
	default:
		return nil, fmt.Errorf("%w: protocol %s does not support slot multiplexing (use %s, %s or %s)",
			types.ErrInvalidConfig, c.Protocol, ProtocolProtectedMemoryPaxos, ProtocolPaxos, ProtocolFastPaxos)
	}
	for _, p := range c.Procs {
		handle, cleanup, err := build(p)
		if err != nil {
			inst.Close()
			return nil, fmt.Errorf("instance %d of %s: %w", slot, c.Protocol, err)
		}
		inst.handles[p] = handle
		if cleanup != nil {
			inst.cleanups = append(inst.cleanups, cleanup)
		}
	}
	c.instanceOpened(inst)
	return inst, nil
}

// Proposer returns the instance's handle at process p.
func (i *Instance) Proposer(p types.ProcID) SlotProposer { return i.handles[p] }

// Close stops the instance's nodes and removes its router subscriptions. The
// decided value, if any, stays recorded in the shared memories; Close only
// releases the live resources (goroutines, subscriptions). Close is
// idempotent.
func (i *Instance) Close() {
	for j := len(i.cleanups) - 1; j >= 0; j-- {
		i.cleanups[j]()
	}
	i.cleanups = nil
	i.cluster.instanceClosed(i)
}

// ReleaseInstance releases the durable per-slot resources of consensus
// instance slot across the cluster's memory pool, returning how many memories
// held its region. It is the substrate half of replicated-log slot GC: after
// the slot's decision has been captured in a state-machine snapshot, its
// region (for Protected Memory Paxos, pmpaxos/slot/<n> on every memory) is
// never read again and can be truncated. Message-passing protocols keep no
// per-slot memory state — their live resources are already removed by
// Instance.Close's unsubscribes — so ReleaseInstance is a no-op for them.
//
// Releasing a slot that still has live proposers is the caller's bug: their
// reads and writes will fail with ErrUnknownRegion.
func (c *Cluster) ReleaseInstance(slot uint64) int {
	switch c.Protocol {
	case ProtocolProtectedMemoryPaxos:
		return c.Pool.ReleaseRegion(pmpaxos.RegionFor(slot))
	default:
		return 0
	}
}

// LiveRegions sums the live memory-region counts across the cluster's pool —
// the figure slot-GC bounds.
func (c *Cluster) LiveRegions() int { return c.Pool.LiveRegions() }

// --- per-protocol slot builders --------------------------------------------

// pmPaxosSlotHandle adapts a per-slot Protected Memory Paxos node.
type pmPaxosSlotHandle struct {
	pmPaxosProposer
}

func (h *pmPaxosSlotHandle) WaitDecision(ctx context.Context) (types.Value, error) {
	return h.node.WaitDecision(ctx)
}

func (c *Cluster) buildPMPaxosSlot(slot uint64, p types.ProcID, oracle omega.Oracle, initialLeader types.ProcID, forcePhase1 bool) (SlotProposer, func(), error) {
	router := c.router(p)
	decideKind := pmpaxos.DecideKindFor(slot)
	sub := router.Subscribe(decideKind, 0)
	node, err := pmpaxos.New(pmpaxos.Config{
		Self:           p,
		Procs:          c.Procs,
		InitialLeader:  initialLeader,
		ForcePhase1:    forcePhase1,
		FaultyMemories: c.Opts.FaultyMemories,
		Memories:       c.Pool.Memories(),
		Oracle:         oracle,
		Endpoint:       c.Network.Register(p),
		DecideSub:      sub,
		Region:         pmpaxos.RegionFor(slot),
		DecideKind:     decideKind,
		Recorder:       c.Opts.Recorder,
	})
	if err != nil {
		router.Unsubscribe(sub)
		return nil, nil, err
	}
	node.Start()
	cleanup := func() {
		node.Stop()
		router.Unsubscribe(sub)
	}
	return &pmPaxosSlotHandle{pmPaxosProposer{node: node}}, cleanup, nil
}

// paxosSlotHandle adapts a per-slot classic Paxos node.
type paxosSlotHandle struct {
	paxosProposer
}

func (h *paxosSlotHandle) WaitDecision(ctx context.Context) (types.Value, error) {
	return h.node.WaitDecision(ctx)
}

// paxosSlotKind is the message kind of classic-Paxos instance slot. The
// trailing path segment keeps slot prefixes unambiguous on the router.
func paxosSlotKind(slot uint64) string { return fmt.Sprintf("paxos/slot/%d/msg", slot) }

func (c *Cluster) buildPaxosSlot(slot uint64, p types.ProcID, oracle omega.Oracle) (SlotProposer, func(), error) {
	router := c.router(p)
	kind := paxosSlotKind(slot)
	sub := router.Subscribe(kind, 0)
	tr := paxos.NewNetTransport(c.Network.Register(p), sub, kind)
	node := paxos.NewNode(paxos.Config{
		Self:         p,
		Procs:        c.Procs,
		Oracle:       oracle,
		RoundTimeout: c.Opts.RoundTimeout,
		Recorder:     c.Opts.Recorder,
	}, tr)
	node.Start()
	cleanup := func() {
		node.Stop()
		router.Unsubscribe(sub)
	}
	return &paxosSlotHandle{paxosProposer{node: node}}, cleanup, nil
}

// fastPaxosSlotHandle adapts a per-slot Fast Paxos node.
type fastPaxosSlotHandle struct {
	fastPaxosProposer
}

func (h *fastPaxosSlotHandle) WaitDecision(ctx context.Context) (types.Value, error) {
	return h.node.WaitDecision(ctx)
}

// fastPaxosSlotPrefix is the kind prefix of Fast Paxos instance slot.
func fastPaxosSlotPrefix(slot uint64) string { return fmt.Sprintf("fastpaxos/slot/%d/", slot) }

func (c *Cluster) buildFastPaxosSlot(slot uint64, p types.ProcID, oracle omega.Oracle) (SlotProposer, func(), error) {
	router := c.router(p)
	prefix := fastPaxosSlotPrefix(slot)
	fastSub := router.Subscribe(prefix, 0)
	classicSub := router.Subscribe(prefix+"classic", 0)
	unsubscribe := func() {
		router.Unsubscribe(fastSub)
		router.Unsubscribe(classicSub)
	}
	node, err := fastpaxos.New(fastpaxos.Config{
		Self:            p,
		Procs:           c.Procs,
		FaultyProcesses: c.Opts.FaultyProcesses,
		Endpoint:        c.Network.Register(p),
		FastSub:         fastSub,
		ClassicSub:      classicSub,
		Oracle:          oracle,
		KindPrefix:      prefix,
		FastTimeout:     c.Opts.FastTimeout,
		Recorder:        c.Opts.Recorder,
	})
	if err != nil {
		unsubscribe()
		return nil, nil, err
	}
	node.Start()
	cleanup := func() {
		node.Stop()
		unsubscribe()
	}
	return &fastPaxosSlotHandle{fastPaxosProposer{node: node}}, cleanup, nil
}
