package core

import (
	"context"
	"testing"
	"time"

	"rdmaagreement/internal/types"
)

func runLeaderProposal(t *testing.T, protocol Protocol, opts Options) Result {
	t.Helper()
	cluster, err := NewCluster(protocol, opts)
	if err != nil {
		t.Fatalf("NewCluster(%s): %v", protocol, err)
	}
	t.Cleanup(cluster.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, types.Value("integration"))
	if err != nil {
		t.Fatalf("Propose(%s): %v", protocol, err)
	}
	return res
}

func TestEveryProtocolDecidesInCommonCase(t *testing.T) {
	for _, protocol := range Protocols() {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			res := runLeaderProposal(t, protocol, Options{Processes: 3, Memories: 3})
			if !res.Value.Equal(types.Value("integration")) {
				t.Fatalf("%s decided %v", protocol, res.Value)
			}
		})
	}
}

func TestCommonCaseDelaysMatchThePaper(t *testing.T) {
	want := map[Protocol]int64{
		ProtocolFastRobust:           2, // Theorem 4.9
		ProtocolProtectedMemoryPaxos: 2, // Theorem 5.1
		ProtocolDiskPaxos:            4, // §1 and Theorem 6.1
		ProtocolPaxos:                4, // two message round trips
		ProtocolFastPaxos:            2, // fast round
	}
	for protocol, delays := range want {
		protocol, delays := protocol, delays
		t.Run(string(protocol), func(t *testing.T) {
			res := runLeaderProposal(t, protocol, Options{Processes: 3, Memories: 3})
			if res.DecisionDelays != delays {
				t.Fatalf("%s decided in %d delays, paper says %d", protocol, res.DecisionDelays, delays)
			}
		})
	}
}

func TestUnknownProtocolRejected(t *testing.T) {
	if _, err := NewCluster(Protocol("nonsense"), Options{}); err == nil {
		t.Fatalf("unknown protocol accepted")
	}
}

func TestCrashHelpers(t *testing.T) {
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 2, Memories: 3})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(cluster.Close)
	crashed := cluster.CrashMemories(1)
	if len(crashed) != 1 {
		t.Fatalf("CrashMemories returned %v", crashed)
	}
	cluster.CrashProcess(2)
	if !cluster.Network.ProcessCrashed(2) {
		t.Fatalf("CrashProcess did not mark the process crashed")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := cluster.Proposer(1).Propose(ctx, types.Value("despite-crashes"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !res.Value.Equal(types.Value("despite-crashes")) {
		t.Fatalf("decided %v", res.Value)
	}
}

func TestLeaderChange(t *testing.T) {
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 3, Memories: 3})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(cluster.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	first, err := cluster.Proposer(1).Propose(ctx, types.Value("v1"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	cluster.SetLeader(2)
	second, err := cluster.Proposer(2).Propose(ctx, types.Value("v2"))
	if err != nil {
		t.Fatalf("Propose after leader change: %v", err)
	}
	if !second.Value.Equal(first.Value) {
		t.Fatalf("agreement violated across leader change: %v vs %v", first.Value, second.Value)
	}
}

func TestOptionsDefaults(t *testing.T) {
	opts := Options{}
	opts.applyDefaults(ProtocolFastRobust)
	if opts.Processes != 3 || opts.Memories != 3 || opts.Leader != 1 {
		t.Fatalf("unexpected defaults: %+v", opts)
	}
	if opts.FaultyProcesses != 1 || opts.FaultyMemories != 1 {
		t.Fatalf("unexpected failure bounds: %+v", opts)
	}
	crash := Options{Processes: 4, Memories: 5}
	crash.applyDefaults(ProtocolProtectedMemoryPaxos)
	if crash.FaultyProcesses != 3 || crash.FaultyMemories != 2 {
		t.Fatalf("crash-protocol defaults wrong: %+v", crash)
	}
}

func TestReleaseInstanceFreesSlotRegions(t *testing.T) {
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 3, Memories: 3, InstancesOnly: true})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	base := cluster.LiveRegions()
	inst, err := cluster.NewInstance(7)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if got := cluster.LiveRegions(); got != base+3 {
		t.Fatalf("LiveRegions() = %d after NewInstance, want %d (one slot region per memory)", got, base+3)
	}
	inst.Close() // stops nodes and subscriptions; the durable region stays
	if got := cluster.LiveRegions(); got != base+3 {
		t.Fatalf("LiveRegions() = %d after Close, want %d (Close must not drop the decided slot)", got, base+3)
	}
	if released := cluster.ReleaseInstance(7); released != 3 {
		t.Fatalf("ReleaseInstance released %d regions, want 3", released)
	}
	if got := cluster.LiveRegions(); got != base {
		t.Fatalf("LiveRegions() = %d after ReleaseInstance, want %d", got, base)
	}
	if released := cluster.ReleaseInstance(7); released != 0 {
		t.Fatalf("second ReleaseInstance released %d regions, want 0", released)
	}
}

func TestReleaseInstanceNoOpForMessagePassing(t *testing.T) {
	cluster, err := NewCluster(ProtocolPaxos, Options{Processes: 3, Memories: 3, InstancesOnly: true})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	if released := cluster.ReleaseInstance(0); released != 0 {
		t.Fatalf("ReleaseInstance on paxos released %d regions, want 0", released)
	}
}

func TestLiveInstanceBookkeeping(t *testing.T) {
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 3, Memories: 3, InstancesOnly: true})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	if live := cluster.LiveInstances(); live != 0 {
		t.Fatalf("LiveInstances() = %d at start, want 0", live)
	}
	a, err := cluster.NewInstance(1)
	if err != nil {
		t.Fatalf("NewInstance(1): %v", err)
	}
	b, err := cluster.NewRecoveryInstance(1, 2)
	if err != nil {
		t.Fatalf("NewRecoveryInstance(1, 2): %v", err)
	}
	if live, peak := cluster.LiveInstances(), cluster.PeakInstances(); live != 2 || peak != 2 {
		t.Fatalf("LiveInstances()/PeakInstances() = %d/%d with two open instances, want 2/2", live, peak)
	}
	a.Close()
	a.Close() // idempotent: must not double-decrement
	if live := cluster.LiveInstances(); live != 1 {
		t.Fatalf("LiveInstances() = %d after one Close, want 1", live)
	}
	b.Close()
	if live, peak := cluster.LiveInstances(), cluster.PeakInstances(); live != 0 || peak != 2 {
		t.Fatalf("LiveInstances()/PeakInstances() = %d/%d after closing all, want 0/2", live, peak)
	}
}

func TestRecoveryInstanceRequiresProposer(t *testing.T) {
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{Processes: 3, Memories: 3, InstancesOnly: true})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()
	if _, err := cluster.NewRecoveryInstance(1, 0); err == nil {
		t.Fatalf("NewRecoveryInstance with no proposer succeeded, want error")
	}
}

// TestLeaseRuntimeElectsOnCrash wires a lease-enabled cluster and crashes the
// lease holder's process on the network: its heartbeats stop, the lease
// expires, and the runtime must elect the smallest surviving process under a
// bumped epoch — while a healthy holder is never deposed.
func TestLeaseRuntimeElectsOnCrash(t *testing.T) {
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{
		Processes: 3, Memories: 3, InstancesOnly: true, LeaseDuration: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(cluster.Close)

	if holder, epoch := cluster.LeaseHolder(), cluster.LeaseEpoch(); holder != 1 || epoch != 1 {
		t.Fatalf("initial lease = holder %v epoch %d, want holder 1 epoch 1", holder, epoch)
	}
	// A healthy holder keeps renewing: no takeover across several lease
	// lengths.
	time.Sleep(4 * cluster.Opts.LeaseDuration)
	if got := cluster.LeaseTakeovers(); got != 0 {
		t.Fatalf("healthy holder was deposed %d times", got)
	}

	cluster.CrashProcess(1)
	deadline := time.Now().Add(10 * time.Second)
	for cluster.LeaseEpoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no takeover %v after crashing the holder (lease %+v)", 10*time.Second, cluster.Lease())
		}
		time.Sleep(10 * time.Millisecond)
	}
	lease := cluster.Lease()
	if lease.Holder != 2 {
		t.Fatalf("takeover elected %v, want the smallest survivor 2 (lease %+v)", lease.Holder, lease)
	}
	if !lease.Valid(time.Now()) && cluster.LeaseEpoch() == lease.Epoch {
		t.Fatalf("takeover lease not renewed by the new holder: %+v", lease)
	}
	if cluster.Leader() != lease.Holder {
		t.Fatalf("Leader() = %v does not follow the lease holder %v", cluster.Leader(), lease.Holder)
	}
}

// TestLeaseRuntimePartitionedHolderDeposed partitions the lease holder away
// from every follower: its heartbeats reach only itself, which is not a
// grant, so the lease must expire and a follower on the majority side must
// take over.
func TestLeaseRuntimePartitionedHolderDeposed(t *testing.T) {
	cluster, err := NewCluster(ProtocolProtectedMemoryPaxos, Options{
		Processes: 3, Memories: 3, InstancesOnly: true, LeaseDuration: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(cluster.Close)

	cluster.Network.Partition([]types.ProcID{1})
	deadline := time.Now().Add(10 * time.Second)
	for cluster.LeaseEpoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("partitioned holder never deposed (lease %+v)", cluster.Lease())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if holder := cluster.LeaseHolder(); holder == 1 {
		t.Fatalf("takeover kept the partitioned holder %v", holder)
	}
}
