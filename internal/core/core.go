// Package core wires complete clusters for every agreement protocol in the
// repository behind a single interface.
//
// A Cluster owns the simulated substrates (memory pool, network, key ring,
// leader oracle) and one protocol node per process. Callers pick a Protocol,
// describe the topology and failure bounds in Options, and then drive
// proposals through the uniform Proposer interface. The experiment harness,
// the benchmarks, the command-line tools and the examples are all built on
// this package.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/aligned"
	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/diskpaxos"
	"rdmaagreement/internal/fastpaxos"
	"rdmaagreement/internal/fastrobust"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/paxos"
	"rdmaagreement/internal/pmpaxos"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Protocol identifies an agreement protocol implemented in this repository.
type Protocol string

// The available protocols.
const (
	// ProtocolFastRobust is the paper's main Byzantine algorithm: Cheap
	// Quorum + Preferential Paxos (Theorem 4.9; 2-deciding, n ≥ 2f_P+1).
	ProtocolFastRobust Protocol = "fast-robust"
	// ProtocolProtectedMemoryPaxos is the paper's crash algorithm
	// (Theorem 5.1; 2-deciding, n ≥ f_P+1, m ≥ 2f_M+1).
	ProtocolProtectedMemoryPaxos Protocol = "protected-memory-paxos"
	// ProtocolAlignedPaxos tolerates a minority of the combined
	// process+memory set (§5.2).
	ProtocolAlignedPaxos Protocol = "aligned-paxos"
	// ProtocolDiskPaxos is the shared-memory-only baseline (≥4 delays).
	ProtocolDiskPaxos Protocol = "disk-paxos"
	// ProtocolPaxos is the classic message-passing baseline (4 delays,
	// n ≥ 2f_P+1).
	ProtocolPaxos Protocol = "paxos"
	// ProtocolFastPaxos is the message-passing fast baseline (2 delays in
	// the common case, process quorums only).
	ProtocolFastPaxos Protocol = "fast-paxos"
)

// Protocols lists every protocol in a stable order.
func Protocols() []Protocol {
	return []Protocol{
		ProtocolFastRobust,
		ProtocolProtectedMemoryPaxos,
		ProtocolAlignedPaxos,
		ProtocolDiskPaxos,
		ProtocolPaxos,
		ProtocolFastPaxos,
	}
}

// Options describe the topology and timing of a cluster.
type Options struct {
	// Processes is n. Zero means 3.
	Processes int
	// Memories is m. Zero means 3 (ignored by pure message-passing
	// protocols).
	Memories int
	// FaultyProcesses is f_P, the failure bound the protocol must be
	// configured for. Zero means the maximum the protocol supports for n.
	FaultyProcesses int
	// FaultyMemories is f_M. Zero means the maximum for m, that is ⌊(m−1)/2⌋.
	FaultyMemories int
	// Leader is the initial/fast-path leader: the process granted the
	// epoch-1 lease. Zero means process 1.
	Leader types.ProcID
	// LeaseDuration enables leader leases: the cluster runs a lease-granting
	// failure detector (heartbeats over the simulated network) whose holder
	// is renewed for LeaseDuration past each of its heartbeats and replaced —
	// under a bumped epoch — once it goes silent and the lease expires.
	// Cluster.Leader then follows the lease. Zero disables expiry: the
	// initial leader keeps an eternal epoch-1 lease and SetLeader is the
	// only takeover path (the pre-lease behavior).
	LeaseDuration time.Duration
	// NetworkDelay is the one-way message delay of the simulated network.
	NetworkDelay time.Duration
	// MemoryLatency is the per-operation latency of the simulated memories.
	MemoryLatency time.Duration
	// FastTimeout is the fast-path timeout (Cheap Quorum, Fast Paxos).
	FastTimeout time.Duration
	// RoundTimeout is the round timeout of retry-based protocols.
	RoundTimeout time.Duration
	// Recorder receives trace events from every node; may be nil.
	Recorder *trace.Recorder
	// InstancesOnly skips building the single-shot proposer nodes: the
	// cluster serves only multiplexed consensus instances (NewInstance).
	// The replicated-log layer sets it so that a log group does not carry a
	// full set of permanently idle base nodes. Cluster.Proposer returns nil
	// for every process when set.
	InstancesOnly bool
}

func (o *Options) applyDefaults(protocol Protocol) {
	if o.Processes <= 0 {
		o.Processes = 3
	}
	if o.Memories <= 0 {
		o.Memories = 3
	}
	if o.Leader == types.NoProcess {
		o.Leader = 1
	}
	if o.FaultyMemories <= 0 {
		o.FaultyMemories = (o.Memories - 1) / 2
	}
	if o.FaultyProcesses <= 0 {
		switch protocol {
		case ProtocolProtectedMemoryPaxos, ProtocolDiskPaxos, ProtocolAlignedPaxos:
			// These protocols tolerate n-1 process crashes.
			o.FaultyProcesses = o.Processes - 1
		default:
			o.FaultyProcesses = (o.Processes - 1) / 2
		}
	}
}

// Result is the uniform outcome of one proposal.
type Result struct {
	// Value is the decided value.
	Value types.Value
	// DecisionDelays is the causal delay count of the decision along the
	// proposer's operation chain, when the protocol reports it (zero
	// otherwise).
	DecisionDelays int64
	// FastPath reports whether an optimistic fast path produced the
	// decision (Fast & Robust, Fast Paxos).
	FastPath bool
	// Elapsed is the wall-clock time of the proposal.
	Elapsed time.Duration
}

// Proposer is the uniform interface over every protocol node.
type Proposer interface {
	// Propose proposes a value and returns the decision.
	Propose(ctx context.Context, v types.Value) (Result, error)
	// Clock returns the node's causal delay clock.
	Clock() *delayclock.Clock
}

// Cluster is a fully wired simulation of one protocol deployment.
type Cluster struct {
	Protocol Protocol
	Opts     Options
	Procs    []types.ProcID
	Pool     *memsim.Pool
	Network  *netsim.Network
	Ring     *sigs.KeyRing
	// Oracle is the cluster's Ω implementation: a lease-granting failure
	// detector shared by every node. With Options.LeaseDuration zero it
	// degenerates to the old static oracle (an eternal epoch-1 lease moved
	// only by SetLeader); with a positive duration the cluster's lease
	// runtime renews and re-elects it automatically.
	Oracle *omega.LeaseDetector

	proposers map[types.ProcID]Proposer

	mu            sync.Mutex
	routers       map[types.ProcID]*netsim.Router
	stoppers      []func()
	liveInstances int // open (NewInstance'd, not yet Closed) consensus instances
	peakInstances int // high-water mark of liveInstances
}

// NewCluster builds a cluster running the given protocol.
func NewCluster(protocol Protocol, opts Options) (*Cluster, error) {
	opts.applyDefaults(protocol)
	procs := make([]types.ProcID, 0, opts.Processes)
	for i := 1; i <= opts.Processes; i++ {
		procs = append(procs, types.ProcID(i))
	}
	leaseOpts := omega.LeaseOptions{Duration: opts.LeaseDuration}
	if rec := opts.Recorder; rec != nil {
		leaseOpts.OnTakeover = func(l omega.Lease) {
			rec.Record(l.Holder, trace.KindLeaseTakeover, nil, l.Stamp,
				"lease takeover: epoch %d granted to %s", l.Epoch, l.Holder)
		}
	}
	c := &Cluster{
		Protocol:  protocol,
		Opts:      opts,
		Procs:     procs,
		Network:   netsim.New(netsim.Options{Delay: opts.NetworkDelay}),
		Ring:      sigs.NewKeyRing(procs),
		Oracle:    omega.NewLeaseDetector(procs, opts.Leader, leaseOpts),
		proposers: make(map[types.ProcID]Proposer, len(procs)),
		routers:   make(map[types.ProcID]*netsim.Router, len(procs)),
	}

	memOpts := memsim.Options{OperationLatency: opts.MemoryLatency}
	var build func(p types.ProcID) (Proposer, func(), error)
	switch protocol {
	case ProtocolFastRobust:
		memOpts.LegalChange = fastrobust.LegalChange()
		c.Pool = memsim.NewPool(opts.Memories, func(types.MemID) []memsim.RegionSpec {
			return fastrobust.Layout(procs, opts.Leader)
		}, memOpts)
		build = c.buildFastRobust
	case ProtocolProtectedMemoryPaxos:
		memOpts.LegalChange = pmpaxos.LegalChange(procs)
		c.Pool = memsim.NewPool(opts.Memories, func(types.MemID) []memsim.RegionSpec {
			return pmpaxos.Layout(procs, opts.Leader)
		}, memOpts)
		build = c.buildProtectedMemoryPaxos
	case ProtocolAlignedPaxos:
		c.Pool = memsim.NewPool(opts.Memories, func(types.MemID) []memsim.RegionSpec {
			return aligned.Layout(procs)
		}, memOpts)
		build = c.buildAlignedPaxos
	case ProtocolDiskPaxos:
		c.Pool = memsim.NewPool(opts.Memories, func(types.MemID) []memsim.RegionSpec {
			return diskpaxos.Layout(procs)
		}, memOpts)
		build = c.buildDiskPaxos
	case ProtocolPaxos:
		c.Pool = memsim.NewPool(opts.Memories, func(types.MemID) []memsim.RegionSpec { return nil }, memOpts)
		build = c.buildPaxos
	case ProtocolFastPaxos:
		c.Pool = memsim.NewPool(opts.Memories, func(types.MemID) []memsim.RegionSpec { return nil }, memOpts)
		build = c.buildFastPaxos
	default:
		c.Close()
		return nil, fmt.Errorf("%w: unknown protocol %q", types.ErrInvalidConfig, protocol)
	}

	if !opts.InstancesOnly {
		for _, p := range procs {
			proposer, stop, err := build(p)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster %s: %w", protocol, err)
			}
			c.proposers[p] = proposer
			if stop != nil {
				c.stoppers = append(c.stoppers, stop)
			}
		}
	}
	if opts.LeaseDuration > 0 {
		c.startLeaseRuntime()
	}
	return c, nil
}

// startLeaseRuntime wires the lease detector to the simulated network: every
// process broadcasts heartbeats (stamped off the detector's delay clock, so
// successive rounds chain causally); every process's router feeds received
// heartbeats back into the shared detector — the followers' grant path,
// where self-deliveries do not count (see LeaseDetector.Heartbeat) — and a
// ticker runs the election step. Crashing a process on the network stops
// its renewals and its electability exactly like a stalled CPU while its
// memories stay reachable (the zombie-server failure mode), and a holder
// partitioned away from every follower loses its lease the same way: no
// follower hears it, so nobody keeps granting.
func (c *Cluster) startLeaseRuntime() {
	period := c.Opts.LeaseDuration / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, p := range c.Procs {
		ep := c.Network.Register(p)
		sub := c.router(p).Subscribe(omega.LeaseHeartbeatKind, 0)
		wg.Add(2)
		go func() { // heartbeat sender: errors just mean nobody hears us
			defer wg.Done()
			ticker := time.NewTicker(period)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					_ = ep.Broadcast(omega.LeaseHeartbeatKind, nil, c.Oracle.Now())
				}
			}
		}()
		go func() { // heartbeat receiver: process p's follower grants
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case msg := <-sub:
					c.Oracle.Heartbeat(msg.From, p, msg.Stamp)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // election ticker
		defer wg.Done()
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.Oracle.Tick()
			}
		}
	}()
	c.stoppers = append(c.stoppers, func() {
		cancel()
		wg.Wait()
	})
}

// Close stops every node and the simulated network.
func (c *Cluster) Close() {
	c.mu.Lock()
	stoppers := c.stoppers
	c.stoppers = nil
	routers := c.routers
	c.routers = make(map[types.ProcID]*netsim.Router)
	c.mu.Unlock()
	for i := len(stoppers) - 1; i >= 0; i-- {
		stoppers[i]()
	}
	for _, r := range routers {
		r.Close()
	}
	if c.Network != nil {
		c.Network.Close()
	}
}

// Proposer returns the node of process p.
func (c *Cluster) Proposer(p types.ProcID) Proposer { return c.proposers[p] }

// LiveInstances returns how many consensus instances are currently open
// (created by NewInstance/NewRecoveryInstance and not yet Closed). A
// pipelined replicated log keeps up to its pipeline depth open per group.
func (c *Cluster) LiveInstances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveInstances
}

// PeakInstances returns the high-water mark of LiveInstances over the
// cluster's lifetime — the observed slot-level concurrency.
func (c *Cluster) PeakInstances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peakInstances
}

// instanceOpened and instanceClosed maintain the live-instance count. An
// instance is counted exactly once: Close is idempotent and an instance
// abandoned half-built (a builder failed) was never counted.
func (c *Cluster) instanceOpened(inst *Instance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst.counted = true
	c.liveInstances++
	if c.liveInstances > c.peakInstances {
		c.peakInstances = c.liveInstances
	}
}

func (c *Cluster) instanceClosed(inst *Instance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !inst.counted {
		return
	}
	inst.counted = false
	c.liveInstances--
}

// Leader returns the current lease holder. Before any takeover this is the
// configured initial leader; after an election or SetLeader it follows the
// lease. Callers that need the epoch-carrying view use Lease.
func (c *Cluster) Leader() types.ProcID { return c.Oracle.Leader() }

// SetLeader forces a lease takeover by p under the next epoch (simulating a
// leader change / planned handoff).
func (c *Cluster) SetLeader(p types.ProcID) { c.Oracle.Transfer(p) }

// Lease returns the cluster's current lease (holder, epoch, expiry).
func (c *Cluster) Lease() omega.Lease { return c.Oracle.Lease() }

// LeaseHolder returns the current lease holder (valid or expired).
func (c *Cluster) LeaseHolder() types.ProcID { return c.Oracle.Leader() }

// LeaseEpoch returns the current lease epoch. Epochs are strictly monotone
// and fence superseded leaders: a proposal driven under epoch e must not
// decide once a lease of epoch > e exists (the replication layer enforces
// this through the recovery instances' phase-1 permission steal).
func (c *Cluster) LeaseEpoch() uint64 { return c.Oracle.Epoch() }

// LeaseTakeovers returns how many lease takeovers (elections and forced
// transfers) the cluster has seen.
func (c *Cluster) LeaseTakeovers() uint64 { return c.Oracle.Takeovers() }

// CrashMemories crashes count memories (in identifier order) and returns
// their identifiers.
func (c *Cluster) CrashMemories(count int) []types.MemID { return c.Pool.CrashQuorumSafe(count) }

// ReviveMemories revives every crashed memory in the pool (the mirror of
// CrashMemories) and returns the identifiers that were in fact crashed.
func (c *Cluster) ReviveMemories() []types.MemID { return c.Pool.Revive() }

// CrashProcess crashes a process on the network (its messages stop flowing).
// Memory-based protocols treat a crashed process as one that simply stops
// taking steps.
func (c *Cluster) CrashProcess(p types.ProcID) { c.Network.CrashProcess(p) }

// ReviveProcess lets a crashed process's messages flow again. Its heartbeat
// sender never stopped ticking — the sends just failed — so a revived
// process resumes renewing (or granting) leases within a heartbeat period,
// and epoch fencing keeps anything it had in flight from the pre-crash era
// from deciding. This is the recovering half of the zombie-server scenario.
func (c *Cluster) ReviveProcess(p types.ProcID) { c.Network.ReviveProcess(p) }

// router returns the router of process p, creating and tracking it on first
// use. Each process has at most one router (the router owns the endpoint's
// receive loop); consensus instances multiplexed over a long-lived cluster
// add and remove subscriptions on the same router.
func (c *Cluster) router(p types.ProcID) *netsim.Router {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.routers[p]; ok {
		return r
	}
	r := netsim.NewRouter(c.Network.Register(p))
	c.routers[p] = r
	return r
}

// --- protocol adapters -----------------------------------------------------

type fastRobustProposer struct{ node *fastrobust.Node }

func (a *fastRobustProposer) Propose(ctx context.Context, v types.Value) (Result, error) {
	start := time.Now()
	out, err := a.node.Propose(ctx, v)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: out.Value, DecisionDelays: out.DecisionDelays, FastPath: out.FastPath, Elapsed: time.Since(start)}, nil
}

func (a *fastRobustProposer) Clock() *delayclock.Clock { return a.node.Clock() }

func (c *Cluster) buildFastRobust(p types.ProcID) (Proposer, func(), error) {
	node, err := fastrobust.New(fastrobust.Config{
		Self:               p,
		Leader:             c.Opts.Leader,
		Procs:              c.Procs,
		FaultyProcesses:    c.Opts.FaultyProcesses,
		FaultyMemories:     c.Opts.FaultyMemories,
		Memories:           c.Pool.Memories(),
		Ring:               c.Ring,
		Oracle:             c.Oracle,
		FastTimeout:        c.Opts.FastTimeout,
		BackupRoundTimeout: c.Opts.RoundTimeout,
		Recorder:           c.Opts.Recorder,
	})
	if err != nil {
		return nil, nil, err
	}
	node.Start()
	return &fastRobustProposer{node: node}, node.Stop, nil
}

type pmPaxosProposer struct{ node *pmpaxos.Node }

func (a *pmPaxosProposer) Propose(ctx context.Context, v types.Value) (Result, error) {
	start := time.Now()
	out, err := a.node.Propose(ctx, v)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: out.Value, DecisionDelays: out.DecisionDelays, Elapsed: time.Since(start)}, nil
}

func (a *pmPaxosProposer) Clock() *delayclock.Clock { return a.node.Clock() }

func (c *Cluster) buildProtectedMemoryPaxos(p types.ProcID) (Proposer, func(), error) {
	router := c.router(p)
	node, err := pmpaxos.New(pmpaxos.Config{
		Self:           p,
		Procs:          c.Procs,
		InitialLeader:  c.Opts.Leader,
		FaultyMemories: c.Opts.FaultyMemories,
		Memories:       c.Pool.Memories(),
		Oracle:         c.Oracle,
		Endpoint:       c.Network.Register(p),
		DecideSub:      router.Subscribe(pmpaxos.DecideKind, 0),
		Recorder:       c.Opts.Recorder,
	})
	if err != nil {
		return nil, nil, err
	}
	node.Start()
	return &pmPaxosProposer{node: node}, node.Stop, nil
}

type alignedProposer struct{ node *aligned.Node }

func (a *alignedProposer) Propose(ctx context.Context, v types.Value) (Result, error) {
	start := time.Now()
	out, err := a.node.Propose(ctx, v)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: out.Value, Elapsed: time.Since(start)}, nil
}

func (a *alignedProposer) Clock() *delayclock.Clock { return a.node.Clock() }

func (c *Cluster) buildAlignedPaxos(p types.ProcID) (Proposer, func(), error) {
	router := c.router(p)
	node, err := aligned.New(aligned.Config{
		Self:         p,
		Procs:        c.Procs,
		Memories:     c.Pool.Memories(),
		Endpoint:     c.Network.Register(p),
		Sub:          router.Subscribe("aligned/", 0),
		Oracle:       c.Oracle,
		RoundTimeout: c.Opts.RoundTimeout,
		Recorder:     c.Opts.Recorder,
	})
	if err != nil {
		return nil, nil, err
	}
	node.Start()
	return &alignedProposer{node: node}, node.Stop, nil
}

type diskPaxosProposer struct{ node *diskpaxos.Node }

func (a *diskPaxosProposer) Propose(ctx context.Context, v types.Value) (Result, error) {
	start := time.Now()
	out, err := a.node.Propose(ctx, v)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: out.Value, DecisionDelays: out.DecisionDelays, Elapsed: time.Since(start)}, nil
}

func (a *diskPaxosProposer) Clock() *delayclock.Clock { return a.node.Clock() }

func (c *Cluster) buildDiskPaxos(p types.ProcID) (Proposer, func(), error) {
	node, err := diskpaxos.New(diskpaxos.Config{
		Self:           p,
		Procs:          c.Procs,
		InitialLeader:  c.Opts.Leader,
		FaultyMemories: c.Opts.FaultyMemories,
		Memories:       c.Pool.Memories(),
		Oracle:         c.Oracle,
		Recorder:       c.Opts.Recorder,
	})
	if err != nil {
		return nil, nil, err
	}
	return &diskPaxosProposer{node: node}, nil, nil
}

type paxosProposer struct{ node *paxos.Node }

func (a *paxosProposer) Propose(ctx context.Context, v types.Value) (Result, error) {
	start := time.Now()
	startClock := a.node.Clock().Now()
	value, err := a.node.Propose(ctx, v)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Value:          value,
		DecisionDelays: int64(a.node.Clock().Now() - startClock),
		Elapsed:        time.Since(start),
	}, nil
}

func (a *paxosProposer) Clock() *delayclock.Clock { return a.node.Clock() }

func (c *Cluster) buildPaxos(p types.ProcID) (Proposer, func(), error) {
	router := c.router(p)
	// Subscribe to the exact base kind, not the "paxos/" prefix: per-slot
	// instances multiplexed over this cluster use "paxos/slot/<n>/msg" kinds,
	// which must never leak into the base node's acceptor state.
	tr := paxos.NewNetTransport(c.Network.Register(p), router.Subscribe("paxos/msg", 0), "paxos/msg")
	node := paxos.NewNode(paxos.Config{
		Self:         p,
		Procs:        c.Procs,
		Oracle:       c.Oracle,
		RoundTimeout: c.Opts.RoundTimeout,
		Recorder:     c.Opts.Recorder,
	}, tr)
	node.Start()
	return &paxosProposer{node: node}, node.Stop, nil
}

type fastPaxosProposer struct{ node *fastpaxos.Node }

func (a *fastPaxosProposer) Propose(ctx context.Context, v types.Value) (Result, error) {
	start := time.Now()
	out, err := a.node.Propose(ctx, v)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: out.Value, DecisionDelays: out.DecisionDelays, FastPath: out.FastPath, Elapsed: time.Since(start)}, nil
}

func (a *fastPaxosProposer) Clock() *delayclock.Clock { return a.node.Clock() }

func (c *Cluster) buildFastPaxos(p types.ProcID) (Proposer, func(), error) {
	router := c.router(p)
	node, err := fastpaxos.New(fastpaxos.Config{
		Self:            p,
		Procs:           c.Procs,
		FaultyProcesses: c.Opts.FaultyProcesses,
		Endpoint:        c.Network.Register(p),
		FastSub:         router.Subscribe("fastpaxos/", 0),
		ClassicSub:      router.Subscribe(fastpaxos.ClassicKind, 0),
		Oracle:          c.Oracle,
		FastTimeout:     c.Opts.FastTimeout,
		Recorder:        c.Opts.Recorder,
	})
	if err != nil {
		return nil, nil, err
	}
	node.Start()
	return &fastPaxosProposer{node: node}, node.Stop, nil
}
