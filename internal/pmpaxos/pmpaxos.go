// Package pmpaxos implements Protected Memory Paxos (Algorithm 7, §5.1): a
// crash-tolerant consensus algorithm for the message-and-memory model that
// needs only n ≥ f_P + 1 processes and m ≥ 2f_M + 1 memories and decides in
// two delays in the common case (Theorem 5.1).
//
// The algorithm keeps Disk Paxos's structure but uses dynamic permissions to
// skip Disk Paxos's final read: at any time exactly one process holds write
// permission on each memory, so a leader whose phase-2 write succeeds knows
// that no other leader has taken over (the other leader would have stolen the
// permission first), and can decide immediately. The initial leader holds the
// permission from the start and therefore decides after a single parallel
// write to the memories — two delays.
//
// Each memory holds one region with a slot per process; only the current
// permission holder can write (each process writes only its own slot), and
// every process can read every slot.
package pmpaxos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Region is the single region each memory dedicates to the protocol when it
// runs as a stand-alone single-shot instance.
const Region = types.RegionID("pmpaxos")

// DecideKind is the message kind used to broadcast decisions to learners of
// the stand-alone instance.
const DecideKind = "pmpaxos/decide"

// instanceRegionPrefix scopes the regions of multiplexed consensus instances
// (log slots) so that an unbounded sequence of instances can share one memory
// pool without colliding.
const instanceRegionPrefix = "pmpaxos/slot/"

// RegionFor names the region of consensus instance slot.
func RegionFor(slot uint64) types.RegionID {
	return types.RegionID(fmt.Sprintf("%s%d", instanceRegionPrefix, slot))
}

// DecideKindFor names the decide-broadcast message kind of consensus instance
// slot. The trailing path segment keeps slot prefixes unambiguous (slot 3
// never matches a subscription for slot 30 and vice versa).
func DecideKindFor(slot uint64) string {
	return fmt.Sprintf("pmpaxos/slot/%d/decide", slot)
}

// slotRegister names the slot of process p.
func slotRegister(p types.ProcID) types.RegisterID {
	return types.RegisterID(fmt.Sprintf("slot/%d", int(p)))
}

// Layout returns the per-memory region layout: one region containing one slot
// per process, initially writable only by the initial leader and readable by
// everyone.
func Layout(procs []types.ProcID, initialLeader types.ProcID) []memsim.RegionSpec {
	return []memsim.RegionSpec{RegionSpecFor(Region, procs, initialLeader)}
}

// InstanceLayout returns the region layout of consensus instance slot. The
// replicated-log layer installs one such region per slot on the shared,
// long-lived memory pool (memsim.Memory.EnsureRegion).
func InstanceLayout(slot uint64, procs []types.ProcID, initialLeader types.ProcID) memsim.RegionSpec {
	return RegionSpecFor(RegionFor(slot), procs, initialLeader)
}

// RegionSpecFor builds the protocol's region layout under an arbitrary region
// identifier: one slot register per process, initially writable only by the
// initial leader and readable by everyone else.
func RegionSpecFor(region types.RegionID, procs []types.ProcID, initialLeader types.ProcID) memsim.RegionSpec {
	regs := make([]types.RegisterID, 0, len(procs))
	for _, p := range procs {
		regs = append(regs, slotRegister(p))
	}
	readers := types.NewProcSet()
	for _, p := range procs {
		if p != initialLeader {
			readers = readers.Add(p)
		}
	}
	return memsim.RegionSpec{
		ID:        region,
		Registers: regs,
		Perm:      memsim.NewPermission(readers, nil, types.NewProcSet(initialLeader)),
	}
}

// LegalChange returns the permission-change policy: a process may only make
// itself the exclusive writer while leaving every other process able to read
// (the "acquire write permission" step of Algorithm 7). The policy covers the
// stand-alone region and every per-slot instance region, so one long-lived
// memory pool can serve an unbounded log of instances.
func LegalChange(procs []types.ProcID) memsim.LegalChangeFunc {
	exclusive := memsim.ExclusiveWriterPolicy(procs)
	return func(p types.ProcID, region types.RegionID, old, new memsim.Permission) bool {
		if region == Region || strings.HasPrefix(string(region), instanceRegionPrefix) {
			return exclusive(p, region, old, new)
		}
		return memsim.StaticPermissions(p, region, old, new)
	}
}

// slot is the content of slot[i, p].
type slot struct {
	MinProposal types.ProposalNumber `json:"min_proposal"`
	AccProposal types.ProposalNumber `json:"acc_proposal"`
	Value       types.Value          `json:"value,omitempty"`
}

func (s slot) encode() (types.Value, error) {
	out, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("encode slot: %w", err)
	}
	return out, nil
}

func decodeSlot(raw types.Value) (slot, bool) {
	if raw.Bottom() {
		return slot{}, false
	}
	var s slot
	if err := json.Unmarshal(raw, &s); err != nil {
		return slot{}, false
	}
	return s, true
}

// Config configures a Protected Memory Paxos participant.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Procs is the full process set. Protected Memory Paxos requires only
	// n ≥ f_P + 1: consensus is reached as long as at least one process is
	// alive, because processes never need to hear from each other.
	Procs []types.ProcID
	// InitialLeader is the process holding write permission at start (p1).
	InitialLeader types.ProcID
	// ForcePhase1 makes this node run the full first phase even on its first
	// proposal as the initial leader. Recovery and fencing proposers set it:
	// their phase 1 must steal the write permission — fencing any
	// still-in-flight write of a superseded attempt — and adopt the highest
	// accepted value, both of which the initial leader's skip-phase-1 fast
	// path would bypass.
	ForcePhase1 bool
	// FaultyMemories is f_M; m ≥ 2f_M+1.
	FaultyMemories int
	// Memories is the memory pool laid out with Layout/LegalChange.
	Memories []*memsim.Memory
	// Oracle is the Ω leader oracle (liveness only). Nil means the process
	// always considers itself leader.
	Oracle omega.Oracle
	// Endpoint and DecideSub, if set, are used to broadcast and learn
	// decisions so that all correct processes terminate, as suggested in the
	// paper's termination proof. They are optional: Propose works without
	// them.
	Endpoint  *netsim.Endpoint
	DecideSub <-chan netsim.Message
	// Region is the memory region this node operates on. Empty means the
	// stand-alone Region; the replicated-log layer sets RegionFor(slot) so
	// that many instances multiplex one memory pool.
	Region types.RegionID
	// DecideKind is the message kind of decide broadcasts. Empty means the
	// stand-alone DecideKind; instances use DecideKindFor(slot).
	DecideKind string
	// RetryDelay is the pause before retrying a preempted proposal. Zero
	// means 10ms.
	RetryDelay time.Duration
	// Clock is the causal delay clock; nil allocates a private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

// Validate checks the resilience bounds.
func (c *Config) Validate() error {
	if len(c.Procs) < 1 {
		return fmt.Errorf("%w: at least one process is required", types.ErrInvalidConfig)
	}
	if len(c.Memories) < 2*c.FaultyMemories+1 {
		return fmt.Errorf("%w: m=%d cannot tolerate f_M=%d (need m ≥ 2f_M+1)",
			types.ErrInvalidConfig, len(c.Memories), c.FaultyMemories)
	}
	if c.InitialLeader == types.NoProcess {
		return fmt.Errorf("%w: an initial leader is required", types.ErrInvalidConfig)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.Region == "" {
		c.Region = Region
	}
	if c.DecideKind == "" {
		c.DecideKind = DecideKind
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &delayclock.Clock{}
	}
}

// Outcome reports a Protected Memory Paxos decision.
type Outcome struct {
	// Value is the decided value.
	Value types.Value
	// DecisionDelays is the causal delay count along the decider's own
	// operation chain (2 for the initial leader in the common case).
	DecisionDelays int64
	// Rounds is the number of proposal rounds the decider needed.
	Rounds int
}

// Node is one Protected Memory Paxos participant.
type Node struct {
	cfg Config

	mu          sync.Mutex
	highestSeen types.ProposalNumber
	firstTry    bool
	decided     types.Value
	hasDecided  bool

	decidedCh chan struct{}
	wg        sync.WaitGroup
	cancel    context.CancelFunc
}

// New creates a Protected Memory Paxos participant.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("protected memory paxos: %w", err)
	}
	cfg.applyDefaults()
	return &Node{cfg: cfg, firstTry: true, decidedCh: make(chan struct{})}, nil
}

// Start launches the decision-learning loop when an endpoint was configured.
// It is a no-op otherwise. Stop terminates it.
func (n *Node) Start() {
	if n.cfg.DecideSub == nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case msg := <-n.cfg.DecideSub:
				n.cfg.Clock.MergeAfterMessage(msg.Stamp)
				n.learn(types.Value(msg.Payload))
			}
		}
	}()
}

// Stop terminates the learning loop, if any.
func (n *Node) Stop() {
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
}

// Clock returns the node's delay clock.
func (n *Node) Clock() *delayclock.Clock { return n.cfg.Clock }

// Decided returns the learned decision, if any.
func (n *Node) Decided() (types.Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.decided.Clone(), n.hasDecided
}

// WaitDecision blocks until this process learns a decision (through its own
// proposal or a decide broadcast).
func (n *Node) WaitDecision(ctx context.Context) (types.Value, error) {
	select {
	case <-n.decidedCh:
		v, _ := n.Decided()
		return v, nil
	case <-ctx.Done():
		// Both channels may be ready; prefer the decision so a learner
		// polled with an already-expired context still reports a value it
		// has in fact learned.
		select {
		case <-n.decidedCh:
			v, _ := n.Decided()
			return v, nil
		default:
		}
		return nil, fmt.Errorf("wait decision at %s: %w", n.cfg.Self, ctx.Err())
	}
}

func (n *Node) learn(v types.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hasDecided {
		return
	}
	n.decided = v.Clone()
	n.hasDecided = true
	close(n.decidedCh)
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, v, n.cfg.Clock.Now(), "protected memory paxos learn")
}

func (n *Node) isLeader() bool {
	if n.cfg.Oracle == nil {
		return true
	}
	return n.cfg.Oracle.Leader() == n.cfg.Self
}

// exclusivePermission is the permission a takeover installs: the acquiring
// process becomes the only writer, everyone else keeps read access.
func (n *Node) exclusivePermission() memsim.Permission {
	readers := types.NewProcSet()
	for _, p := range n.cfg.Procs {
		if p != n.cfg.Self {
			readers = readers.Add(p)
		}
	}
	return memsim.NewPermission(readers, nil, types.NewProcSet(n.cfg.Self))
}

// memoryPhaseResult is the outcome of one memory's participation in a phase.
type memoryPhaseResult struct {
	mem     types.MemID
	ok      bool // write permission held and operations acknowledged
	preempt bool // a slot with a higher minProposal was observed
	slots   []slot
	stamp   delayclock.Stamp
	err     error
}

// Propose runs the proposer until it decides, and returns the decision. Any
// process may propose; resilience to process crashes is total (n ≥ f_P + 1)
// because proposers never wait for other processes.
func (n *Node) Propose(ctx context.Context, v types.Value) (Outcome, error) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPropose, v, n.cfg.Clock.Now(), "protected memory paxos propose")
	rounds := 0
	for {
		if value, ok := n.Decided(); ok {
			return Outcome{Value: value, Rounds: rounds}, nil
		}
		if err := ctx.Err(); err != nil {
			return Outcome{}, fmt.Errorf("propose at %s: %w", n.cfg.Self, err)
		}
		if !n.isLeader() {
			select {
			case <-n.decidedCh:
				continue
			case <-time.After(n.cfg.RetryDelay):
				continue
			case <-ctx.Done():
				return Outcome{}, fmt.Errorf("propose at %s: %w", n.cfg.Self, ctx.Err())
			}
		}
		rounds++
		out, decided, err := n.runRound(ctx, v)
		if err != nil {
			return Outcome{}, err
		}
		if decided {
			out.Rounds = rounds
			return out, nil
		}
		select {
		case <-time.After(n.cfg.RetryDelay):
		case <-ctx.Done():
			return Outcome{}, fmt.Errorf("propose at %s: %w", n.cfg.Self, ctx.Err())
		}
	}
}

// runRound executes one proposal round (Algorithm 7's repeat body).
func (n *Node) runRound(ctx context.Context, v types.Value) (Outcome, bool, error) {
	start := n.cfg.Clock.Now()

	n.mu.Lock()
	ballot := n.highestSeen.Next(n.cfg.Self, n.highestSeen)
	n.highestSeen = ballot
	skipPhase1 := n.firstTry && n.cfg.Self == n.cfg.InitialLeader && !n.cfg.ForcePhase1
	n.firstTry = false
	n.mu.Unlock()

	myValue := v.Clone()
	phase2Start := start

	if !skipPhase1 {
		results, err := n.runPhase1(ctx, ballot, start)
		if err != nil {
			return Outcome{}, false, err
		}
		adopt := types.Value(nil)
		var adoptBallot types.ProposalNumber
		latest := start
		preempted := false
		for _, res := range results {
			if !res.ok || res.preempt {
				preempted = true
			}
			if res.stamp > latest {
				latest = res.stamp
			}
			for _, s := range res.slots {
				// Remember higher proposal numbers so the next round picks a
				// larger one and eventually wins.
				n.mu.Lock()
				if n.highestSeen.Less(s.MinProposal) {
					n.highestSeen = s.MinProposal
				}
				n.mu.Unlock()
				if !s.AccProposal.IsZero() && !s.Value.Bottom() && adoptBallot.Less(s.AccProposal) {
					adoptBallot = s.AccProposal
					adopt = s.Value.Clone()
				}
			}
		}
		if preempted {
			return Outcome{}, false, nil // write permission lost, nak, or a higher proposal observed
		}
		if !adopt.Bottom() {
			myValue = adopt
		}
		phase2Start = latest
	}

	completed, ok, err := n.runPhase2(ctx, ballot, myValue, phase2Start)
	if err != nil {
		return Outcome{}, false, err
	}
	if !ok {
		return Outcome{}, false, nil
	}

	delays := int64(completed - start)
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, myValue, n.cfg.Clock.Now(),
		"protected memory paxos decision in %d delays (ballot %s)", delays, ballot)
	n.learn(myValue)
	n.broadcastDecision(myValue)
	return Outcome{Value: myValue, DecisionDelays: delays}, true, nil
}

// runPhase1 acquires exclusive write permission on each memory, publishes the
// new proposal number in the proposer's slot and reads every slot. It waits
// for m − f_M memories to complete and returns their results.
func (n *Node) runPhase1(ctx context.Context, ballot types.ProposalNumber, invoked delayclock.Stamp) ([]memoryPhaseResult, error) {
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan memoryPhaseResult, len(n.cfg.Memories))
	for _, mem := range n.cfg.Memories {
		go func(mem *memsim.Memory) {
			results <- n.phase1OnMemory(opCtx, mem, ballot, invoked)
		}(mem)
	}
	return n.collect(ctx, results)
}

func (n *Node) phase1OnMemory(ctx context.Context, mem *memsim.Memory, ballot types.ProposalNumber, invoked delayclock.Stamp) memoryPhaseResult {
	res := memoryPhaseResult{mem: mem.ID()}

	stamp, err := mem.ChangePermission(ctx, n.cfg.Self, n.cfg.Region, n.exclusivePermission(), invoked)
	if err != nil {
		res.err = err
		return res
	}
	n.cfg.Clock.Merge(stamp)
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPermissionChange, nil, stamp, "acquired write permission on %s", mem.ID())

	blob, err := (slot{MinProposal: ballot}).encode()
	if err != nil {
		res.err = err
		return res
	}
	stamp, err = mem.Write(ctx, n.cfg.Self, n.cfg.Region, slotRegister(n.cfg.Self), blob, stamp)
	if err != nil {
		if errors.Is(err, types.ErrNak) {
			res.err = nil // permission already stolen again: treated as preemption
			return res
		}
		res.err = err
		return res
	}
	n.cfg.Clock.Merge(stamp)

	// Read every process's slot on this memory, in parallel (one round trip).
	type readResult struct {
		s     slot
		ok    bool
		stamp delayclock.Stamp
		err   error
	}
	reads := make(chan readResult, len(n.cfg.Procs))
	// Snapshot the post-write stamp: the collector below keeps advancing
	// `stamp`, and the read goroutines must not observe those writes (they
	// are all invoked at the same causal point, right after the write).
	readStamp := stamp
	for _, q := range n.cfg.Procs {
		go func(q types.ProcID) {
			raw, rstamp, rerr := mem.Read(ctx, n.cfg.Self, n.cfg.Region, slotRegister(q), readStamp)
			if rerr != nil {
				reads <- readResult{err: rerr}
				return
			}
			s, ok := decodeSlot(raw)
			reads <- readResult{s: s, ok: ok, stamp: rstamp}
		}(q)
	}
	for range n.cfg.Procs {
		r := <-reads
		if r.err != nil {
			res.err = r.err
			return res
		}
		n.cfg.Clock.Merge(r.stamp)
		if r.stamp > stamp {
			stamp = r.stamp
		}
		if !r.ok {
			continue
		}
		if ballot.Less(r.s.MinProposal) {
			res.preempt = true
		}
		res.slots = append(res.slots, r.s)
	}
	res.ok = true
	res.stamp = stamp
	return res
}

// runPhase2 writes the accepted proposal to the proposer's slot on every
// memory and waits for m − f_M acknowledgements. A nak on any completed
// memory means another leader took the permission, so the round is preempted.
func (n *Node) runPhase2(ctx context.Context, ballot types.ProposalNumber, value types.Value, invoked delayclock.Stamp) (delayclock.Stamp, bool, error) {
	blob, err := (slot{MinProposal: ballot, AccProposal: ballot, Value: value}).encode()
	if err != nil {
		return invoked, false, err
	}
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan memoryPhaseResult, len(n.cfg.Memories))
	for _, mem := range n.cfg.Memories {
		go func(mem *memsim.Memory) {
			stamp, werr := mem.Write(opCtx, n.cfg.Self, n.cfg.Region, slotRegister(n.cfg.Self), blob, invoked)
			res := memoryPhaseResult{mem: mem.ID(), stamp: stamp}
			switch {
			case werr == nil:
				res.ok = true
				n.cfg.Clock.Merge(stamp)
			case errors.Is(werr, types.ErrNak):
				res.ok = false
			default:
				res.err = werr
			}
			results <- res
		}(mem)
	}
	collected, err := n.collect(ctx, results)
	if err != nil {
		return invoked, false, err
	}
	completed := invoked
	for _, res := range collected {
		if !res.ok {
			return invoked, false, nil
		}
		if res.stamp > completed {
			completed = res.stamp
		}
	}
	return completed, true, nil
}

// collect waits for m − f_M phase results (errors other than naks, such as a
// crashed memory hanging, do not count toward the quorum).
func (n *Node) collect(ctx context.Context, results <-chan memoryPhaseResult) ([]memoryPhaseResult, error) {
	quorum := len(n.cfg.Memories) - n.cfg.FaultyMemories
	collected := make([]memoryPhaseResult, 0, quorum)
	received := 0
	for received < len(n.cfg.Memories) {
		select {
		case res := <-results:
			received++
			if res.err != nil {
				continue
			}
			collected = append(collected, res)
			if len(collected) >= quorum {
				return collected, nil
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("protected memory paxos at %s: %w", n.cfg.Self, ctx.Err())
		}
	}
	return nil, fmt.Errorf("protected memory paxos at %s: only %d of %d memories responded (need %d): %w",
		n.cfg.Self, len(collected), len(n.cfg.Memories), quorum, types.ErrMemoryCrashed)
}

// broadcastDecision tells the other processes about the decision, if a
// network endpoint was configured.
func (n *Node) broadcastDecision(v types.Value) {
	if n.cfg.Endpoint == nil {
		return
	}
	_ = n.cfg.Endpoint.Broadcast(n.cfg.DecideKind, v, n.cfg.Clock.Now())
}
