package pmpaxos

import (
	"context"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/types"
)

type fixture struct {
	procs   []types.ProcID
	pool    *memsim.Pool
	net     *netsim.Network
	routers map[types.ProcID]*netsim.Router
	oracle  *omega.Static
	nodes   map[types.ProcID]*Node
}

func newFixture(t *testing.T, n, m, fM int) *fixture {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(m, func(types.MemID) []memsim.RegionSpec {
		return Layout(procs, 1)
	}, memsim.Options{LegalChange: LegalChange(procs)})
	f := &fixture{
		procs:   procs,
		pool:    pool,
		net:     netsim.New(netsim.Options{}),
		routers: make(map[types.ProcID]*netsim.Router),
		oracle:  omega.NewStatic(1),
		nodes:   make(map[types.ProcID]*Node),
	}
	t.Cleanup(f.net.Close)
	for _, p := range procs {
		ep := f.net.Register(p)
		router := netsim.NewRouter(ep)
		f.routers[p] = router
		node, err := New(Config{
			Self:           p,
			Procs:          procs,
			InitialLeader:  1,
			FaultyMemories: fM,
			Memories:       pool.Memories(),
			Oracle:         f.oracle,
			Endpoint:       ep,
			DecideSub:      router.Subscribe(DecideKind, 0),
		})
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		node.Start()
		f.nodes[p] = node
	}
	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.Stop()
		}
		for _, r := range f.routers {
			r.Close()
		}
	})
	return f
}

func TestInitialLeaderDecidesInTwoDelays(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("fast"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("fast")) {
		t.Fatalf("decided %v", out.Value)
	}
	if out.DecisionDelays != 2 {
		t.Fatalf("initial leader decision took %d delays, want 2 (Theorem 5.1)", out.DecisionDelays)
	}
	if out.Rounds != 1 {
		t.Fatalf("initial leader needed %d rounds, want 1", out.Rounds)
	}
}

func TestAllLearnersReceiveDecision(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if _, err := f.nodes[1].Propose(ctx, types.Value("learned")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	for _, p := range f.procs {
		v, err := f.nodes[p].WaitDecision(ctx)
		if err != nil {
			t.Fatalf("WaitDecision at %v: %v", p, err)
		}
		if !v.Equal(types.Value("learned")) {
			t.Fatalf("process %v learned %v", p, v)
		}
	}
}

func TestSingleSurvivingProcessDecides(t *testing.T) {
	// n ≥ f_P + 1: all processes except one may crash. Crashed processes
	// here simply never act; p3 (not even the initial leader) proposes alone
	// after taking over the write permission.
	f := newFixture(t, 3, 3, 1)
	f.oracle.SetLeader(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[3].Propose(ctx, types.Value("lone-survivor"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("lone-survivor")) {
		t.Fatalf("decided %v", out.Value)
	}
}

func TestAgreementAcrossLeaderChange(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// The initial leader decides a value.
	first, err := f.nodes[1].Propose(ctx, types.Value("first"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	// A new leader with a different input must adopt and decide the same
	// value (agreement, Theorem D.2).
	f.oracle.SetLeader(2)
	second, err := f.nodes[2].Propose(ctx, types.Value("second"))
	if err != nil {
		t.Fatalf("second Propose: %v", err)
	}
	if !second.Value.Equal(first.Value) {
		t.Fatalf("agreement violated: %v then %v", first.Value, second.Value)
	}
}

func TestOldLeaderCannotDecideAfterTakeover(t *testing.T) {
	f := newFixture(t, 2, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// p2 takes over the write permission before p1 ever proposes. p1's
	// phase-2 write must nak, forcing it through a full round; both must
	// agree in the end.
	f.oracle.SetLeader(2)
	out2, err := f.nodes[2].Propose(ctx, types.Value("takeover"))
	if err != nil {
		t.Fatalf("Propose at p2: %v", err)
	}

	f.oracle.SetLeader(1)
	out1, err := f.nodes[1].Propose(ctx, types.Value("stale"))
	if err != nil {
		t.Fatalf("Propose at p1: %v", err)
	}
	if !out1.Value.Equal(out2.Value) {
		t.Fatalf("agreement violated after takeover: %v vs %v", out1.Value, out2.Value)
	}
	if !out1.Value.Equal(types.Value("takeover")) {
		t.Fatalf("the first decided value should win, got %v", out1.Value)
	}
	// The uncontended-write guarantee: the preempted old leader can never
	// push its own stale value through in a single write.
	if out1.Value.Equal(types.Value("stale")) {
		t.Fatalf("the old leader decided its own value despite losing the write permission")
	}
}

func TestToleratesMinorityMemoryCrash(t *testing.T) {
	f := newFixture(t, 3, 5, 2)
	f.pool.CrashQuorumSafe(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("memory-crash"))
	if err != nil {
		t.Fatalf("Propose with crashed memories: %v", err)
	}
	if !out.Value.Equal(types.Value("memory-crash")) {
		t.Fatalf("decided %v", out.Value)
	}
	if out.DecisionDelays != 2 {
		t.Fatalf("decision with crashed memory minority took %d delays, want 2", out.DecisionDelays)
	}
}

func TestBlocksWithMajorityMemoryCrash(t *testing.T) {
	f := newFixture(t, 2, 3, 1)
	f.pool.CrashQuorumSafe(2) // more than f_M
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := f.nodes[1].Propose(ctx, types.Value("stuck")); err == nil {
		t.Fatalf("proposal should not complete when a majority of memories crashed")
	}
}

func TestConcurrentProposersAgree(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make(map[types.ProcID]types.Value)
	var mu sync.Mutex
	for _, p := range []types.ProcID{1, 2} {
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			out, err := f.nodes[p].Propose(ctx, types.Value("from-"+types.ProcID(p).String()))
			if err != nil {
				t.Errorf("Propose at %v: %v", p, err)
				return
			}
			mu.Lock()
			results[p] = out.Value
			mu.Unlock()
		}(p)
	}
	// Let both contend, then settle leadership on p2 so one of them wins.
	time.Sleep(30 * time.Millisecond)
	f.oracle.SetLeader(2)
	wg.Wait()

	if len(results) != 2 {
		t.Fatalf("expected both proposers to terminate, got %v", results)
	}
	if !results[1].Equal(results[2]) {
		t.Fatalf("agreement violated: %v vs %v", results[1], results[2])
	}
}

func TestValidity(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := f.nodes[1].Propose(ctx, types.Value("the-only-input"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("the-only-input")) {
		t.Fatalf("validity violated: decided %v", out.Value)
	}
}

func TestConfigValidation(t *testing.T) {
	procs := []types.ProcID{1, 2}
	pool := memsim.NewPool(3, func(types.MemID) []memsim.RegionSpec { return Layout(procs, 1) }, memsim.Options{})
	base := Config{Self: 1, Procs: procs, InitialLeader: 1, FaultyMemories: 1, Memories: pool.Memories()}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"no processes":     func(c *Config) { c.Procs = nil },
		"too few memories": func(c *Config) { c.FaultyMemories = 2 },
		"missing leader":   func(c *Config) { c.InitialLeader = types.NoProcess },
	} {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: config should be rejected", name)
		}
	}
	if _, err := New(Config{Self: 1, Procs: procs, InitialLeader: 1, FaultyMemories: 5, Memories: pool.Memories()}); err == nil {
		t.Fatalf("New should reject invalid configuration")
	}
}

func TestSlotEncoding(t *testing.T) {
	s := slot{
		MinProposal: types.ProposalNumber{Round: 2, Proposer: 1},
		AccProposal: types.ProposalNumber{Round: 2, Proposer: 1},
		Value:       types.Value("v"),
	}
	blob, err := s.encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, ok := decodeSlot(blob)
	if !ok {
		t.Fatalf("decode failed")
	}
	if !dec.MinProposal.Equal(s.MinProposal) || !dec.Value.Equal(s.Value) {
		t.Fatalf("round trip mismatch: %+v", dec)
	}
	if _, ok := decodeSlot(nil); ok {
		t.Fatalf("bottom should not decode")
	}
	if _, ok := decodeSlot(types.Value("garbage")); ok {
		t.Fatalf("garbage should not decode")
	}
}
