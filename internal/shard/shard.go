// Package shard routes keys across independent replicated-log groups with a
// deterministic consistent-hash ring.
//
// A Ring places a configurable number of virtual nodes per shard on a 64-bit
// hash circle (FNV-1a) and maps each key to the first virtual node at or
// after the key's hash, clockwise. Virtual nodes smooth the load across
// shards; determinism (no randomness, stable tie-breaking) guarantees that
// every client of the same configuration routes every key identically, which
// is what lets independent sharded-KV frontends share one set of log groups.
//
// Consistent hashing's defining property is minimal movement: adding or
// removing one shard remaps only the keys that land on that shard's virtual
// nodes (an expected 1/S fraction), leaving every other key's route intact —
// the precondition for live shard rebalancing.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring positions per shard when Options
// leave it zero. 160 keeps the shard-to-shard load spread within a few
// percent for realistic key counts.
const DefaultVirtualNodes = 160

// Ring is an immutable-by-convention consistent-hash ring: Add and Remove
// mutate it, Shard only reads. It is not safe for concurrent mutation; wrap
// it in a lock or treat it as fixed after construction (the sharded KV does
// the latter).
type Ring struct {
	vnodes int
	points []point  // sorted by hash, ties broken by shard name
	shards []string // sorted shard names
}

type point struct {
	hash  uint64
	shard string
}

// New builds a ring over the given shard names with vnodes virtual nodes per
// shard. vnodes ≤ 0 means DefaultVirtualNodes. Duplicate shard names are
// collapsed.
func New(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, s := range shards {
		r.Add(s)
	}
	return r
}

// Shards returns the shard names in sorted order.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Size returns the number of shards.
func (r *Ring) Size() int { return len(r.shards) }

// Add inserts a shard into the ring. Adding an existing shard is a no-op.
func (r *Ring) Add(shard string) {
	i := sort.SearchStrings(r.shards, shard)
	if i < len(r.shards) && r.shards[i] == shard {
		return
	}
	r.shards = append(r.shards, "")
	copy(r.shards[i+1:], r.shards[i:])
	r.shards[i] = shard

	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: hashKey(vnodeName(shard, v)), shard: shard})
	}
	r.sortPoints()
}

// Remove deletes a shard from the ring. Removing an unknown shard is a no-op.
func (r *Ring) Remove(shard string) {
	i := sort.SearchStrings(r.shards, shard)
	if i >= len(r.shards) || r.shards[i] != shard {
		return
	}
	r.shards = append(r.shards[:i], r.shards[i+1:]...)
	kept := r.points[:0]
	for _, pt := range r.points {
		if pt.shard != shard {
			kept = append(kept, pt)
		}
	}
	r.points = kept
}

// Shard returns the shard responsible for key: the first virtual node at or
// clockwise after the key's hash. It returns "" on an empty ring.
func (r *Ring) Shard(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// sortPoints restores the ring order: by hash, with the shard name breaking
// the (astronomically rare) 64-bit collisions deterministically.
func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// vnodeName names virtual node v of a shard on the circle.
func vnodeName(shard string, v int) string {
	return fmt.Sprintf("%s#%d", shard, v)
}

// hashKey is the ring's hash function: 64-bit FNV-1a finished with murmur3's
// fmix64 avalanche. Plain FNV-1a clusters badly on short structured names
// like "shard-3#17" (arc shares off by 2x in practice); the finalizer spreads
// those inputs uniformly around the circle. Fast, dependency-free and fully
// deterministic across processes and runs (unlike Go's seeded map hash).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ShardNames generates the canonical names of n shards ("shard-0" …
// "shard-<n-1>"), the naming the sharded KV and the benchmarks use.
func ShardNames(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("shard-%d", i))
	}
	return out
}
