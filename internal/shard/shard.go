// Package shard routes keys across independent replicated-log groups with a
// deterministic consistent-hash ring.
//
// A Ring places a configurable number of virtual nodes per shard on a 64-bit
// hash circle (FNV-1a) and maps each key to the first virtual node at or
// after the key's hash, clockwise. Virtual nodes smooth the load across
// shards; determinism (no randomness, stable tie-breaking) guarantees that
// every client of the same configuration routes every key identically, which
// is what lets independent sharded-KV frontends share one set of log groups.
//
// Consistent hashing's defining property is minimal movement: adding or
// removing one shard remaps only the keys that land on that shard's virtual
// nodes (an expected 1/S fraction), leaving every other key's route intact —
// the precondition for live shard rebalancing.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring positions per shard when Options
// leave it zero. 160 keeps the shard-to-shard load spread within a few
// percent for realistic key counts.
const DefaultVirtualNodes = 160

// Ring is a consistent-hash ring with a copy-on-write mutation contract:
// Add and Remove REBUILD the ring's backing arrays into fresh slices, so any
// reader that captured the previous arrays (a concurrent Shard call, a
// Shards() snapshot taken before the mutation) keeps observing the old,
// internally consistent ring — never a torn mix of both. Mutations are still
// not atomic with respect to each other or to readers of the same *Ring
// value; a concurrently mutated ring must be handled clone-and-swap style:
// next := r.Clone(); next.Add(...); then publish next under a lock, exactly
// what the sharded layer's rebalancer does.
type Ring struct {
	vnodes int
	points []point  // sorted by hash, ties broken by shard name
	shards []string // sorted shard names
}

type point struct {
	hash  uint64
	shard string
}

// New builds a ring over the given shard names with vnodes virtual nodes per
// shard. vnodes ≤ 0 means DefaultVirtualNodes. Duplicate shard names are
// collapsed.
func New(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, s := range shards {
		r.Add(s)
	}
	return r
}

// Shards returns the shard names in sorted order.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Size returns the number of shards.
func (r *Ring) Size() int { return len(r.shards) }

// Clone returns an independent deep copy: mutating the clone (or the
// original) never touches the other's backing arrays. It is the first half of
// the clone-and-swap pattern rebalancers use to mutate a ring that concurrent
// readers still hold.
func (r *Ring) Clone() *Ring {
	return &Ring{
		vnodes: r.vnodes,
		points: append([]point(nil), r.points...),
		shards: append([]string(nil), r.shards...),
	}
}

// VirtualNodes returns the ring's virtual-node count per shard (after
// defaulting), so a ring of identical geometry can be rebuilt elsewhere from
// (Shards(), VirtualNodes()) alone — how migration commands carry a ring
// config through a replicated log.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Add inserts a shard into the ring. Adding an existing shard is a no-op.
// Per the copy-on-write contract, the shard and point arrays are rebuilt into
// fresh slices rather than mutated in place.
func (r *Ring) Add(shard string) {
	i := sort.SearchStrings(r.shards, shard)
	if i < len(r.shards) && r.shards[i] == shard {
		return
	}
	shards := make([]string, 0, len(r.shards)+1)
	shards = append(shards, r.shards[:i]...)
	shards = append(shards, shard)
	shards = append(shards, r.shards[i:]...)
	r.shards = shards

	points := make([]point, 0, len(r.points)+r.vnodes)
	points = append(points, r.points...)
	for v := 0; v < r.vnodes; v++ {
		points = append(points, point{hash: hashKey(vnodeName(shard, v)), shard: shard})
	}
	r.points = points
	r.sortPoints()
}

// Remove deletes a shard from the ring. Removing an unknown shard is a no-op.
// The surviving points are rebuilt into a fresh slice — never filtered in
// place — so a reader holding the pre-Remove point array (via a concurrent
// Shard call or an earlier ring view) cannot observe torn state.
func (r *Ring) Remove(shard string) {
	i := sort.SearchStrings(r.shards, shard)
	if i >= len(r.shards) || r.shards[i] != shard {
		return
	}
	shards := make([]string, 0, len(r.shards)-1)
	shards = append(shards, r.shards[:i]...)
	shards = append(shards, r.shards[i+1:]...)
	r.shards = shards

	kept := make([]point, 0, len(r.points))
	for _, pt := range r.points {
		if pt.shard != shard {
			kept = append(kept, pt)
		}
	}
	r.points = kept
}

// Shard returns the shard responsible for key: the first virtual node at or
// clockwise after the key's hash. It returns "" on an empty ring.
func (r *Ring) Shard(key string) string { return r.ShardAt(hashKey(key)) }

// ShardAt returns the shard owning the circle position h — the primitive
// behind Shard and behind the ring-diff helpers (Ceders, Moved). It returns
// "" on an empty ring.
func (r *Ring) ShardAt(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// Moved reports whether key's owner changes when the ring changes from old to
// next, returning both owners. It is the per-key form of the ring diff: the
// set of keys that must be handed off by a rebalance is exactly the set for
// which Moved reports true.
func Moved(old, next *Ring, key string) (from, to string, moved bool) {
	from, to = old.Shard(key), next.Shard(key)
	return from, to, from != to
}

// Ceders returns, in sorted order, the shards that cede key ranges when the
// ring changes from old to next: every shard owning an arc of the old ring
// whose owner differs in the new one. A rebalancer drains exactly these
// groups. Ownership is piecewise-constant between virtual-node positions, so
// comparing the owners at every position of both rings covers every arc of
// their common refinement — no key hash can change owners without some
// boundary position changing owners too.
func Ceders(old, next *Ring) []string {
	set := make(map[string]bool)
	for _, r := range []*Ring{old, next} {
		for _, pt := range r.points {
			if from, to := old.ShardAt(pt.hash), next.ShardAt(pt.hash); from != to && from != "" {
				set[from] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// sortPoints restores the ring order: by hash, with the shard name breaking
// the (astronomically rare) 64-bit collisions deterministically.
func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
}

// vnodeName names virtual node v of a shard on the circle.
func vnodeName(shard string, v int) string {
	return fmt.Sprintf("%s#%d", shard, v)
}

// hashKey is the ring's hash function: 64-bit FNV-1a finished with murmur3's
// fmix64 avalanche. Plain FNV-1a clusters badly on short structured names
// like "shard-3#17" (arc shares off by 2x in practice); the finalizer spreads
// those inputs uniformly around the circle. Fast, dependency-free and fully
// deterministic across processes and runs (unlike Go's seeded map hash).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ShardNames generates the canonical names of n shards ("shard-0" …
// "shard-<n-1>"), the naming the sharded KV and the benchmarks use.
func ShardNames(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("shard-%d", i))
	}
	return out
}
