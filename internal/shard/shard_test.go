package shard

import (
	"fmt"
	"testing"
)

// TestDeterministicMapping builds the same ring twice and checks that every
// key maps identically — the property that lets independent clients of one
// configuration agree on routing without coordination.
func TestDeterministicMapping(t *testing.T) {
	a := New(ShardNames(5), 0)
	b := New(ShardNames(5), 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if got, want := a.Shard(key), b.Shard(key); got != want {
			t.Fatalf("ring disagreement on %q: %q vs %q", key, got, want)
		}
	}
}

// TestConstructionOrderIrrelevant checks that the mapping depends only on the
// shard set, not on the order shards were added.
func TestConstructionOrderIrrelevant(t *testing.T) {
	a := New([]string{"shard-0", "shard-1", "shard-2"}, 64)
	b := New([]string{"shard-2", "shard-0", "shard-1"}, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if got, want := a.Shard(key), b.Shard(key); got != want {
			t.Fatalf("order-dependent mapping on %q: %q vs %q", key, got, want)
		}
	}
}

// TestDistributionBalance spreads ≥10k keys over the ring and checks every
// shard's load is within tolerance of the ideal share.
func TestDistributionBalance(t *testing.T) {
	const keys = 20000
	const shards = 8
	r := New(ShardNames(shards), 0)
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("user/%d/profile", i))]++
	}
	if len(counts) != shards {
		t.Fatalf("keys landed on %d shards, want %d", len(counts), shards)
	}
	ideal := float64(keys) / shards
	for shard, n := range counts {
		ratio := float64(n) / ideal
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("shard %s holds %d keys (%.2fx the ideal %d): imbalance beyond ±50%%", shard, n, ratio, int(ideal))
		}
	}
}

// TestMinimalMovementOnAdd checks consistent hashing's defining property:
// growing the ring from S to S+1 shards remaps roughly 1/(S+1) of the keys
// and never moves a key between two pre-existing shards.
func TestMinimalMovementOnAdd(t *testing.T) {
	const keys = 10000
	before := New(ShardNames(4), 0)
	after := New(ShardNames(4), 0)
	after.Add("shard-4")

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		src, dst := before.Shard(key), after.Shard(key)
		if src == dst {
			continue
		}
		moved++
		if dst != "shard-4" {
			t.Fatalf("key %q moved %q -> %q, not to the new shard", key, src, dst)
		}
	}
	// Expected movement is keys/5 = 20%; allow generous slack around it.
	if frac := float64(moved) / keys; frac < 0.05 || frac > 0.40 {
		t.Errorf("adding a 5th shard moved %.1f%% of keys, want ≈20%%", 100*frac)
	}
}

// TestMinimalMovementOnRemove checks the symmetric property: removing a shard
// only remaps the keys it owned.
func TestMinimalMovementOnRemove(t *testing.T) {
	const keys = 10000
	before := New(ShardNames(5), 0)
	after := New(ShardNames(5), 0)
	after.Remove("shard-2")

	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		src, dst := before.Shard(key), after.Shard(key)
		if src != "shard-2" && src != dst {
			t.Fatalf("key %q moved %q -> %q although its shard was not removed", key, src, dst)
		}
		if src == "shard-2" && dst == "shard-2" {
			t.Fatalf("key %q still maps to the removed shard", key)
		}
	}
}

// TestCloneIsIndependent pins the clone-and-swap contract: mutating a clone
// never disturbs the original (and vice versa), which is what lets a
// rebalancer build the next ring while readers keep routing on the current
// one.
func TestCloneIsIndependent(t *testing.T) {
	orig := New(ShardNames(4), 0)
	next := orig.Clone()
	next.Add("shard-4")
	next.Remove("shard-0")

	ref := New(ShardNames(4), 0)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if got, want := orig.Shard(key), ref.Shard(key); got != want {
			t.Fatalf("mutating the clone changed the original's route for %q: %q, want %q", key, got, want)
		}
	}
	if orig.Size() != 4 || next.Size() != 4 {
		t.Fatalf("sizes after clone mutation: orig %d next %d, want 4 and 4", orig.Size(), next.Size())
	}
}

// TestRemoveCopiesPoints pins the copy-on-write contract the doc promises:
// Remove must rebuild the surviving points into a fresh slice, so a reader
// that captured the ring's state before the Remove keeps observing the old,
// consistent ring — in-place filtering would shuffle survivors down the SAME
// backing array under the reader's feet.
func TestRemoveCopiesPoints(t *testing.T) {
	r := New(ShardNames(5), 32)
	before := r.Clone() // shares nothing, records the pre-Remove routes
	beforePoints := r.points
	r.Remove("shard-2")
	for i, pt := range beforePoints {
		if pt != before.points[i] {
			t.Fatalf("Remove mutated the old backing array at %d: %+v, want %+v", i, pt, before.points[i])
		}
	}
	// And the survivor really is gone from the rebuilt ring.
	for _, pt := range r.points {
		if pt.shard == "shard-2" {
			t.Fatalf("removed shard still owns point %d", pt.hash)
		}
	}
}

// TestCedersMatchesMovedKeys asserts the ring-diff API agrees with the ground
// truth: the set of shards Ceders reports for a ring change equals the set of
// old owners of the keys that actually change owner, and every key Moved
// reports lands where the new ring routes it.
func TestCedersMatchesMovedKeys(t *testing.T) {
	const keys = 20000
	cases := []struct {
		name string
		old  *Ring
		next *Ring
	}{
		{"add", New(ShardNames(4), 0), New(append(ShardNames(4), "shard-4"), 0)},
		{"remove", New(ShardNames(5), 0), New(ShardNames(4), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			predicted := make(map[string]bool)
			for _, c := range Ceders(tc.old, tc.next) {
				predicted[c] = true
			}
			actual := make(map[string]bool)
			moved := 0
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("user/%d/cart", i)
				from, to, m := Moved(tc.old, tc.next, key)
				if !m {
					if from != to {
						t.Fatalf("Moved(%q) = false with owners %q -> %q", key, from, to)
					}
					continue
				}
				moved++
				actual[from] = true
				if want := tc.next.Shard(key); to != want {
					t.Fatalf("Moved(%q) reports destination %q, new ring routes to %q", key, to, want)
				}
				if !predicted[from] {
					t.Fatalf("key %q moves out of %q, which Ceders did not report (%v)", key, from, Ceders(tc.old, tc.next))
				}
			}
			if moved == 0 {
				t.Fatalf("no key moved across the %s change", tc.name)
			}
			// Every predicted ceder must actually cede at least one key at
			// this key count — a ceder owns whole arcs, and 20k keys hit
			// every arc of a ≤5-shard default-vnode ring with overwhelming
			// probability.
			for c := range predicted {
				if !actual[c] {
					t.Errorf("Ceders reports %q but no sampled key moved out of it", c)
				}
			}
		})
	}
}

// TestEmptyAndSingle covers the degenerate rings.
func TestEmptyAndSingle(t *testing.T) {
	empty := New(nil, 0)
	if got := empty.Shard("anything"); got != "" {
		t.Fatalf("empty ring routed to %q, want \"\"", got)
	}
	single := New([]string{"only"}, 0)
	for i := 0; i < 100; i++ {
		if got := single.Shard(fmt.Sprintf("k%d", i)); got != "only" {
			t.Fatalf("single-shard ring routed to %q", got)
		}
	}
	single.Add("only") // duplicate add is a no-op
	if single.Size() != 1 {
		t.Fatalf("duplicate Add changed size to %d", single.Size())
	}
}
