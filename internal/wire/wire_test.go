package wire

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"rdmaagreement"
)

func TestFromErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"key moved sentinel", rdmaagreement.ErrKeyMoved, http.StatusMisdirectedRequest, CodeKeyMoved},
		{"key moved wrapped", fmt.Errorf("routing: %w", rdmaagreement.ErrKeyMoved), http.StatusMisdirectedRequest, CodeKeyMoved},
		{"lease lost", rdmaagreement.ErrLeaseLost, http.StatusServiceUnavailable, CodeLeaseLost},
		{"rebalance in progress", rdmaagreement.ErrRebalanceInProgress, http.StatusConflict, CodeRebalanceInProgress},
		{"no migrator", rdmaagreement.ErrNoMigrator, http.StatusNotImplemented, CodeNoMigrator},
		{"closed", rdmaagreement.ErrLogClosed, http.StatusServiceUnavailable, CodeClosed},
		{"halted", rdmaagreement.ErrLogHalted, http.StatusInternalServerError, CodeHalted},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, CodeDeadline},
		{"canceled", context.Canceled, http.StatusGatewayTimeout, CodeDeadline},
		{"unknown", errors.New("disk on fire"), http.StatusInternalServerError, CodeInternal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, werr := FromError(tc.err)
			if status != tc.status || werr.Code != tc.code {
				t.Fatalf("FromError(%v) = %d %q, want %d %q", tc.err, status, werr.Code, tc.status, tc.code)
			}
		})
	}
}

func TestFromErrorKeyMovedCarriesOwner(t *testing.T) {
	err := fmt.Errorf("apply: %w", &rdmaagreement.KeyMovedError{Key: "k", From: "shard-0", Owner: "shard-2"})
	status, werr := FromError(err)
	if status != http.StatusMisdirectedRequest || werr.Code != CodeKeyMoved {
		t.Fatalf("FromError = %d %q, want 421 key_moved", status, werr.Code)
	}
	if werr.Owner != "shard-2" {
		t.Fatalf("Owner = %q, want shard-2", werr.Owner)
	}
}

func TestSentinelRoundTrip(t *testing.T) {
	// Every store-originated code must round-trip to an errors.Is-able
	// sentinel; server-originated codes must not claim one.
	for code, want := range map[string]error{
		CodeKeyMoved:            rdmaagreement.ErrKeyMoved,
		CodeLeaseLost:           rdmaagreement.ErrLeaseLost,
		CodeRebalanceInProgress: rdmaagreement.ErrRebalanceInProgress,
		CodeNoMigrator:          rdmaagreement.ErrNoMigrator,
		CodeClosed:              rdmaagreement.ErrLogClosed,
		CodeHalted:              rdmaagreement.ErrLogHalted,
	} {
		if got := Sentinel(code); got != want {
			t.Errorf("Sentinel(%q) = %v, want %v", code, got, want)
		}
	}
	for _, code := range []string{CodeOverloaded, CodeConnBusy, CodeDraining, CodeDeadline, CodeBadRequest, CodeInternal} {
		if got := Sentinel(code); got != nil {
			t.Errorf("Sentinel(%q) = %v, want nil", code, got)
		}
	}
}

func TestRetryable(t *testing.T) {
	for _, code := range []string{CodeKeyMoved, CodeLeaseLost, CodeOverloaded, CodeConnBusy, CodeDraining} {
		if !Retryable(code) {
			t.Errorf("Retryable(%q) = false, want true", code)
		}
	}
	for _, code := range []string{CodeRebalanceInProgress, CodeNoMigrator, CodeClosed, CodeHalted, CodeDeadline, CodeBadRequest, CodeInternal} {
		if Retryable(code) {
			t.Errorf("Retryable(%q) = true, want false", code)
		}
	}
}

func TestTenantKey(t *testing.T) {
	if got := TenantKey("", "k"); got != "default\x1fk" {
		t.Fatalf("TenantKey(\"\", k) = %q", got)
	}
	if got := TenantKey("acme", "k"); got != "acme\x1fk" {
		t.Fatalf("TenantKey(acme, k) = %q", got)
	}
	// Crafted keys must not collide across tenants: the separator cannot
	// appear in either half of a real request (it is not valid uninvited in a
	// URL path or header value).
	if TenantKey("a", "b/c") == TenantKey("a/b", "c") {
		t.Fatal("tenant/key concatenation is ambiguous")
	}
}
