// Package wire is the HTTP/JSON contract between the kvserver front-end and
// the client package: the request/response shapes of every /v1 endpoint and
// the error taxonomy that round-trips the store's typed errors over the
// network.
//
// The taxonomy is a closed set of string codes. The server maps a store
// error to (HTTP status, code, optional owner hint) with FromError; the
// client maps the decoded body back to the canonical sentinel errors, so
// errors.Is(err, rdmaagreement.ErrKeyMoved) works identically whether the
// store was called in-process or across a socket. Status codes alone are NOT
// the contract — two different 503s (load shed vs draining) carry different
// codes and different client behavior — which is why every error response
// has a JSON body.
//
// The wireclosed analyzer (cmd/smrlint) checks the taxonomy's closure: every
// code carries a //smrlint:wire class marker and each class's obligations
// (Sentinel case, FromError production, Retryable membership) are enforced.
//
//smrlint:wire taxonomy
package wire

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"rdmaagreement"
)

// Error codes: the closed taxonomy. Codes, not HTTP statuses, are the
// contract the client dispatches on.
const (
	// CodeKeyMoved: the key's range is owned by another shard (ErrKeyMoved);
	// the Owner field names it when the refusing server knows. Retryable —
	// ideally at the owner's endpoint.
	//smrlint:wire store
	CodeKeyMoved = "key_moved"
	// CodeLeaseLost: the command was displaced by a leadership change without
	// committing (ErrLeaseLost); provably safe to resubmit. Retryable.
	//smrlint:wire store
	CodeLeaseLost = "lease_lost"
	// CodeOverloaded: the server shed the request to protect itself (global
	// in-flight bound exceeded). Retryable after the Retry-After hint.
	//smrlint:wire admission
	CodeOverloaded = "overloaded"
	// CodeConnBusy: this connection exceeded its per-connection in-flight
	// bound; the rest of the server may be fine. Retryable.
	//smrlint:wire admission
	CodeConnBusy = "conn_busy"
	// CodeDraining: the server is shutting down gracefully; in-flight
	// requests finish but new ones are refused. Retryable elsewhere.
	//smrlint:wire admission
	CodeDraining = "draining"
	// CodeRebalanceInProgress: a different rebalance is still incomplete
	// (ErrRebalanceInProgress). Not retryable blindly; the pending rebalance
	// must be retried to completion first.
	//smrlint:wire store
	CodeRebalanceInProgress = "rebalance_in_progress"
	// CodeNoMigrator: the store's state machine cannot rebalance
	// (ErrNoMigrator). Terminal.
	//smrlint:wire store
	CodeNoMigrator = "no_migrator"
	// CodeClosed: the store is closed (ErrLogClosed). Terminal here.
	//smrlint:wire store
	CodeClosed = "closed"
	// CodeHalted: a shard group halted on an unresolvable slot
	// (ErrLogHalted). Terminal.
	//smrlint:wire store
	CodeHalted = "halted"
	// CodeDeadline: the request's deadline or cancellation fired inside the
	// store (context.DeadlineExceeded / Canceled).
	//smrlint:wire anonymous
	CodeDeadline = "deadline"
	// CodeBadRequest: malformed request (empty key, undecodable body).
	//smrlint:wire anonymous
	CodeBadRequest = "bad_request"
	// CodeInternal: anything the taxonomy does not name.
	//smrlint:wire anonymous
	CodeInternal = "internal"
)

// Error is the JSON body of every non-2xx response.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Owner names the shard that now owns the key (CodeKeyMoved only, and
	// only when the refusing side knows) so the client re-routes directly.
	Owner string `json:"owner,omitempty"`
	// RetryAfterMS mirrors the Retry-After header for JSON-only clients.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (e *Error) Error() string {
	if e.Owner != "" {
		return fmt.Sprintf("%s: %s (owner %s)", e.Code, e.Message, e.Owner)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Retryable reports whether a request failing with code may be retried
// as-is (possibly at a different endpoint) without risking a double apply:
// key_moved and lease_lost both carry the store's provably-did-not-commit
// contract, and shed/draining requests were never admitted.
func Retryable(code string) bool {
	switch code {
	case CodeKeyMoved, CodeLeaseLost, CodeOverloaded, CodeConnBusy, CodeDraining:
		return true
	}
	return false
}

// Sentinel returns the canonical in-process error a code round-trips to, or
// nil for codes with no root-package counterpart (overloaded, draining, …):
// those are server conditions, not store conditions, and the client package
// owns their sentinels.
func Sentinel(code string) error {
	switch code {
	case CodeKeyMoved:
		return rdmaagreement.ErrKeyMoved
	case CodeLeaseLost:
		return rdmaagreement.ErrLeaseLost
	case CodeRebalanceInProgress:
		return rdmaagreement.ErrRebalanceInProgress
	case CodeNoMigrator:
		return rdmaagreement.ErrNoMigrator
	case CodeClosed:
		return rdmaagreement.ErrLogClosed
	case CodeHalted:
		return rdmaagreement.ErrLogHalted
	}
	return nil
}

// FromError classifies a store error into the wire taxonomy: HTTP status
// plus typed body. The owner hint rides along when the error is a structured
// KeyMovedError.
func FromError(err error) (int, *Error) {
	var moved *rdmaagreement.KeyMovedError
	switch {
	case errors.As(err, &moved):
		// 421 Misdirected Request: this server (shard) is not the right
		// destination for the key — exactly what the status was minted for.
		return http.StatusMisdirectedRequest, &Error{Code: CodeKeyMoved, Message: err.Error(), Owner: moved.Owner}
	case errors.Is(err, rdmaagreement.ErrKeyMoved):
		return http.StatusMisdirectedRequest, &Error{Code: CodeKeyMoved, Message: err.Error()}
	case errors.Is(err, rdmaagreement.ErrLeaseLost):
		return http.StatusServiceUnavailable, &Error{Code: CodeLeaseLost, Message: err.Error()}
	case errors.Is(err, rdmaagreement.ErrRebalanceInProgress):
		return http.StatusConflict, &Error{Code: CodeRebalanceInProgress, Message: err.Error()}
	case errors.Is(err, rdmaagreement.ErrNoMigrator):
		return http.StatusNotImplemented, &Error{Code: CodeNoMigrator, Message: err.Error()}
	case errors.Is(err, rdmaagreement.ErrLogClosed):
		return http.StatusServiceUnavailable, &Error{Code: CodeClosed, Message: err.Error()}
	case errors.Is(err, rdmaagreement.ErrLogHalted):
		return http.StatusInternalServerError, &Error{Code: CodeHalted, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, &Error{Code: CodeDeadline, Message: err.Error()}
	}
	return http.StatusInternalServerError, &Error{Code: CodeInternal, Message: err.Error()}
}

// tenantSep joins tenant and key into the store-level key. A unit separator
// cannot appear in a URL path segment uninvited, so tenants cannot collide
// by crafting keys ("a"+"b/c" vs "a/b"+"c").
const tenantSep = "\x1f"

// DefaultTenant namespaces requests that carry no X-KV-Tenant header.
const DefaultTenant = "default"

// TenantKey is the store-level key of a tenant's key: every tenant gets a
// disjoint namespace inside the one sharded store, and ring routing hashes
// the combined key, so one tenant's hot keys spread like anyone else's.
func TenantKey(tenant, key string) string {
	if tenant == "" {
		tenant = DefaultTenant
	}
	return tenant + tenantSep + key
}

// Request/response shapes of the /v1 endpoints.

// PutRequest is the body of PUT /v1/kv/{key}.
type PutRequest struct {
	Value string `json:"value"`
}

// PutResponse reports where the committed write landed.
type PutResponse struct {
	Shard string `json:"shard"`
	Index uint64 `json:"index"`
}

// GetResponse is the body of GET /v1/kv/{key} (stale by default,
// linearizable with ?linearizable=1).
type GetResponse struct {
	Value string `json:"value,omitempty"`
	Found bool   `json:"found"`
	Shard string `json:"shard,omitempty"`
}

// RingResponse is the body of GET /v1/ring: the ring geometry a client needs
// to mirror routing, plus the endpoint serving each shard (one address for
// every shard on a single-process server).
type RingResponse struct {
	Shards    []string          `json:"shards"`
	VNodes    int               `json:"vnodes"`
	Endpoints map[string]string `json:"endpoints,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	rdmaagreement.ShardedStats
	ForeignEntries int64 `json:"foreign_entries"`
}

// AdminResponse acknowledges an admin shard operation.
type AdminResponse struct {
	Shard  string   `json:"shard"`
	Shards []string `json:"shards"`
}
