// Package fastpaxos implements a single-decree Fast Paxos variant, the
// message-passing baseline the paper cites for the performance side of the
// resilience/performance trade-off: it decides in two delays in common
// executions but relies on message-passing quorums of processes, so it cannot
// match the n ≥ f_P + 1 resilience of Protected Memory Paxos.
//
// The fast round works as follows: the proposer broadcasts its value;
// every acceptor that has not yet accepted a value in the fast round accepts
// the first proposal it sees and broadcasts an acknowledgement; a proposer
// that observes a fast quorum of acknowledgements for its value decides — two
// delays after proposing. If acceptors accept conflicting values (several
// concurrent proposers) or acknowledgements do not arrive in time, the
// proposer falls back to classic Paxos (package paxos) over the same network,
// which preserves safety.
package fastpaxos

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/paxos"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// DefaultKindPrefix scopes the message kinds of a stand-alone instance.
const DefaultKindPrefix = "fastpaxos/"

// Message kinds used by the fast round of a stand-alone instance. Multiplexed
// instances (log slots) derive their kinds from Config.KindPrefix instead so
// that messages of different slots never collide on the shared network.
const (
	KindFastPropose = DefaultKindPrefix + "propose"
	KindFastAck     = DefaultKindPrefix + "ack"
	// ClassicKind is the message kind used by the embedded classic Paxos
	// fallback; routers must route this prefix to the transport passed to
	// New.
	ClassicKind = DefaultKindPrefix + "classic"
)

// ack is the payload of a fast-round acknowledgement.
type ack struct {
	Value types.Value `json:"value"`
}

// Config configures a Fast Paxos participant.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Procs is the full process set; classic-Paxos safety requires
	// n ≥ 2f_P+1.
	Procs []types.ProcID
	// FaultyProcesses is f_P; the fast quorum is n − f_P.
	FaultyProcesses int
	// Endpoint is this process's network endpoint.
	Endpoint *netsim.Endpoint
	// FastSub receives the fast-round messages (kinds KindFastPropose and
	// KindFastAck).
	FastSub <-chan netsim.Message
	// ClassicSub receives the classic-round messages (kind ClassicKind).
	ClassicSub <-chan netsim.Message
	// Oracle is the Ω oracle used by the classic fallback.
	Oracle omega.Oracle
	// KindPrefix scopes this node's message kinds ("<prefix>propose",
	// "<prefix>ack", "<prefix>classic"). Empty means DefaultKindPrefix. The
	// replicated-log layer gives each slot its own prefix; FastSub and
	// ClassicSub must then be subscribed to the matching prefixes.
	KindPrefix string
	// FastTimeout bounds how long the proposer waits for a fast quorum
	// before falling back. Zero means 50ms.
	FastTimeout time.Duration
	// Clock is the causal delay clock; nil allocates a private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Procs) < 2*c.FaultyProcesses+1 {
		return fmt.Errorf("%w: n=%d cannot tolerate f_P=%d (need n ≥ 2f_P+1)", types.ErrInvalidConfig, len(c.Procs), c.FaultyProcesses)
	}
	if c.Endpoint == nil || c.FastSub == nil || c.ClassicSub == nil {
		return fmt.Errorf("%w: endpoint and subscriptions are required", types.ErrInvalidConfig)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.KindPrefix == "" {
		c.KindPrefix = DefaultKindPrefix
	}
	if c.FastTimeout <= 0 {
		c.FastTimeout = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &delayclock.Clock{}
	}
}

// Outcome reports a Fast Paxos decision.
type Outcome struct {
	// Value is the decided value.
	Value types.Value
	// FastPath reports whether the fast round succeeded.
	FastPath bool
	// DecisionDelays is the causal delay count of the decision (2 on the
	// fast path).
	DecisionDelays int64
}

// Node is one Fast Paxos participant (acceptor and, on demand, proposer).
type Node struct {
	cfg         Config
	classic     *paxos.Node
	proposeKind string
	ackKind     string
	classicKind string

	mu       sync.Mutex
	accepted types.Value // value accepted in the fast round, if any
	acks     map[types.ProcID]types.Value
	ackCh    chan struct{}

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// New creates a Fast Paxos participant.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("fast paxos: %w", err)
	}
	cfg.applyDefaults()
	classicKind := cfg.KindPrefix + "classic"
	classic := paxos.NewNode(paxos.Config{
		Self:     cfg.Self,
		Procs:    cfg.Procs,
		Oracle:   cfg.Oracle,
		Clock:    cfg.Clock,
		Recorder: cfg.Recorder,
	}, paxos.NewNetTransport(cfg.Endpoint, cfg.ClassicSub, classicKind))
	return &Node{
		cfg:         cfg,
		classic:     classic,
		proposeKind: cfg.KindPrefix + "propose",
		ackKind:     cfg.KindPrefix + "ack",
		classicKind: classicKind,
		acks:        make(map[types.ProcID]types.Value),
		ackCh:       make(chan struct{}, 1),
	}, nil
}

// Start launches the acceptor loop and the classic fallback node.
func (n *Node) Start() {
	n.classic.Start()
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(1)
	go n.acceptorLoop(ctx)
}

// Stop terminates all background goroutines.
func (n *Node) Stop() {
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
	n.classic.Stop()
}

// Clock returns the node's delay clock.
func (n *Node) Clock() *delayclock.Clock { return n.cfg.Clock }

// fastQuorum is the number of matching acknowledgements needed to decide in
// the fast round. This variant uses unanimous fast quorums: with n = 2f_P+1
// processes, a smaller fast quorum would require the coordinated recovery
// protocol of full Fast Paxos to stay safe; unanimity keeps the fallback
// simple (every fallback proposer necessarily re-proposes the fast value)
// while preserving the two-delay common case that the comparison needs.
func (n *Node) fastQuorum() int { return len(n.cfg.Procs) }

// acceptorLoop handles fast-round messages: proposals are accepted (first
// writer wins) and acknowledged to everyone; acknowledgements are tallied for
// the proposer role.
func (n *Node) acceptorLoop(ctx context.Context) {
	defer n.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-n.cfg.FastSub:
			if msg.From == n.cfg.Self {
				n.cfg.Clock.Merge(msg.Stamp)
			} else {
				n.cfg.Clock.MergeAfterMessage(msg.Stamp)
			}
			switch msg.Kind {
			case n.proposeKind:
				n.handlePropose(msg)
			case n.ackKind:
				n.handleAck(msg)
			}
		}
	}
}

func (n *Node) handlePropose(msg netsim.Message) {
	n.mu.Lock()
	if n.accepted != nil {
		n.mu.Unlock()
		return // first proposal wins the fast round at this acceptor
	}
	n.accepted = types.Value(msg.Payload).Clone()
	n.mu.Unlock()

	payload, err := json.Marshal(ack{Value: types.Value(msg.Payload)})
	if err != nil {
		return
	}
	// Stamp the acknowledgement with the causal chain of the proposal it
	// answers (receipt of the proposal), not with the acceptor's merged
	// clock, which unrelated concurrent traffic may have advanced further.
	stamp := msg.Stamp
	if msg.From != n.cfg.Self {
		stamp = stamp.AfterMessage()
	}
	_ = n.cfg.Endpoint.Broadcast(n.ackKind, payload, stamp)
}

func (n *Node) handleAck(msg netsim.Message) {
	var a ack
	if err := json.Unmarshal(msg.Payload, &a); err != nil {
		return
	}
	n.mu.Lock()
	n.acks[msg.From] = a.Value.Clone()
	n.mu.Unlock()
	select {
	case n.ackCh <- struct{}{}:
	default:
	}
}

// Propose runs Fast Paxos with input v: a fast round first, then the classic
// fallback if the fast round does not reach a quorum in time.
func (n *Node) Propose(ctx context.Context, v types.Value) (Outcome, error) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPropose, v, n.cfg.Clock.Now(), "fast paxos propose")
	start := n.cfg.Clock.Now()
	if err := n.cfg.Endpoint.Broadcast(n.proposeKind, v, start); err != nil {
		return Outcome{}, fmt.Errorf("fast paxos propose: %w", err)
	}

	deadline := time.NewTimer(n.cfg.FastTimeout)
	defer deadline.Stop()
	for {
		if count := n.countAcksFor(v); count >= n.fastQuorum() {
			delays := int64(n.cfg.Clock.Now() - start)
			n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, v, n.cfg.Clock.Now(), "fast paxos fast-path decision in %d delays", delays)
			n.disseminate(v)
			return Outcome{Value: v.Clone(), FastPath: true, DecisionDelays: delays}, nil
		}
		select {
		case <-n.ackCh:
		case <-deadline.C:
			return n.fallback(ctx, v, start)
		case <-ctx.Done():
			return Outcome{}, fmt.Errorf("fast paxos propose: %w", ctx.Err())
		}
	}
}

// countAcksFor returns how many distinct acceptors acknowledged value v.
func (n *Node) countAcksFor(v types.Value) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for _, av := range n.acks {
		if av.Equal(v) {
			count++
		}
	}
	return count
}

// fallback runs the classic Paxos round. To preserve safety it proposes the
// value this acceptor accepted in the fast round (a value that might have
// reached a fast quorum somewhere), falling back to v otherwise.
func (n *Node) fallback(ctx context.Context, v types.Value, start delayclock.Stamp) (Outcome, error) {
	n.mu.Lock()
	input := n.accepted.Clone()
	n.mu.Unlock()
	if input.Bottom() {
		input = v
	}
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindInfo, input, n.cfg.Clock.Now(), "fast paxos falling back to classic round")
	decided, err := n.classic.Propose(ctx, input)
	if err != nil {
		return Outcome{}, fmt.Errorf("fast paxos fallback: %w", err)
	}
	return Outcome{
		Value:          decided,
		FastPath:       false,
		DecisionDelays: int64(n.cfg.Clock.Now() - start),
	}, nil
}

// disseminate tells every node's learner about a fast-path decision by
// broadcasting a classic decide message. The fast round itself only informs
// the winning proposer; replicated-log learners need every node to converge,
// so the decision is re-broadcast on the classic kind (netsim guarantees
// no-loss, so every correct node learns).
func (n *Node) disseminate(v types.Value) {
	payload, err := (paxos.Message{Kind: paxos.KindDecide, From: n.cfg.Self, Value: v}).Encode()
	if err != nil {
		return
	}
	_ = n.cfg.Endpoint.Broadcast(n.classicKind, payload, n.cfg.Clock.Now())
}

// WaitDecision blocks until this node learns a decision: through the classic
// fallback, or through the decide broadcast a fast-path winner sends.
func (n *Node) WaitDecision(ctx context.Context) (types.Value, error) {
	return n.classic.WaitDecision(ctx)
}
