package fastpaxos

import (
	"context"
	"testing"
	"time"

	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/types"
)

type fixture struct {
	procs   []types.ProcID
	net     *netsim.Network
	routers map[types.ProcID]*netsim.Router
	oracle  *omega.Static
	nodes   map[types.ProcID]*Node
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: 1, Procs: []types.ProcID{1, 2, 3}, FaultyProcesses: 2}); err == nil {
		t.Fatalf("n=3 with f=2 should be rejected")
	}
	if _, err := New(Config{Self: 1, Procs: []types.ProcID{1, 2, 3}, FaultyProcesses: 1}); err == nil {
		t.Fatalf("missing endpoint should be rejected")
	}
}

func TestFastPathDecidesInTwoDelays(t *testing.T) {
	f := newFixture(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("fast"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.FastPath {
		t.Fatalf("expected a fast-path decision in the failure-free case")
	}
	if !out.Value.Equal(types.Value("fast")) {
		t.Fatalf("decided %v", out.Value)
	}
	if out.DecisionDelays != 2 {
		t.Fatalf("fast-path decision took %d delays, want 2", out.DecisionDelays)
	}
}

func TestFallbackWhenAcceptorSilent(t *testing.T) {
	f := newFixture(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// One acceptor crashes: the unanimous fast quorum is unreachable, so the
	// proposer falls back to classic Paxos, which needs only a majority.
	f.net.CrashProcess(3)
	out, err := f.nodes[1].Propose(ctx, types.Value("fallback"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if out.FastPath {
		t.Fatalf("fast path should not succeed with a crashed acceptor")
	}
	if !out.Value.Equal(types.Value("fallback")) {
		t.Fatalf("decided %v", out.Value)
	}
}

func TestConcurrentProposersAgree(t *testing.T) {
	f := newFixture(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	type result struct {
		out Outcome
		err error
	}
	results := make(chan result, 2)
	for _, p := range []types.ProcID{1, 2} {
		go func(p types.ProcID) {
			out, err := f.nodes[p].Propose(ctx, types.Value("value-"+p.String()))
			results <- result{out: out, err: err}
		}(p)
	}
	var decisions []types.Value
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("Propose: %v", r.err)
		}
		decisions = append(decisions, r.out.Value)
	}
	if !decisions[0].Equal(decisions[1]) {
		t.Fatalf("agreement violated: %v vs %v", decisions[0], decisions[1])
	}
}

// newFixture builds the fixture with a single subscription
// covering both fast-round message kinds (propose and ack).
func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	f := &fixture{
		procs:   procs,
		net:     netsim.New(netsim.Options{}),
		routers: make(map[types.ProcID]*netsim.Router),
		oracle:  omega.NewStatic(1),
		nodes:   make(map[types.ProcID]*Node),
	}
	t.Cleanup(f.net.Close)
	for _, p := range procs {
		ep := f.net.Register(p)
		router := netsim.NewRouter(ep)
		f.routers[p] = router
		node, err := New(Config{
			Self:            p,
			Procs:           procs,
			FaultyProcesses: (n - 1) / 2,
			Endpoint:        ep,
			FastSub:         router.Subscribe("fastpaxos/", 0),
			ClassicSub:      router.Subscribe(ClassicKind, 0),
			Oracle:          f.oracle,
		})
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		node.Start()
		f.nodes[p] = node
	}
	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.Stop()
		}
		for _, r := range f.routers {
			r.Close()
		}
	})
	return f
}
