package fastrobust

import (
	"context"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/types"
)

type fixture struct {
	procs []types.ProcID
	pool  *memsim.Pool
	ring  *sigs.KeyRing
	nodes map[types.ProcID]*Node
}

func newFixture(t *testing.T, n, m int, fastTimeout time.Duration) *fixture {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(m, func(types.MemID) []memsim.RegionSpec {
		return Layout(procs, 1)
	}, memsim.Options{LegalChange: LegalChange()})
	f := &fixture{
		procs: procs,
		pool:  pool,
		ring:  sigs.NewKeyRing(procs),
		nodes: make(map[types.ProcID]*Node),
	}
	oracle := omega.NewStatic(2) // backup-path leader; distinct from the fast-path leader on purpose
	for _, p := range procs {
		node, err := New(Config{
			Self:            p,
			Leader:          1,
			Procs:           procs,
			FaultyProcesses: (n - 1) / 2,
			FaultyMemories:  (m - 1) / 2,
			Memories:        pool.Memories(),
			Ring:            f.ring,
			Oracle:          oracle,
			FastTimeout:     fastTimeout,
		})
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		node.Start()
		f.nodes[p] = node
	}
	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.Stop()
		}
	})
	return f
}

func proposeAll(t *testing.T, f *fixture, ctx context.Context, inputs map[types.ProcID]types.Value) map[types.ProcID]Outcome {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := make(map[types.ProcID]Outcome)
	for _, p := range f.procs {
		if _, ok := inputs[p]; !ok {
			continue
		}
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			out, err := f.nodes[p].Propose(ctx, inputs[p])
			if err != nil {
				t.Errorf("Propose at %v: %v", p, err)
				return
			}
			mu.Lock()
			outcomes[p] = out
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return outcomes
}

func assertAgreement(t *testing.T, outcomes map[types.ProcID]Outcome) types.Value {
	t.Helper()
	var first types.Value
	for p, out := range outcomes {
		if first == nil {
			first = out.Value
			continue
		}
		if !out.Value.Equal(first) {
			t.Fatalf("agreement violated: %v decided %v, others decided %v", p, out.Value, first)
		}
	}
	return first
}

func TestCommonCaseAllDecideOnFastPath(t *testing.T) {
	f := newFixture(t, 3, 3, time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	inputs := map[types.ProcID]types.Value{
		1: types.Value("leader-value"),
		2: types.Value("leader-value"),
		3: types.Value("leader-value"),
	}
	outcomes := proposeAll(t, f, ctx, inputs)
	decision := assertAgreement(t, outcomes)
	if !decision.Equal(types.Value("leader-value")) {
		t.Fatalf("decision %v", decision)
	}
	leaderOut := outcomes[1]
	if !leaderOut.FastPath {
		t.Fatalf("leader should decide on the fast path in the common case")
	}
	if leaderOut.DecisionDelays != 2 {
		t.Fatalf("leader decision took %d delays, want 2 (Theorem 4.9)", leaderOut.DecisionDelays)
	}
	for p, out := range outcomes {
		if !out.FastPath {
			t.Fatalf("process %v fell back to the backup path in the common case", p)
		}
	}
}

func TestValidityInCommonCase(t *testing.T) {
	f := newFixture(t, 3, 3, time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// With no faulty processes the decision must be some process's input
	// (weak Byzantine agreement validity). The fast path always decides the
	// leader's input.
	inputs := map[types.ProcID]types.Value{
		1: types.Value("input-1"),
		2: types.Value("input-2"),
		3: types.Value("input-3"),
	}
	outcomes := proposeAll(t, f, ctx, inputs)
	decision := assertAgreement(t, outcomes)
	valid := false
	for _, in := range inputs {
		if decision.Equal(in) {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decision %v is not the input of any process", decision)
	}
}

func TestSilentLeaderFallsBackToBackup(t *testing.T) {
	f := newFixture(t, 3, 3, 50*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The fast-path leader p1 is Byzantine-silent: it never proposes. The
	// followers time out, abort, and the backup path must decide one of
	// their inputs.
	inputs := map[types.ProcID]types.Value{
		2: types.Value("backup-2"),
		3: types.Value("backup-3"),
	}
	outcomes := proposeAll(t, f, ctx, inputs)
	if len(outcomes) != 2 {
		t.Fatalf("expected 2 outcomes, got %d", len(outcomes))
	}
	decision := assertAgreement(t, outcomes)
	if !decision.Equal(types.Value("backup-2")) && !decision.Equal(types.Value("backup-3")) {
		t.Fatalf("backup decision %v is not a correct process's input", decision)
	}
	for p, out := range outcomes {
		if out.FastPath {
			t.Fatalf("process %v claims a fast-path decision with a silent leader", p)
		}
	}
}

func TestCompositionLeaderFastDecisionDominatesBackup(t *testing.T) {
	f := newFixture(t, 3, 3, 150*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The leader proposes alone and decides on the fast path. The two
	// followers never see unanimity (the leader already returned), so they
	// abort and run the backup. The Composition Lemma (4.8) requires the
	// backup to decide the leader's fast-path value.
	leaderOut, err := f.nodes[1].Propose(ctx, types.Value("fast-decided"))
	if err != nil {
		t.Fatalf("leader Propose: %v", err)
	}
	if !leaderOut.FastPath || !leaderOut.Value.Equal(types.Value("fast-decided")) {
		t.Fatalf("leader outcome %+v", leaderOut)
	}

	inputs := map[types.ProcID]types.Value{
		2: types.Value("follower-2"),
		3: types.Value("follower-3"),
	}
	outcomes := proposeAll(t, f, ctx, inputs)
	for p, out := range outcomes {
		if !out.Value.Equal(types.Value("fast-decided")) {
			t.Fatalf("composition violated: %v decided %v but the leader already decided fast-decided", p, out.Value)
		}
	}
}

func TestToleratesMemoryCrash(t *testing.T) {
	f := newFixture(t, 3, 3, time.Second)
	f.pool.CrashQuorumSafe(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	inputs := map[types.ProcID]types.Value{
		1: types.Value("with-memory-crash"),
		2: types.Value("with-memory-crash"),
		3: types.Value("with-memory-crash"),
	}
	outcomes := proposeAll(t, f, ctx, inputs)
	decision := assertAgreement(t, outcomes)
	if !decision.Equal(types.Value("with-memory-crash")) {
		t.Fatalf("decision %v", decision)
	}
	if out := outcomes[1]; !out.FastPath || out.DecisionDelays != 2 {
		t.Fatalf("leader should still be 2-deciding with a crashed memory minority: %+v", out)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	procs := []types.ProcID{1, 2, 3}
	pool := memsim.NewPool(3, func(types.MemID) []memsim.RegionSpec {
		return Layout(procs, 1)
	}, memsim.Options{LegalChange: LegalChange()})
	ring := sigs.NewKeyRing(procs)
	_, err := New(Config{
		Self:            1,
		Leader:          1,
		Procs:           procs,
		FaultyProcesses: 2, // n=3 cannot tolerate 2
		FaultyMemories:  1,
		Memories:        pool.Memories(),
		Ring:            ring,
	})
	if err == nil {
		t.Fatalf("invalid configuration accepted")
	}
}
