// Package fastrobust implements the paper's Fast & Robust algorithm (§4.3):
// the composition of the Cheap Quorum fast path with the Preferential Paxos
// backup path, yielding a 2-deciding algorithm for weak Byzantine agreement
// with n ≥ 2f_P + 1 processes and m ≥ 2f_M + 1 memories (Theorem 4.9).
//
// A process first runs Cheap Quorum. If it decides there, that is its
// decision (Lemma 4.8 guarantees the backup can only decide the same value).
// If Cheap Quorum aborts, the process uses its abort value — prioritized per
// Definition 3 (unanimity proof > leader signature > anything else) — as its
// input to Preferential Paxos and decides whatever the backup decides.
package fastrobust

import (
	"context"
	"fmt"
	"time"

	"rdmaagreement/internal/cheapquorum"
	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/regreg"
	"rdmaagreement/internal/robust"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Layout returns the per-memory region layout required by Fast & Robust: the
// Cheap Quorum regions (per-process Value/Panic/Proof plus the leader region)
// and the dynamic SWMR regions used by non-equivocating broadcast in the
// backup path.
func Layout(procs []types.ProcID, leader types.ProcID) []memsim.RegionSpec {
	specs := cheapquorum.Layout(procs, leader)
	specs = append(specs, regreg.DynamicLayout(procs)...)
	return specs
}

// LegalChange returns the permission-change policy for memories laid out with
// Layout: only revocation of write access on the Cheap Quorum leader region
// is ever legal.
func LegalChange() memsim.LegalChangeFunc { return cheapquorum.LegalChange() }

// Config configures a Fast & Robust participant.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Leader is the Cheap Quorum fast-path leader (p1 in the paper).
	Leader types.ProcID
	// Procs is the full process set; n ≥ 2·FaultyProcesses+1.
	Procs []types.ProcID
	// FaultyProcesses is f_P.
	FaultyProcesses int
	// FaultyMemories is f_M; m ≥ 2·FaultyMemories+1.
	FaultyMemories int
	// Memories is the shared memory pool (laid out with Layout/LegalChange).
	Memories []*memsim.Memory
	// Ring holds every process's signing keys.
	Ring *sigs.KeyRing
	// Oracle is the Ω oracle used by the backup path for liveness.
	Oracle omega.Oracle
	// FastTimeout is the Cheap Quorum common-case bound. Zero means 250ms.
	FastTimeout time.Duration
	// BackupRoundTimeout is the Paxos round timeout of the backup path. Zero
	// means 200ms.
	BackupRoundTimeout time.Duration
	// Clock is the causal delay clock shared by both paths; nil allocates a
	// private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

// Outcome describes how a Fast & Robust decision was reached.
type Outcome struct {
	// Value is the decided value.
	Value types.Value
	// FastPath reports whether the decision was reached on the Cheap Quorum
	// fast path.
	FastPath bool
	// DecisionDelays is the causal delay count of the decision (2 on the
	// fast path in the common case).
	DecisionDelays int64
}

// Node is one Fast & Robust participant.
type Node struct {
	cfg   Config
	cheap *cheapquorum.Node
	pref  *robust.PreferentialPaxos
}

// New wires a Fast & Robust participant over the shared memory pool.
func New(cfg Config) (*Node, error) {
	if cfg.Clock == nil {
		cfg.Clock = &delayclock.Clock{}
	}
	cheap, err := cheapquorum.New(cheapquorum.Config{
		Self:            cfg.Self,
		Leader:          cfg.Leader,
		Procs:           cfg.Procs,
		FaultyProcesses: cfg.FaultyProcesses,
		FaultyMemories:  cfg.FaultyMemories,
		Memories:        cfg.Memories,
		Ring:            cfg.Ring,
		Timeout:         cfg.FastTimeout,
		Clock:           cfg.Clock,
		Recorder:        cfg.Recorder,
	})
	if err != nil {
		return nil, fmt.Errorf("fast&robust: %w", err)
	}
	pref, err := robust.NewPreferentialPaxos(robust.Config{
		Self:            cfg.Self,
		Procs:           cfg.Procs,
		FaultyProcesses: cfg.FaultyProcesses,
		FaultyMemories:  cfg.FaultyMemories,
		Memories:        cfg.Memories,
		Ring:            cfg.Ring,
		Oracle:          cfg.Oracle,
		RoundTimeout:    cfg.BackupRoundTimeout,
		Clock:           cfg.Clock,
		Recorder:        cfg.Recorder,
	})
	if err != nil {
		return nil, fmt.Errorf("fast&robust: %w", err)
	}
	return &Node{cfg: cfg, cheap: cheap, pref: pref}, nil
}

// Start launches the backup path's background stack (the fast path needs no
// background work until Propose is called).
func (n *Node) Start() { n.pref.Start() }

// Stop terminates all background goroutines.
func (n *Node) Stop() {
	n.cheap.Stop()
	n.pref.Stop()
}

// Clock returns the node's delay clock.
func (n *Node) Clock() *delayclock.Clock { return n.cfg.Clock }

// Propose runs Fast & Robust with input v and returns the decision.
func (n *Node) Propose(ctx context.Context, v types.Value) (Outcome, error) {
	fast, err := n.cheap.Propose(ctx, v)
	if err != nil {
		return Outcome{}, fmt.Errorf("fast&robust fast path: %w", err)
	}
	if fast.Decided {
		n.cfg.Recorder.Record(n.cfg.Self, trace.KindInfo, fast.Value, n.cfg.Clock.Now(), "fast-path decision")
		return Outcome{Value: fast.Value, FastPath: true, DecisionDelays: fast.DecisionDelays}, nil
	}

	input := robust.PrioritizedValue{Value: fast.AbortValue, Priority: n.priorityOf(fast)}
	start := n.cfg.Clock.Now()
	decided, err := n.pref.Propose(ctx, input)
	if err != nil {
		return Outcome{}, fmt.Errorf("fast&robust backup path: %w", err)
	}
	return Outcome{
		Value:          decided,
		FastPath:       false,
		DecisionDelays: int64(n.cfg.Clock.Now() - start),
	}, nil
}

// priorityOf maps a Cheap Quorum abort outcome to the Definition-3 priority
// classes: T (unanimity proof) > M (leader signature) > B (everything else).
func (n *Node) priorityOf(out cheapquorum.Outcome) robust.Priority {
	switch {
	case out.HasUnanimityProof &&
		cheapquorum.VerifyUnanimityProof(n.cfg.Ring, n.cfg.Procs, n.cfg.Leader, out.AbortProof, out.AbortValue):
		return robust.PriorityUnanimity
	case out.LeaderSigned:
		return robust.PriorityLeaderSigned
	default:
		return robust.PriorityBottom
	}
}

// WaitDecision blocks until the backup path learns a decision. It is useful
// for processes that did not call Propose (for example crashed-and-recovered
// observers); fast-path decisions are returned by Propose directly.
func (n *Node) WaitDecision(ctx context.Context) (types.Value, error) {
	return n.pref.WaitDecision(ctx)
}
