package delayclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestStampAfterMessage(t *testing.T) {
	if Stamp(0).AfterMessage() != 1 {
		t.Fatalf("message should cost 1 delay")
	}
	if Stamp(5).AfterMessage() != 6 {
		t.Fatalf("message cost should add to current stamp")
	}
}

func TestStampAfterMemoryOp(t *testing.T) {
	if Stamp(0).AfterMemoryOp() != 2 {
		t.Fatalf("memory op should cost 2 delays")
	}
	if Stamp(3).AfterMemoryOp() != 5 {
		t.Fatalf("memory op cost should add to current stamp")
	}
}

func TestMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Max(3, 3) != 3 {
		t.Fatalf("Max broken")
	}
}

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock should read 0")
	}
}

func TestClockMergeMonotonic(t *testing.T) {
	var c Clock
	c.Merge(5)
	if c.Now() != 5 {
		t.Fatalf("merge should advance clock")
	}
	c.Merge(3)
	if c.Now() != 5 {
		t.Fatalf("merge must never move the clock backwards")
	}
}

func TestClockMergeAfterMessage(t *testing.T) {
	var c Clock
	got := c.MergeAfterMessage(4)
	if got != 5 || c.Now() != 5 {
		t.Fatalf("MergeAfterMessage(4) = %v, clock %v", got, c.Now())
	}
}

func TestClockMergeAfterMemoryOp(t *testing.T) {
	var c Clock
	got := c.MergeAfterMemoryOp(4)
	if got != 6 || c.Now() != 6 {
		t.Fatalf("MergeAfterMemoryOp(4) = %v, clock %v", got, c.Now())
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Merge(10)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset should zero the clock")
	}
}

func TestClockConcurrentMerge(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		wg.Add(1)
		go func(s Stamp) {
			defer wg.Done()
			c.Merge(s)
		}(Stamp(i))
	}
	wg.Wait()
	if c.Now() != 100 {
		t.Fatalf("concurrent merges lost the maximum: %v", c.Now())
	}
}

func TestSpanDelays(t *testing.T) {
	s := Span{Start: 3, End: 7}
	if s.Delays() != 4 {
		t.Fatalf("span delays = %d", s.Delays())
	}
}

// Property: merging is idempotent and commutative with respect to the final
// clock reading.
func TestMergeOrderIndependenceProperty(t *testing.T) {
	f := func(stamps []int16) bool {
		var a, b Clock
		for _, s := range stamps {
			a.Merge(Stamp(abs16(s)))
		}
		for i := len(stamps) - 1; i >= 0; i-- {
			b.Merge(Stamp(abs16(stamps[i])))
		}
		return a.Now() == b.Now()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never exceeds the largest merged stamp and never reads
// less than any merged stamp.
func TestMergeBoundsProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		var c Clock
		var max Stamp
		for _, s := range stamps {
			c.Merge(Stamp(s))
			if Stamp(s) > max {
				max = Stamp(s)
			}
		}
		return c.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs16(v int16) int16 {
	if v < 0 {
		if v == -32768 {
			return 32767
		}
		return -v
	}
	return v
}

func TestStampString(t *testing.T) {
	if Stamp(4).String() != "4Δ" {
		t.Fatalf("stamp stringer = %q", Stamp(4).String())
	}
	span := Span{Start: 1, End: 3}
	if span.String() == "" {
		t.Fatalf("span stringer empty")
	}
}
