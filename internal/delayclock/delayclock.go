// Package delayclock implements the causal delay accounting used to reproduce
// the paper's complexity metric.
//
// The paper measures the performance of agreement protocols in "delays":
// computation is instantaneous, each message takes one delay, and each memory
// operation takes two delays (a hardware round trip). A protocol is
// k-deciding if, in common-case executions, some process decides within k
// delays of the start of the protocol.
//
// The simulator reproduces this metric exactly by attaching a Stamp to every
// message and every memory operation. A process owns a Clock; when it sends a
// message the message carries the current reading; when the message is
// delivered the receiver advances its clock to max(local, stamp+1). A memory
// operation invoked at reading t completes with stamp t+2, which the caller
// merges. The number of delays consumed by a span of execution is the
// difference between the clock readings at its end and start, along the causal
// chain that produced the result.
package delayclock

import (
	"fmt"
	"sync"
)

// Stamp is a causal delay reading. Stamps are merged with Max semantics.
type Stamp int64

// MessageDelay is the cost, in delays, of delivering one message.
const MessageDelay Stamp = 1

// MemoryOpDelay is the cost, in delays, of one memory read, write or
// permission change (a hardware round trip).
const MemoryOpDelay Stamp = 2

// AfterMessage returns the stamp observed by the receiver of a message that
// was sent at reading s.
func (s Stamp) AfterMessage() Stamp { return s + MessageDelay }

// AfterMemoryOp returns the stamp observed by the invoker of a memory
// operation issued at reading s once the response arrives.
func (s Stamp) AfterMemoryOp() Stamp { return s + MemoryOpDelay }

// Max returns the larger of two stamps.
func Max(a, b Stamp) Stamp {
	if a > b {
		return a
	}
	return b
}

// String implements fmt.Stringer.
func (s Stamp) String() string { return fmt.Sprintf("%dΔ", int64(s)) }

// Clock is a process-local causal delay clock. The zero value is ready to use
// and reads zero. Clock is safe for concurrent use: protocols frequently
// merge stamps from goroutines that issue parallel memory operations.
type Clock struct {
	mu  sync.Mutex
	now Stamp
}

// Now returns the current reading.
func (c *Clock) Now() Stamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Merge advances the clock to at least s and returns the new reading.
func (c *Clock) Merge(s Stamp) Stamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s > c.now {
		c.now = s
	}
	return c.now
}

// MergeAfterMessage merges the stamp carried by a received message, accounting
// for the one-delay cost of the message itself, and returns the new reading.
func (c *Clock) MergeAfterMessage(sent Stamp) Stamp { return c.Merge(sent.AfterMessage()) }

// MergeAfterMemoryOp merges the completion of a memory operation that was
// invoked at reading invoked, accounting for the two-delay round trip, and
// returns the new reading.
func (c *Clock) MergeAfterMemoryOp(invoked Stamp) Stamp { return c.Merge(invoked.AfterMemoryOp()) }

// Reset sets the clock back to zero. Used by the harness between runs.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// Span measures the delays consumed between two readings of the same clock.
type Span struct {
	Start Stamp
	End   Stamp
}

// Delays returns the number of delays covered by the span.
func (s Span) Delays() int64 { return int64(s.End - s.Start) }

// String implements fmt.Stringer.
func (s Span) String() string { return fmt.Sprintf("[%s..%s]=%dΔ", s.Start, s.End, s.Delays()) }
