package robust

import (
	"context"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/regreg"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/types"
)

type fixture struct {
	procs  []types.ProcID
	pool   *memsim.Pool
	ring   *sigs.KeyRing
	oracle *omega.Static
}

func newFixture(t *testing.T, n, m int) *fixture {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(m, func(types.MemID) []memsim.RegionSpec {
		return regreg.DynamicLayout(procs)
	}, memsim.Options{})
	return &fixture{
		procs:  procs,
		pool:   pool,
		ring:   sigs.NewKeyRing(procs),
		oracle: omega.NewStatic(1),
	}
}

func (f *fixture) config(self types.ProcID, fP, fM int) Config {
	return Config{
		Self:            self,
		Procs:           f.procs,
		FaultyProcesses: fP,
		FaultyMemories:  fM,
		Memories:        f.pool.Memories(),
		Ring:            f.ring,
		Oracle:          f.oracle,
	}
}

func TestConfigValidation(t *testing.T) {
	f := newFixture(t, 3, 3)
	cfg := f.config(1, 1, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := f.config(1, 2, 1) // n=3 cannot tolerate 2 Byzantine processes
	if err := bad.Validate(); err == nil {
		t.Fatalf("n=3, f_P=2 should be rejected")
	}
	badMem := f.config(1, 1, 2) // m=3 cannot tolerate 2 memory crashes
	if err := badMem.Validate(); err == nil {
		t.Fatalf("m=3, f_M=2 should be rejected")
	}
	noRing := f.config(1, 1, 1)
	noRing.Ring = nil
	if err := noRing.Validate(); err == nil {
		t.Fatalf("missing key ring should be rejected")
	}
}

func TestBackupDecidesWithAllCorrect(t *testing.T) {
	f := newFixture(t, 3, 3)
	backups := make(map[types.ProcID]*Backup)
	for _, p := range f.procs {
		b, err := NewBackup(f.config(p, 1, 1))
		if err != nil {
			t.Fatalf("NewBackup(%v): %v", p, err)
		}
		b.Start()
		backups[p] = b
	}
	t.Cleanup(func() {
		for _, b := range backups {
			b.Stop()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make(map[types.ProcID]types.Value)
	var mu sync.Mutex
	inputs := map[types.ProcID]types.Value{1: types.Value("A"), 2: types.Value("B"), 3: types.Value("C")}
	for _, p := range f.procs {
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			v, err := backups[p].Propose(ctx, inputs[p])
			if err != nil {
				t.Errorf("Propose at %v: %v", p, err)
				return
			}
			mu.Lock()
			results[p] = v
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	// Agreement: all correct processes decide the same value.
	var first types.Value
	for p, v := range results {
		if first == nil {
			first = v
			continue
		}
		if !v.Equal(first) {
			t.Fatalf("agreement violated: %v decided %v, expected %v", p, v, first)
		}
	}
	// Validity (no faulty processes): the decision is some process's input.
	valid := false
	for _, in := range inputs {
		if first.Equal(in) {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decision %v is not the input of any process", first)
	}
}

func TestBackupToleratesSilentProcessAndCrashedMemory(t *testing.T) {
	f := newFixture(t, 3, 3)
	// One memory crashes (f_M = 1) and one process is silent (f_P = 1,
	// Byzantine behaviour restricted to a crash by the construction).
	f.pool.CrashQuorumSafe(1)

	backups := make(map[types.ProcID]*Backup)
	participants := []types.ProcID{1, 2} // p3 never participates
	for _, p := range participants {
		b, err := NewBackup(f.config(p, 1, 1))
		if err != nil {
			t.Fatalf("NewBackup(%v): %v", p, err)
		}
		b.Start()
		backups[p] = b
	}
	t.Cleanup(func() {
		for _, b := range backups {
			b.Stop()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make(map[types.ProcID]types.Value)
	var mu sync.Mutex
	for _, p := range participants {
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			v, err := backups[p].Propose(ctx, types.Value("resilient"))
			if err != nil {
				t.Errorf("Propose at %v: %v", p, err)
				return
			}
			mu.Lock()
			results[p] = v
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	for p, v := range results {
		if !v.Equal(types.Value("resilient")) {
			t.Fatalf("process %v decided %v", p, v)
		}
	}
}

func TestPreferentialPaxosPriorityDecision(t *testing.T) {
	f := newFixture(t, 3, 3)
	nodes := make(map[types.ProcID]*PreferentialPaxos)
	for _, p := range f.procs {
		pp, err := NewPreferentialPaxos(f.config(p, 1, 1))
		if err != nil {
			t.Fatalf("NewPreferentialPaxos(%v): %v", p, err)
		}
		pp.Start()
		nodes[p] = pp
	}
	t.Cleanup(func() {
		for _, pp := range nodes {
			pp.Stop()
		}
	})

	// f_P+1 = 2 processes hold the highest-priority value "fast"; the third
	// holds a lower-priority value. Lemma 4.7 requires the decision to be
	// "fast".
	inputs := map[types.ProcID]PrioritizedValue{
		1: {Value: types.Value("fast"), Priority: PriorityUnanimity},
		2: {Value: types.Value("fast"), Priority: PriorityUnanimity},
		3: {Value: types.Value("slow"), Priority: PriorityBottom},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	results := make(map[types.ProcID]types.Value)
	var mu sync.Mutex
	for _, p := range f.procs {
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			v, err := nodes[p].Propose(ctx, inputs[p])
			if err != nil {
				t.Errorf("Propose at %v: %v", p, err)
				return
			}
			mu.Lock()
			results[p] = v
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	for p, v := range results {
		if !v.Equal(types.Value("fast")) {
			t.Fatalf("process %v decided %v, want the highest-priority value", p, v)
		}
	}
}

func TestPrioritizedValueOrdering(t *testing.T) {
	top := PrioritizedValue{Value: types.Value("t"), Priority: PriorityUnanimity}
	mid := PrioritizedValue{Value: types.Value("m"), Priority: PriorityLeaderSigned}
	bot := PrioritizedValue{Value: types.Value("b"), Priority: PriorityBottom}
	if !top.better(mid) || !mid.better(bot) || !top.better(bot) {
		t.Fatalf("priority ordering broken")
	}
	if bot.better(top) || mid.better(top) {
		t.Fatalf("priority ordering not antisymmetric")
	}
	if top.better(top) {
		t.Fatalf("a value is not better than itself")
	}
}

func TestBackupRejectsInvalidConfig(t *testing.T) {
	f := newFixture(t, 3, 3)
	if _, err := NewBackup(f.config(1, 2, 1)); err == nil {
		t.Fatalf("NewBackup should reject n < 2f_P+1")
	}
	if _, err := NewPreferentialPaxos(f.config(1, 2, 1)); err == nil {
		t.Fatalf("NewPreferentialPaxos should reject n < 2f_P+1")
	}
}
