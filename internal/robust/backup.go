package robust

import (
	"context"
	"fmt"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/neb"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/paxos"
	"rdmaagreement/internal/regreg"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/trustedmsg"
	"rdmaagreement/internal/types"
)

// Config configures a Robust Backup (and Preferential Paxos) participant.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Procs is the full process set; it must satisfy n ≥ 2·FaultyProcesses+1.
	Procs []types.ProcID
	// FaultyProcesses is f_P, the maximum number of Byzantine processes.
	FaultyProcesses int
	// FaultyMemories is f_M, the maximum number of memory crashes; the
	// memory pool must satisfy m ≥ 2·FaultyMemories+1.
	FaultyMemories int
	// Memories is the shared memory pool.
	Memories []*memsim.Memory
	// Ring holds every process's signing keys.
	Ring *sigs.KeyRing
	// Oracle is the Ω leader oracle used for liveness of the embedded Paxos.
	// Nil makes every process willing to lead (safe, but may livelock under
	// contention).
	Oracle omega.Oracle
	// RoundTimeout is the embedded Paxos round timeout. Zero means 200ms
	// (trusted rounds are slower than plain network rounds).
	RoundTimeout time.Duration
	// Clock is the causal delay clock; nil allocates a private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

// Validate checks the resilience bounds of the configuration.
func (c *Config) Validate() error {
	if len(c.Procs) < 2*c.FaultyProcesses+1 {
		return fmt.Errorf("%w: n=%d processes cannot tolerate f_P=%d Byzantine failures (need n ≥ 2f_P+1)",
			types.ErrInvalidConfig, len(c.Procs), c.FaultyProcesses)
	}
	if len(c.Memories) < 2*c.FaultyMemories+1 {
		return fmt.Errorf("%w: m=%d memories cannot tolerate f_M=%d crashes (need m ≥ 2f_M+1)",
			types.ErrInvalidConfig, len(c.Memories), c.FaultyMemories)
	}
	if c.Ring == nil {
		return fmt.Errorf("%w: a key ring is required", types.ErrInvalidConfig)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 200 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &delayclock.Clock{}
	}
}

// Backup is one process's Robust Backup(Paxos) participant: weak Byzantine
// agreement with n ≥ 2f_P+1 processes and m ≥ 2f_M+1 memories.
type Backup struct {
	cfg  Config
	dmx  *demux
	node *paxos.Node
}

// NewBackup wires the full stack for one process: replicated SWMR registers →
// non-equivocating broadcast → T-send/T-receive → Paxos.
func NewBackup(cfg Config) (*Backup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("robust backup: %w", err)
	}
	cfg.applyDefaults()

	store, err := regreg.NewStore(cfg.Self, cfg.Memories, cfg.FaultyMemories, cfg.Clock)
	if err != nil {
		return nil, fmt.Errorf("robust backup: %w", err)
	}
	signer := cfg.Ring.SignerFor(cfg.Self)
	bcast := neb.New(cfg.Self, cfg.Procs, store, signer, neb.Options{Recorder: cfg.Recorder})
	tep := trustedmsg.New(cfg.Self, bcast, signer, trustedmsg.Options{})
	dmx := newDemux(tep)

	node := paxos.NewNode(paxos.Config{
		Self:         cfg.Self,
		Procs:        cfg.Procs,
		Oracle:       cfg.Oracle,
		RoundTimeout: cfg.RoundTimeout,
		Clock:        cfg.Clock,
		Recorder:     cfg.Recorder,
	}, newTrustedTransport(dmx))

	return &Backup{cfg: cfg, dmx: dmx, node: node}, nil
}

// Start launches the trusted messaging stack and the Paxos node.
func (b *Backup) Start() {
	b.dmx.start()
	b.node.Start()
}

// Stop terminates all background goroutines.
func (b *Backup) Stop() {
	b.node.Stop()
	b.dmx.stop()
}

// Clock returns the process's delay clock.
func (b *Backup) Clock() *delayclock.Clock { return b.cfg.Clock }

// Propose proposes v and returns the decided value.
func (b *Backup) Propose(ctx context.Context, v types.Value) (types.Value, error) {
	return b.node.Propose(ctx, v)
}

// WaitDecision blocks until this process learns the decision.
func (b *Backup) WaitDecision(ctx context.Context) (types.Value, error) {
	return b.node.WaitDecision(ctx)
}

// Decided returns the decided value, if any.
func (b *Backup) Decided() (types.Value, bool) { return b.node.Decided() }

// demuxHandle exposes the demux to Preferential Paxos (same package).
func (b *Backup) demuxHandle() *demux { return b.dmx }

// record is a convenience for trace events.
func (b *Backup) record(kind trace.Kind, v types.Value, detail string, args ...any) {
	b.cfg.Recorder.Record(b.cfg.Self, kind, v, b.cfg.Clock.Now(), detail, args...)
}
