package robust

import (
	"context"
	"encoding/json"
	"fmt"

	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/trustedmsg"
	"rdmaagreement/internal/types"
)

// Priority orders the inputs of Preferential Paxos. Larger values are higher
// priority. Fast & Robust uses the three levels of Definition 3.
type Priority int

// Priority levels of Definition 3 (Fast & Robust).
const (
	// PriorityBottom is the default priority (set B in the paper).
	PriorityBottom Priority = 0
	// PriorityLeaderSigned marks abort values carrying the leader's
	// signature (set M).
	PriorityLeaderSigned Priority = 1
	// PriorityUnanimity marks abort values carrying a correct unanimity
	// proof (set T).
	PriorityUnanimity Priority = 2
)

// PrioritizedValue is an input to Preferential Paxos.
type PrioritizedValue struct {
	Value    types.Value `json:"value"`
	Priority Priority    `json:"priority"`
}

// better reports whether a should be preferred over b.
func (a PrioritizedValue) better(b PrioritizedValue) bool {
	return a.Priority > b.Priority
}

// PreferentialPaxos implements Algorithm 8: a set-up phase in which each
// process adopts the highest-priority value among n − f_P received inputs,
// followed by Robust Backup(Paxos) on the adopted values.
//
// Its key property (Lemma 4.7) is that the decision is always one of the
// f_P + 1 highest-priority inputs; in particular, if at least f_P + 1 correct
// processes share the highest-priority input value, that value is decided.
type PreferentialPaxos struct {
	backup *Backup
	setup  <-chan trustedmsg.Received
}

// NewPreferentialPaxos creates a Preferential Paxos participant on top of a
// fully wired Robust Backup.
func NewPreferentialPaxos(cfg Config) (*PreferentialPaxos, error) {
	backup, err := NewBackup(cfg)
	if err != nil {
		return nil, fmt.Errorf("preferential paxos: %w", err)
	}
	return &PreferentialPaxos{
		backup: backup,
		setup:  backup.demuxHandle().subscribe(channelSetup),
	}, nil
}

// Start launches the underlying stack.
func (p *PreferentialPaxos) Start() { p.backup.Start() }

// Stop terminates the underlying stack.
func (p *PreferentialPaxos) Stop() { p.backup.Stop() }

// Backup exposes the underlying Robust Backup (used by Fast & Robust to reuse
// the same stack).
func (p *PreferentialPaxos) Backup() *Backup { return p.backup }

// Propose runs the set-up phase with the given prioritized input and then
// proposes the adopted value to Robust Backup(Paxos), returning the decision.
func (p *PreferentialPaxos) Propose(ctx context.Context, input PrioritizedValue) (types.Value, error) {
	adopted, err := p.setupPhase(ctx, input)
	if err != nil {
		return nil, err
	}
	p.backup.record(trace.KindInfo, adopted.Value, "preferential paxos adopted priority %d", adopted.Priority)
	return p.backup.Propose(ctx, adopted.Value)
}

// WaitDecision blocks until this process learns the decision.
func (p *PreferentialPaxos) WaitDecision(ctx context.Context) (types.Value, error) {
	return p.backup.WaitDecision(ctx)
}

// setupPhase T-sends the process's own input to everyone, waits for inputs
// from n − f_P distinct processes (its own included), and returns the
// highest-priority value seen.
func (p *PreferentialPaxos) setupPhase(ctx context.Context, input PrioritizedValue) (PrioritizedValue, error) {
	cfg := p.backup.cfg
	payload, err := json.Marshal(input)
	if err != nil {
		return PrioritizedValue{}, fmt.Errorf("preferential paxos setup: encode: %w", err)
	}
	if err := p.backup.demuxHandle().send(ctx, channelSetup, trustedmsg.BroadcastTo, payload); err != nil {
		return PrioritizedValue{}, fmt.Errorf("preferential paxos setup: %w", err)
	}

	need := len(cfg.Procs) - cfg.FaultyProcesses
	seen := make(map[types.ProcID]PrioritizedValue, need)
	best := input
	for len(seen) < need {
		select {
		case rec := <-p.setup:
			var pv PrioritizedValue
			if err := json.Unmarshal(rec.Msg, &pv); err != nil {
				continue
			}
			if _, dup := seen[rec.From]; dup {
				continue
			}
			seen[rec.From] = pv
			if pv.better(best) {
				best = pv
			}
		case <-ctx.Done():
			return PrioritizedValue{}, fmt.Errorf("preferential paxos setup at %s: %w", cfg.Self, ctx.Err())
		}
	}
	return best, nil
}
