// Package robust implements the paper's Robust Backup construction (§4.1) and
// Preferential Paxos (§4.3, Algorithm 8).
//
// Robust Backup(A) takes a crash-tolerant message-passing consensus algorithm
// A — here, classic Paxos — and replaces its sends and receives with the
// trusted T-send/T-receive primitives built from non-equivocating broadcast
// and signatures. Following Clement et al., this yields weak Byzantine
// agreement with only n ≥ 2f_P + 1 processes; the replicated-register layer
// underneath additionally tolerates f_M < m/2 memory crashes.
//
// Preferential Paxos wraps Robust Backup(Paxos) with a set-up phase in which
// every process T-sends its (value, priority) pair, waits for n − f_P such
// pairs, and adopts the highest-priority value seen. This guarantees that the
// decision is always one of the f_P + 1 highest-priority inputs, which is the
// property Fast & Robust needs to glue the fast path to the backup path.
package robust

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/paxos"
	"rdmaagreement/internal/trustedmsg"
	"rdmaagreement/internal/types"
)

// channelEnvelope wraps every payload sent through the shared trusted
// endpoint with a logical channel name, so that the set-up phase and the
// Paxos phase of Preferential Paxos can share one endpoint without seeing
// each other's messages.
type channelEnvelope struct {
	Channel string `json:"channel"`
	Payload []byte `json:"payload"`
}

// Channel names used by this package.
const (
	channelPaxos = "paxos"
	channelSetup = "setup"
)

// demux fans the messages T-received on one endpoint out to per-channel
// subscribers.
type demux struct {
	ep *trustedmsg.Endpoint

	mu   sync.Mutex
	subs map[string]chan trustedmsg.Received

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

func newDemux(ep *trustedmsg.Endpoint) *demux {
	return &demux{ep: ep, subs: make(map[string]chan trustedmsg.Received)}
}

// subscribe returns the channel of messages for a logical channel name.
func (d *demux) subscribe(channel string) <-chan trustedmsg.Received {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ch, ok := d.subs[channel]; ok {
		return ch
	}
	ch := make(chan trustedmsg.Received, 1024)
	d.subs[channel] = ch
	return ch
}

// send T-sends payload on the logical channel to the destination process (or
// every process when to is trustedmsg.BroadcastTo).
func (d *demux) send(ctx context.Context, channel string, to types.ProcID, payload []byte) error {
	blob, err := json.Marshal(channelEnvelope{Channel: channel, Payload: payload})
	if err != nil {
		return fmt.Errorf("demux send: encode: %w", err)
	}
	return d.ep.TSend(ctx, to, blob)
}

// start launches the trusted endpoint and the demux pump.
func (d *demux) start() {
	ctx, cancel := context.WithCancel(context.Background())
	d.cancel = cancel
	d.ep.Start()
	d.wg.Add(1)
	go d.pump(ctx)
}

// stop terminates the pump and the trusted endpoint.
func (d *demux) stop() {
	if d.cancel != nil {
		d.cancel()
	}
	d.ep.Stop()
	d.wg.Wait()
}

func (d *demux) pump(ctx context.Context) {
	defer d.wg.Done()
	for {
		rec, err := d.ep.Receive(ctx)
		if err != nil {
			return
		}
		var env channelEnvelope
		if err := json.Unmarshal(rec.Msg, &env); err != nil {
			continue
		}
		d.mu.Lock()
		ch, ok := d.subs[env.Channel]
		d.mu.Unlock()
		if !ok {
			continue
		}
		rec.Msg = env.Payload
		select {
		case ch <- rec:
		case <-ctx.Done():
			return
		}
	}
}

// trustedTransport adapts a demux channel to the paxos.Transport interface,
// turning the plain sends and receives of Paxos into T-sends and T-receives.
type trustedTransport struct {
	d  *demux
	in <-chan trustedmsg.Received
}

var _ paxos.Transport = (*trustedTransport)(nil)

func newTrustedTransport(d *demux) *trustedTransport {
	return &trustedTransport{d: d, in: d.subscribe(channelPaxos)}
}

// Send implements paxos.Transport.
func (t *trustedTransport) Send(ctx context.Context, to types.ProcID, payload []byte, _ delayclock.Stamp) error {
	return t.d.send(ctx, channelPaxos, to, payload)
}

// Broadcast implements paxos.Transport.
func (t *trustedTransport) Broadcast(ctx context.Context, payload []byte, _ delayclock.Stamp) error {
	return t.d.send(ctx, channelPaxos, trustedmsg.BroadcastTo, payload)
}

// Receive implements paxos.Transport.
func (t *trustedTransport) Receive(ctx context.Context) (types.ProcID, []byte, delayclock.Stamp, error) {
	select {
	case rec := <-t.in:
		return rec.From, rec.Msg, rec.Stamp, nil
	case <-ctx.Done():
		return types.NoProcess, nil, 0, fmt.Errorf("trusted transport receive: %w", ctx.Err())
	}
}
