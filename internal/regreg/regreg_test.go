package regreg

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/types"
)

var testProcs = []types.ProcID{1, 2, 3}

func testRegisters(types.ProcID) []types.RegisterID {
	return []types.RegisterID{"r1", "r2"}
}

func newTestPool(m int) *memsim.Pool {
	layout := func(types.MemID) []memsim.RegionSpec {
		return Layout(testProcs, testRegisters)
	}
	return memsim.NewPool(m, layout, memsim.Options{})
}

func newStoreOrFail(t *testing.T, p types.ProcID, pool *memsim.Pool, fM int) *Store {
	t.Helper()
	s, err := NewStore(p, pool.Memories(), fM, &delayclock.Clock{})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

func TestNewStoreRejectsBadConfig(t *testing.T) {
	pool := newTestPool(2)
	if _, err := NewStore(1, pool.Memories(), 1, nil); !errors.Is(err, types.ErrInvalidConfig) {
		t.Fatalf("2 memories with f_M=1 should be invalid, got %v", err)
	}
}

func TestWriteThenReadAcrossProcesses(t *testing.T) {
	pool := newTestPool(3)
	writer := newStoreOrFail(t, 1, pool, 1)
	reader := newStoreOrFail(t, 2, pool, 1)
	ctx := context.Background()

	if err := writer.Write(ctx, "r1", types.Value("v1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := reader.Read(ctx, 1, "r1")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Equal(types.Value("v1")) {
		t.Fatalf("read %v, want v1", got)
	}
}

func TestReadUnwrittenReturnsBottom(t *testing.T) {
	pool := newTestPool(3)
	reader := newStoreOrFail(t, 2, pool, 1)
	got, err := reader.Read(context.Background(), 1, "r1")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Bottom() {
		t.Fatalf("unwritten register should read ⊥, got %v", got)
	}
}

func TestNonOwnerWriteRejected(t *testing.T) {
	pool := newTestPool(3)
	intruder := newStoreOrFail(t, 2, pool, 1)
	err := intruder.WriteAs(context.Background(), 1, "r1", types.Value("forged"))
	if !errors.Is(err, types.ErrNak) {
		t.Fatalf("non-owner write should nak, got %v", err)
	}
	// The register must remain ⊥ everywhere.
	reader := newStoreOrFail(t, 3, pool, 1)
	got, err := reader.Read(context.Background(), 1, "r1")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Bottom() {
		t.Fatalf("rejected write modified the register: %v", got)
	}
}

func TestToleratesMinorityMemoryCrashes(t *testing.T) {
	pool := newTestPool(5)
	pool.CrashQuorumSafe(2) // f_M = 2, m = 5
	writer := newStoreOrFail(t, 1, pool, 2)
	reader := newStoreOrFail(t, 2, pool, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	if err := writer.Write(ctx, "r1", types.Value("survives")); err != nil {
		t.Fatalf("Write with crashed minority: %v", err)
	}
	got, err := reader.Read(ctx, 1, "r1")
	if err != nil {
		t.Fatalf("Read with crashed minority: %v", err)
	}
	if !got.Equal(types.Value("survives")) {
		t.Fatalf("read %v, want survives", got)
	}
}

func TestMajorityCrashBlocksUntilContext(t *testing.T) {
	pool := newTestPool(3)
	pool.CrashQuorumSafe(2) // more than f_M = 1
	writer := newStoreOrFail(t, 1, pool, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := writer.Write(ctx, "r1", types.Value("stuck"))
	if err == nil {
		t.Fatalf("write should not succeed without a quorum of live memories")
	}
}

func TestDelayAccounting(t *testing.T) {
	pool := newTestPool(3)
	writer := newStoreOrFail(t, 1, pool, 1)
	ctx := context.Background()
	if err := writer.Write(ctx, "r1", types.Value("a")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := writer.Clock().Now(); got != 2 {
		t.Fatalf("one replicated write should cost 2 delays (parallel round trips), got %v", got)
	}
	if _, err := writer.Read(ctx, 1, "r1"); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got := writer.Clock().Now(); got != 4 {
		t.Fatalf("write+read should cost 4 delays, got %v", got)
	}
}

func TestReadSeesLatestOwnerWrite(t *testing.T) {
	pool := newTestPool(3)
	writer := newStoreOrFail(t, 1, pool, 1)
	reader := newStoreOrFail(t, 3, pool, 1)
	ctx := context.Background()
	for i, v := range []string{"a", "b", "c"} {
		if err := writer.Write(ctx, "r2", types.Value(v)); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
	}
	got, err := reader.Read(ctx, 1, "r2")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Equal(types.Value("c")) {
		t.Fatalf("read %v, want the latest value c", got)
	}
}

func TestConflictingReplicasReadAsBottom(t *testing.T) {
	// Simulate a partially completed write by writing different values
	// directly to individual memories (bypassing the store), then check the
	// replicated read degrades to ⊥ rather than inventing a value.
	pool := newTestPool(3)
	ctx := context.Background()
	mems := pool.Memories()
	if _, err := mems[0].Write(ctx, 1, OwnerRegion(1), ownerRegister(1, "r1"), types.Value("x"), 0); err != nil {
		t.Fatalf("direct write: %v", err)
	}
	if _, err := mems[1].Write(ctx, 1, OwnerRegion(1), ownerRegister(1, "r1"), types.Value("y"), 0); err != nil {
		t.Fatalf("direct write: %v", err)
	}
	reader := newStoreOrFail(t, 2, pool, 1)
	// The read may legitimately return x, y or ⊥ depending on which majority
	// answers first; what it must never do is fail or return a value that was
	// never written.
	got, err := reader.Read(ctx, 1, "r1")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !got.Bottom() && !got.Equal(types.Value("x")) && !got.Equal(types.Value("y")) {
		t.Fatalf("read invented value %v", got)
	}
}

func TestRegistrySharesStores(t *testing.T) {
	pool := newTestPool(3)
	reg := NewRegistry(pool.Memories(), 1)
	a, err := reg.StoreFor(1, &delayclock.Clock{})
	if err != nil {
		t.Fatalf("StoreFor: %v", err)
	}
	b, err := reg.StoreFor(1, &delayclock.Clock{})
	if err != nil {
		t.Fatalf("StoreFor: %v", err)
	}
	if a != b {
		t.Fatalf("registry should cache stores per process")
	}
	if a.Self() != 1 {
		t.Fatalf("store self = %v", a.Self())
	}
	if _, err := reg.StoreFor(2, nil); err != nil {
		t.Fatalf("StoreFor with nil clock: %v", err)
	}
}

func TestLayoutPermissions(t *testing.T) {
	specs := Layout(testProcs, testRegisters)
	if len(specs) != len(testProcs) {
		t.Fatalf("layout should produce one region per process")
	}
	for i, spec := range specs {
		owner := testProcs[i]
		if !spec.Perm.CanWrite(owner) {
			t.Fatalf("owner %v cannot write its own region", owner)
		}
		for _, other := range testProcs {
			if other != owner && spec.Perm.CanWrite(other) {
				t.Fatalf("process %v can write region of %v", other, owner)
			}
			if !spec.Perm.CanRead(other) {
				t.Fatalf("process %v cannot read region of %v", other, owner)
			}
		}
	}
}
