// Package regreg implements fault-tolerant single-writer multi-reader (SWMR)
// regular registers on top of fail-prone memories.
//
// The paper (§4.1, "Non-equivocation in our model") replicates each register
// across m ≥ 2f_M + 1 memories: a write stores the value on every memory and
// waits for a majority of acknowledgements; a read queries every memory,
// waits for a majority of responses and returns the unique non-⊥ value seen,
// or ⊥ if the responses do not agree on a single non-⊥ value. Because each
// register has a single writer, this implements a regular register even when
// up to f_M memories crash.
//
// Registers are grouped per owner into an SWMR region on every memory, so the
// memories' permission checks enforce the single-writer property even against
// Byzantine processes.
package regreg

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/types"
)

// OwnerRegion returns the identifier of the SWMR region that holds the
// registers owned by owner on every memory.
func OwnerRegion(owner types.ProcID) types.RegionID {
	return types.RegionID(fmt.Sprintf("swmr/%d", int(owner)))
}

// ownerRegister namespaces a register name by its owner so that two owners'
// registers with the same logical name map to distinct registers on the
// underlying memories (in the paper's algorithms a register belongs to
// exactly one region).
func ownerRegister(owner types.ProcID, reg types.RegisterID) types.RegisterID {
	return types.RegisterID(fmt.Sprintf("%d/%s", int(owner), reg))
}

// Layout builds the per-memory region layout for a set of processes: one SWMR
// region per process containing the registers produced by registersFor. The
// same layout is installed on every memory of the pool.
func Layout(procs []types.ProcID, registersFor func(owner types.ProcID) []types.RegisterID) []memsim.RegionSpec {
	specs := make([]memsim.RegionSpec, 0, len(procs))
	for _, owner := range procs {
		regs := registersFor(owner)
		namespaced := make([]types.RegisterID, 0, len(regs))
		for _, reg := range regs {
			namespaced = append(namespaced, ownerRegister(owner, reg))
		}
		specs = append(specs, memsim.RegionSpec{
			ID:        OwnerRegion(owner),
			Registers: namespaced,
			Perm:      memsim.SWMRPermission(owner, procs),
		})
	}
	return specs
}

// DynamicLayout builds a per-memory region layout with one dynamic SWMR
// region per process: any register name may be used without pre-declaration.
// Protocols with unbounded register arrays (non-equivocating broadcast's
// n×M×n slots) use this layout.
func DynamicLayout(procs []types.ProcID) []memsim.RegionSpec {
	specs := make([]memsim.RegionSpec, 0, len(procs))
	for _, owner := range procs {
		specs = append(specs, memsim.RegionSpec{
			ID:      OwnerRegion(owner),
			Perm:    memsim.SWMRPermission(owner, procs),
			Dynamic: true,
		})
	}
	return specs
}

// Store is a process's handle on the replicated registers. Each process
// creates its own Store; the underlying memories are shared.
type Store struct {
	self     types.ProcID
	memories []*memsim.Memory
	faultyM  int
	clock    *delayclock.Clock
}

// NewStore creates a handle for process self over the given memories,
// tolerating up to faultyMemories crashes. The configuration must satisfy
// m ≥ 2·faultyMemories + 1.
func NewStore(self types.ProcID, memories []*memsim.Memory, faultyMemories int, clock *delayclock.Clock) (*Store, error) {
	if len(memories) < 2*faultyMemories+1 {
		return nil, fmt.Errorf("%w: %d memories cannot tolerate %d memory crashes (need m ≥ 2f_M+1)",
			types.ErrInvalidConfig, len(memories), faultyMemories)
	}
	if clock == nil {
		clock = &delayclock.Clock{}
	}
	return &Store{self: self, memories: memories, faultyM: faultyMemories, clock: clock}, nil
}

// Clock returns the delay clock the store merges operation completions into.
func (s *Store) Clock() *delayclock.Clock { return s.clock }

// Self returns the process this store acts for.
func (s *Store) Self() types.ProcID { return s.self }

// quorum returns the number of memory responses a replicated operation waits
// for: all memories minus the tolerated crashes, which is at least a
// majority.
func (s *Store) quorum() int { return len(s.memories) - s.faultyM }

type memResult struct {
	value types.Value
	stamp delayclock.Stamp
	err   error
}

// Write stores v in the register reg owned by the calling process, replicated
// on a majority of memories. Only the owner can successfully write (the
// memories' SWMR permissions reject anyone else).
func (s *Store) Write(ctx context.Context, reg types.RegisterID, v types.Value) error {
	return s.WriteAs(ctx, s.self, reg, v)
}

// WriteAs writes to the register reg in owner's region. Correct processes
// only call it with owner == self; it exists so that tests can demonstrate
// that the memories reject such writes from other processes.
func (s *Store) WriteAs(ctx context.Context, owner types.ProcID, reg types.RegisterID, v types.Value) error {
	region := OwnerRegion(owner)
	reg = ownerRegister(owner, reg)
	invoked := s.clock.Now()
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan memResult, len(s.memories))
	for _, mem := range s.memories {
		go func(mem *memsim.Memory) {
			stamp, err := mem.Write(opCtx, s.self, region, reg, v, invoked)
			results <- memResult{stamp: stamp, err: err}
		}(mem)
	}

	acks := 0
	var firstErr error
	for i := 0; i < len(s.memories); i++ {
		select {
		case res := <-results:
			if res.err != nil {
				if firstErr == nil {
					firstErr = res.err
				}
				// A nak (permission denied) is a definitive rejection: it will
				// be identical on every memory, so fail fast.
				if errors.Is(res.err, types.ErrNak) {
					return fmt.Errorf("replicated write %s/%s: %w", region, reg, res.err)
				}
				continue
			}
			s.clock.Merge(res.stamp)
			acks++
			if acks >= s.quorum() {
				return nil
			}
		case <-ctx.Done():
			return fmt.Errorf("replicated write %s/%s: %w", region, reg, ctx.Err())
		}
	}
	if firstErr == nil {
		firstErr = types.ErrMemoryCrashed
	}
	return fmt.Errorf("replicated write %s/%s: quorum of %d not reached: %w", region, reg, s.quorum(), firstErr)
}

// Read returns the value of the register reg owned by owner. It queries every
// memory, waits for a majority, and returns the unique non-⊥ value observed
// or ⊥ if the responses disagree (possible only while a write is in flight,
// which regular-register semantics allow).
func (s *Store) Read(ctx context.Context, owner types.ProcID, reg types.RegisterID) (types.Value, error) {
	region := OwnerRegion(owner)
	reg = ownerRegister(owner, reg)
	invoked := s.clock.Now()
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan memResult, len(s.memories))
	for _, mem := range s.memories {
		go func(mem *memsim.Memory) {
			v, stamp, err := mem.Read(opCtx, s.self, region, reg, invoked)
			results <- memResult{value: v, stamp: stamp, err: err}
		}(mem)
	}

	responses := 0
	var distinct types.Value
	sawConflict := false
	var firstErr error
	for i := 0; i < len(s.memories); i++ {
		select {
		case res := <-results:
			if res.err != nil {
				if firstErr == nil {
					firstErr = res.err
				}
				if errors.Is(res.err, types.ErrNak) {
					return nil, fmt.Errorf("replicated read %s/%s: %w", region, reg, res.err)
				}
				continue
			}
			s.clock.Merge(res.stamp)
			responses++
			if !res.value.Bottom() {
				switch {
				case distinct.Bottom():
					distinct = res.value
				case !distinct.Equal(res.value):
					sawConflict = true
				}
			}
			if responses >= s.quorum() {
				if sawConflict {
					return nil, nil
				}
				return distinct, nil
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("replicated read %s/%s: %w", region, reg, ctx.Err())
		}
	}
	if firstErr == nil {
		firstErr = types.ErrMemoryCrashed
	}
	return nil, fmt.Errorf("replicated read %s/%s: quorum of %d not reached: %w", region, reg, s.quorum(), firstErr)
}

// Registry builds Stores for every process of a cluster over a shared memory
// pool, so protocol constructors do not repeat the wiring.
type Registry struct {
	mu      sync.Mutex
	stores  map[types.ProcID]*Store
	mems    []*memsim.Memory
	faultyM int
}

// NewRegistry creates a registry over the given memories.
func NewRegistry(memories []*memsim.Memory, faultyMemories int) *Registry {
	return &Registry{
		stores:  make(map[types.ProcID]*Store),
		mems:    memories,
		faultyM: faultyMemories,
	}
}

// StoreFor returns (creating if needed) the store of process p using the
// given clock. Subsequent calls for the same process return the original
// store regardless of clock.
func (r *Registry) StoreFor(p types.ProcID, clock *delayclock.Clock) (*Store, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.stores[p]; ok {
		return s, nil
	}
	s, err := NewStore(p, r.mems, r.faultyM, clock)
	if err != nil {
		return nil, err
	}
	r.stores[p] = s
	return s, nil
}
