package neb

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/regreg"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/types"
)

type cluster struct {
	procs        []types.ProcID
	pool         *memsim.Pool
	ring         *sigs.KeyRing
	broadcasters map[types.ProcID]*Broadcaster
}

func newCluster(t *testing.T, n, m, fM int) *cluster {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(m, func(types.MemID) []memsim.RegionSpec {
		return regreg.DynamicLayout(procs)
	}, memsim.Options{})
	ring := sigs.NewKeyRing(procs)
	c := &cluster{procs: procs, pool: pool, ring: ring, broadcasters: make(map[types.ProcID]*Broadcaster)}
	for _, p := range procs {
		store, err := regreg.NewStore(p, pool.Memories(), fM, &delayclock.Clock{})
		if err != nil {
			t.Fatalf("NewStore(%v): %v", p, err)
		}
		c.broadcasters[p] = New(p, procs, store, ring.SignerFor(p), Options{})
	}
	return c
}

func TestBroadcastDeliveredByAll(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	ctx := context.Background()

	seq, err := c.broadcasters[1].Broadcast(ctx, []byte("hello"))
	if err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if seq != 1 {
		t.Fatalf("first broadcast should use seq 1, got %d", seq)
	}
	for _, p := range c.procs {
		d, err := c.broadcasters[p].TryDeliver(ctx, 1)
		if err != nil {
			t.Fatalf("TryDeliver at %v: %v", p, err)
		}
		if d == nil {
			t.Fatalf("process %v did not deliver", p)
		}
		if d.From != 1 || d.Seq != 1 || string(d.Msg) != "hello" {
			t.Fatalf("process %v delivered %+v", p, d)
		}
	}
}

func TestDeliveryRequiresBroadcast(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	d, err := c.broadcasters[2].TryDeliver(context.Background(), 1)
	if err != nil {
		t.Fatalf("TryDeliver: %v", err)
	}
	if d != nil {
		t.Fatalf("delivered a message that was never broadcast: %+v", d)
	}
}

func TestSequentialBroadcastsDeliveredInOrder(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	ctx := context.Background()
	msgs := []string{"a", "b", "c"}
	for _, m := range msgs {
		if _, err := c.broadcasters[1].Broadcast(ctx, []byte(m)); err != nil {
			t.Fatalf("Broadcast %q: %v", m, err)
		}
	}
	for i, want := range msgs {
		d, err := c.broadcasters[3].TryDeliver(ctx, 1)
		if err != nil {
			t.Fatalf("TryDeliver %d: %v", i, err)
		}
		if d == nil {
			t.Fatalf("message %d not delivered", i)
		}
		if string(d.Msg) != want || d.Seq != uint64(i+1) {
			t.Fatalf("delivery %d = %+v, want msg %q seq %d", i, d, want, i+1)
		}
	}
}

func TestEquivocationNeverDeliveredInconsistently(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	ctx := context.Background()
	byz := c.broadcasters[3]

	// The Byzantine process broadcasts "v1" and lets p1 deliver it.
	if err := byz.broadcastAt(ctx, 1, []byte("v1")); err != nil {
		t.Fatalf("byzantine broadcast v1: %v", err)
	}
	d1, err := c.broadcasters[1].TryDeliver(ctx, 3)
	if err != nil {
		t.Fatalf("TryDeliver at p1: %v", err)
	}
	if d1 == nil || string(d1.Msg) != "v1" {
		t.Fatalf("p1 should deliver v1, got %+v", d1)
	}

	// It then overwrites its slot for the same sequence number with "v2"
	// (it owns the region, so the memories accept the write).
	if err := byz.broadcastAt(ctx, 1, []byte("v2")); err != nil {
		t.Fatalf("byzantine broadcast v2: %v", err)
	}

	// p2 must not deliver v2: it sees p1's copy of v1 and detects the
	// equivocation.
	d2, err := c.broadcasters[2].TryDeliver(ctx, 3)
	if err != nil {
		t.Fatalf("TryDeliver at p2: %v", err)
	}
	if d2 != nil && string(d2.Msg) == "v2" {
		t.Fatalf("agreement violated: p1 delivered v1 but p2 delivered v2")
	}
}

func TestForgedValueNeverDelivered(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	ctx := context.Background()

	// p3 writes a value into its own slot that claims to be from p3 but has
	// an invalid signature (for example, produced without the private key).
	store := c.broadcasters[3].store
	forged := sigs.Forge(3, []byte(`{"seq":1,"msg":"Zm9yZ2Vk"}`))
	blob, err := json.Marshal(forged)
	if err != nil {
		t.Fatalf("marshal forged: %v", err)
	}
	if err := store.Write(ctx, slotRegister(1, 3), blob); err != nil {
		t.Fatalf("write forged: %v", err)
	}
	d, err := c.broadcasters[1].TryDeliver(ctx, 3)
	if err != nil {
		t.Fatalf("TryDeliver: %v", err)
	}
	if d != nil {
		t.Fatalf("forged value was delivered: %+v", d)
	}
}

func TestBackgroundDeliveryLoop(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	ctx := context.Background()

	receiver := c.broadcasters[2]
	receiver.Start()
	defer receiver.Stop()

	if _, err := c.broadcasters[1].Broadcast(ctx, []byte("from-1")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if _, err := c.broadcasters[3].Broadcast(ctx, []byte("from-3")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}

	got := make(map[types.ProcID]string)
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case d := <-receiver.Deliveries():
			got[d.From] = string(d.Msg)
		case <-deadline:
			t.Fatalf("timed out waiting for deliveries, got %v", got)
		}
	}
	if got[1] != "from-1" || got[3] != "from-3" {
		t.Fatalf("unexpected deliveries: %v", got)
	}
}

func TestToleratesMemoryCrashMinority(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	c.pool.CrashQuorumSafe(1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if _, err := c.broadcasters[1].Broadcast(ctx, []byte("resilient")); err != nil {
		t.Fatalf("Broadcast with crashed memory: %v", err)
	}
	d, err := c.broadcasters[2].TryDeliver(ctx, 1)
	if err != nil {
		t.Fatalf("TryDeliver with crashed memory: %v", err)
	}
	if d == nil || string(d.Msg) != "resilient" {
		t.Fatalf("delivery with crashed memory = %+v", d)
	}
}

func TestSelfDelivery(t *testing.T) {
	c := newCluster(t, 3, 3, 1)
	ctx := context.Background()
	if _, err := c.broadcasters[1].Broadcast(ctx, []byte("note-to-self")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	d, err := c.broadcasters[1].TryDeliver(ctx, 1)
	if err != nil {
		t.Fatalf("TryDeliver: %v", err)
	}
	if d == nil || string(d.Msg) != "note-to-self" {
		t.Fatalf("self delivery = %+v", d)
	}
	if c.broadcasters[1].Self() != 1 {
		t.Fatalf("Self() = %v", c.broadcasters[1].Self())
	}
}
