// Package neb implements the paper's non-equivocating broadcast (Algorithm 2)
// on top of replicated SWMR regular registers.
//
// Non-equivocating broadcast is defined by two primitives, broadcast(k, m)
// and deliver(k, m, q), with three properties:
//
//  1. If a correct process broadcasts (k, m), every correct process
//     eventually delivers (k, m) from it.
//  2. If two correct processes deliver (k, m) and (k, m') from the same
//     sender, then m = m'.
//  3. If a correct process delivers (k, m) from a correct process p, then p
//     broadcast (k, m).
//
// The implementation uses a virtual slot array slots[p, k, q]: process p owns
// the registers slots[p, *, *] (an SWMR region per process, replicated across
// the memories by regreg). To broadcast its k-th message, p writes a signed
// (k, m) into slots[p, k, p]. To deliver the k-th message of q, a process
// first reads slots[q, k, q]; if it finds a correctly signed value it copies
// it into its own slot slots[self, k, q] and then reads slots[r, k, q] for
// every other process r: if some other process copied a different correctly
// signed value for the same (q, k), the sender equivocated and nothing is
// delivered; otherwise the message is delivered.
package neb

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/regreg"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// slotRegister names the register slots[owner, k, sender] inside owner's SWMR
// region. The owner is implied by the region, so only (k, sender) appear in
// the name.
func slotRegister(k uint64, sender types.ProcID) types.RegisterID {
	return types.RegisterID(fmt.Sprintf("neb/%d/%d", k, int(sender)))
}

// envelope is the signed payload stored in broadcast slots.
type envelope struct {
	Seq uint64 `json:"seq"`
	Msg []byte `json:"msg"`
}

// Delivery is a delivered broadcast message.
type Delivery struct {
	From types.ProcID
	Seq  uint64
	Msg  []byte
}

// Options configure a Broadcaster.
type Options struct {
	// PollInterval is the pause between delivery attempts when no new
	// message is available. Zero means 1ms.
	PollInterval time.Duration
	// DeliveryBuffer sizes the Deliveries channel. Zero means 1024.
	DeliveryBuffer int
	// Recorder, if non-nil, receives broadcast/deliver trace events.
	Recorder *trace.Recorder
}

// Broadcaster is one process's handle on non-equivocating broadcast.
// Broadcast and TryDeliver may be called concurrently; the background Run
// loop (optional) pushes deliveries from every sender into Deliveries.
type Broadcaster struct {
	self   types.ProcID
	procs  []types.ProcID
	store  *regreg.Store
	signer *sigs.Signer
	opts   Options

	mu      sync.Mutex
	nextSeq uint64                  // sequence number of our next broadcast
	last    map[types.ProcID]uint64 // next sequence number to deliver per sender

	deliveries chan Delivery

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// New creates a broadcaster for process self among procs.
func New(self types.ProcID, procs []types.ProcID, store *regreg.Store, signer *sigs.Signer, opts Options) *Broadcaster {
	if opts.PollInterval <= 0 {
		opts.PollInterval = time.Millisecond
	}
	if opts.DeliveryBuffer <= 0 {
		opts.DeliveryBuffer = 1024
	}
	b := &Broadcaster{
		self:       self,
		procs:      append([]types.ProcID(nil), procs...),
		store:      store,
		signer:     signer,
		opts:       opts,
		nextSeq:    1,
		last:       make(map[types.ProcID]uint64, len(procs)),
		deliveries: make(chan Delivery, opts.DeliveryBuffer),
	}
	for _, p := range procs {
		b.last[p] = 1
	}
	return b
}

// Self returns the broadcaster's process identifier.
func (b *Broadcaster) Self() types.ProcID { return b.self }

// Clock returns the delay clock of the underlying replicated-register store;
// it accounts the memory round trips performed by broadcasts and deliveries.
func (b *Broadcaster) Clock() *delayclock.Clock { return b.store.Clock() }

// Deliveries returns the channel on which Run publishes deliveries.
func (b *Broadcaster) Deliveries() <-chan Delivery { return b.deliveries }

// Broadcast signs msg and writes it to the next slot of this process. The
// sequence number used is returned.
func (b *Broadcaster) Broadcast(ctx context.Context, msg []byte) (uint64, error) {
	b.mu.Lock()
	seq := b.nextSeq
	b.nextSeq++
	b.mu.Unlock()

	if err := b.broadcastAt(ctx, seq, msg); err != nil {
		return 0, err
	}
	return seq, nil
}

// broadcastAt writes the signed envelope for the given sequence number. It is
// split out so tests can exercise out-of-order and duplicate broadcasts by a
// Byzantine sender.
func (b *Broadcaster) broadcastAt(ctx context.Context, seq uint64, msg []byte) error {
	payload, err := json.Marshal(envelope{Seq: seq, Msg: msg})
	if err != nil {
		return fmt.Errorf("broadcast %d: encode: %w", seq, err)
	}
	signed, err := b.signer.Sign(payload)
	if err != nil {
		return fmt.Errorf("broadcast %d: sign: %w", seq, err)
	}
	blob, err := json.Marshal(signed)
	if err != nil {
		return fmt.Errorf("broadcast %d: encode signed: %w", seq, err)
	}
	if err := b.store.Write(ctx, slotRegister(seq, b.self), blob); err != nil {
		return fmt.Errorf("broadcast %d: %w", seq, err)
	}
	b.opts.Recorder.Record(b.self, trace.KindBroadcast, types.Value(msg), b.store.Clock().Now(), "seq=%d", seq)
	return nil
}

// decodeSlot parses a slot value into the signed envelope it carries. It
// returns ok=false for ⊥, malformed or incorrectly signed values.
func (b *Broadcaster) decodeSlot(raw types.Value, claimedSender types.ProcID) (envelope, sigs.Signed, bool) {
	if raw.Bottom() {
		return envelope{}, sigs.Signed{}, false
	}
	var signed sigs.Signed
	if err := json.Unmarshal(raw, &signed); err != nil {
		return envelope{}, sigs.Signed{}, false
	}
	if !b.signer.Valid(claimedSender, signed) {
		return envelope{}, sigs.Signed{}, false
	}
	var env envelope
	if err := json.Unmarshal(signed.Payload, &env); err != nil {
		return envelope{}, sigs.Signed{}, false
	}
	return env, signed, true
}

// TryDeliver attempts to deliver the next message from sender q. It returns
// (nil, nil) when no new message is deliverable yet (either q has not
// broadcast it, or evidence of equivocation blocks delivery).
func (b *Broadcaster) TryDeliver(ctx context.Context, q types.ProcID) (*Delivery, error) {
	b.mu.Lock()
	k := b.last[q]
	b.mu.Unlock()

	// Step 1: read the sender's own slot.
	raw, err := b.store.Read(ctx, q, slotRegister(k, q))
	if err != nil {
		return nil, fmt.Errorf("try_deliver from %s seq %d: %w", q, k, err)
	}
	env, signed, ok := b.decodeSlot(raw, q)
	if !ok || env.Seq != k {
		// Nothing broadcast yet, or a malformed/forged value: retry later.
		return nil, nil
	}

	// Step 2: copy the value into our own slot for this (sender, seq).
	blob, err := json.Marshal(signed)
	if err != nil {
		return nil, fmt.Errorf("try_deliver from %s seq %d: encode copy: %w", q, k, err)
	}
	if err := b.store.Write(ctx, slotRegister(k, q), blob); err != nil {
		return nil, fmt.Errorf("try_deliver from %s seq %d: copy: %w", q, k, err)
	}

	// Step 3: check every other process's copy for a conflicting value.
	for _, r := range b.procs {
		if r == b.self {
			continue
		}
		otherRaw, err := b.store.Read(ctx, r, slotRegister(k, q))
		if err != nil {
			return nil, fmt.Errorf("try_deliver from %s seq %d: read copy at %s: %w", q, k, r, err)
		}
		otherEnv, otherSigned, otherOK := b.decodeSlot(otherRaw, q)
		if !otherOK {
			continue // ⊥ or not correctly signed by q: ignore.
		}
		if otherEnv.Seq == k && !otherSigned.Equal(signed) && !bytesEqual(otherEnv.Msg, env.Msg) {
			// q equivocated: some process saw a different signed value for
			// the same sequence number. Do not deliver.
			return nil, nil
		}
	}

	b.mu.Lock()
	b.last[q] = k + 1
	b.mu.Unlock()
	b.opts.Recorder.Record(b.self, trace.KindDeliver, types.Value(env.Msg), b.store.Clock().Now(), "from=%s seq=%d", q, k)
	return &Delivery{From: q, Seq: k, Msg: env.Msg}, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Start launches the background delivery loop, which repeatedly attempts to
// deliver the next message from every process and publishes deliveries on the
// Deliveries channel. Stop terminates it.
func (b *Broadcaster) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	b.cancel = cancel
	b.wg.Add(1)
	go b.run(ctx)
}

// Stop terminates the background delivery loop and waits for it to exit.
func (b *Broadcaster) Stop() {
	if b.cancel != nil {
		b.cancel()
	}
	b.wg.Wait()
}

func (b *Broadcaster) run(ctx context.Context) {
	defer b.wg.Done()
	ticker := time.NewTicker(b.opts.PollInterval)
	defer ticker.Stop()
	for {
		progressed := false
		for _, q := range b.procs {
			if ctx.Err() != nil {
				return
			}
			d, err := b.TryDeliver(ctx, q)
			if err != nil || d == nil {
				continue
			}
			progressed = true
			select {
			case b.deliveries <- *d:
			case <-ctx.Done():
				return
			}
		}
		if progressed {
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
