// Package diskpaxos implements Disk Paxos (Gafni & Lamport), the
// shared-memory-only baseline the paper compares against in §5.1 and §6.
//
// Disk Paxos uses the disk model: every memory has a single region that all
// processes can always read and write (static permissions), and there are no
// messages. Each process owns one block (slot) per disk; a proposer writes
// its block to a majority of disks and then reads all blocks from a majority
// to learn whether it was preempted and which value to adopt.
//
// Because a proposer cannot know whether it ran uncontended without reading
// the disks after its write, even the best case costs a write round trip plus
// a read round trip per phase — at least four delays with the initial-ballot
// optimization, versus two for Protected Memory Paxos. This is the behaviour
// Theorem 6.1 proves unavoidable without dynamic permissions, and experiment
// E5 measures.
package diskpaxos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Region is the single open region on each disk.
const Region = types.RegionID("diskpaxos")

// blockRegister names the block of process p.
func blockRegister(p types.ProcID) types.RegisterID {
	return types.RegisterID(fmt.Sprintf("block/%d", int(p)))
}

// Layout returns the per-disk region layout: one open region with a block per
// process and static permissions.
func Layout(procs []types.ProcID) []memsim.RegionSpec {
	regs := make([]types.RegisterID, 0, len(procs))
	for _, p := range procs {
		regs = append(regs, blockRegister(p))
	}
	return []memsim.RegionSpec{{
		ID:        Region,
		Registers: regs,
		Perm:      memsim.OpenPermission(procs),
	}}
}

// block is the content of a process's block on a disk.
type block struct {
	Ballot    types.ProposalNumber `json:"ballot"`
	AccBallot types.ProposalNumber `json:"acc_ballot"`
	Value     types.Value          `json:"value,omitempty"`
}

func (b block) encode() (types.Value, error) {
	out, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("encode block: %w", err)
	}
	return out, nil
}

func decodeBlock(raw types.Value) (block, bool) {
	if raw.Bottom() {
		return block{}, false
	}
	var b block
	if err := json.Unmarshal(raw, &b); err != nil {
		return block{}, false
	}
	return b, true
}

// Config configures a Disk Paxos participant.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Procs is the full process set (n ≥ f_P + 1).
	Procs []types.ProcID
	// InitialLeader, if set, is the only process allowed to skip phase 1 on
	// its very first ballot (the common-case optimization used for the
	// best-case delay comparison with Protected Memory Paxos). Every other
	// proposer always runs both phases.
	InitialLeader types.ProcID
	// FaultyMemories is f_M; m ≥ 2f_M+1 disks are required.
	FaultyMemories int
	// Memories is the disk pool, laid out with Layout.
	Memories []*memsim.Memory
	// Oracle is the Ω oracle (liveness only).
	Oracle omega.Oracle
	// RetryDelay is the pause before retrying a preempted round. Zero means
	// 10ms.
	RetryDelay time.Duration
	// Clock is the causal delay clock; nil allocates a private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

// Validate checks the resilience bounds.
func (c *Config) Validate() error {
	if len(c.Procs) < 1 {
		return fmt.Errorf("%w: at least one process is required", types.ErrInvalidConfig)
	}
	if len(c.Memories) < 2*c.FaultyMemories+1 {
		return fmt.Errorf("%w: m=%d disks cannot tolerate f_M=%d crashes", types.ErrInvalidConfig, len(c.Memories), c.FaultyMemories)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.RetryDelay <= 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &delayclock.Clock{}
	}
}

// Outcome reports a Disk Paxos decision.
type Outcome struct {
	// Value is the decided value.
	Value types.Value
	// DecisionDelays is the causal delay count along the decider's own
	// operation chain (4 in the best case: phase-2 write plus verification
	// read).
	DecisionDelays int64
	// Rounds is the number of ballots tried.
	Rounds int
}

// Node is one Disk Paxos participant.
type Node struct {
	cfg Config

	mu          sync.Mutex
	highestSeen types.ProposalNumber
	firstTry    bool
}

// New creates a Disk Paxos participant.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("disk paxos: %w", err)
	}
	cfg.applyDefaults()
	return &Node{cfg: cfg, firstTry: true}, nil
}

// Clock returns the node's delay clock.
func (n *Node) Clock() *delayclock.Clock { return n.cfg.Clock }

func (n *Node) isLeader() bool {
	if n.cfg.Oracle == nil {
		return true
	}
	return n.cfg.Oracle.Leader() == n.cfg.Self
}

// Propose runs the proposer until it decides and returns the decision.
func (n *Node) Propose(ctx context.Context, v types.Value) (Outcome, error) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPropose, v, n.cfg.Clock.Now(), "disk paxos propose")
	rounds := 0
	for {
		if err := ctx.Err(); err != nil {
			return Outcome{}, fmt.Errorf("disk paxos propose at %s: %w", n.cfg.Self, err)
		}
		if !n.isLeader() {
			select {
			case <-time.After(n.cfg.RetryDelay):
				continue
			case <-ctx.Done():
				return Outcome{}, fmt.Errorf("disk paxos propose at %s: %w", n.cfg.Self, ctx.Err())
			}
		}
		rounds++
		out, decided, err := n.runRound(ctx, v)
		if err != nil {
			return Outcome{}, err
		}
		if decided {
			out.Rounds = rounds
			return out, nil
		}
		select {
		case <-time.After(n.cfg.RetryDelay):
		case <-ctx.Done():
			return Outcome{}, fmt.Errorf("disk paxos propose at %s: %w", n.cfg.Self, ctx.Err())
		}
	}
}

// phaseResult is the result of writing our block and reading all blocks on
// one disk.
type phaseResult struct {
	blocks  []block
	preempt bool
	stamp   delayclock.Stamp
	err     error
}

// runRound executes one ballot: an optional phase 1 (skipped on the very
// first attempt, mirroring the Protected Memory Paxos experiment setup) and
// phase 2, each consisting of a write followed by a read of all blocks on a
// majority of disks.
func (n *Node) runRound(ctx context.Context, v types.Value) (Outcome, bool, error) {
	start := n.cfg.Clock.Now()

	n.mu.Lock()
	ballot := n.highestSeen.Next(n.cfg.Self, n.highestSeen)
	n.highestSeen = ballot
	skipPhase1 := n.firstTry && n.cfg.Self == n.cfg.InitialLeader
	n.firstTry = false
	n.mu.Unlock()

	myValue := v.Clone()
	phase2Start := start

	if !skipPhase1 {
		results, err := n.phase(ctx, block{Ballot: ballot}, start)
		if err != nil {
			return Outcome{}, false, err
		}
		var adoptBallot types.ProposalNumber
		latest := start
		for _, res := range results {
			if res.preempt {
				return Outcome{}, false, nil
			}
			if res.stamp > latest {
				latest = res.stamp
			}
			for _, b := range res.blocks {
				n.observe(b.Ballot)
				if !b.AccBallot.IsZero() && !b.Value.Bottom() && adoptBallot.Less(b.AccBallot) {
					adoptBallot = b.AccBallot
					myValue = b.Value.Clone()
				}
			}
		}
		phase2Start = latest
	}

	results, err := n.phase(ctx, block{Ballot: ballot, AccBallot: ballot, Value: myValue}, phase2Start)
	if err != nil {
		return Outcome{}, false, err
	}
	completed := phase2Start
	for _, res := range results {
		if res.preempt {
			for _, b := range res.blocks {
				n.observe(b.Ballot)
			}
			return Outcome{}, false, nil
		}
		if res.stamp > completed {
			completed = res.stamp
		}
	}

	delays := int64(completed - start)
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, myValue, n.cfg.Clock.Now(),
		"disk paxos decision in %d delays (ballot %s)", delays, ballot)
	return Outcome{Value: myValue, DecisionDelays: delays}, true, nil
}

func (n *Node) observe(b types.ProposalNumber) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.highestSeen.Less(b) {
		n.highestSeen = b
	}
}

// phase writes our block and then reads every block on each disk, waiting for
// a majority of disks to complete. The read is what detects contention — the
// step Protected Memory Paxos's dynamic permissions make unnecessary.
func (n *Node) phase(ctx context.Context, mine block, invoked delayclock.Stamp) ([]phaseResult, error) {
	blob, err := mine.encode()
	if err != nil {
		return nil, err
	}
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan phaseResult, len(n.cfg.Memories))
	for _, mem := range n.cfg.Memories {
		go func(mem *memsim.Memory) {
			results <- n.phaseOnDisk(opCtx, mem, mine, blob, invoked)
		}(mem)
	}

	quorum := len(n.cfg.Memories) - n.cfg.FaultyMemories
	collected := make([]phaseResult, 0, quorum)
	for i := 0; i < len(n.cfg.Memories); i++ {
		select {
		case res := <-results:
			if res.err != nil {
				continue
			}
			collected = append(collected, res)
			if len(collected) >= quorum {
				return collected, nil
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("disk paxos phase at %s: %w", n.cfg.Self, ctx.Err())
		}
	}
	return nil, fmt.Errorf("disk paxos phase at %s: quorum of disks unreachable: %w", n.cfg.Self, types.ErrMemoryCrashed)
}

func (n *Node) phaseOnDisk(ctx context.Context, mem *memsim.Memory, mine block, blob types.Value, invoked delayclock.Stamp) phaseResult {
	res := phaseResult{}
	stamp, err := mem.Write(ctx, n.cfg.Self, Region, blockRegister(n.cfg.Self), blob, invoked)
	if err != nil {
		if errors.Is(err, types.ErrNak) {
			res.err = err
		} else {
			res.err = err
		}
		return res
	}
	n.cfg.Clock.Merge(stamp)

	type readResult struct {
		b     block
		ok    bool
		stamp delayclock.Stamp
		err   error
	}
	reads := make(chan readResult, len(n.cfg.Procs))
	for _, q := range n.cfg.Procs {
		go func(q types.ProcID) {
			raw, rstamp, rerr := mem.Read(ctx, n.cfg.Self, Region, blockRegister(q), stamp)
			if rerr != nil {
				reads <- readResult{err: rerr}
				return
			}
			b, ok := decodeBlock(raw)
			reads <- readResult{b: b, ok: ok, stamp: rstamp}
		}(q)
	}
	latest := stamp
	for range n.cfg.Procs {
		r := <-reads
		if r.err != nil {
			res.err = r.err
			return res
		}
		n.cfg.Clock.Merge(r.stamp)
		if r.stamp > latest {
			latest = r.stamp
		}
		if !r.ok {
			continue
		}
		res.blocks = append(res.blocks, r.b)
		if mine.Ballot.Less(r.b.Ballot) {
			res.preempt = true
		}
	}
	res.stamp = latest
	return res
}
