package diskpaxos

import (
	"context"
	"testing"
	"time"

	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/types"
)

type fixture struct {
	procs  []types.ProcID
	pool   *memsim.Pool
	oracle *omega.Static
	nodes  map[types.ProcID]*Node
}

func newFixture(t *testing.T, n, m, fM int) *fixture {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(m, func(types.MemID) []memsim.RegionSpec {
		return Layout(procs)
	}, memsim.Options{})
	f := &fixture{procs: procs, pool: pool, oracle: omega.NewStatic(1), nodes: make(map[types.ProcID]*Node)}
	for _, p := range procs {
		node, err := New(Config{
			Self:           p,
			Procs:          procs,
			InitialLeader:  1,
			FaultyMemories: fM,
			Memories:       pool.Memories(),
			Oracle:         f.oracle,
		})
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		f.nodes[p] = node
	}
	return f
}

func TestBestCaseTakesFourDelays(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("disk-value"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("disk-value")) {
		t.Fatalf("decided %v", out.Value)
	}
	// Disk Paxos must read the disks after writing, so even the best case
	// costs two memory round trips = 4 delays (Theorem 6.1: no 2-deciding
	// algorithm exists with static permissions).
	if out.DecisionDelays != 4 {
		t.Fatalf("best-case Disk Paxos decision took %d delays, want 4", out.DecisionDelays)
	}
}

func TestAgreementAcrossSuccessiveLeaders(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	first, err := f.nodes[1].Propose(ctx, types.Value("first"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	f.oracle.SetLeader(2)
	second, err := f.nodes[2].Propose(ctx, types.Value("second"))
	if err != nil {
		t.Fatalf("second Propose: %v", err)
	}
	if !second.Value.Equal(first.Value) {
		t.Fatalf("agreement violated: %v then %v", first.Value, second.Value)
	}
}

func TestToleratesMinorityDiskCrash(t *testing.T) {
	f := newFixture(t, 2, 5, 2)
	f.pool.CrashQuorumSafe(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("disk-crash"))
	if err != nil {
		t.Fatalf("Propose with crashed disks: %v", err)
	}
	if !out.Value.Equal(types.Value("disk-crash")) {
		t.Fatalf("decided %v", out.Value)
	}
}

func TestBlocksWithoutDiskMajority(t *testing.T) {
	f := newFixture(t, 2, 3, 1)
	f.pool.CrashQuorumSafe(2)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := f.nodes[1].Propose(ctx, types.Value("stuck")); err == nil {
		t.Fatalf("proposal should not complete without a majority of disks")
	}
}

func TestSingleProcessSufficient(t *testing.T) {
	// Disk Paxos (like Protected Memory Paxos) needs only one live process.
	f := newFixture(t, 1, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := f.nodes[1].Propose(ctx, types.Value("solo"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("solo")) {
		t.Fatalf("decided %v", out.Value)
	}
}

func TestLaterProposerAdoptsChosenValue(t *testing.T) {
	f := newFixture(t, 3, 3, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := f.nodes[1].Propose(ctx, types.Value("chosen")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	f.oracle.SetLeader(3)
	out, err := f.nodes[3].Propose(ctx, types.Value("mine"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("chosen")) {
		t.Fatalf("later proposer decided %v instead of adopting the chosen value", out.Value)
	}
}

func TestConfigValidation(t *testing.T) {
	procs := []types.ProcID{1}
	pool := memsim.NewPool(3, func(types.MemID) []memsim.RegionSpec { return Layout(procs) }, memsim.Options{})
	if _, err := New(Config{Self: 1, Procs: procs, FaultyMemories: 2, Memories: pool.Memories()}); err == nil {
		t.Fatalf("m=3, f_M=2 should be rejected")
	}
	if _, err := New(Config{Self: 1, Procs: nil, FaultyMemories: 1, Memories: pool.Memories()}); err == nil {
		t.Fatalf("empty process set should be rejected")
	}
}

func TestBlockEncoding(t *testing.T) {
	b := block{Ballot: types.ProposalNumber{Round: 1, Proposer: 1}, Value: types.Value("x")}
	blob, err := b.encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, ok := decodeBlock(blob)
	if !ok || !dec.Ballot.Equal(b.Ballot) || !dec.Value.Equal(b.Value) {
		t.Fatalf("round trip mismatch")
	}
	if _, ok := decodeBlock(nil); ok {
		t.Fatalf("bottom should not decode")
	}
}
