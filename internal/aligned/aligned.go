// Package aligned implements Aligned Paxos (§5.2, Algorithms 9–15): a
// crash-tolerant consensus algorithm that treats processes and memories as a
// single set of acceptors ("agents") and tolerates the crash of any minority
// of the combined set.
//
// The proposer runs two phases. In each phase it communicates with every
// agent — by sending a message to a process acceptor, or by writing/reading
// slots on a memory — waits for responses from a majority of all agents, and
// analyzes them with the usual Paxos rules (adopt the value with the highest
// accepted ballot, restart if a higher ballot is observed). Because any
// majority of the combined set suffices, the algorithm keeps deciding as long
// as fewer than half of the processes-plus-memories have crashed, which is
// strictly stronger than requiring both a process majority and a memory
// majority.
package aligned

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Region is the per-memory region holding one slot per process.
const Region = types.RegionID("aligned")

// Message kinds used between the proposer and process acceptors.
const (
	KindPrepare  = "aligned/prepare"
	KindPromise  = "aligned/promise"
	KindAccept   = "aligned/accept"
	KindAccepted = "aligned/accepted"
	KindNack     = "aligned/nack"
	KindDecide   = "aligned/decide"
)

// slotRegister names the slot of process p on a memory.
func slotRegister(p types.ProcID) types.RegisterID {
	return types.RegisterID(fmt.Sprintf("slot/%d", int(p)))
}

// Layout returns the per-memory region layout: one open region with a slot
// per process. Aligned Paxos does not rely on permissions (see the paper's
// footnote 4); correctness against crashes comes from the combined quorums.
func Layout(procs []types.ProcID) []memsim.RegionSpec {
	regs := make([]types.RegisterID, 0, len(procs))
	for _, p := range procs {
		regs = append(regs, slotRegister(p))
	}
	return []memsim.RegionSpec{{
		ID:        Region,
		Registers: regs,
		Perm:      memsim.OpenPermission(procs),
	}}
}

// slot is the value stored in a memory slot.
type slot struct {
	MinProposal types.ProposalNumber `json:"min_proposal"`
	AccProposal types.ProposalNumber `json:"acc_proposal"`
	Value       types.Value          `json:"value,omitempty"`
}

// message is the wire format between proposer and process acceptors.
type message struct {
	Kind      string               `json:"kind"`
	Ballot    types.ProposalNumber `json:"ballot"`
	AccBallot types.ProposalNumber `json:"acc_ballot"`
	Value     types.Value          `json:"value,omitempty"`
}

func encode(v any) []byte {
	out, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return out
}

// Config configures an Aligned Paxos participant.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Procs is the full process set (each process is also an acceptor
	// agent).
	Procs []types.ProcID
	// Memories is the memory pool (each memory is an acceptor agent).
	Memories []*memsim.Memory
	// Endpoint is this process's network endpoint.
	Endpoint *netsim.Endpoint
	// Sub receives every "aligned/" message for this process.
	Sub <-chan netsim.Message
	// Oracle is the Ω oracle (liveness only).
	Oracle omega.Oracle
	// RoundTimeout bounds how long the proposer waits for a majority of
	// agents in each phase. Zero means 100ms.
	RoundTimeout time.Duration
	// RetryDelay is the pause before retrying a preempted round. Zero means
	// 10ms.
	RetryDelay time.Duration
	// Clock is the causal delay clock; nil allocates a private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if len(c.Procs) == 0 || len(c.Memories) == 0 {
		return fmt.Errorf("%w: aligned paxos needs at least one process and one memory", types.ErrInvalidConfig)
	}
	if c.Endpoint == nil || c.Sub == nil {
		return fmt.Errorf("%w: endpoint and subscription are required", types.ErrInvalidConfig)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 100 * time.Millisecond
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &delayclock.Clock{}
	}
}

// Outcome reports an Aligned Paxos decision.
type Outcome struct {
	// Value is the decided value.
	Value types.Value
	// Rounds is the number of ballots the decider tried.
	Rounds int
}

// Node is one Aligned Paxos participant: proposer (when leader) and process
// acceptor.
type Node struct {
	cfg Config

	mu           sync.Mutex
	minProposal  types.ProposalNumber
	acceptedProp types.ProposalNumber
	acceptedVal  types.Value
	highestSeen  types.ProposalNumber
	decided      types.Value
	hasDecided   bool

	decidedCh chan struct{}
	responses chan response

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// response is a phase response from either kind of agent, translated to the
// common language of Algorithm 9's analyze steps.
type response struct {
	ballot    types.ProposalNumber
	ok        bool // promise/accepted or successful memory operation
	accBallot types.ProposalNumber
	value     types.Value
}

// New creates an Aligned Paxos participant.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("aligned paxos: %w", err)
	}
	cfg.applyDefaults()
	return &Node{
		cfg:       cfg,
		decidedCh: make(chan struct{}),
		responses: make(chan response, 4*(len(cfg.Procs)+len(cfg.Memories))+16),
	}, nil
}

// Start launches the acceptor/learner loop. Stop terminates it.
func (n *Node) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(1)
	go n.acceptorLoop(ctx)
}

// Stop terminates background goroutines.
func (n *Node) Stop() {
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
}

// Clock returns the node's delay clock.
func (n *Node) Clock() *delayclock.Clock { return n.cfg.Clock }

// Decided returns the learned decision, if any.
func (n *Node) Decided() (types.Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.decided.Clone(), n.hasDecided
}

// WaitDecision blocks until a decision is learned.
func (n *Node) WaitDecision(ctx context.Context) (types.Value, error) {
	select {
	case <-n.decidedCh:
		v, _ := n.Decided()
		return v, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("wait decision at %s: %w", n.cfg.Self, ctx.Err())
	}
}

func (n *Node) learn(v types.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hasDecided {
		return
	}
	n.decided = v.Clone()
	n.hasDecided = true
	close(n.decidedCh)
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, v, n.cfg.Clock.Now(), "aligned paxos learn")
}

func (n *Node) isLeader() bool {
	if n.cfg.Oracle == nil {
		return true
	}
	return n.cfg.Oracle.Leader() == n.cfg.Self
}

// totalAgents is the size of the combined acceptor set.
func (n *Node) totalAgents() int { return len(n.cfg.Procs) + len(n.cfg.Memories) }

// quorum is a majority of the combined acceptor set.
func (n *Node) quorum() int { return types.Majority(n.totalAgents()) }

// acceptorLoop implements the process-acceptor role and routes proposer
// responses.
func (n *Node) acceptorLoop(ctx context.Context) {
	defer n.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case raw := <-n.cfg.Sub:
			if raw.From == n.cfg.Self {
				n.cfg.Clock.Merge(raw.Stamp)
			} else {
				n.cfg.Clock.MergeAfterMessage(raw.Stamp)
			}
			var msg message
			if err := json.Unmarshal(raw.Payload, &msg); err != nil {
				continue
			}
			n.handle(raw.From, msg)
		}
	}
}

func (n *Node) handle(from types.ProcID, msg message) {
	switch msg.Kind {
	case KindPrepare:
		n.mu.Lock()
		reply := message{Ballot: msg.Ballot}
		if n.minProposal.Less(msg.Ballot) {
			n.minProposal = msg.Ballot
			reply.Kind = KindPromise
			reply.AccBallot = n.acceptedProp
			reply.Value = n.acceptedVal.Clone()
		} else {
			reply.Kind = KindNack
			reply.AccBallot = n.minProposal
		}
		n.mu.Unlock()
		_ = n.cfg.Endpoint.Send(from, reply.Kind, encode(reply), n.cfg.Clock.Now())
	case KindAccept:
		n.mu.Lock()
		reply := message{Ballot: msg.Ballot}
		if !msg.Ballot.Less(n.minProposal) {
			n.minProposal = msg.Ballot
			n.acceptedProp = msg.Ballot
			n.acceptedVal = msg.Value.Clone()
			reply.Kind = KindAccepted
		} else {
			reply.Kind = KindNack
			reply.AccBallot = n.minProposal
		}
		n.mu.Unlock()
		_ = n.cfg.Endpoint.Send(from, reply.Kind, encode(reply), n.cfg.Clock.Now())
	case KindDecide:
		n.learn(msg.Value)
	case KindPromise, KindAccepted, KindNack:
		resp := response{ballot: msg.Ballot, ok: msg.Kind != KindNack, accBallot: msg.AccBallot, value: msg.Value}
		if msg.Kind == KindNack {
			n.observe(msg.AccBallot)
		}
		select {
		case n.responses <- resp:
		default:
		}
	}
}

func (n *Node) observe(b types.ProposalNumber) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.highestSeen.Less(b) {
		n.highestSeen = b
	}
}

// Propose runs the proposer until a decision is learned and returns it.
func (n *Node) Propose(ctx context.Context, v types.Value) (Outcome, error) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPropose, v, n.cfg.Clock.Now(), "aligned paxos propose")
	rounds := 0
	for {
		if value, ok := n.Decided(); ok {
			return Outcome{Value: value, Rounds: rounds}, nil
		}
		if err := ctx.Err(); err != nil {
			return Outcome{}, fmt.Errorf("aligned propose at %s: %w", n.cfg.Self, err)
		}
		if !n.isLeader() {
			select {
			case <-n.decidedCh:
				continue
			case <-time.After(n.cfg.RetryDelay):
				continue
			case <-ctx.Done():
				return Outcome{}, fmt.Errorf("aligned propose at %s: %w", n.cfg.Self, ctx.Err())
			}
		}
		rounds++
		decided, value, err := n.runRound(ctx, v)
		if err != nil {
			return Outcome{}, err
		}
		if decided {
			return Outcome{Value: value, Rounds: rounds}, nil
		}
		select {
		case <-time.After(n.cfg.RetryDelay):
		case <-ctx.Done():
			return Outcome{}, fmt.Errorf("aligned propose at %s: %w", n.cfg.Self, ctx.Err())
		}
	}
}

// runRound executes one ballot across the combined agent set.
func (n *Node) runRound(ctx context.Context, v types.Value) (bool, types.Value, error) {
	n.mu.Lock()
	ballot := n.highestSeen.Next(n.cfg.Self, n.minProposal)
	n.highestSeen = ballot
	n.mu.Unlock()

	// Phase 1: communicate the ballot to every agent and analyze a majority
	// of responses.
	n.drainResponses()
	okResponses, preempted, err := n.phase(ctx, ballot, nil, true)
	if err != nil {
		return false, nil, err
	}
	if preempted || len(okResponses) < n.quorum() {
		return false, nil, nil
	}
	myValue := v.Clone()
	var adoptBallot types.ProposalNumber
	for _, r := range okResponses {
		if !r.accBallot.IsZero() && !r.value.Bottom() && adoptBallot.Less(r.accBallot) {
			adoptBallot = r.accBallot
			myValue = r.value.Clone()
		}
	}

	// Phase 2: communicate the chosen value and analyze a majority.
	n.drainResponses()
	okResponses, preempted, err = n.phase(ctx, ballot, myValue, false)
	if err != nil {
		return false, nil, err
	}
	if preempted || len(okResponses) < n.quorum() {
		return false, nil, nil
	}

	n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, myValue, n.cfg.Clock.Now(), "aligned paxos decision (ballot %s)", ballot)
	_ = n.cfg.Endpoint.Broadcast(KindDecide, encode(message{Kind: KindDecide, Ballot: ballot, Value: myValue}), n.cfg.Clock.Now())
	n.learn(myValue)
	return true, myValue, nil
}

// phase communicates with every agent (phase 1 when value is nil, phase 2
// otherwise), waits for a majority of responses and returns the successful
// ones and whether any agent reported a higher ballot.
func (n *Node) phase(ctx context.Context, ballot types.ProposalNumber, value types.Value, isPhase1 bool) ([]response, bool, error) {
	phaseCtx, cancel := context.WithTimeout(ctx, n.cfg.RoundTimeout)
	defer cancel()

	// Process agents: send prepare or accept; replies arrive through the
	// acceptor loop into n.responses.
	for _, p := range n.cfg.Procs {
		var msg message
		if isPhase1 {
			msg = message{Kind: KindPrepare, Ballot: ballot}
		} else {
			msg = message{Kind: KindAccept, Ballot: ballot, Value: value}
		}
		_ = n.cfg.Endpoint.Send(p, msg.Kind, encode(msg), n.cfg.Clock.Now())
	}

	// Memory agents: write our slot and (in phase 1) read every slot.
	memResponses := make(chan response, len(n.cfg.Memories))
	for _, mem := range n.cfg.Memories {
		go func(mem *memsim.Memory) {
			memResponses <- n.memoryAgent(phaseCtx, mem, ballot, value, isPhase1)
		}(mem)
	}

	collected := make([]response, 0, n.totalAgents())
	preempted := false
	received := 0
	for received < n.totalAgents() && len(collected) < n.quorum() {
		select {
		case r := <-n.responses:
			if !r.ballot.Equal(ballot) {
				continue
			}
			received++
			if !r.ok {
				preempted = true
				continue
			}
			collected = append(collected, r)
		case r := <-memResponses:
			received++
			if !r.ok {
				if !r.accBallot.IsZero() {
					preempted = true
					n.observe(r.accBallot)
				}
				continue
			}
			collected = append(collected, r)
		case <-phaseCtx.Done():
			return collected, preempted, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("aligned phase at %s: %w", n.cfg.Self, ctx.Err())
		}
	}
	return collected, preempted, nil
}

// memoryAgent performs one memory's share of a phase: write our slot with the
// ballot (and value in phase 2), and in phase 1 read every slot to learn
// previously accepted values and detect higher ballots.
func (n *Node) memoryAgent(ctx context.Context, mem *memsim.Memory, ballot types.ProposalNumber, value types.Value, isPhase1 bool) response {
	invoked := n.cfg.Clock.Now()
	s := slot{MinProposal: ballot}
	if !isPhase1 {
		s.AccProposal = ballot
		s.Value = value
	}
	stamp, err := mem.Write(ctx, n.cfg.Self, Region, slotRegister(n.cfg.Self), encode(s), invoked)
	if err != nil {
		if errors.Is(err, types.ErrNak) {
			return response{ballot: ballot, ok: false}
		}
		return response{ballot: ballot, ok: false}
	}
	n.cfg.Clock.Merge(stamp)
	if !isPhase1 {
		return response{ballot: ballot, ok: true}
	}

	best := response{ballot: ballot, ok: true}
	for _, q := range n.cfg.Procs {
		raw, rstamp, rerr := mem.Read(ctx, n.cfg.Self, Region, slotRegister(q), stamp)
		if rerr != nil {
			return response{ballot: ballot, ok: false}
		}
		n.cfg.Clock.Merge(rstamp)
		if raw.Bottom() {
			continue
		}
		var other slot
		if err := json.Unmarshal(raw, &other); err != nil {
			continue
		}
		if ballot.Less(other.MinProposal) {
			return response{ballot: ballot, ok: false, accBallot: other.MinProposal}
		}
		if !other.AccProposal.IsZero() && best.accBallot.Less(other.AccProposal) {
			best.accBallot = other.AccProposal
			best.value = other.Value.Clone()
		}
	}
	return best
}

// drainResponses discards stale responses from previous rounds.
func (n *Node) drainResponses() {
	for {
		select {
		case <-n.responses:
		default:
			return
		}
	}
}
