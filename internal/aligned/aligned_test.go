package aligned

import (
	"context"
	"testing"
	"time"

	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/types"
)

type fixture struct {
	procs   []types.ProcID
	pool    *memsim.Pool
	net     *netsim.Network
	routers map[types.ProcID]*netsim.Router
	oracle  *omega.Static
	nodes   map[types.ProcID]*Node
}

func newFixture(t *testing.T, n, m int) *fixture {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(m, func(types.MemID) []memsim.RegionSpec {
		return Layout(procs)
	}, memsim.Options{})
	f := &fixture{
		procs:   procs,
		pool:    pool,
		net:     netsim.New(netsim.Options{}),
		routers: make(map[types.ProcID]*netsim.Router),
		oracle:  omega.NewStatic(1),
		nodes:   make(map[types.ProcID]*Node),
	}
	t.Cleanup(f.net.Close)
	for _, p := range procs {
		ep := f.net.Register(p)
		router := netsim.NewRouter(ep)
		f.routers[p] = router
		node, err := New(Config{
			Self:     p,
			Procs:    procs,
			Memories: pool.Memories(),
			Endpoint: ep,
			Sub:      router.Subscribe("aligned/", 0),
			Oracle:   f.oracle,
		})
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		node.Start()
		f.nodes[p] = node
	}
	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.Stop()
		}
		for _, r := range f.routers {
			r.Close()
		}
	})
	return f
}

func TestDecidesWithAllAgentsAlive(t *testing.T) {
	f := newFixture(t, 3, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("aligned-value"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("aligned-value")) {
		t.Fatalf("decided %v", out.Value)
	}
	for _, p := range f.procs {
		v, err := f.nodes[p].WaitDecision(ctx)
		if err != nil {
			t.Fatalf("WaitDecision at %v: %v", p, err)
		}
		if !v.Equal(types.Value("aligned-value")) {
			t.Fatalf("process %v learned %v", p, v)
		}
	}
}

func TestToleratesMixedMinorityMemoryHeavy(t *testing.T) {
	// 3 processes + 4 memories = 7 agents; crash 3 memories (a minority of
	// the combined set even though it is a majority of the memories alone).
	f := newFixture(t, 3, 4)
	f.pool.CrashQuorumSafe(3)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("memory-heavy"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("memory-heavy")) {
		t.Fatalf("decided %v", out.Value)
	}
}

func TestToleratesMixedMinorityProcessHeavy(t *testing.T) {
	// 4 processes + 3 memories = 7 agents; crash 3 processes (all but the
	// proposer): still a minority of the combined set.
	f := newFixture(t, 4, 3)
	f.net.CrashProcess(2)
	f.net.CrashProcess(3)
	f.net.CrashProcess(4)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("process-heavy"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Value.Equal(types.Value("process-heavy")) {
		t.Fatalf("decided %v", out.Value)
	}
}

func TestBlocksWhenCombinedMajorityCrashes(t *testing.T) {
	// 2 processes + 3 memories = 5 agents; crashing 3 memories leaves only 2
	// live agents, below the majority of 3.
	f := newFixture(t, 2, 3)
	f.pool.CrashQuorumSafe(3)
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	if _, err := f.nodes[1].Propose(ctx, types.Value("stuck")); err == nil {
		t.Fatalf("proposal should not complete when a majority of combined agents crashed")
	}
}

func TestAgreementAcrossLeaderChange(t *testing.T) {
	f := newFixture(t, 3, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	first, err := f.nodes[1].Propose(ctx, types.Value("first"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	f.oracle.SetLeader(2)
	second, err := f.nodes[2].Propose(ctx, types.Value("second"))
	if err != nil {
		t.Fatalf("second Propose: %v", err)
	}
	if !second.Value.Equal(first.Value) {
		t.Fatalf("agreement violated: %v then %v", first.Value, second.Value)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: 1}); err == nil {
		t.Fatalf("empty configuration should be rejected")
	}
	procs := []types.ProcID{1}
	pool := memsim.NewPool(1, func(types.MemID) []memsim.RegionSpec { return Layout(procs) }, memsim.Options{})
	if _, err := New(Config{Self: 1, Procs: procs, Memories: pool.Memories()}); err == nil {
		t.Fatalf("missing endpoint should be rejected")
	}
}
