// Package sigs provides the unforgeable-signature primitive assumed by the
// paper: sign(v) and sValid(p, v).
//
// Signatures are Ed25519 (standard library crypto/ed25519). A KeyRing holds
// one key pair per process; correct processes sign with their private key and
// anybody holding the ring can verify which process signed a value. Byzantine
// processes in the simulator are given their own private key only, so they
// cannot forge signatures of correct processes — matching the model's
// assumption.
package sigs

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"rdmaagreement/internal/types"
)

// Signed is a value together with the identity of its signer and the
// signature bytes. Signed values are what protocols place in shared memory
// and in messages.
type Signed struct {
	Signer    types.ProcID `json:"signer"`
	Payload   []byte       `json:"payload"`
	Signature []byte       `json:"signature"`
}

// Clone returns a deep copy of the signed value.
func (s Signed) Clone() Signed {
	out := Signed{Signer: s.Signer}
	out.Payload = append([]byte(nil), s.Payload...)
	out.Signature = append([]byte(nil), s.Signature...)
	return out
}

// Equal reports whether two signed values are identical (same signer, payload
// and signature bytes).
func (s Signed) Equal(other Signed) bool {
	if s.Signer != other.Signer || len(s.Payload) != len(other.Payload) || len(s.Signature) != len(other.Signature) {
		return false
	}
	for i := range s.Payload {
		if s.Payload[i] != other.Payload[i] {
			return false
		}
	}
	for i := range s.Signature {
		if s.Signature[i] != other.Signature[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether the signed value is the zero value (no signature).
func (s Signed) IsZero() bool {
	return s.Signer == types.NoProcess && len(s.Payload) == 0 && len(s.Signature) == 0
}

// String implements fmt.Stringer.
func (s Signed) String() string {
	return fmt.Sprintf("signed{%s, %s}", s.Signer, types.Value(s.Payload))
}

// Counters tally signing and verification operations. Experiment E6 uses them
// to reproduce the paper's "one signature on the fast path" claim.
type Counters struct {
	signs   atomic.Int64
	verifys atomic.Int64
}

// Signs returns the number of Sign calls recorded.
func (c *Counters) Signs() int64 { return c.signs.Load() }

// Verifications returns the number of Verify calls recorded.
func (c *Counters) Verifications() int64 { return c.verifys.Load() }

// Reset zeroes both counters.
func (c *Counters) Reset() {
	c.signs.Store(0)
	c.verifys.Store(0)
}

// KeyRing holds the Ed25519 key pairs of every process in the system and the
// shared signature counters. A KeyRing is safe for concurrent use.
type KeyRing struct {
	mu       sync.RWMutex
	public   map[types.ProcID]ed25519.PublicKey
	private  map[types.ProcID]ed25519.PrivateKey
	counters Counters
}

// NewKeyRing creates a ring with deterministic key pairs for the given
// processes. Determinism (keys derived from the process identifier) keeps
// test failures reproducible; unforgeability in the simulation only requires
// that Byzantine node implementations never call Sign on behalf of others,
// which Signer handles enforce.
func NewKeyRing(procs []types.ProcID) *KeyRing {
	kr := &KeyRing{
		public:  make(map[types.ProcID]ed25519.PublicKey, len(procs)),
		private: make(map[types.ProcID]ed25519.PrivateKey, len(procs)),
	}
	for _, p := range procs {
		seed := deterministicSeed(p)
		priv := ed25519.NewKeyFromSeed(seed)
		kr.private[p] = priv
		kr.public[p] = priv.Public().(ed25519.PublicKey)
	}
	return kr
}

func deterministicSeed(p types.ProcID) []byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(p))
	copy(buf[8:], "rdma-agree")
	sum := sha256.Sum256(buf[:])
	return sum[:ed25519.SeedSize]
}

// Counters returns the shared signature-operation counters.
func (kr *KeyRing) Counters() *Counters { return &kr.counters }

// Processes returns the identifiers known to the ring.
func (kr *KeyRing) Processes() []types.ProcID {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	out := make([]types.ProcID, 0, len(kr.public))
	for p := range kr.public {
		out = append(out, p)
	}
	return out
}

// Sign signs payload on behalf of process p. It returns an error if p has no
// key in the ring.
func (kr *KeyRing) Sign(p types.ProcID, payload []byte) (Signed, error) {
	kr.mu.RLock()
	priv, ok := kr.private[p]
	kr.mu.RUnlock()
	if !ok {
		return Signed{}, fmt.Errorf("sign: %w: %s", types.ErrUnknownProcess, p)
	}
	kr.counters.signs.Add(1)
	sig := ed25519.Sign(priv, payload)
	return Signed{Signer: p, Payload: append([]byte(nil), payload...), Signature: sig}, nil
}

// Valid reports whether s carries a valid signature by claimed. It implements
// the paper's sValid(p, v).
func (kr *KeyRing) Valid(claimed types.ProcID, s Signed) bool {
	if s.Signer != claimed {
		return false
	}
	kr.mu.RLock()
	pub, ok := kr.public[claimed]
	kr.mu.RUnlock()
	if !ok {
		return false
	}
	kr.counters.verifys.Add(1)
	return ed25519.Verify(pub, s.Payload, s.Signature)
}

// Signer is a capability handle that lets exactly one process sign values. It
// is what node implementations receive, so a Byzantine node cannot sign on
// behalf of another process (it simply never obtains the other Signer).
type Signer struct {
	ring *KeyRing
	id   types.ProcID
}

// SignerFor returns the signing handle of process p.
func (kr *KeyRing) SignerFor(p types.ProcID) *Signer { return &Signer{ring: kr, id: p} }

// ID returns the process this handle signs for.
func (s *Signer) ID() types.ProcID { return s.id }

// Sign signs payload as the handle's process.
func (s *Signer) Sign(payload []byte) (Signed, error) { return s.ring.Sign(s.id, payload) }

// Valid verifies that v was signed by claimed.
func (s *Signer) Valid(claimed types.ProcID, v Signed) bool { return s.ring.Valid(claimed, v) }

// Forge produces a Signed value with an intentionally invalid signature that
// claims to come from victim. Byzantine node implementations use it in tests
// to demonstrate that forgeries are rejected.
func Forge(victim types.ProcID, payload []byte) Signed {
	return Signed{
		Signer:    victim,
		Payload:   append([]byte(nil), payload...),
		Signature: make([]byte, ed25519.SignatureSize),
	}
}
