package sigs

import (
	"testing"
	"testing/quick"

	"rdmaagreement/internal/types"
)

func newTestRing() *KeyRing {
	return NewKeyRing([]types.ProcID{1, 2, 3})
}

func TestSignAndValid(t *testing.T) {
	kr := newTestRing()
	signed, err := kr.Sign(1, []byte("hello"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !kr.Valid(1, signed) {
		t.Fatalf("valid signature rejected")
	}
}

func TestValidRejectsWrongClaimedSigner(t *testing.T) {
	kr := newTestRing()
	signed, err := kr.Sign(1, []byte("hello"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if kr.Valid(2, signed) {
		t.Fatalf("signature by p1 accepted as p2")
	}
}

func TestValidRejectsTamperedPayload(t *testing.T) {
	kr := newTestRing()
	signed, err := kr.Sign(1, []byte("hello"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	signed.Payload[0] ^= 0xff
	if kr.Valid(1, signed) {
		t.Fatalf("tampered payload accepted")
	}
}

func TestValidRejectsForgery(t *testing.T) {
	kr := newTestRing()
	forged := Forge(1, []byte("evil"))
	if kr.Valid(1, forged) {
		t.Fatalf("forged signature accepted")
	}
}

func TestSignUnknownProcess(t *testing.T) {
	kr := newTestRing()
	if _, err := kr.Sign(99, []byte("x")); err == nil {
		t.Fatalf("expected error signing for unknown process")
	}
}

func TestValidUnknownProcess(t *testing.T) {
	kr := newTestRing()
	signed, err := kr.Sign(1, []byte("x"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	signed.Signer = 99
	if kr.Valid(99, signed) {
		t.Fatalf("signature attributed to unknown process accepted")
	}
}

func TestSignerHandle(t *testing.T) {
	kr := newTestRing()
	signer := kr.SignerFor(2)
	if signer.ID() != 2 {
		t.Fatalf("signer id = %v", signer.ID())
	}
	signed, err := signer.Sign([]byte("payload"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if signed.Signer != 2 {
		t.Fatalf("signed.Signer = %v", signed.Signer)
	}
	if !signer.Valid(2, signed) {
		t.Fatalf("signer rejects its own signature")
	}
	if signer.Valid(1, signed) {
		t.Fatalf("signature misattributed")
	}
}

func TestCounters(t *testing.T) {
	kr := newTestRing()
	c := kr.Counters()
	c.Reset()
	signed, err := kr.Sign(1, []byte("x"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	kr.Valid(1, signed)
	kr.Valid(1, signed)
	if c.Signs() != 1 {
		t.Fatalf("signs = %d, want 1", c.Signs())
	}
	if c.Verifications() != 2 {
		t.Fatalf("verifications = %d, want 2", c.Verifications())
	}
	c.Reset()
	if c.Signs() != 0 || c.Verifications() != 0 {
		t.Fatalf("reset did not zero counters")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a := NewKeyRing([]types.ProcID{1, 2})
	b := NewKeyRing([]types.ProcID{1, 2})
	sa, err := a.Sign(1, []byte("same"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !b.Valid(1, sa) {
		t.Fatalf("rings with same processes should produce interoperable keys")
	}
}

func TestSignedCloneAndEqual(t *testing.T) {
	kr := newTestRing()
	s, err := kr.Sign(1, []byte("abc"))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatalf("clone not equal to original")
	}
	c.Payload[0] = 'z'
	if c.Equal(s) {
		t.Fatalf("mutated clone still equal")
	}
	if s.Payload[0] == 'z' {
		t.Fatalf("mutating clone mutated original")
	}
	var zero Signed
	if !zero.IsZero() {
		t.Fatalf("zero signed should report IsZero")
	}
	if s.IsZero() {
		t.Fatalf("real signature should not be zero")
	}
}

func TestProcesses(t *testing.T) {
	kr := newTestRing()
	if got := len(kr.Processes()); got != 3 {
		t.Fatalf("Processes() len = %d", got)
	}
}

// Property: any payload signed by a process verifies under that process and
// fails under every other process.
func TestSignVerifyProperty(t *testing.T) {
	kr := newTestRing()
	f := func(payload []byte, pick uint8) bool {
		signer := types.ProcID(pick%3 + 1)
		other := signer%3 + 1
		s, err := kr.Sign(signer, payload)
		if err != nil {
			return false
		}
		return kr.Valid(signer, s) && !kr.Valid(other, s)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
