package harness

import (
	"strconv"
	"strings"
	"testing"

	"rdmaagreement/internal/core"
)

func TestTableRendering(t *testing.T) {
	table := Table{
		Name:        "T",
		Description: "demo",
		Columns:     []string{"a", "long-column"},
		Rows:        [][]string{{"1", "2"}, {"wide-cell", "3"}},
	}
	out := table.String()
	if !strings.Contains(out, "long-column") || !strings.Contains(out, "wide-cell") {
		t.Fatalf("rendered table missing cells:\n%s", out)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	exps := Experiments()
	for _, id := range ExperimentIDs() {
		if _, ok := exps[id]; !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if len(exps) != len(ExperimentIDs()) {
		t.Fatalf("registry and id list out of sync")
	}
}

func TestE1ReproducesPaperDelays(t *testing.T) {
	table, err := E1DecisionDelays()
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	want := map[string]string{
		string(core.ProtocolFastRobust):           "2",
		string(core.ProtocolProtectedMemoryPaxos): "2",
		string(core.ProtocolDiskPaxos):            "4",
		string(core.ProtocolPaxos):                "4",
		string(core.ProtocolFastPaxos):            "2",
	}
	for _, row := range table.Rows {
		protocol, delays := row[0], row[3]
		expected, ok := want[protocol]
		if !ok {
			continue
		}
		if delays != expected {
			t.Fatalf("E1: %s decided in %s delays, paper says %s\n%s", protocol, delays, expected, table)
		}
	}
}

func TestE5LowerBoundShape(t *testing.T) {
	table, err := E5StaticPermissionLowerBound()
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	var disk, pm int
	for _, row := range table.Rows {
		v, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("E5: bad delay cell %q", row[2])
		}
		switch row[0] {
		case "disk-paxos":
			disk = v
		case "protected-memory-paxos":
			pm = v
		}
	}
	if pm != 2 {
		t.Fatalf("E5: protected memory paxos should be 2-deciding, got %d", pm)
	}
	if disk < 4 {
		t.Fatalf("E5: disk paxos (static permissions) should need at least 4 delays, got %d", disk)
	}
}

func TestE3CrashResilience(t *testing.T) {
	table, err := E3CrashResilience()
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	for _, row := range table.Rows {
		if row[4] != "yes" {
			t.Fatalf("E3: run %v did not decide", row)
		}
	}
}

func TestE6FastPathUsesSingleSignature(t *testing.T) {
	table, err := E6SignatureCost()
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	for _, row := range table.Rows {
		if !strings.HasPrefix(row[0], "fast") {
			continue
		}
		signs, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("E6: bad sign count %q", row[1])
		}
		if signs != 1 {
			t.Fatalf("E6: the fast-path leader should need exactly one signature, used %d\n%s", signs, table)
		}
	}
}
