// Package harness runs the experiments that reproduce the paper's
// quantitative claims (see DESIGN.md §4 and EXPERIMENTS.md) and formats their
// results as tables. The root-level benchmarks and cmd/agreementbench are
// thin wrappers around this package.
package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"rdmaagreement/internal/core"
	"rdmaagreement/internal/types"
)

// Table is one experiment's result.
type Table struct {
	Name        string
	Description string
	Columns     []string
	Rows        [][]string
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Name, t.Description)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		widths[i] = w
		b.WriteString(strings.Repeat("-", w) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// defaultTimeout bounds each individual scenario in an experiment.
const defaultTimeout = 60 * time.Second

// runOnce builds a cluster, lets the leader propose, and returns the result.
func runOnce(protocol core.Protocol, opts core.Options, mutate func(*core.Cluster)) (core.Result, error) {
	cluster, err := core.NewCluster(protocol, opts)
	if err != nil {
		return core.Result{}, err
	}
	defer cluster.Close()
	if mutate != nil {
		mutate(cluster)
	}
	ctx, cancel := context.WithTimeout(context.Background(), defaultTimeout)
	defer cancel()
	return cluster.Proposer(cluster.Leader()).Propose(ctx, types.Value("experiment"))
}

// proposeMany runs concurrent proposals at the given processes and returns
// the result observed at the first listed process. Backup-path scenarios need
// several correct processes to participate (the set-up phase of Preferential
// Paxos waits for n − f_P inputs).
func proposeMany(cluster *core.Cluster, procs []types.ProcID) (core.Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), defaultTimeout)
	defer cancel()
	type outcome struct {
		p   types.ProcID
		res core.Result
		err error
	}
	results := make(chan outcome, len(procs))
	for _, p := range procs {
		go func(p types.ProcID) {
			res, err := cluster.Proposer(p).Propose(ctx, types.Value("experiment"))
			results <- outcome{p: p, res: res, err: err}
		}(p)
	}
	byProc := make(map[types.ProcID]core.Result, len(procs))
	for range procs {
		out := <-results
		if out.err != nil {
			return core.Result{}, out.err
		}
		byProc[out.p] = out.res
	}
	return byProc[procs[0]], nil
}

// Experiments returns every experiment in DESIGN.md order.
func Experiments() map[string]func() (Table, error) {
	return map[string]func() (Table, error){
		"e1": E1DecisionDelays,
		"e2": E2ByzantineResilience,
		"e3": E3CrashResilience,
		"e4": E4AlignedMajority,
		"e5": E5StaticPermissionLowerBound,
		"e6": E6SignatureCost,
		"e8": E8LatencySweep,
		"e9": E9MemoryFailures,
	}
}

// ExperimentIDs lists the experiment identifiers in a stable order.
func ExperimentIDs() []string { return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e8", "e9"} }

// E1DecisionDelays measures common-case decision delays for every protocol
// (paper: Theorems 4.9 and 5.1, Table 1 row "This paper", §1 comparison with
// Disk Paxos / Fast Paxos).
func E1DecisionDelays() (Table, error) {
	table := Table{
		Name:        "E1",
		Description: "common-case decision delays (failure-free, synchronous)",
		Columns:     []string{"protocol", "n", "m", "delays", "paper"},
	}
	expected := map[core.Protocol]string{
		core.ProtocolFastRobust:           "2 (Thm 4.9)",
		core.ProtocolProtectedMemoryPaxos: "2 (Thm 5.1)",
		core.ProtocolAlignedPaxos:         "n/a (resilience result)",
		core.ProtocolDiskPaxos:            "≥4 (§1, Thm 6.1)",
		core.ProtocolPaxos:                "4",
		core.ProtocolFastPaxos:            "2",
	}
	for _, n := range []int{3, 5} {
		for _, protocol := range core.Protocols() {
			res, err := runOnce(protocol, core.Options{Processes: n, Memories: 3}, nil)
			if err != nil {
				return Table{}, fmt.Errorf("e1 %s n=%d: %w", protocol, n, err)
			}
			table.Rows = append(table.Rows, []string{
				string(protocol), fmt.Sprint(n), "3", fmt.Sprint(res.DecisionDelays), expected[protocol],
			})
		}
	}
	return table, nil
}

// E2ByzantineResilience exercises Fast & Robust with n = 2f_P+1 and a faulty
// fast-path leader (paper: Table 1, §4).
func E2ByzantineResilience() (Table, error) {
	table := Table{
		Name:        "E2",
		Description: "weak Byzantine agreement with n = 2f_P+1 (Fast & Robust)",
		Columns:     []string{"n", "f_P", "scenario", "decided", "fast path", "delays"},
	}
	for _, f := range []int{1, 2} {
		n := 2*f + 1
		// Failure-free: the fast path decides in two delays.
		res, err := runOnce(core.ProtocolFastRobust, core.Options{Processes: n, Memories: 3, FaultyProcesses: f}, nil)
		if err != nil {
			return Table{}, fmt.Errorf("e2 common case f=%d: %w", f, err)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(f), "failure-free", "yes", fmt.Sprint(res.FastPath), fmt.Sprint(res.DecisionDelays),
		})

		// Byzantine-silent leader: the followers abort and the backup decides.
		cluster, err := core.NewCluster(core.ProtocolFastRobust, core.Options{
			Processes: n, Memories: 3, FaultyProcesses: f, FastTimeout: 50 * time.Millisecond,
		})
		if err != nil {
			return Table{}, fmt.Errorf("e2 silent leader f=%d: %w", f, err)
		}
		followers := cluster.Procs[1:] // everyone but the silent fast-path leader
		cluster.SetLeader(followers[0])
		res, err = proposeMany(cluster, followers)
		cluster.Close()
		if err != nil {
			return Table{}, fmt.Errorf("e2 silent leader f=%d propose: %w", f, err)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(f), "silent Byzantine leader", "yes", fmt.Sprint(res.FastPath), fmt.Sprint(res.DecisionDelays),
		})
	}
	return table, nil
}

// E3CrashResilience exercises Protected Memory Paxos with n ≥ f_P+1 (all but
// one process crash) and f_M memory crashes (paper: Theorem 5.1).
func E3CrashResilience() (Table, error) {
	table := Table{
		Name:        "E3",
		Description: "crash consensus with n ≥ f_P+1 and m ≥ 2f_M+1 (Protected Memory Paxos)",
		Columns:     []string{"n", "crashed procs", "m", "crashed mems", "decided", "delays"},
	}
	for _, n := range []int{2, 3, 5} {
		res, err := runOnce(core.ProtocolProtectedMemoryPaxos, core.Options{Processes: n, Memories: 3}, func(c *core.Cluster) {
			// Crash every process except the leader: n ≥ f_P + 1 still decides.
			for _, p := range c.Procs {
				if p != c.Leader() {
					c.CrashProcess(p)
				}
			}
			c.CrashMemories(1)
		})
		if err != nil {
			return Table{}, fmt.Errorf("e3 n=%d: %w", n, err)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(n - 1), "3", "1", "yes", fmt.Sprint(res.DecisionDelays),
		})
	}
	return table, nil
}

// E4AlignedMajority exercises Aligned Paxos with crashes of different
// minorities of the combined process+memory set (paper: §5.2).
func E4AlignedMajority() (Table, error) {
	table := Table{
		Name:        "E4",
		Description: "Aligned Paxos tolerates any minority of the combined process+memory set",
		Columns:     []string{"n", "m", "crashed procs", "crashed mems", "live agents", "decided"},
	}
	cases := []struct{ n, m, crashP, crashM int }{
		{3, 4, 0, 3}, // memory-heavy minority
		{4, 3, 3, 0}, // process-heavy minority
		{3, 3, 1, 1}, // balanced minority
	}
	for _, tc := range cases {
		res, err := runOnce(core.ProtocolAlignedPaxos, core.Options{Processes: tc.n, Memories: tc.m}, func(c *core.Cluster) {
			crashed := 0
			for _, p := range c.Procs {
				if crashed == tc.crashP {
					break
				}
				if p != c.Leader() {
					c.CrashProcess(p)
					crashed++
				}
			}
			c.CrashMemories(tc.crashM)
		})
		if err != nil {
			return Table{}, fmt.Errorf("e4 n=%d m=%d: %w", tc.n, tc.m, err)
		}
		live := tc.n + tc.m - tc.crashP - tc.crashM
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(tc.n), fmt.Sprint(tc.m), fmt.Sprint(tc.crashP), fmt.Sprint(tc.crashM),
			fmt.Sprintf("%d/%d", live, tc.n+tc.m), boolCell(!res.Value.Bottom()),
		})
	}
	return table, nil
}

// E5StaticPermissionLowerBound contrasts Disk Paxos (static permissions, ≥4
// delays) with Protected Memory Paxos (dynamic permissions, 2 delays) on the
// same topology (paper: Theorem 6.1).
func E5StaticPermissionLowerBound() (Table, error) {
	table := Table{
		Name:        "E5",
		Description: "dynamic permissions are necessary for 2-deciding consensus (Theorem 6.1)",
		Columns:     []string{"protocol", "permissions", "delays"},
	}
	disk, err := runOnce(core.ProtocolDiskPaxos, core.Options{Processes: 3, Memories: 3}, nil)
	if err != nil {
		return Table{}, fmt.Errorf("e5 disk paxos: %w", err)
	}
	pm, err := runOnce(core.ProtocolProtectedMemoryPaxos, core.Options{Processes: 3, Memories: 3}, nil)
	if err != nil {
		return Table{}, fmt.Errorf("e5 protected memory paxos: %w", err)
	}
	table.Rows = append(table.Rows,
		[]string{"disk-paxos", "static", fmt.Sprint(disk.DecisionDelays)},
		[]string{"protected-memory-paxos", "dynamic", fmt.Sprint(pm.DecisionDelays)},
	)
	return table, nil
}

// E6SignatureCost counts signature operations on the Fast & Robust fast path
// versus the Robust Backup path (paper §4.2: one signature suffices for a
// fast decision).
func E6SignatureCost() (Table, error) {
	table := Table{
		Name:        "E6",
		Description: "signature operations per decision: fast path vs backup path (leader side)",
		Columns:     []string{"path", "sign ops", "decided in delays"},
	}

	// Fast path: count signatures the leader creates before it decides.
	cluster, err := core.NewCluster(core.ProtocolFastRobust, core.Options{Processes: 3, Memories: 3})
	if err != nil {
		return Table{}, fmt.Errorf("e6 fast path: %w", err)
	}
	cluster.Ring.Counters().Reset()
	ctx, cancel := context.WithTimeout(context.Background(), defaultTimeout)
	res, err := cluster.Proposer(cluster.Leader()).Propose(ctx, types.Value("experiment"))
	cancel()
	fastSigns := cluster.Ring.Counters().Signs()
	cluster.Close()
	if err != nil {
		return Table{}, fmt.Errorf("e6 fast path propose: %w", err)
	}
	table.Rows = append(table.Rows, []string{"fast (Cheap Quorum leader)", fmt.Sprint(fastSigns), fmt.Sprint(res.DecisionDelays)})

	// Backup path: silent fast-path leader forces the backup, which signs
	// every non-equivocating broadcast it performs.
	cluster, err = core.NewCluster(core.ProtocolFastRobust, core.Options{
		Processes: 3, Memories: 3, FastTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		return Table{}, fmt.Errorf("e6 backup path: %w", err)
	}
	cluster.Ring.Counters().Reset()
	cluster.SetLeader(2)
	res, err = proposeMany(cluster, []types.ProcID{2, 3})
	backupSigns := cluster.Ring.Counters().Signs()
	cluster.Close()
	if err != nil {
		return Table{}, fmt.Errorf("e6 backup path propose: %w", err)
	}
	table.Rows = append(table.Rows, []string{"backup (Preferential Paxos)", fmt.Sprint(backupSigns), fmt.Sprint(res.DecisionDelays)})
	return table, nil
}

// E8LatencySweep sweeps the simulated one-way network/memory latency and
// reports wall-clock decision latency for a 2-delay protocol and a 4-delay
// protocol, showing the ≈2δ vs ≈4δ shape.
func E8LatencySweep() (Table, error) {
	table := Table{
		Name:        "E8",
		Description: "wall-clock decision latency vs per-operation latency δ (shape: 2δ vs 4δ)",
		Columns:     []string{"δ", "protected-memory-paxos (2Δ)", "disk-paxos (4Δ)"},
	}
	for _, delta := range []time.Duration{100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		// A memory operation is a round trip, so its latency is 2δ.
		opLatency := 2 * delta
		pm, err := runOnce(core.ProtocolProtectedMemoryPaxos, core.Options{Processes: 3, Memories: 3, MemoryLatency: opLatency}, nil)
		if err != nil {
			return Table{}, fmt.Errorf("e8 pm δ=%v: %w", delta, err)
		}
		disk, err := runOnce(core.ProtocolDiskPaxos, core.Options{Processes: 3, Memories: 3, MemoryLatency: opLatency}, nil)
		if err != nil {
			return Table{}, fmt.Errorf("e8 disk δ=%v: %w", delta, err)
		}
		table.Rows = append(table.Rows, []string{
			delta.String(), pm.Elapsed.Round(10 * time.Microsecond).String(), disk.Elapsed.Round(10 * time.Microsecond).String(),
		})
	}
	return table, nil
}

// E9MemoryFailures exercises memory crashes and the zombie-server scenario:
// the fast-path leader's process crashes right after deciding while its
// memory stays up, and a new leader finishes the agreement (paper §7).
func E9MemoryFailures() (Table, error) {
	table := Table{
		Name:        "E9",
		Description: "memory crashes and zombie servers (process dead, memory alive)",
		Columns:     []string{"scenario", "protocol", "decided", "delays"},
	}

	// Minority of memories crash before the run.
	res, err := runOnce(core.ProtocolFastRobust, core.Options{Processes: 3, Memories: 3}, func(c *core.Cluster) {
		c.CrashMemories(1)
	})
	if err != nil {
		return Table{}, fmt.Errorf("e9 memory crash: %w", err)
	}
	table.Rows = append(table.Rows, []string{"f_M memory crashes", "fast-robust", "yes", fmt.Sprint(res.DecisionDelays)})

	// Zombie server: the initial leader decides, then its process crashes
	// while its memory stays up; a second leader must reach the same
	// decision from the surviving memories.
	cluster, err := core.NewCluster(core.ProtocolProtectedMemoryPaxos, core.Options{Processes: 3, Memories: 3})
	if err != nil {
		return Table{}, fmt.Errorf("e9 zombie: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), defaultTimeout)
	first, err := cluster.Proposer(1).Propose(ctx, types.Value("experiment"))
	if err != nil {
		cancel()
		cluster.Close()
		return Table{}, fmt.Errorf("e9 zombie first propose: %w", err)
	}
	cluster.CrashProcess(1)
	cluster.SetLeader(2)
	second, err := cluster.Proposer(2).Propose(ctx, types.Value("other"))
	cancel()
	cluster.Close()
	if err != nil {
		return Table{}, fmt.Errorf("e9 zombie second propose: %w", err)
	}
	agreed := second.Value.Equal(first.Value)
	table.Rows = append(table.Rows, []string{"zombie leader (process dead, memory alive)", "protected-memory-paxos", boolCell(agreed), fmt.Sprint(second.DecisionDelays)})
	return table, nil
}

func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
