package types

import (
	"testing"
	"testing/quick"
)

func TestValueBottom(t *testing.T) {
	var v Value
	if !v.Bottom() {
		t.Fatalf("nil value should be bottom")
	}
	if !(Value{}).Bottom() {
		t.Fatalf("empty value should be bottom")
	}
	if Value("x").Bottom() {
		t.Fatalf("non-empty value should not be bottom")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b Value
		want bool
	}{
		{"both nil", nil, nil, true},
		{"nil vs empty", nil, Value{}, true},
		{"equal strings", Value("abc"), Value("abc"), true},
		{"different strings", Value("abc"), Value("abd"), false},
		{"different length", Value("abc"), Value("ab"), false},
		{"value vs bottom", Value("abc"), nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Equal(tc.b); got != tc.want {
				t.Fatalf("Equal(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			if got := tc.b.Equal(tc.a); got != tc.want {
				t.Fatalf("Equal is not symmetric for %v, %v", tc.a, tc.b)
			}
		})
	}
}

func TestValueClone(t *testing.T) {
	orig := Value("hello")
	clone := orig.Clone()
	if !clone.Equal(orig) {
		t.Fatalf("clone differs from original")
	}
	clone[0] = 'X'
	if orig[0] == 'X' {
		t.Fatalf("mutating clone mutated original")
	}
	if Value(nil).Clone() != nil {
		t.Fatalf("cloning nil should return nil")
	}
}

func TestValueString(t *testing.T) {
	if got := Value(nil).String(); got != "⊥" {
		t.Fatalf("bottom string = %q", got)
	}
	long := make(Value, 100)
	for i := range long {
		long[i] = 'a'
	}
	if got := long.String(); len(got) >= 100 {
		t.Fatalf("long value should be truncated, got %q", got)
	}
}

func TestProposalNumberOrdering(t *testing.T) {
	a := ProposalNumber{Round: 1, Proposer: 1}
	b := ProposalNumber{Round: 1, Proposer: 2}
	c := ProposalNumber{Round: 2, Proposer: 1}

	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Fatalf("expected a < b < c")
	}
	if b.Less(a) || c.Less(b) {
		t.Fatalf("ordering not antisymmetric")
	}
	if !c.Greater(a) {
		t.Fatalf("Greater inconsistent with Less")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Fatalf("Equal broken")
	}
}

func TestProposalNumberNext(t *testing.T) {
	var zero ProposalNumber
	if !zero.IsZero() {
		t.Fatalf("zero value should be zero proposal")
	}
	n := zero.Next(3, ProposalNumber{})
	if n.Round != 1 || n.Proposer != 3 {
		t.Fatalf("Next from zero = %v", n)
	}
	// Next must exceed both the receiver and the floor.
	floor := ProposalNumber{Round: 10, Proposer: 2}
	n2 := n.Next(3, floor)
	if !n2.Greater(floor) || !n2.Greater(n) {
		t.Fatalf("Next(%v, floor=%v) = %v does not dominate", n, floor, n2)
	}
}

func TestProposalNumberNextProperty(t *testing.T) {
	f := func(round uint32, floorRound uint32, proposer uint8) bool {
		cur := ProposalNumber{Round: uint64(round), Proposer: ProcID(proposer%5 + 1)}
		floor := ProposalNumber{Round: uint64(floorRound), Proposer: ProcID(proposer%3 + 1)}
		next := cur.Next(ProcID(proposer%5+1), floor)
		return next.Greater(cur) && next.Greater(floor)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcSetBasics(t *testing.T) {
	s := NewProcSet(1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Fatalf("contains broken")
	}
	added := s.Add(4)
	if s.Contains(4) {
		t.Fatalf("Add mutated receiver")
	}
	if !added.Contains(4) {
		t.Fatalf("Add result missing new member")
	}
	removed := added.Remove(1)
	if !added.Contains(1) {
		t.Fatalf("Remove mutated receiver")
	}
	if removed.Contains(1) {
		t.Fatalf("Remove result still has member")
	}
}

func TestProcSetMembersSorted(t *testing.T) {
	s := NewProcSet(5, 1, 3, 2, 4)
	members := s.Members()
	for i := 1; i < len(members); i++ {
		if members[i-1] >= members[i] {
			t.Fatalf("members not sorted: %v", members)
		}
	}
}

func TestProcSetEqual(t *testing.T) {
	a := NewProcSet(1, 2)
	b := NewProcSet(2, 1)
	c := NewProcSet(1, 3)
	if !a.Equal(b) {
		t.Fatalf("equal sets reported unequal")
	}
	if a.Equal(c) || a.Equal(NewProcSet(1)) {
		t.Fatalf("unequal sets reported equal")
	}
}

func TestMajority(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 6: 4, 7: 4}
	for total, want := range cases {
		if got := Majority(total); got != want {
			t.Fatalf("Majority(%d) = %d, want %d", total, got, want)
		}
	}
}

func TestStringers(t *testing.T) {
	if ProcID(3).String() != "p3" {
		t.Fatalf("ProcID stringer broken")
	}
	if NoProcess.String() != "p(none)" {
		t.Fatalf("NoProcess stringer broken")
	}
	if MemID(2).String() != "mem2" {
		t.Fatalf("MemID stringer broken")
	}
	if (ProposalNumber{}).String() != "ballot(0)" {
		t.Fatalf("zero proposal stringer broken")
	}
	set := NewProcSet(2, 1)
	if set.String() != "{p1,p2}" {
		t.Fatalf("ProcSet stringer = %q", set.String())
	}
}
