// Package types defines the identifiers, values and common errors shared by
// every substrate and protocol in the repository.
//
// The vocabulary follows the message-and-memory (M&M) model of Aguilera et al.
// (PODC 2019): a system has n processes and m memories; memories are divided
// into registers grouped into regions; processes are identified by small
// integer identifiers.
package types

import (
	"errors"
	"fmt"
	"sort"
)

// ProcID identifies a process. Valid process identifiers are positive;
// the zero value is reserved to mean "no process".
type ProcID int

// NoProcess is the zero ProcID, used when a field does not refer to any
// process (for example, the writer of a register that has never been written).
const NoProcess ProcID = 0

// String implements fmt.Stringer.
func (p ProcID) String() string {
	if p == NoProcess {
		return "p(none)"
	}
	return fmt.Sprintf("p%d", int(p))
}

// MemID identifies a memory (a remote host's RDMA-accessible memory in the
// paper's model). Valid memory identifiers are positive.
type MemID int

// String implements fmt.Stringer.
func (m MemID) String() string { return fmt.Sprintf("mem%d", int(m)) }

// RegionID identifies a memory region within a memory. Regions group
// registers and carry access permissions.
type RegionID string

// RegisterID identifies a register within a memory.
type RegisterID string

// Value is the opaque payload stored in registers, proposed to consensus and
// carried in messages. A nil Value plays the role of the paper's ⊥ (bottom).
type Value []byte

// Bottom reports whether v is the distinguished "no value" (⊥).
func (v Value) Bottom() bool { return len(v) == 0 }

// Clone returns a copy of v so that callers cannot alias internal buffers.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	out := make(Value, len(v))
	copy(out, v)
	return out
}

// Equal reports whether two values are byte-wise equal. Two bottom values are
// equal regardless of nil-ness.
func (v Value) Equal(other Value) bool {
	if v.Bottom() && other.Bottom() {
		return true
	}
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if v[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the value for traces; long values are truncated.
func (v Value) String() string {
	if v.Bottom() {
		return "⊥"
	}
	const max = 32
	if len(v) > max {
		return fmt.Sprintf("%q…(%dB)", string(v[:max]), len(v))
	}
	return fmt.Sprintf("%q", string(v))
}

// ValueFromString builds a Value from a string literal; a convenience for
// examples and tests.
func ValueFromString(s string) Value { return Value(s) }

// ProposalNumber is a Paxos-style ballot number. Proposal numbers are made
// unique per process by interleaving a round counter with the proposer
// identifier.
type ProposalNumber struct {
	Round    uint64 `json:"round"`
	Proposer ProcID `json:"proposer"`
}

// Less reports whether n is strictly smaller than other, ordering first by
// round and then by proposer identifier.
func (n ProposalNumber) Less(other ProposalNumber) bool {
	if n.Round != other.Round {
		return n.Round < other.Round
	}
	return n.Proposer < other.Proposer
}

// Greater reports whether n is strictly larger than other.
func (n ProposalNumber) Greater(other ProposalNumber) bool { return other.Less(n) }

// Equal reports whether two proposal numbers are identical.
func (n ProposalNumber) Equal(other ProposalNumber) bool {
	return n.Round == other.Round && n.Proposer == other.Proposer
}

// IsZero reports whether n is the zero proposal number (no proposal).
func (n ProposalNumber) IsZero() bool { return n.Round == 0 && n.Proposer == NoProcess }

// Next returns the smallest proposal number owned by proposer that is strictly
// greater than both n and floor.
func (n ProposalNumber) Next(proposer ProcID, floor ProposalNumber) ProposalNumber {
	round := n.Round
	if floor.Round > round {
		round = floor.Round
	}
	return ProposalNumber{Round: round + 1, Proposer: proposer}
}

// String implements fmt.Stringer.
func (n ProposalNumber) String() string {
	if n.IsZero() {
		return "ballot(0)"
	}
	return fmt.Sprintf("ballot(%d.%d)", n.Round, int(n.Proposer))
}

// ProcSet is an immutable-by-convention set of process identifiers.
type ProcSet map[ProcID]struct{}

// NewProcSet builds a set from the given identifiers.
func NewProcSet(ids ...ProcID) ProcSet {
	s := make(ProcSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Contains reports whether id belongs to the set.
func (s ProcSet) Contains(id ProcID) bool {
	_, ok := s[id]
	return ok
}

// Add returns a new set that also contains id. The receiver is not modified.
func (s ProcSet) Add(id ProcID) ProcSet {
	out := s.Clone()
	out[id] = struct{}{}
	return out
}

// Remove returns a new set without id. The receiver is not modified.
func (s ProcSet) Remove(id ProcID) ProcSet {
	out := s.Clone()
	delete(out, id)
	return out
}

// Clone returns a copy of the set.
func (s ProcSet) Clone() ProcSet {
	out := make(ProcSet, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

// Len returns the number of members.
func (s ProcSet) Len() int { return len(s) }

// Members returns the members sorted ascending, for deterministic iteration.
func (s ProcSet) Members() []ProcID {
	out := make([]ProcID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports whether two sets have the same members.
func (s ProcSet) Equal(other ProcSet) bool {
	if len(s) != len(other) {
		return false
	}
	for id := range s {
		if !other.Contains(id) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (s ProcSet) String() string {
	members := s.Members()
	out := "{"
	for i, id := range members {
		if i > 0 {
			out += ","
		}
		out += id.String()
	}
	return out + "}"
}

// Common errors shared across substrates and protocols.
var (
	// ErrNak is returned by memory operations that are rejected because the
	// caller lacks the required permission on the region (the paper's "nak").
	ErrNak = errors.New("memory operation rejected: insufficient permission")

	// ErrMemoryCrashed marks an operation that could not complete because the
	// target memory crashed. In the model crashed memories hang forever; the
	// simulator surfaces this error only when the caller's context is
	// cancelled while waiting.
	ErrMemoryCrashed = errors.New("memory crashed")

	// ErrUnknownRegion is returned when an operation names a region that was
	// never created on the target memory.
	ErrUnknownRegion = errors.New("unknown memory region")

	// ErrUnknownRegister is returned when an operation names a register that
	// does not belong to the addressed region.
	ErrUnknownRegister = errors.New("register not in region")

	// ErrIllegalPermissionChange is returned when a permission change is
	// rejected by the region's legalChange policy.
	ErrIllegalPermissionChange = errors.New("permission change rejected by legalChange policy")

	// ErrUnknownProcess is returned when a message is addressed to a process
	// that is not registered with the network.
	ErrUnknownProcess = errors.New("unknown process")

	// ErrProcessCrashed is returned by the network when the sender has been
	// crashed by the fault injector.
	ErrProcessCrashed = errors.New("process crashed")

	// ErrAborted is returned by optimistic protocols (Cheap Quorum) when they
	// give up and hand over to the backup path.
	ErrAborted = errors.New("protocol aborted")

	// ErrNoDecision is returned by harness helpers when a run finishes
	// without any process deciding.
	ErrNoDecision = errors.New("no process decided")

	// ErrInvalidConfig is returned when a cluster configuration violates the
	// resilience requirements of the selected protocol.
	ErrInvalidConfig = errors.New("invalid configuration")
)

// Majority returns the smallest integer strictly greater than half of total.
func Majority(total int) int { return total/2 + 1 }
