package memsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/types"
)

// RegionSpec describes a memory region to create: its identifier, the
// registers it contains and its initial permission.
//
// Dynamic regions model large register arrays (for example the n×M×n slot
// array of non-equivocating broadcast) without pre-declaring every register:
// any register name is considered part of the region, and registers are
// materialized on first access with value ⊥.
type RegionSpec struct {
	ID        types.RegionID
	Registers []types.RegisterID
	Perm      Permission
	Dynamic   bool
}

// Options configure a Memory.
type Options struct {
	// LegalChange is the permission-change policy. Nil means
	// StaticPermissions (no change is ever legal).
	LegalChange LegalChangeFunc
	// OperationLatency, if positive, is slept before each operation
	// completes. Used by wall-clock experiments (E8); delay-count
	// experiments leave it zero.
	OperationLatency time.Duration
}

// OpCounters tallies the operations served by a memory, for experiment
// metrics.
type OpCounters struct {
	Reads       atomic.Int64
	Writes      atomic.Int64
	PermChanges atomic.Int64
	Naks        atomic.Int64
}

// Snapshot returns a plain-struct copy of the counters.
func (c *OpCounters) Snapshot() OpCounterSnapshot {
	return OpCounterSnapshot{
		Reads:       c.Reads.Load(),
		Writes:      c.Writes.Load(),
		PermChanges: c.PermChanges.Load(),
		Naks:        c.Naks.Load(),
	}
}

// OpCounterSnapshot is an immutable copy of OpCounters.
type OpCounterSnapshot struct {
	Reads       int64
	Writes      int64
	PermChanges int64
	Naks        int64
}

// Total returns the total number of operations (excluding naks, which are
// also counted under their operation type).
func (s OpCounterSnapshot) Total() int64 { return s.Reads + s.Writes + s.PermChanges }

type registerState struct {
	value  types.Value
	writer types.ProcID
}

type regionState struct {
	registers map[types.RegisterID]registerState
	perm      Permission
	dynamic   bool
}

// contains reports whether the region includes the register, materializing it
// for dynamic regions. Registers are scoped to their region: two regions with
// a register of the same name hold independent registers (the paper notes
// that regions may overlap in general but never do in its algorithms, and
// keeping registers region-scoped prevents accidental aliasing).
func (rs *regionState) contains(reg types.RegisterID) bool {
	if _, ok := rs.registers[reg]; ok {
		return true
	}
	if rs.dynamic {
		rs.registers[reg] = registerState{}
		return true
	}
	return false
}

// Memory simulates one RDMA-accessible memory host.
//
// All exported methods are safe for concurrent use. Read, Write and
// ChangePermission accept the invoking process's current delay-clock reading
// and return the reading after the operation (invoked + 2 delays), so callers
// can account delays causally.
type Memory struct {
	id   types.MemID
	opts Options

	mu       sync.Mutex
	regions  map[types.RegionID]*regionState
	crashed  bool
	counters OpCounters
}

// NewMemory creates a memory with the given regions. Registers are scoped to
// their region: regions in this simulator never overlap, matching the paper's
// algorithms ("regions may overlap, but in our algorithms they do not").
func NewMemory(id types.MemID, regions []RegionSpec, opts Options) *Memory {
	if opts.LegalChange == nil {
		opts.LegalChange = StaticPermissions
	}
	m := &Memory{
		id:      id,
		opts:    opts,
		regions: make(map[types.RegionID]*regionState, len(regions)),
	}
	for _, spec := range regions {
		m.installRegionLocked(spec)
	}
	return m
}

// installRegionLocked installs or replaces a region. Callers must hold m.mu
// or be the only goroutine with access (construction time).
func (m *Memory) installRegionLocked(spec RegionSpec) {
	rs := &regionState{
		registers: make(map[types.RegisterID]registerState, len(spec.Registers)),
		perm:      spec.Perm.Clone(),
		dynamic:   spec.Dynamic,
	}
	for _, reg := range spec.Registers {
		rs.registers[reg] = registerState{}
	}
	m.regions[spec.ID] = rs
}

// ID returns the memory's identifier.
func (m *Memory) ID() types.MemID { return m.id }

// Counters returns the memory's operation counters.
func (m *Memory) Counters() *OpCounters { return &m.counters }

// Crash makes the memory unresponsive: every subsequent operation hangs until
// the caller's context is cancelled. Crashing is idempotent.
func (m *Memory) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = true
}

// Crashed reports whether the memory has crashed.
func (m *Memory) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Revive brings a crashed memory back: operations issued after Revive behave
// normally again, and every region keeps the contents and permissions it had
// when the crash hit (the crash stalls the memory, it does not wipe it).
// Operations that were already blocked on the crashed memory stay blocked
// until their own context ends — the crash consumed them, exactly like a
// request lost inside a rebooting NIC. Reviving a live memory is a no-op.
//
// Revive models transient stalls (a switch reboot, a zombie interval): the
// replicated-log recovery path needs the fabric to come back so a slot whose
// outcome became ambiguous during the stall can be re-read.
func (m *Memory) Revive() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
}

// AddRegion creates a new region at run time. It is used by tests and by
// protocols that lay out per-instance regions lazily. Adding a region that
// already exists replaces its permission and register set.
func (m *Memory) AddRegion(spec RegionSpec) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.installRegionLocked(spec)
}

// EnsureRegion installs the region only if it does not exist yet and reports
// whether it installed it. Unlike AddRegion it never resets the state or the
// permission of an existing region, so concurrent proposers of the same
// consensus instance can race to lay out its region safely (the replicated-log
// layer installs one region per slot this way).
func (m *Memory) EnsureRegion(spec RegionSpec) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regions[spec.ID]; ok {
		return false
	}
	m.installRegionLocked(spec)
	return true
}

// ReleaseRegion removes a region and all its registers, reporting whether it
// existed. It is the memory-side half of replicated-log slot GC: once a
// slot's decision has been folded into a state-machine snapshot, its region
// is dead weight and the committer releases it on every memory, so live
// memory is bounded by the snapshot window instead of log length. Subsequent
// operations on a released region fail with ErrUnknownRegion, exactly like a
// region that never existed.
func (m *Memory) ReleaseRegion(region types.RegionID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.regions[region]; !ok {
		return false
	}
	delete(m.regions, region)
	return true
}

// LiveRegions returns the number of regions currently installed — the figure
// slot-GC tests bound.
func (m *Memory) LiveRegions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.regions)
}

// RegionPermission returns a copy of the current permission of region. It is
// a diagnostic helper (the model itself does not expose permission reads; the
// harness and tests use this to assert on permission state).
func (m *Memory) RegionPermission(region types.RegionID) (Permission, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.regions[region]
	if !ok {
		return Permission{}, fmt.Errorf("memory %s: %w: %s", m.id, types.ErrUnknownRegion, region)
	}
	return rs.perm.Clone(), nil
}

// await simulates the memory's response behaviour: if the memory crashed the
// call blocks until ctx is cancelled; otherwise it sleeps the configured
// operation latency.
func (m *Memory) await(ctx context.Context) error {
	m.mu.Lock()
	crashed := m.crashed
	m.mu.Unlock()
	if crashed {
		<-ctx.Done()
		return fmt.Errorf("memory %s: %w: %w", m.id, types.ErrMemoryCrashed, ctx.Err())
	}
	if m.opts.OperationLatency > 0 {
		timer := time.NewTimer(m.opts.OperationLatency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return fmt.Errorf("memory %s: %w", m.id, ctx.Err())
		}
	} else if err := ctx.Err(); err != nil {
		return fmt.Errorf("memory %s: %w", m.id, err)
	}
	return nil
}

// Read returns the last value successfully written to register reg of region,
// or a nak error if p lacks read permission. invoked is the caller's delay
// clock reading at invocation; the returned stamp is the reading after the
// two-delay round trip.
func (m *Memory) Read(ctx context.Context, p types.ProcID, region types.RegionID, reg types.RegisterID, invoked delayclock.Stamp) (types.Value, delayclock.Stamp, error) {
	if err := m.await(ctx); err != nil {
		return nil, invoked, err
	}
	done := invoked.AfterMemoryOp()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters.Reads.Add(1)
	rs, ok := m.regions[region]
	if !ok {
		return nil, done, fmt.Errorf("memory %s read %s: %w", m.id, region, types.ErrUnknownRegion)
	}
	if !rs.contains(reg) {
		return nil, done, fmt.Errorf("memory %s read %s/%s: %w", m.id, region, reg, types.ErrUnknownRegister)
	}
	if !rs.perm.CanRead(p) {
		m.counters.Naks.Add(1)
		return nil, done, fmt.Errorf("memory %s read %s/%s by %s: %w", m.id, region, reg, p, types.ErrNak)
	}
	return rs.registers[reg].value.Clone(), done, nil
}

// Write stores v in register reg of region, or returns a nak error if p lacks
// write permission.
func (m *Memory) Write(ctx context.Context, p types.ProcID, region types.RegionID, reg types.RegisterID, v types.Value, invoked delayclock.Stamp) (delayclock.Stamp, error) {
	if err := m.await(ctx); err != nil {
		return invoked, err
	}
	done := invoked.AfterMemoryOp()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters.Writes.Add(1)
	rs, ok := m.regions[region]
	if !ok {
		return done, fmt.Errorf("memory %s write %s: %w", m.id, region, types.ErrUnknownRegion)
	}
	if !rs.contains(reg) {
		return done, fmt.Errorf("memory %s write %s/%s: %w", m.id, region, reg, types.ErrUnknownRegister)
	}
	if !rs.perm.CanWrite(p) {
		m.counters.Naks.Add(1)
		return done, fmt.Errorf("memory %s write %s/%s by %s: %w", m.id, region, reg, p, types.ErrNak)
	}
	rs.registers[reg] = registerState{value: v.Clone(), writer: p}
	return done, nil
}

// ChangePermission changes the permission of region to newPerm if the
// region's legalChange policy allows it; otherwise the change is a no-op and
// ErrIllegalPermissionChange is returned. As in the model, the operation is a
// memory round trip (two delays) either way.
func (m *Memory) ChangePermission(ctx context.Context, p types.ProcID, region types.RegionID, newPerm Permission, invoked delayclock.Stamp) (delayclock.Stamp, error) {
	if err := m.await(ctx); err != nil {
		return invoked, err
	}
	done := invoked.AfterMemoryOp()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters.PermChanges.Add(1)
	rs, ok := m.regions[region]
	if !ok {
		return done, fmt.Errorf("memory %s changePermission %s: %w", m.id, region, types.ErrUnknownRegion)
	}
	if !m.opts.LegalChange(p, region, rs.perm.Clone(), newPerm.Clone()) {
		m.counters.Naks.Add(1)
		return done, fmt.Errorf("memory %s changePermission %s by %s: %w", m.id, region, p, types.ErrIllegalPermissionChange)
	}
	rs.perm = newPerm.Clone()
	return done, nil
}

// Pool is a convenience collection of memories sharing a common region
// layout, as used by the replication layer (m ≥ 2f_M + 1 memories).
type Pool struct {
	mems []*Memory
}

// NewPool creates count memories, each initialized with the regions produced
// by layout(memID). The layout function lets callers vary register names per
// memory if needed; most callers use the same layout for every memory.
func NewPool(count int, layout func(types.MemID) []RegionSpec, opts Options) *Pool {
	p := &Pool{mems: make([]*Memory, 0, count)}
	for i := 1; i <= count; i++ {
		id := types.MemID(i)
		p.mems = append(p.mems, NewMemory(id, layout(id), opts))
	}
	return p
}

// Size returns the number of memories in the pool.
func (p *Pool) Size() int { return len(p.mems) }

// Memories returns the memories in identifier order. The returned slice is a
// copy; the memories themselves are shared.
func (p *Pool) Memories() []*Memory {
	out := make([]*Memory, len(p.mems))
	copy(out, p.mems)
	return out
}

// Memory returns the memory with the given identifier, or nil if it does not
// exist.
func (p *Pool) Memory(id types.MemID) *Memory {
	idx := int(id) - 1
	if idx < 0 || idx >= len(p.mems) {
		return nil
	}
	return p.mems[idx]
}

// Revive revives every crashed memory in the pool (see Memory.Revive) and
// returns the identifiers that were in fact crashed.
func (p *Pool) Revive() []types.MemID {
	revived := make([]types.MemID, 0, len(p.mems))
	for _, m := range p.mems {
		if m.Crashed() {
			m.Revive()
			revived = append(revived, m.ID())
		}
	}
	return revived
}

// Crashed returns the identifiers of the currently crashed memories, in
// identifier order. A fault schedule uses it to audit that every crash it
// injected was healed before a final consistency check.
func (p *Pool) Crashed() []types.MemID {
	out := make([]types.MemID, 0, len(p.mems))
	for _, m := range p.mems {
		if m.Crashed() {
			out = append(out, m.ID())
		}
	}
	return out
}

// CrashQuorumSafe crashes up to n memories chosen in identifier order. It is
// a convenience for tests and fault schedules; it returns the identifiers
// crashed.
func (p *Pool) CrashQuorumSafe(n int) []types.MemID {
	crashed := make([]types.MemID, 0, n)
	for _, m := range p.mems {
		if len(crashed) == n {
			break
		}
		m.Crash()
		crashed = append(crashed, m.ID())
	}
	return crashed
}

// ReleaseRegion removes the region from every memory in the pool and returns
// how many memories held it. Crashed memories still release: the region
// bookkeeping is host-side state, not an RDMA operation, so truncation keeps
// bounding memory even while a minority of memories is unresponsive.
func (p *Pool) ReleaseRegion(region types.RegionID) int {
	released := 0
	for _, m := range p.mems {
		if m.ReleaseRegion(region) {
			released++
		}
	}
	return released
}

// LiveRegions sums the live-region counts of every memory in the pool.
func (p *Pool) LiveRegions() int {
	total := 0
	for _, m := range p.mems {
		total += m.LiveRegions()
	}
	return total
}

// TotalOps sums the operation counters of every memory in the pool.
func (p *Pool) TotalOps() OpCounterSnapshot {
	var out OpCounterSnapshot
	for _, m := range p.mems {
		s := m.Counters().Snapshot()
		out.Reads += s.Reads
		out.Writes += s.Writes
		out.PermChanges += s.PermChanges
		out.Naks += s.Naks
	}
	return out
}
