// Package memsim simulates the RDMA-style shared memories of the paper's
// message-and-memory model.
//
// Each Memory holds a set of registers grouped into (possibly overlapping)
// regions. Every region carries a permission: three disjoint sets of
// processes allowed to read, write, or read-write the region's registers.
// Processes access registers through Read and Write operations that are
// checked against the permission of the addressed region, and may change a
// region's permission with ChangePermission, subject to the region's
// legalChange policy. Memories may crash, in which case operations hang
// forever (the caller's context is the only way out), exactly as in the
// model.
package memsim

import (
	"rdmaagreement/internal/types"
)

// Permission is the access triple (R, W, RW) of a memory region. The three
// sets are disjoint by convention: R grants read-only access, W grants
// write-only access, RW grants both.
type Permission struct {
	R  types.ProcSet
	W  types.ProcSet
	RW types.ProcSet
}

// NewPermission builds a permission from the three access sets. Nil sets are
// treated as empty.
func NewPermission(r, w, rw types.ProcSet) Permission {
	if r == nil {
		r = types.NewProcSet()
	}
	if w == nil {
		w = types.NewProcSet()
	}
	if rw == nil {
		rw = types.NewProcSet()
	}
	return Permission{R: r, W: w, RW: rw}
}

// SWMRPermission returns the permission of a single-writer multi-reader
// region: owner has read-write access and every other process in readers has
// read access.
func SWMRPermission(owner types.ProcID, readers []types.ProcID) Permission {
	r := types.NewProcSet()
	for _, p := range readers {
		if p != owner {
			r = r.Add(p)
		}
	}
	return Permission{R: r, W: types.NewProcSet(), RW: types.NewProcSet(owner)}
}

// OpenPermission returns the permission used by the disk model: every process
// can read and write.
func OpenPermission(procs []types.ProcID) Permission {
	return Permission{R: types.NewProcSet(), W: types.NewProcSet(), RW: types.NewProcSet(procs...)}
}

// CanRead reports whether p may read registers in a region with this
// permission.
func (perm Permission) CanRead(p types.ProcID) bool {
	return perm.R.Contains(p) || perm.RW.Contains(p)
}

// CanWrite reports whether p may write registers in a region with this
// permission.
func (perm Permission) CanWrite(p types.ProcID) bool {
	return perm.W.Contains(p) || perm.RW.Contains(p)
}

// Clone returns a deep copy of the permission.
func (perm Permission) Clone() Permission {
	return Permission{R: perm.R.Clone(), W: perm.W.Clone(), RW: perm.RW.Clone()}
}

// Equal reports whether two permissions grant exactly the same accesses.
func (perm Permission) Equal(other Permission) bool {
	return perm.R.Equal(other.R) && perm.W.Equal(other.W) && perm.RW.Equal(other.RW)
}

// String implements fmt.Stringer.
func (perm Permission) String() string {
	return "perm{R:" + perm.R.String() + " W:" + perm.W.String() + " RW:" + perm.RW.String() + "}"
}

// LegalChangeFunc is the paper's legalChange(p, mr, old, new) policy: it
// decides whether process p may change the permission of region mr from old
// to new. When the policy returns false the change becomes a no-op and the
// operation reports types.ErrIllegalPermissionChange.
type LegalChangeFunc func(p types.ProcID, region types.RegionID, old, new Permission) bool

// StaticPermissions is the legalChange policy under which no change is ever
// legal — the "static permissions" setting of the paper (and the disk model).
func StaticPermissions(types.ProcID, types.RegionID, Permission, Permission) bool { return false }

// AnyChangeAllowed is the most permissive policy; used by crash-only
// protocols such as Protected Memory Paxos where processes are trusted not to
// abuse permission changes.
func AnyChangeAllowed(types.ProcID, types.RegionID, Permission, Permission) bool { return true }

// RevokeOnly returns a policy that only allows changes that remove write
// access (from W or RW) without granting anyone new access. Cheap Quorum
// installs this policy on the leader's region so that followers can revoke
// the leader's write permission when panicking, while Byzantine processes
// cannot grant themselves access.
func RevokeOnly() LegalChangeFunc {
	return func(_ types.ProcID, _ types.RegionID, old, new Permission) bool {
		// No process may appear in the new permission with an access it did
		// not already have.
		for _, p := range new.RW.Members() {
			if !old.RW.Contains(p) {
				return false
			}
		}
		for _, p := range new.W.Members() {
			if !old.W.Contains(p) && !old.RW.Contains(p) {
				return false
			}
		}
		for _, p := range new.R.Members() {
			if !old.CanRead(p) {
				return false
			}
		}
		return true
	}
}

// PolicyByRegion returns a policy that dispatches to a per-region policy by
// exact region identifier, falling back to fallback (or StaticPermissions if
// nil) for regions without an entry. Protocol stacks that share one memory
// pool (for example Fast & Robust, whose Cheap Quorum leader region is the
// only one with dynamic permissions) use it to compose policies.
func PolicyByRegion(policies map[types.RegionID]LegalChangeFunc, fallback LegalChangeFunc) LegalChangeFunc {
	if fallback == nil {
		fallback = StaticPermissions
	}
	return func(p types.ProcID, region types.RegionID, old, new Permission) bool {
		if policy, ok := policies[region]; ok {
			return policy(p, region, old, new)
		}
		return fallback(p, region, old, new)
	}
}

// ExclusiveWriterPolicy returns a policy for Protected Memory Paxos regions:
// a process may change the permission only to make itself the exclusive
// writer while leaving every process able to read. This models the
// "acquire write permission" step of Algorithm 7, where the incoming leader
// takes over exclusive write access.
func ExclusiveWriterPolicy(procs []types.ProcID) LegalChangeFunc {
	all := types.NewProcSet(procs...)
	return func(p types.ProcID, _ types.RegionID, _ Permission, new Permission) bool {
		// The requester must become the sole writer.
		if !new.RW.Equal(types.NewProcSet(p)) {
			return false
		}
		if new.W.Len() != 0 {
			return false
		}
		// Everyone else must retain read access.
		want := all.Remove(p)
		return new.R.Equal(want)
	}
}
