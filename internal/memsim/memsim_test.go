package memsim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"rdmaagreement/internal/types"
)

const (
	regionA = types.RegionID("region-a")
	regionB = types.RegionID("region-b")
	regX    = types.RegisterID("x")
	regY    = types.RegisterID("y")
)

func newTestMemory(legal LegalChangeFunc) *Memory {
	return NewMemory(1, []RegionSpec{
		{
			ID:        regionA,
			Registers: []types.RegisterID{regX, regY},
			Perm:      SWMRPermission(1, []types.ProcID{1, 2, 3}),
		},
		{
			ID:        regionB,
			Registers: []types.RegisterID{regY},
			Perm:      OpenPermission([]types.ProcID{1, 2, 3}),
		},
	}, Options{LegalChange: legal})
}

func TestReadInitialValueIsBottom(t *testing.T) {
	m := newTestMemory(nil)
	v, stamp, err := m.Read(context.Background(), 2, regionA, regX, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !v.Bottom() {
		t.Fatalf("initial register value should be bottom, got %v", v)
	}
	if stamp != 2 {
		t.Fatalf("read should cost 2 delays, stamp = %v", stamp)
	}
}

func TestWriteThenRead(t *testing.T) {
	m := newTestMemory(nil)
	ctx := context.Background()
	stamp, err := m.Write(ctx, 1, regionA, regX, types.Value("hello"), 0)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if stamp != 2 {
		t.Fatalf("write should cost 2 delays, stamp = %v", stamp)
	}
	v, stamp, err := m.Read(ctx, 3, regionA, regX, stamp)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !v.Equal(types.Value("hello")) {
		t.Fatalf("read %v, want hello", v)
	}
	if stamp != 4 {
		t.Fatalf("cumulative stamp = %v, want 4", stamp)
	}
}

func TestWriteWithoutPermissionNaks(t *testing.T) {
	m := newTestMemory(nil)
	_, err := m.Write(context.Background(), 2, regionA, regX, types.Value("evil"), 0)
	if !errors.Is(err, types.ErrNak) {
		t.Fatalf("expected nak, got %v", err)
	}
	// The register must be unchanged.
	v, _, err := m.Read(context.Background(), 2, regionA, regX, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !v.Bottom() {
		t.Fatalf("nak'd write modified the register: %v", v)
	}
}

func TestReadWithoutPermissionNaks(t *testing.T) {
	m := NewMemory(1, []RegionSpec{{
		ID:        regionA,
		Registers: []types.RegisterID{regX},
		Perm:      NewPermission(types.NewProcSet(2), nil, types.NewProcSet(1)),
	}}, Options{})
	_, _, err := m.Read(context.Background(), 3, regionA, regX, 0)
	if !errors.Is(err, types.ErrNak) {
		t.Fatalf("expected nak for unauthorized reader, got %v", err)
	}
}

func TestUnknownRegionAndRegister(t *testing.T) {
	m := newTestMemory(nil)
	ctx := context.Background()
	if _, _, err := m.Read(ctx, 1, "nope", regX, 0); !errors.Is(err, types.ErrUnknownRegion) {
		t.Fatalf("expected unknown region, got %v", err)
	}
	if _, err := m.Write(ctx, 1, "nope", regX, nil, 0); !errors.Is(err, types.ErrUnknownRegion) {
		t.Fatalf("expected unknown region, got %v", err)
	}
	if _, _, err := m.Read(ctx, 1, regionB, regX, 0); !errors.Is(err, types.ErrUnknownRegister) {
		t.Fatalf("expected unknown register (x is not in region-b), got %v", err)
	}
	if _, err := m.ChangePermission(ctx, 1, "nope", Permission{}, 0); !errors.Is(err, types.ErrUnknownRegion) {
		t.Fatalf("expected unknown region on permission change, got %v", err)
	}
}

func TestRegistersAreRegionScoped(t *testing.T) {
	m := newTestMemory(nil)
	ctx := context.Background()
	// Regions A and B both declare a register named y, but they are distinct
	// registers: the paper's algorithms never use overlapping regions, and
	// region-scoping prevents one region's writes from aliasing another's.
	if _, err := m.Write(ctx, 2, regionB, regY, types.Value("via-b"), 0); err != nil {
		t.Fatalf("Write via open region: %v", err)
	}
	v, _, err := m.Read(ctx, 3, regionA, regY, 0)
	if err != nil {
		t.Fatalf("Read via region A: %v", err)
	}
	if !v.Bottom() {
		t.Fatalf("write through region B leaked into region A's register: %v", v)
	}
	// The write is visible through the region it was addressed to.
	v, _, err = m.Read(ctx, 3, regionB, regY, 0)
	if err != nil {
		t.Fatalf("Read via region B: %v", err)
	}
	if !v.Equal(types.Value("via-b")) {
		t.Fatalf("read via region B = %v", v)
	}
}

func TestStaticPermissionsRejectChanges(t *testing.T) {
	m := newTestMemory(nil) // nil => StaticPermissions
	_, err := m.ChangePermission(context.Background(), 2, regionA, OpenPermission([]types.ProcID{1, 2, 3}), 0)
	if !errors.Is(err, types.ErrIllegalPermissionChange) {
		t.Fatalf("static permissions should reject change, got %v", err)
	}
}

func TestRevokeOnlyPolicy(t *testing.T) {
	m := newTestMemory(RevokeOnly())
	ctx := context.Background()

	// Revoking the owner's write access is legal.
	revoked := NewPermission(types.NewProcSet(1, 2, 3), nil, nil)
	if _, err := m.ChangePermission(ctx, 2, regionA, revoked, 0); err != nil {
		t.Fatalf("revocation should be legal: %v", err)
	}
	// The owner can no longer write.
	if _, err := m.Write(ctx, 1, regionA, regX, types.Value("late"), 0); !errors.Is(err, types.ErrNak) {
		t.Fatalf("write after revocation should nak, got %v", err)
	}
	// Granting write access to a new process is illegal.
	grant := NewPermission(nil, nil, types.NewProcSet(2))
	if _, err := m.ChangePermission(ctx, 2, regionA, grant, 0); !errors.Is(err, types.ErrIllegalPermissionChange) {
		t.Fatalf("grant should be illegal under RevokeOnly, got %v", err)
	}
}

func TestExclusiveWriterPolicy(t *testing.T) {
	procs := []types.ProcID{1, 2, 3}
	m := NewMemory(1, []RegionSpec{{
		ID:        regionA,
		Registers: []types.RegisterID{regX},
		Perm:      NewPermission(types.NewProcSet(2, 3), nil, types.NewProcSet(1)),
	}}, Options{LegalChange: ExclusiveWriterPolicy(procs)})
	ctx := context.Background()

	// p2 takes over exclusive write permission.
	take := NewPermission(types.NewProcSet(1, 3), nil, types.NewProcSet(2))
	if _, err := m.ChangePermission(ctx, 2, regionA, take, 0); err != nil {
		t.Fatalf("takeover should be legal: %v", err)
	}
	// The old leader's writes now nak.
	if _, err := m.Write(ctx, 1, regionA, regX, types.Value("stale"), 0); !errors.Is(err, types.ErrNak) {
		t.Fatalf("old leader write should nak, got %v", err)
	}
	// The new leader's writes succeed.
	if _, err := m.Write(ctx, 2, regionA, regX, types.Value("fresh"), 0); err != nil {
		t.Fatalf("new leader write: %v", err)
	}
	// A takeover that does not leave others readable is illegal.
	bad := NewPermission(types.NewProcSet(1), nil, types.NewProcSet(3))
	if _, err := m.ChangePermission(ctx, 3, regionA, bad, 0); !errors.Is(err, types.ErrIllegalPermissionChange) {
		t.Fatalf("malformed takeover should be illegal, got %v", err)
	}
}

func TestCrashedMemoryHangsUntilContextCancelled(t *testing.T) {
	m := newTestMemory(nil)
	m.Crash()
	if !m.Crashed() {
		t.Fatalf("Crashed() should report true")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := m.Read(ctx, 1, regionA, regX, 0)
	if !errors.Is(err, types.ErrMemoryCrashed) {
		t.Fatalf("expected crash error, got %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatalf("crashed memory returned before context cancellation")
	}
}

func TestOperationLatency(t *testing.T) {
	m := NewMemory(1, []RegionSpec{{
		ID:        regionA,
		Registers: []types.RegisterID{regX},
		Perm:      OpenPermission([]types.ProcID{1}),
	}}, Options{OperationLatency: 10 * time.Millisecond})
	start := time.Now()
	if _, err := m.Write(context.Background(), 1, regionA, regX, types.Value("v"), 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("operation latency not applied: %v", elapsed)
	}
}

func TestCounters(t *testing.T) {
	m := newTestMemory(nil)
	ctx := context.Background()
	_, _ = m.Write(ctx, 1, regionA, regX, types.Value("v"), 0)
	_, _, _ = m.Read(ctx, 2, regionA, regX, 0)
	_, _ = m.Write(ctx, 2, regionA, regX, types.Value("v"), 0) // nak
	s := m.Counters().Snapshot()
	if s.Writes != 2 || s.Reads != 1 || s.Naks != 1 {
		t.Fatalf("counters = %+v", s)
	}
	if s.Total() != 3 {
		t.Fatalf("total = %d", s.Total())
	}
}

func TestAddRegion(t *testing.T) {
	m := newTestMemory(nil)
	newRegion := types.RegionID("late")
	m.AddRegion(RegionSpec{
		ID:        newRegion,
		Registers: []types.RegisterID{"z"},
		Perm:      OpenPermission([]types.ProcID{5}),
	})
	if _, err := m.Write(context.Background(), 5, newRegion, "z", types.Value("ok"), 0); err != nil {
		t.Fatalf("write to late region: %v", err)
	}
}

func TestRegionPermissionInspection(t *testing.T) {
	m := newTestMemory(nil)
	perm, err := m.RegionPermission(regionA)
	if err != nil {
		t.Fatalf("RegionPermission: %v", err)
	}
	if !perm.CanWrite(1) || perm.CanWrite(2) {
		t.Fatalf("unexpected permission %v", perm)
	}
	if _, err := m.RegionPermission("nope"); !errors.Is(err, types.ErrUnknownRegion) {
		t.Fatalf("expected unknown region, got %v", err)
	}
}

func TestPool(t *testing.T) {
	layout := func(types.MemID) []RegionSpec {
		return []RegionSpec{{
			ID:        regionA,
			Registers: []types.RegisterID{regX},
			Perm:      OpenPermission([]types.ProcID{1, 2}),
		}}
	}
	pool := NewPool(3, layout, Options{})
	if pool.Size() != 3 {
		t.Fatalf("pool size = %d", pool.Size())
	}
	if pool.Memory(2) == nil || pool.Memory(2).ID() != 2 {
		t.Fatalf("Memory(2) lookup broken")
	}
	if pool.Memory(0) != nil || pool.Memory(4) != nil {
		t.Fatalf("out-of-range lookups should return nil")
	}
	crashed := pool.CrashQuorumSafe(1)
	if len(crashed) != 1 || !pool.Memory(crashed[0]).Crashed() {
		t.Fatalf("CrashQuorumSafe did not crash one memory")
	}
	ctx := context.Background()
	if _, err := pool.Memory(2).Write(ctx, 1, regionA, regX, types.Value("a"), 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	total := pool.TotalOps()
	if total.Writes != 1 {
		t.Fatalf("TotalOps = %+v", total)
	}
	if len(pool.Memories()) != 3 {
		t.Fatalf("Memories() length wrong")
	}
}

func TestPermissionHelpers(t *testing.T) {
	perm := SWMRPermission(1, []types.ProcID{1, 2, 3})
	if !perm.CanWrite(1) || !perm.CanRead(1) {
		t.Fatalf("owner should have read-write access")
	}
	if perm.CanWrite(2) || !perm.CanRead(2) {
		t.Fatalf("reader access wrong")
	}
	open := OpenPermission([]types.ProcID{1, 2})
	if !open.CanRead(2) || !open.CanWrite(2) {
		t.Fatalf("open permission should grant both")
	}
	clone := perm.Clone()
	if !clone.Equal(perm) {
		t.Fatalf("clone not equal")
	}
	if perm.Equal(open) {
		t.Fatalf("distinct permissions reported equal")
	}
	if perm.String() == "" || open.String() == "" {
		t.Fatalf("permission stringer empty")
	}
}

// Property: a write by a process with write permission is always visible to a
// subsequent read by a process with read permission (regular register,
// sequential case).
func TestWriteReadVisibilityProperty(t *testing.T) {
	m := NewMemory(1, []RegionSpec{{
		ID:        regionA,
		Registers: []types.RegisterID{regX},
		Perm:      OpenPermission([]types.ProcID{1, 2, 3}),
	}}, Options{})
	ctx := context.Background()
	f := func(payload []byte, writer, reader uint8) bool {
		w := types.ProcID(writer%3 + 1)
		r := types.ProcID(reader%3 + 1)
		if _, err := m.Write(ctx, w, regionA, regX, payload, 0); err != nil {
			return false
		}
		v, _, err := m.Read(ctx, r, regionA, regX, 0)
		if err != nil {
			return false
		}
		return v.Equal(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicRegion(t *testing.T) {
	m := NewMemory(1, []RegionSpec{{
		ID:      "dyn",
		Perm:    OpenPermission([]types.ProcID{1, 2}),
		Dynamic: true,
	}}, Options{})
	ctx := context.Background()
	// Reading a never-written register in a dynamic region returns ⊥.
	v, _, err := m.Read(ctx, 1, "dyn", "slot/5/2", 0)
	if err != nil {
		t.Fatalf("Read dynamic: %v", err)
	}
	if !v.Bottom() {
		t.Fatalf("unwritten dynamic register should read ⊥")
	}
	// Writing an arbitrary register name succeeds and is visible.
	if _, err := m.Write(ctx, 2, "dyn", "slot/7/1", types.Value("x"), 0); err != nil {
		t.Fatalf("Write dynamic: %v", err)
	}
	v, _, err = m.Read(ctx, 1, "dyn", "slot/7/1", 0)
	if err != nil {
		t.Fatalf("Read dynamic after write: %v", err)
	}
	if !v.Equal(types.Value("x")) {
		t.Fatalf("dynamic register read %v", v)
	}
	// Static regions still reject unknown registers.
	if _, _, err := m.Read(ctx, 1, regionA, "slot/7/1", 0); err == nil {
		t.Fatalf("static region accepted unknown register")
	}
}

func TestReleaseRegion(t *testing.T) {
	m := newTestMemory(nil)
	ctx := context.Background()
	if got := m.LiveRegions(); got != 2 {
		t.Fatalf("LiveRegions() = %d, want 2", got)
	}
	if !m.ReleaseRegion(regionA) {
		t.Fatalf("ReleaseRegion(regionA) = false, want true")
	}
	if m.ReleaseRegion(regionA) {
		t.Fatalf("second ReleaseRegion(regionA) = true, want false")
	}
	if got := m.LiveRegions(); got != 1 {
		t.Fatalf("LiveRegions() = %d after release, want 1", got)
	}
	// A released region behaves exactly like one that never existed.
	if _, _, err := m.Read(ctx, 1, regionA, regX, 0); !errors.Is(err, types.ErrUnknownRegion) {
		t.Fatalf("Read on released region: err = %v, want ErrUnknownRegion", err)
	}
	if _, err := m.Write(ctx, 1, regionA, regX, types.Value("x"), 0); !errors.Is(err, types.ErrUnknownRegion) {
		t.Fatalf("Write on released region: err = %v, want ErrUnknownRegion", err)
	}
	// Untouched regions keep serving.
	if _, err := m.Write(ctx, 2, regionB, regY, types.Value("ok"), 0); err != nil {
		t.Fatalf("Write on surviving region: %v", err)
	}
}

func TestPoolReleaseRegionSurvivesCrashes(t *testing.T) {
	layout := func(types.MemID) []RegionSpec {
		return []RegionSpec{{ID: regionA, Registers: []types.RegisterID{regX}, Perm: OpenPermission([]types.ProcID{1})}}
	}
	p := NewPool(3, layout, Options{})
	if got := p.LiveRegions(); got != 3 {
		t.Fatalf("pool LiveRegions() = %d, want 3", got)
	}
	// Region release is host-side bookkeeping: a crashed memory (unresponsive
	// to RDMA ops) still truncates, so GC keeps bounding memory under faults.
	p.CrashQuorumSafe(1)
	if released := p.ReleaseRegion(regionA); released != 3 {
		t.Fatalf("pool ReleaseRegion released %d, want 3", released)
	}
	if got := p.LiveRegions(); got != 0 {
		t.Fatalf("pool LiveRegions() = %d after release, want 0", got)
	}
	if released := p.ReleaseRegion(regionA); released != 0 {
		t.Fatalf("second pool ReleaseRegion released %d, want 0", released)
	}
}

func TestReviveRestoresServiceAndPreservesContents(t *testing.T) {
	m := newTestMemory(nil)
	ctx := context.Background()
	if _, err := m.Write(ctx, 1, regionA, regX, types.Value("before-crash"), 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	m.Crash()

	// An operation issued during the crash blocks until its context ends —
	// and stays consumed: reviving must not complete it retroactively.
	opCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, _, err := m.Read(opCtx, 2, regionA, regX, 0); !errors.Is(err, types.ErrMemoryCrashed) {
		t.Fatalf("Read during crash: err = %v, want ErrMemoryCrashed", err)
	}

	m.Revive()
	if m.Crashed() {
		t.Fatalf("Crashed() = true after Revive")
	}
	v, _, err := m.Read(ctx, 2, regionA, regX, 0)
	if err != nil {
		t.Fatalf("Read after Revive: %v", err)
	}
	if string(v) != "before-crash" {
		t.Fatalf("Read after Revive = %q, want contents preserved across the stall", v)
	}
	m.Revive() // reviving a live memory is a no-op
}

func TestPoolReviveReportsCrashedSubset(t *testing.T) {
	layout := func(types.MemID) []RegionSpec {
		return []RegionSpec{{ID: regionA, Registers: []types.RegisterID{regX}, Perm: OpenPermission([]types.ProcID{1})}}
	}
	p := NewPool(3, layout, Options{})
	p.CrashQuorumSafe(2)
	revived := p.Revive()
	if len(revived) != 2 {
		t.Fatalf("Revive() revived %v, want the 2 crashed memories", revived)
	}
	if len(p.Revive()) != 0 {
		t.Fatalf("second Revive() revived memories on a healthy pool")
	}
}

func TestPoolCrashedTracksCrashRevive(t *testing.T) {
	layout := func(types.MemID) []RegionSpec { return nil }
	pool := NewPool(5, layout, Options{})
	if got := pool.Crashed(); len(got) != 0 {
		t.Fatalf("fresh pool reports crashed memories: %v", got)
	}
	crashed := pool.CrashQuorumSafe(2)
	got := pool.Crashed()
	if len(got) != 2 || got[0] != crashed[0] || got[1] != crashed[1] {
		t.Fatalf("Crashed() = %v, want %v", got, crashed)
	}
	pool.Revive()
	if got := pool.Crashed(); len(got) != 0 {
		t.Fatalf("revived pool reports crashed memories: %v", got)
	}
}
