package cheapquorum

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Config configures a Cheap Quorum participant.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Leader is the fixed fast-path leader ℓ (p1 in the paper).
	Leader types.ProcID
	// Procs is the full process set; n ≥ 2·FaultyProcesses+1.
	Procs []types.ProcID
	// FaultyProcesses is f_P.
	FaultyProcesses int
	// FaultyMemories is f_M; the pool must satisfy m ≥ 2·FaultyMemories+1.
	FaultyMemories int
	// Memories is the shared memory pool, laid out with Layout and the
	// LegalChange policy of this package.
	Memories []*memsim.Memory
	// Ring holds every process's signing keys.
	Ring *sigs.KeyRing
	// Timeout is the common-case bound: a follower that cannot make progress
	// within Timeout panics. Zero means 250ms.
	Timeout time.Duration
	// PollInterval is the pause between follower polling rounds. Zero means
	// 1ms.
	PollInterval time.Duration
	// Clock is the causal delay clock; nil allocates a private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

// Validate checks the resilience bounds.
func (c *Config) Validate() error {
	if len(c.Procs) < 2*c.FaultyProcesses+1 {
		return fmt.Errorf("%w: n=%d cannot tolerate f_P=%d (need n ≥ 2f_P+1)", types.ErrInvalidConfig, len(c.Procs), c.FaultyProcesses)
	}
	if len(c.Memories) < 2*c.FaultyMemories+1 {
		return fmt.Errorf("%w: m=%d cannot tolerate f_M=%d (need m ≥ 2f_M+1)", types.ErrInvalidConfig, len(c.Memories), c.FaultyMemories)
	}
	if c.Ring == nil {
		return fmt.Errorf("%w: a key ring is required", types.ErrInvalidConfig)
	}
	if c.Leader == types.NoProcess {
		return fmt.Errorf("%w: a leader is required", types.ErrInvalidConfig)
	}
	return nil
}

func (c *Config) applyDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &delayclock.Clock{}
	}
}

// Outcome is the result of a Cheap Quorum run at one process: either a
// decision or an abort carrying the value and proof that seed the backup
// protocol (Definition 3 of the paper).
type Outcome struct {
	// Decided reports whether this process decided on the fast path.
	Decided bool
	// Value is the decided value (when Decided).
	Value types.Value
	// AbortValue is the value this process aborts with (when !Decided).
	AbortValue types.Value
	// AbortProof is the serialized unanimity proof attached to the abort
	// value, if any.
	AbortProof types.Value
	// LeaderSigned reports whether the abort value carries the leader's
	// signature (priority class M or better in Definition 3).
	LeaderSigned bool
	// HasUnanimityProof reports whether AbortProof is a correct unanimity
	// proof (priority class T).
	HasUnanimityProof bool
	// DecisionDelays is the causal delay count between the start of the
	// proposal and the decision (meaningful when Decided).
	DecisionDelays int64
}

// followerValue is the content of Value[p] for a follower p: the leader's
// signed proposal plus p's own endorsement signature over the same raw value.
type followerValue struct {
	Leader  sigs.Signed `json:"leader"`
	Endorse sigs.Signed `json:"endorse"`
}

// unanimityProof is the content of Proof[p]: the collection of n endorsements
// observed by p. The register itself stores this structure re-signed by p.
type unanimityProof struct {
	Endorsements []followerValue `json:"endorsements"`
}

// Node is one Cheap Quorum participant.
type Node struct {
	cfg  Config
	rep  *replica
	sign *sigs.Signer

	wg     sync.WaitGroup
	cancel context.CancelFunc
	ctx    context.Context
}

// New creates a Cheap Quorum participant.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cheap quorum: %w", err)
	}
	cfg.applyDefaults()
	rep, err := newReplica(cfg.Self, cfg.Memories, cfg.FaultyMemories, cfg.Clock)
	if err != nil {
		return nil, fmt.Errorf("cheap quorum: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Node{
		cfg:    cfg,
		rep:    rep,
		sign:   cfg.Ring.SignerFor(cfg.Self),
		ctx:    ctx,
		cancel: cancel,
	}, nil
}

// Stop cancels any background helper work started by Propose.
func (n *Node) Stop() {
	n.cancel()
	n.wg.Wait()
}

// Clock returns the node's delay clock.
func (n *Node) Clock() *delayclock.Clock { return n.cfg.Clock }

// isLeader reports whether this node is the fast-path leader.
func (n *Node) isLeader() bool { return n.cfg.Self == n.cfg.Leader }

// Propose runs Cheap Quorum with input v and returns the outcome (decision or
// abort). It never blocks past the configured timeout plus the time needed
// for the panic-mode memory operations.
func (n *Node) Propose(ctx context.Context, v types.Value) (Outcome, error) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPropose, v, n.cfg.Clock.Now(), "cheap quorum propose (leader=%v)", n.isLeader())
	if n.isLeader() {
		return n.leaderPropose(ctx, v)
	}
	return n.followerPropose(ctx, v)
}

// leaderPropose implements the leader branch of Algorithm 4: sign the value,
// write it to the leader region, and decide if the write succeeds.
func (n *Node) leaderPropose(ctx context.Context, v types.Value) (Outcome, error) {
	start := n.cfg.Clock.Now()
	signed, err := n.sign.Sign(v)
	if err != nil {
		return Outcome{}, fmt.Errorf("cheap quorum leader: %w", err)
	}
	blob, err := json.Marshal(signed)
	if err != nil {
		return Outcome{}, fmt.Errorf("cheap quorum leader: encode: %w", err)
	}
	completed, err := n.rep.writeAt(ctx, LeaderRegion, regValue, blob, start)
	if err != nil {
		// The write permission was revoked (or the quorum is unreachable):
		// switch to panic mode.
		n.cfg.Recorder.Record(n.cfg.Self, trace.KindPanic, v, n.cfg.Clock.Now(), "leader write failed: %v", err)
		return n.panicMode(ctx, v)
	}
	// The decision delay is measured along the leader's own causal chain
	// (the single replicated write), independent of concurrent background
	// memory traffic that also merges into the shared clock.
	delays := int64(completed - start)
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, v, n.cfg.Clock.Now(), "cheap quorum leader decision in %d delays", delays)

	// The leader keeps helping followers decide: it endorses its own value
	// and participates in the unanimity proof exchange in the background.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		helperCtx, cancel := context.WithTimeout(n.ctx, n.cfg.Timeout)
		defer cancel()
		_, _ = n.replicateAndProve(helperCtx, signed, false)
	}()

	return Outcome{Decided: true, Value: v.Clone(), DecisionDelays: delays}, nil
}

// followerPropose implements the follower branch of Algorithm 4.
func (n *Node) followerPropose(ctx context.Context, input types.Value) (Outcome, error) {
	start := n.cfg.Clock.Now()
	deadline := time.NewTimer(n.cfg.Timeout)
	defer deadline.Stop()

	// Wait for the leader's proposal (or a panic, or the timeout).
	var leaderSigned sigs.Signed
	for {
		raw, err := n.rep.read(ctx, LeaderRegion, regValue)
		if err != nil {
			return Outcome{}, fmt.Errorf("cheap quorum follower: %w", err)
		}
		panicked, err := n.anyPanic(ctx)
		if err != nil {
			return Outcome{}, err
		}
		if panicked {
			return n.panicMode(ctx, input)
		}
		if !raw.Bottom() {
			if err := json.Unmarshal(raw, &leaderSigned); err == nil && n.sign.Valid(n.cfg.Leader, leaderSigned) {
				break
			}
			// A value that is present but not correctly signed by the leader
			// is Byzantine behaviour: panic.
			n.cfg.Recorder.Record(n.cfg.Self, trace.KindPanic, nil, n.cfg.Clock.Now(), "leader value invalid")
			return n.panicMode(ctx, input)
		}
		select {
		case <-deadline.C:
			n.cfg.Recorder.Record(n.cfg.Self, trace.KindPanic, nil, n.cfg.Clock.Now(), "timeout waiting for leader value")
			return n.panicMode(ctx, input)
		case <-time.After(n.cfg.PollInterval):
		case <-ctx.Done():
			return Outcome{}, fmt.Errorf("cheap quorum follower: %w", ctx.Err())
		}
	}

	waitCtx, cancel := context.WithTimeout(ctx, n.cfg.Timeout)
	defer cancel()
	decided, err := n.replicateAndProve(waitCtx, leaderSigned, true)
	if err != nil {
		return Outcome{}, err
	}
	if decided {
		v := types.Value(leaderSigned.Payload)
		delays := int64(n.cfg.Clock.Now() - start)
		n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, v, n.cfg.Clock.Now(), "cheap quorum follower decision in %d delays", delays)
		return Outcome{Decided: true, Value: v.Clone(), DecisionDelays: delays}, nil
	}
	return n.panicMode(ctx, input)
}

// replicateAndProve endorses the leader's value, waits for unanimous
// endorsements, publishes a unanimity proof and (when deciding is true) waits
// for unanimous proofs. It returns whether the unanimous-proof condition was
// reached before the context expired or a panic was observed.
func (n *Node) replicateAndProve(ctx context.Context, leaderSigned sigs.Signed, deciding bool) (bool, error) {
	endorse, err := n.sign.Sign(leaderSigned.Payload)
	if err != nil {
		return false, fmt.Errorf("cheap quorum endorse: %w", err)
	}
	fv := followerValue{Leader: leaderSigned, Endorse: endorse}
	blob, err := json.Marshal(fv)
	if err != nil {
		return false, fmt.Errorf("cheap quorum endorse: encode: %w", err)
	}
	if err := n.rep.write(ctx, ProcessRegion(n.cfg.Self), regValue, blob); err != nil {
		return false, fmt.Errorf("cheap quorum endorse: %w", err)
	}

	regions := make([]types.RegionID, 0, len(n.cfg.Procs))
	for _, p := range n.cfg.Procs {
		regions = append(regions, ProcessRegion(p))
	}

	proofWritten := false
	for {
		if err := ctx.Err(); err != nil {
			return false, nil // treated as timeout by the caller
		}
		// Gather endorsements.
		vals, err := n.rep.readMany(ctx, regions, regValue)
		if err != nil {
			return false, nil
		}
		endorsements := make([]followerValue, 0, len(vals))
		for i, raw := range vals {
			p := n.cfg.Procs[i]
			if fv, ok := n.decodeEndorsement(raw, p, leaderSigned.Payload); ok {
				endorsements = append(endorsements, fv)
			}
		}
		if len(endorsements) >= len(n.cfg.Procs) && !proofWritten {
			proof := unanimityProof{Endorsements: endorsements}
			proofPayload, err := json.Marshal(proof)
			if err != nil {
				return false, fmt.Errorf("cheap quorum proof: encode: %w", err)
			}
			signedProof, err := n.sign.Sign(proofPayload)
			if err != nil {
				return false, fmt.Errorf("cheap quorum proof: sign: %w", err)
			}
			proofBlob, err := json.Marshal(signedProof)
			if err != nil {
				return false, fmt.Errorf("cheap quorum proof: encode signed: %w", err)
			}
			if err := n.rep.write(ctx, ProcessRegion(n.cfg.Self), regProof, proofBlob); err != nil {
				return false, nil
			}
			proofWritten = true
			if !deciding {
				// A helper (the already-decided leader) only needs to publish
				// its endorsement and proof; it does not wait for the others.
				return true, nil
			}
		}
		if proofWritten {
			proofs, err := n.rep.readMany(ctx, regions, regProof)
			if err != nil {
				return false, nil
			}
			validProofs := 0
			for i, raw := range proofs {
				if _, ok := n.verifyProofFrom(raw, n.cfg.Procs[i], leaderSigned.Payload); ok {
					validProofs++
				}
			}
			if validProofs >= len(n.cfg.Procs) {
				return true, nil
			}
		}
		// Check for panics.
		panicked, err := n.anyPanic(ctx)
		if err != nil || panicked {
			return false, nil
		}
		select {
		case <-time.After(n.cfg.PollInterval):
		case <-ctx.Done():
			return false, nil
		}
	}
}

// decodeEndorsement checks that raw contains process p's endorsement of the
// leader-signed raw value.
func (n *Node) decodeEndorsement(raw types.Value, p types.ProcID, rawValue []byte) (followerValue, bool) {
	if raw.Bottom() {
		return followerValue{}, false
	}
	var fv followerValue
	if err := json.Unmarshal(raw, &fv); err != nil {
		return followerValue{}, false
	}
	if !n.sign.Valid(n.cfg.Leader, fv.Leader) || !n.sign.Valid(p, fv.Endorse) {
		return followerValue{}, false
	}
	if !types.Value(fv.Leader.Payload).Equal(rawValue) || !types.Value(fv.Endorse.Payload).Equal(rawValue) {
		return followerValue{}, false
	}
	return fv, true
}

// verifyProofFrom checks that raw is a correct unanimity proof assembled by
// process p for the given raw value.
func (n *Node) verifyProofFrom(raw types.Value, p types.ProcID, rawValue []byte) (sigs.Signed, bool) {
	if raw.Bottom() {
		return sigs.Signed{}, false
	}
	var signedProof sigs.Signed
	if err := json.Unmarshal(raw, &signedProof); err != nil {
		return sigs.Signed{}, false
	}
	if !n.sign.Valid(p, signedProof) {
		return sigs.Signed{}, false
	}
	if !verifyProofPayload(n.cfg.Ring, n.cfg.Procs, n.cfg.Leader, signedProof.Payload, rawValue) {
		return sigs.Signed{}, false
	}
	return signedProof, true
}

// anyPanic reports whether any process has raised its panic flag.
func (n *Node) anyPanic(ctx context.Context) (bool, error) {
	regions := make([]types.RegionID, 0, len(n.cfg.Procs))
	for _, p := range n.cfg.Procs {
		regions = append(regions, ProcessRegion(p))
	}
	flags, err := n.rep.readMany(ctx, regions, regPanic)
	if err != nil {
		return false, fmt.Errorf("cheap quorum: read panic flags: %w", err)
	}
	for _, f := range flags {
		if !f.Bottom() {
			return true, nil
		}
	}
	return false, nil
}

// panicMode implements Algorithm 5: raise the panic flag, revoke the leader's
// write permission, and abort with the best value available.
func (n *Node) panicMode(ctx context.Context, input types.Value) (Outcome, error) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPanic, input, n.cfg.Clock.Now(), "entering panic mode")
	if err := n.rep.write(ctx, ProcessRegion(n.cfg.Self), regPanic, types.Value("panic")); err != nil {
		return Outcome{}, fmt.Errorf("cheap quorum panic: %w", err)
	}
	if err := n.rep.changePermission(ctx, LeaderRegion, RevokedLeaderPermission(n.cfg.Procs)); err != nil {
		return Outcome{}, fmt.Errorf("cheap quorum panic: revoke: %w", err)
	}
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPermissionChange, nil, n.cfg.Clock.Now(), "revoked leader write permission")

	// Own replicated value and proof, if any.
	ownValue, err := n.rep.read(ctx, ProcessRegion(n.cfg.Self), regValue)
	if err != nil {
		return Outcome{}, fmt.Errorf("cheap quorum panic: %w", err)
	}
	ownProof, err := n.rep.read(ctx, ProcessRegion(n.cfg.Self), regProof)
	if err != nil {
		return Outcome{}, fmt.Errorf("cheap quorum panic: %w", err)
	}
	if !ownValue.Bottom() {
		var fv followerValue
		if err := json.Unmarshal(ownValue, &fv); err == nil && n.sign.Valid(n.cfg.Leader, fv.Leader) {
			out := Outcome{
				AbortValue:   types.Value(fv.Leader.Payload).Clone(),
				LeaderSigned: true,
			}
			if _, ok := n.verifyProofFrom(ownProof, n.cfg.Self, fv.Leader.Payload); ok {
				out.AbortProof = ownProof.Clone()
				out.HasUnanimityProof = true
			}
			n.recordAbort(out)
			return out, nil
		}
	}

	// The leader's value, if present and well signed.
	leaderRaw, err := n.rep.read(ctx, LeaderRegion, regValue)
	if err != nil {
		return Outcome{}, fmt.Errorf("cheap quorum panic: %w", err)
	}
	if !leaderRaw.Bottom() {
		var signed sigs.Signed
		if err := json.Unmarshal(leaderRaw, &signed); err == nil && n.sign.Valid(n.cfg.Leader, signed) {
			out := Outcome{AbortValue: types.Value(signed.Payload).Clone(), LeaderSigned: true}
			n.recordAbort(out)
			return out, nil
		}
	}

	// Fall back to the process's own input.
	out := Outcome{AbortValue: input.Clone()}
	n.recordAbort(out)
	return out, nil
}

func (n *Node) recordAbort(out Outcome) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindAbort, out.AbortValue, n.cfg.Clock.Now(),
		"abort (leaderSigned=%v unanimity=%v)", out.LeaderSigned, out.HasUnanimityProof)
}

// verifyProofPayload checks that payload decodes to endorsements of rawValue
// by every process in procs.
func verifyProofPayload(ring *sigs.KeyRing, procs []types.ProcID, leader types.ProcID, payload []byte, rawValue []byte) bool {
	var proof unanimityProof
	if err := json.Unmarshal(payload, &proof); err != nil {
		return false
	}
	endorsers := types.NewProcSet()
	for _, fv := range proof.Endorsements {
		if !ring.Valid(leader, fv.Leader) || !ring.Valid(fv.Endorse.Signer, fv.Endorse) {
			return false
		}
		if !types.Value(fv.Leader.Payload).Equal(rawValue) || !types.Value(fv.Endorse.Payload).Equal(rawValue) {
			return false
		}
		endorsers = endorsers.Add(fv.Endorse.Signer)
	}
	return endorsers.Len() >= len(procs)
}

// VerifyUnanimityProof checks a serialized unanimity proof (as carried in an
// Outcome's AbortProof) against the given raw value. Fast & Robust uses it to
// assign Definition-3 priorities to abort values.
func VerifyUnanimityProof(ring *sigs.KeyRing, procs []types.ProcID, leader types.ProcID, proofBlob types.Value, rawValue types.Value) bool {
	if proofBlob.Bottom() {
		return false
	}
	var signedProof sigs.Signed
	if err := json.Unmarshal(proofBlob, &signedProof); err != nil {
		return false
	}
	if !ring.Valid(signedProof.Signer, signedProof) {
		return false
	}
	return verifyProofPayload(ring, procs, leader, signedProof.Payload, rawValue)
}
