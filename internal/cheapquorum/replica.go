package cheapquorum

import (
	"context"
	"errors"
	"fmt"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/types"
)

// replica performs quorum-replicated operations (write, read, permission
// change) over the memory pool on behalf of one process, implementing regular
// registers that survive f_M memory crashes exactly as in §4.1 of the paper.
type replica struct {
	self    types.ProcID
	mems    []*memsim.Memory
	faultyM int
	clock   *delayclock.Clock
}

func newReplica(self types.ProcID, mems []*memsim.Memory, faultyM int, clock *delayclock.Clock) (*replica, error) {
	if len(mems) < 2*faultyM+1 {
		return nil, fmt.Errorf("%w: m=%d memories cannot tolerate f_M=%d crashes (need m ≥ 2f_M+1)",
			types.ErrInvalidConfig, len(mems), faultyM)
	}
	if clock == nil {
		clock = &delayclock.Clock{}
	}
	return &replica{self: self, mems: mems, faultyM: faultyM, clock: clock}, nil
}

func (r *replica) quorum() int { return len(r.mems) - r.faultyM }

type opResult struct {
	value types.Value
	stamp delayclock.Stamp
	err   error
}

// write replicates a register write, waiting for a quorum of acknowledgements.
// A nak (permission denied) fails fast: it is a definitive rejection.
func (r *replica) write(ctx context.Context, region types.RegionID, reg types.RegisterID, v types.Value) error {
	_, err := r.writeAt(ctx, region, reg, v, r.clock.Now())
	return err
}

// writeAt is write with an explicit invocation stamp; it returns the
// completion stamp of the operation along the caller's own causal chain
// (invoked + 2 delays), independent of concurrent background activity on the
// shared clock. The fast-path delay measurements use it so that the paper's
// 2-deciding claim is reproduced exactly.
func (r *replica) writeAt(ctx context.Context, region types.RegionID, reg types.RegisterID, v types.Value, invoked delayclock.Stamp) (delayclock.Stamp, error) {
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan opResult, len(r.mems))
	for _, mem := range r.mems {
		go func(mem *memsim.Memory) {
			stamp, err := mem.Write(opCtx, r.self, region, reg, v, invoked)
			results <- opResult{stamp: stamp, err: err}
		}(mem)
	}
	acks := 0
	completion := invoked
	var firstErr error
	for i := 0; i < len(r.mems); i++ {
		select {
		case res := <-results:
			if res.err != nil {
				if errors.Is(res.err, types.ErrNak) {
					return completion, fmt.Errorf("replicated write %s/%s: %w", region, reg, res.err)
				}
				if firstErr == nil {
					firstErr = res.err
				}
				continue
			}
			r.clock.Merge(res.stamp)
			completion = delayclock.Max(completion, res.stamp)
			if acks++; acks >= r.quorum() {
				return completion, nil
			}
		case <-ctx.Done():
			return completion, fmt.Errorf("replicated write %s/%s: %w", region, reg, ctx.Err())
		}
	}
	if firstErr == nil {
		firstErr = types.ErrMemoryCrashed
	}
	return completion, fmt.Errorf("replicated write %s/%s: quorum not reached: %w", region, reg, firstErr)
}

// read returns the unique non-⊥ value seen across a quorum of memories, or ⊥
// when the responses disagree.
func (r *replica) read(ctx context.Context, region types.RegionID, reg types.RegisterID) (types.Value, error) {
	invoked := r.clock.Now()
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan opResult, len(r.mems))
	for _, mem := range r.mems {
		go func(mem *memsim.Memory) {
			v, stamp, err := mem.Read(opCtx, r.self, region, reg, invoked)
			results <- opResult{value: v, stamp: stamp, err: err}
		}(mem)
	}
	responses := 0
	var distinct types.Value
	conflict := false
	var firstErr error
	for i := 0; i < len(r.mems); i++ {
		select {
		case res := <-results:
			if res.err != nil {
				if errors.Is(res.err, types.ErrNak) {
					return nil, fmt.Errorf("replicated read %s/%s: %w", region, reg, res.err)
				}
				if firstErr == nil {
					firstErr = res.err
				}
				continue
			}
			r.clock.Merge(res.stamp)
			responses++
			if !res.value.Bottom() {
				switch {
				case distinct.Bottom():
					distinct = res.value
				case !distinct.Equal(res.value):
					conflict = true
				}
			}
			if responses >= r.quorum() {
				if conflict {
					return nil, nil
				}
				return distinct, nil
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("replicated read %s/%s: %w", region, reg, ctx.Err())
		}
	}
	if firstErr == nil {
		firstErr = types.ErrMemoryCrashed
	}
	return nil, fmt.Errorf("replicated read %s/%s: quorum not reached: %w", region, reg, firstErr)
}

// readMany reads the same register from several regions in parallel (one
// memory round trip of delay) and returns the values indexed like the input.
func (r *replica) readMany(ctx context.Context, regions []types.RegionID, reg types.RegisterID) ([]types.Value, error) {
	out := make([]types.Value, len(regions))
	errCh := make(chan error, len(regions))
	for i, region := range regions {
		go func(i int, region types.RegionID) {
			v, err := r.read(ctx, region, reg)
			out[i] = v
			errCh <- err
		}(i, region)
	}
	var firstErr error
	for range regions {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// changePermission replicates a permission change, waiting for a quorum.
// Rejections by the legalChange policy fail fast.
func (r *replica) changePermission(ctx context.Context, region types.RegionID, perm memsim.Permission) error {
	invoked := r.clock.Now()
	opCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan opResult, len(r.mems))
	for _, mem := range r.mems {
		go func(mem *memsim.Memory) {
			stamp, err := mem.ChangePermission(opCtx, r.self, region, perm, invoked)
			results <- opResult{stamp: stamp, err: err}
		}(mem)
	}
	acks := 0
	var firstErr error
	for i := 0; i < len(r.mems); i++ {
		select {
		case res := <-results:
			if res.err != nil {
				if errors.Is(res.err, types.ErrIllegalPermissionChange) {
					return fmt.Errorf("replicated changePermission %s: %w", region, res.err)
				}
				if firstErr == nil {
					firstErr = res.err
				}
				continue
			}
			r.clock.Merge(res.stamp)
			if acks++; acks >= r.quorum() {
				return nil
			}
		case <-ctx.Done():
			return fmt.Errorf("replicated changePermission %s: %w", region, ctx.Err())
		}
	}
	if firstErr == nil {
		firstErr = types.ErrMemoryCrashed
	}
	return fmt.Errorf("replicated changePermission %s: quorum not reached: %w", region, firstErr)
}
