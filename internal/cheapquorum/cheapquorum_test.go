package cheapquorum

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/types"
)

type fixture struct {
	procs []types.ProcID
	pool  *memsim.Pool
	ring  *sigs.KeyRing
	nodes map[types.ProcID]*Node
}

func newFixture(t *testing.T, n, m int, timeout time.Duration) *fixture {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(m, func(types.MemID) []memsim.RegionSpec {
		return Layout(procs, 1)
	}, memsim.Options{LegalChange: LegalChange()})
	f := &fixture{
		procs: procs,
		pool:  pool,
		ring:  sigs.NewKeyRing(procs),
		nodes: make(map[types.ProcID]*Node),
	}
	for _, p := range procs {
		node, err := New(Config{
			Self:            p,
			Leader:          1,
			Procs:           procs,
			FaultyProcesses: (n - 1) / 2,
			FaultyMemories:  (m - 1) / 2,
			Memories:        pool.Memories(),
			Ring:            f.ring,
			Timeout:         timeout,
		})
		if err != nil {
			t.Fatalf("New(%v): %v", p, err)
		}
		f.nodes[p] = node
	}
	t.Cleanup(func() {
		for _, node := range f.nodes {
			node.Stop()
		}
	})
	return f
}

func TestConfigValidation(t *testing.T) {
	procs := []types.ProcID{1, 2, 3}
	pool := memsim.NewPool(3, func(types.MemID) []memsim.RegionSpec { return Layout(procs, 1) }, memsim.Options{})
	ring := sigs.NewKeyRing(procs)
	base := Config{Self: 1, Leader: 1, Procs: procs, FaultyProcesses: 1, FaultyMemories: 1, Memories: pool.Memories(), Ring: ring}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"too many faulty processes": func(c *Config) { c.FaultyProcesses = 2 },
		"too many faulty memories":  func(c *Config) { c.FaultyMemories = 2 },
		"missing ring":              func(c *Config) { c.Ring = nil },
		"missing leader":            func(c *Config) { c.Leader = types.NoProcess },
	} {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: config should be rejected", name)
		}
	}
}

func TestLeaderDecidesInTwoDelays(t *testing.T) {
	f := newFixture(t, 3, 3, 500*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("fast-value"))
	if err != nil {
		t.Fatalf("leader Propose: %v", err)
	}
	if !out.Decided {
		t.Fatalf("leader should decide on the fast path, got %+v", out)
	}
	if !out.Value.Equal(types.Value("fast-value")) {
		t.Fatalf("leader decided %v", out.Value)
	}
	if out.DecisionDelays != 2 {
		t.Fatalf("leader decision took %d delays, want 2 (the paper's 2-deciding claim)", out.DecisionDelays)
	}
}

func TestFollowersDecideInCommonCase(t *testing.T) {
	f := newFixture(t, 3, 3, time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	outcomes := make(map[types.ProcID]Outcome)
	var mu sync.Mutex
	for _, p := range f.procs {
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			out, err := f.nodes[p].Propose(ctx, types.Value("common-case"))
			if err != nil {
				t.Errorf("Propose at %v: %v", p, err)
				return
			}
			mu.Lock()
			outcomes[p] = out
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	for p, out := range outcomes {
		if !out.Decided {
			t.Fatalf("process %v did not decide in the common case: %+v", p, out)
		}
		if !out.Value.Equal(types.Value("common-case")) {
			t.Fatalf("process %v decided %v", p, out.Value)
		}
	}
}

func TestFollowerAbortsWhenLeaderSilent(t *testing.T) {
	f := newFixture(t, 3, 3, 50*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// The leader never proposes; followers time out, panic, revoke the
	// leader's permission and abort with their own inputs.
	out, err := f.nodes[2].Propose(ctx, types.Value("my-input"))
	if err != nil {
		t.Fatalf("follower Propose: %v", err)
	}
	if out.Decided {
		t.Fatalf("follower should not decide without a leader proposal")
	}
	if !out.AbortValue.Equal(types.Value("my-input")) {
		t.Fatalf("abort value %v, want the follower's own input", out.AbortValue)
	}
	if out.LeaderSigned || out.HasUnanimityProof {
		t.Fatalf("abort without leader value should have bottom priority: %+v", out)
	}

	// After the panic, the leader's write permission is revoked, so a late
	// leader proposal must fail and the leader must abort with its input
	// value signed by itself.
	leaderOut, err := f.nodes[1].Propose(ctx, types.Value("late-leader"))
	if err != nil {
		t.Fatalf("late leader Propose: %v", err)
	}
	if leaderOut.Decided {
		t.Fatalf("leader must not decide after its permission was revoked (uncontended-write guarantee)")
	}
}

func TestAbortAgreementWithLeaderDecision(t *testing.T) {
	f := newFixture(t, 3, 3, 300*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// The leader proposes and decides. A follower then panics (it never saw
	// enough proofs because the third process does not participate). Cheap
	// Quorum Abort Agreement (Lemma 4.6) requires the follower's abort value
	// to be the leader's decided value.
	leaderOut, err := f.nodes[1].Propose(ctx, types.Value("decided-fast"))
	if err != nil {
		t.Fatalf("leader Propose: %v", err)
	}
	if !leaderOut.Decided {
		t.Fatalf("leader should decide")
	}

	followerOut, err := f.nodes[2].Propose(ctx, types.Value("other-input"))
	if err != nil {
		t.Fatalf("follower Propose: %v", err)
	}
	if followerOut.Decided {
		// With only two of three processes participating the follower cannot
		// assemble a unanimity proof, so it must abort.
		t.Fatalf("follower should abort when unanimity is impossible")
	}
	if !followerOut.AbortValue.Equal(types.Value("decided-fast")) {
		t.Fatalf("abort agreement violated: leader decided %v but follower aborts with %v",
			leaderOut.Value, followerOut.AbortValue)
	}
	if !followerOut.LeaderSigned {
		t.Fatalf("the abort value copied from the leader must be recognized as leader signed")
	}
}

func TestByzantineLeaderEquivocationCausesAbort(t *testing.T) {
	f := newFixture(t, 3, 3, 100*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// A Byzantine leader writes two different signed values directly to
	// different memories (bypassing the replicated write). The followers'
	// replicated read sees conflicting replicas (⊥), so they cannot trust the
	// leader value and abort.
	leaderSigner := f.ring.SignerFor(1)
	signedA, err := leaderSigner.Sign([]byte("value-A"))
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	signedB, err := leaderSigner.Sign([]byte("value-B"))
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	blobA, _ := json.Marshal(signedA)
	blobB, _ := json.Marshal(signedB)
	mems := f.pool.Memories()
	if _, err := mems[0].Write(ctx, 1, LeaderRegion, regValue, blobA, 0); err != nil {
		t.Fatalf("direct write: %v", err)
	}
	if _, err := mems[1].Write(ctx, 1, LeaderRegion, regValue, blobB, 0); err != nil {
		t.Fatalf("direct write: %v", err)
	}
	if _, err := mems[2].Write(ctx, 1, LeaderRegion, regValue, blobB, 0); err != nil {
		t.Fatalf("direct write: %v", err)
	}

	out, err := f.nodes[2].Propose(ctx, types.Value("follower-input"))
	if err != nil {
		t.Fatalf("follower Propose: %v", err)
	}
	if out.Decided && out.Value.Equal(types.Value("value-A")) {
		// Deciding B (the majority replica value) would be acceptable only if
		// every correct process agrees; deciding A is impossible. The safe
		// outcomes are abort or a decision on the unique readable value.
		t.Fatalf("follower decided the minority equivocated value")
	}
}

func TestForgedLeaderValueRejected(t *testing.T) {
	f := newFixture(t, 3, 3, 100*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// A Byzantine process (not the leader, but one that somehow obtained
	// write access in a buggy deployment) cannot make followers accept a
	// value that is not signed by the leader. We simulate by writing a forged
	// blob directly on every memory.
	forged := sigs.Forge(1, []byte("forged-value"))
	blob, _ := json.Marshal(forged)
	for _, mem := range f.pool.Memories() {
		if _, err := mem.Write(ctx, 1, LeaderRegion, regValue, blob, 0); err != nil {
			t.Fatalf("direct write: %v", err)
		}
	}
	out, err := f.nodes[3].Propose(ctx, types.Value("fallback"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if out.Decided {
		t.Fatalf("follower decided on a forged leader value")
	}
	if out.LeaderSigned {
		t.Fatalf("forged value must not count as leader signed")
	}
}

func TestLeaderDecidesDespiteMemoryCrash(t *testing.T) {
	f := newFixture(t, 3, 3, 500*time.Millisecond)
	f.pool.CrashQuorumSafe(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := f.nodes[1].Propose(ctx, types.Value("with-crashed-memory"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !out.Decided || out.DecisionDelays != 2 {
		t.Fatalf("leader should still decide in 2 delays with a crashed memory minority: %+v", out)
	}
}

func TestVerifyUnanimityProof(t *testing.T) {
	f := newFixture(t, 3, 3, time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Run the full common case so that real proofs exist, then check the
	// exported verifier on a follower's abort-with-proof after the fact.
	var wg sync.WaitGroup
	for _, p := range f.procs {
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			if _, err := f.nodes[p].Propose(ctx, types.Value("proof-me")); err != nil {
				t.Errorf("Propose at %v: %v", p, err)
			}
		}(p)
	}
	wg.Wait()

	// Read p2's proof register directly and verify it.
	node := f.nodes[2]
	proofBlob, err := node.rep.read(ctx, ProcessRegion(2), regProof)
	if err != nil {
		t.Fatalf("read proof: %v", err)
	}
	if proofBlob.Bottom() {
		t.Fatalf("no proof was written in the common case")
	}
	if !VerifyUnanimityProof(f.ring, f.procs, 1, proofBlob, types.Value("proof-me")) {
		t.Fatalf("a genuine unanimity proof failed verification")
	}
	if VerifyUnanimityProof(f.ring, f.procs, 1, proofBlob, types.Value("different-value")) {
		t.Fatalf("a unanimity proof verified against the wrong value")
	}
	if VerifyUnanimityProof(f.ring, f.procs, 1, nil, types.Value("proof-me")) {
		t.Fatalf("a bottom proof should not verify")
	}
}

func TestRevokedLeaderPermissionShape(t *testing.T) {
	perm := RevokedLeaderPermission([]types.ProcID{1, 2, 3})
	for _, p := range []types.ProcID{1, 2, 3} {
		if !perm.CanRead(p) {
			t.Fatalf("process %v should retain read access", p)
		}
		if perm.CanWrite(p) {
			t.Fatalf("process %v should not have write access after revocation", p)
		}
	}
}
