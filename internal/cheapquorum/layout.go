// Package cheapquorum implements the Cheap Quorum sub-algorithm of the paper
// (§4.2, Algorithms 4 and 5): the 2-deciding fast path of Fast & Robust.
//
// Cheap Quorum is not a complete consensus algorithm: in common-case
// executions (synchrony, no failures) the leader decides after a single
// replicated memory write (two delays) and followers decide after assembling
// a unanimity proof; under asynchrony or failures processes panic, revoke the
// leader's write permission, and abort with a value and proof that seed
// Preferential Paxos so that the composition (package fastrobust) preserves
// weak Byzantine agreement.
//
// The memory layout is one region per process (Value, Panic and Proof
// registers, single-writer) plus a dedicated leader region holding the
// leader's proposal. The leader region is the only region with dynamic
// permissions: its legalChange policy allows any process to revoke write
// access but never to grant new access, which is exactly the capability the
// paper requires from RDMA.
package cheapquorum

import (
	"fmt"

	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/types"
)

// Register names inside the per-process and leader regions.
const (
	regValue = types.RegisterID("value")
	regPanic = types.RegisterID("panic")
	regProof = types.RegisterID("proof")
)

// LeaderRegion is the region holding the leader's proposal (Region[ℓ]).
const LeaderRegion = types.RegionID("cheap/leader")

// ProcessRegion returns the identifier of Region[p].
func ProcessRegion(p types.ProcID) types.RegionID {
	return types.RegionID(fmt.Sprintf("cheap/%d", int(p)))
}

// Layout returns the per-memory region layout of Cheap Quorum for the given
// process set and leader: an SWMR region per process plus the leader region.
func Layout(procs []types.ProcID, leader types.ProcID) []memsim.RegionSpec {
	specs := make([]memsim.RegionSpec, 0, len(procs)+1)
	for _, p := range procs {
		specs = append(specs, memsim.RegionSpec{
			ID:        ProcessRegion(p),
			Registers: []types.RegisterID{regValue, regPanic, regProof},
			Perm:      memsim.SWMRPermission(p, procs),
		})
	}
	specs = append(specs, memsim.RegionSpec{
		ID:        LeaderRegion,
		Registers: []types.RegisterID{regValue},
		Perm:      memsim.SWMRPermission(leader, procs),
	})
	return specs
}

// LegalChange returns the permission-change policy of Cheap Quorum: on the
// leader region only revocations are legal (any process may remove the
// leader's write permission); every other region is static.
func LegalChange() memsim.LegalChangeFunc {
	return memsim.PolicyByRegion(map[types.RegionID]memsim.LegalChangeFunc{
		LeaderRegion: memsim.RevokeOnly(),
	}, memsim.StaticPermissions)
}

// RevokedLeaderPermission is the permission installed on the leader region by
// a panicking process: everyone may read, nobody may write.
func RevokedLeaderPermission(procs []types.ProcID) memsim.Permission {
	return memsim.NewPermission(types.NewProcSet(procs...), nil, nil)
}
