package smr

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/core"
)

// TestPipelinedCommitOrder drives many single-command batches through a
// pipelined committer (MaxBatch 1 forces one slot per command, so up to
// Pipeline slot agreements genuinely overlap) and checks the reorder buffer's
// contract: even when decides complete out of order, responses and commit
// callbacks are observed strictly in slot order — OnCommit sees contiguous
// indexes with non-decreasing slots, per-client FIFO holds, and every
// replica learns the identical sequence. Run with -race: the dispatcher,
// the slot workers and their learner goroutines all touch the shared views.
func TestPipelinedCommitOrder(t *testing.T) {
	var commitMu sync.Mutex
	var committed []Entry
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Pipeline = 4
	opts.MaxBatch = 1
	// A little memory latency keeps several slots genuinely in flight (and
	// lets their decides land in whatever order the scheduler produces).
	opts.Cluster.MemoryLatency = 2 * time.Millisecond
	opts.OnCommit = func(e Entry) {
		commitMu.Lock()
		committed = append(committed, e)
		commitMu.Unlock()
	}
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const clients = 8
	const perClient = 5
	total := uint64(clients * perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			last := int64(-1)
			for k := 0; k < perClient; k++ {
				index, _, err := l.Propose(ctx, []byte(fmt.Sprintf("c%d/%d", c, k)))
				if err != nil {
					t.Errorf("Propose(c%d/%d): %v", c, k, err)
					return
				}
				// Responses resolve at apply time, so a client's indexes must
				// be strictly increasing even with other slots in flight.
				if int64(index) <= last {
					t.Errorf("client %d: index %d after %d — responses out of order", c, index, last)
					return
				}
				last = int64(index)
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The pipeline actually overlapped slot agreements (not a serial commit
	// under a new name).
	if peak := l.Cluster().PeakInstances(); peak < 2 {
		t.Fatalf("PeakInstances() = %d, want ≥ 2 concurrent slot instances", peak)
	}

	// Commit callbacks: contiguous indexes, non-decreasing slots — the
	// reorder buffer applied slots in order regardless of decide order.
	commitMu.Lock()
	defer commitMu.Unlock()
	if uint64(len(committed)) != total {
		t.Fatalf("OnCommit saw %d entries, want %d", len(committed), total)
	}
	for i, e := range committed {
		if e.Index != uint64(i) {
			t.Fatalf("OnCommit[%d].Index = %d: commit order has a gap or reordering", i, e.Index)
		}
		if i > 0 && e.Slot < committed[i-1].Slot {
			t.Fatalf("OnCommit[%d].Slot = %d after slot %d: applied out of slot order", i, e.Slot, committed[i-1].Slot)
		}
	}

	// Per-client FIFO across the whole log.
	entries := l.Entries(0)
	lastSeq := make([]int, clients)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	for _, e := range entries {
		parts := strings.SplitN(strings.TrimPrefix(string(e.Cmd), "c"), "/", 2)
		c, err1 := strconv.Atoi(parts[0])
		k, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("malformed command %q", e.Cmd)
		}
		if k != lastSeq[c]+1 {
			t.Fatalf("client %d: command %d committed after %d — FIFO violated by pipelining", c, k, lastSeq[c])
		}
		lastSeq[c] = k
	}

	// Every replica learned the identical sequence.
	leaderLog, ok := l.ReplicaLog(l.Cluster().Leader())
	if !ok || uint64(len(leaderLog)) != total {
		t.Fatalf("leader replica log: %d commands (gap-free=%v), want %d", len(leaderLog), ok, total)
	}
	for _, p := range l.Cluster().Procs {
		replicaLog, ok := l.ReplicaLog(p)
		if !ok || len(replicaLog) != len(leaderLog) {
			t.Fatalf("replica %s log: %d commands (gap-free=%v), leader has %d", p, len(replicaLog), ok, len(leaderLog))
		}
		for i := range leaderLog {
			if !bytes.Equal(replicaLog[i], leaderLog[i]) {
				t.Fatalf("replica %s log[%d] = %q, leader log[%d] = %q", p, i, replicaLog[i], i, leaderLog[i])
			}
		}
	}
}

// TestPipelinedReadBarriers checks that linearizable reads stay correct under
// pipelining: the read index is keyed to the contiguous applied prefix, so a
// Read issued after a Propose returned always observes that command even
// with several later slots in flight.
func TestPipelinedReadBarriers(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Pipeline = 4
	opts.MaxBatch = 1
	opts.Cluster.MemoryLatency = time.Millisecond
	opts.NewSM = func() StateMachine { return &countingSM{} }
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Background writers keep the pipeline saturated while the foreground
	// alternates Propose → Read and checks the read observes its write.
	bg, stopBG := context.WithCancel(ctx)
	var bgWG sync.WaitGroup
	for c := 0; c < 4; c++ {
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			for bg.Err() == nil {
				if _, _, err := l.Propose(bg, []byte("bg")); err != nil {
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		index, _, err := l.Propose(ctx, []byte("fg"))
		if err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
		resp, err := l.Read(ctx, nil)
		if err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		applied, err := strconv.Atoi(string(resp))
		if err != nil {
			t.Fatalf("Read(%d) response %q: %v", i, resp, err)
		}
		if uint64(applied) <= index {
			t.Fatalf("Read(%d) observed %d applied entries, want > %d (its preceding Propose)", i, applied, index)
		}
	}
	stopBG()
	bgWG.Wait()
}

// TestPipelineOverMessagePassingProtocols exercises per-slot state of the
// message-passing baselines under concurrent instances: pipelined commits
// over Paxos and Fast Paxos must stay gap-free with agreeing replicas.
func TestPipelineOverMessagePassingProtocols(t *testing.T) {
	for _, protocol := range []core.Protocol{core.ProtocolPaxos, core.ProtocolFastPaxos} {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			opts := testOptions(protocol)
			opts.Pipeline = 4
			opts.MaxBatch = 1
			l := newTestLog(t, opts)
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			const clients = 4
			const perClient = 4
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for k := 0; k < perClient; k++ {
						if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("c%d/%d", c, k))); err != nil {
							t.Errorf("Propose(c%d/%d): %v", c, k, err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			if l.Len() != clients*perClient {
				t.Fatalf("Len() = %d, want %d", l.Len(), clients*perClient)
			}
			for _, p := range l.Cluster().Procs {
				replicaLog, ok := l.ReplicaLog(p)
				if !ok || len(replicaLog) != clients*perClient {
					t.Fatalf("replica %s learned %d commands (gap-free=%v), want %d", p, len(replicaLog), ok, clients*perClient)
				}
			}
		})
	}
}

// countingSM counts applied entries and reports the count to queries.
type countingSM struct{ n int }

func (m *countingSM) Apply(Entry) ([]byte, error) {
	m.n++
	return []byte(strconv.Itoa(m.n)), nil
}
func (m *countingSM) Query([]byte) ([]byte, error) { return []byte(strconv.Itoa(m.n)), nil }
func (m *countingSM) Snapshot() ([]byte, error)    { return []byte(strconv.Itoa(m.n)), nil }
func (m *countingSM) Restore(snapshot []byte, _ uint64) error {
	n, err := strconv.Atoi(string(snapshot))
	if err != nil {
		return err
	}
	m.n = n
	return nil
}
