package smr

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"rdmaagreement/internal/core"
	"rdmaagreement/internal/types"
)

// testSM is the key-value state machine the snapshot and read tests plug in:
// commands are "key=value", queries are the raw key (or "__applies" for the
// number of Apply calls this instance has executed — the probe that tells a
// snapshot restore apart from a full replay).
type testSM struct {
	state   map[string]string
	applies int
}

func newTestSM() StateMachine {
	return &testSM{state: make(map[string]string)}
}

func (m *testSM) Apply(e Entry) ([]byte, error) {
	k, v, ok := strings.Cut(string(e.Cmd), "=")
	if !ok {
		return nil, fmt.Errorf("test sm: malformed command %q", e.Cmd)
	}
	m.state[k] = v
	m.applies++
	return []byte(v), nil
}

func (m *testSM) Query(query []byte) ([]byte, error) {
	if string(query) == "__applies" {
		return []byte(strconv.Itoa(m.applies)), nil
	}
	return []byte(m.state[string(query)]), nil
}

func (m *testSM) Snapshot() ([]byte, error) { return json.Marshal(m.state) }

func (m *testSM) Restore(snapshot []byte, _ uint64) error {
	state := make(map[string]string)
	if len(snapshot) > 0 {
		if err := json.Unmarshal(snapshot, &state); err != nil {
			return err
		}
	}
	m.state = state
	return nil
}

// propose commits key=value and fails the test on error.
func propose(t *testing.T, ctx context.Context, l *Log, key, value string) {
	t.Helper()
	if _, _, err := l.Propose(ctx, []byte(key+"="+value)); err != nil {
		t.Fatalf("Propose(%s=%s): %v", key, value, err)
	}
}

// TestSnapshotRestoreRoundTrip commits entries across several snapshot
// intervals and checks that restoring the latest snapshot into a fresh
// machine reproduces exactly the state at the snapshot's last index.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	opts.SnapshotInterval = 8
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const n = 20
	for i := 0; i < n; i++ {
		propose(t, ctx, l, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	data, lastIndex, ok := l.Snapshot()
	if !ok {
		t.Fatalf("no snapshot after %d entries with interval %d", n, opts.SnapshotInterval)
	}
	if want := uint64(opts.SnapshotInterval - 1); lastIndex < want {
		t.Fatalf("snapshot lastIndex = %d, want ≥ %d", lastIndex, want)
	}

	restored := newTestSM()
	if err := restored.Restore(data, lastIndex); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// Entry i wrote ki=vi at index i, so the snapshot covers keys 0..lastIndex
	// and nothing beyond.
	for i := 0; i < n; i++ {
		got, err := restored.(*testSM).Query([]byte(fmt.Sprintf("k%d", i)))
		if err != nil {
			t.Fatalf("Query(k%d): %v", i, err)
		}
		want := ""
		if uint64(i) <= lastIndex {
			want = fmt.Sprintf("v%d", i)
		}
		if string(got) != want {
			t.Fatalf("restored k%d = %q, want %q (snapshot through index %d)", i, got, want, lastIndex)
		}
	}
}

// TestSlotGCBoundsMemoryRegions commits 10× SnapshotInterval entries and
// asserts that the live memsim regions stay bounded by the snapshot window —
// independent of log length — while the log's logical surface (Len, Slots)
// keeps counting the truncated prefix.
func TestSlotGCBoundsMemoryRegions(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	opts.SnapshotInterval = 4
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	total := 10 * opts.SnapshotInterval
	for i := 0; i < total; i++ {
		propose(t, ctx, l, fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
	}

	if got := l.Len(); got != uint64(total) {
		t.Fatalf("Len() = %d, want %d", got, total)
	}
	if snaps := l.Snapshots(); snaps < total/opts.SnapshotInterval-1 {
		t.Fatalf("Snapshots() = %d after %d entries at interval %d", snaps, total, opts.SnapshotInterval)
	}
	if first := l.FirstIndex(); first < uint64(total-opts.SnapshotInterval) {
		t.Fatalf("FirstIndex() = %d, want ≥ %d (prefix not truncated)", first, total-opts.SnapshotInterval)
	}
	// Each memory keeps its base layout plus at most one snapshot window of
	// per-slot regions (the window's slots plus the slot that triggered the
	// snapshot). Anything above that bound means truncation is not releasing
	// regions.
	memories := l.Cluster().Opts.Memories
	bound := memories * (1 + opts.SnapshotInterval + 2)
	if live := l.Cluster().LiveRegions(); live > bound {
		t.Fatalf("LiveRegions() = %d after %d slots, want ≤ %d: slot GC not bounding memory", live, l.Slots(), bound)
	}
	// The truncated prefix is compacted away; entries after the latest
	// snapshot stay retrievable and reads serve the full history's state.
	if _, ok := l.Get(0); ok {
		t.Fatalf("Get(0) found an entry that should be compacted into the snapshot")
	}
	if tail := l.Entries(0); tail != nil {
		t.Fatalf("Entries(0) below FirstIndex returned %d entries, want nil (silently skipping a truncated prefix would hand learners a gap)", len(tail))
	}
	propose(t, ctx, l, "extra", "done")
	if _, ok := l.Get(uint64(total)); !ok {
		t.Fatalf("Get(%d) lost an entry committed after the latest snapshot", total)
	}
	resp, err := l.Read(ctx, []byte("k0"))
	if err != nil {
		t.Fatalf("Read(k0): %v", err)
	}
	want := fmt.Sprintf("v%d", total-5)
	if string(resp) != want {
		t.Fatalf("Read(k0) = %q, want %q (state behind the snapshot lost)", resp, want)
	}
}

// TestReadOnlySlotGC drives a group with linearizable reads only: the no-op
// barrier slots apply no entries, but their regions and recorded values must
// still be truncated once SnapshotInterval slots have been decided —
// otherwise a read-heavy group grows without bound.
func TestReadOnlySlotGC(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	opts.SnapshotInterval = 4
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const reads = 20
	for i := 0; i < reads; i++ {
		if _, err := l.Read(ctx, []byte("missing")); err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
	}
	if slots := l.Slots(); slots < reads/2 {
		t.Fatalf("Slots() = %d after %d reads, want no-op slots to have been committed", slots, reads)
	}
	memories := l.Cluster().Opts.Memories
	bound := memories * (1 + opts.SnapshotInterval + 2)
	if live := l.Cluster().LiveRegions(); live > bound {
		t.Fatalf("LiveRegions() = %d after %d read-only slots, want ≤ %d: no-op slots never truncated", live, l.Slots(), bound)
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0 (no-op slots must not create entries)", l.Len())
	}
}

// failRestoreSM refuses every Restore: it simulates a state machine whose
// snapshot cannot be deserialized, leaving lagging views permanently behind.
type failRestoreSM struct{ *testSM }

func (m *failRestoreSM) Restore([]byte, uint64) error {
	return fmt.Errorf("restore refused")
}

// TestNoOpTruncationDoesNotFastForwardFailedRestore pins the boundary between
// the two truncation paths: a view left behind by a FAILED snapshot restore
// misses real commands, so a later all-no-op truncation window must not
// fast-forward it (that would silently diverge its state machine); only views
// whose lag lies entirely within the no-op window may jump.
func TestNoOpTruncationDoesNotFastForwardFailedRestore(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = func() StateMachine { return &failRestoreSM{&testSM{state: make(map[string]string)}} }
	opts.SnapshotInterval = 4
	opts.ReplicaCatchUp = 300 * time.Millisecond
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	leader := l.Cluster().Leader()
	victim := types.NoProcess
	for _, p := range l.Cluster().Procs {
		if p != leader {
			victim = p
			break
		}
	}
	l.Cluster().CrashProcess(victim)

	// One write interval: snapshot + truncation run, the victim's restore
	// fails, so it stays behind the truncation point.
	for i := 0; i < opts.SnapshotInterval; i++ {
		propose(t, ctx, l, "key", fmt.Sprintf("v%d", i))
	}
	// One read-only interval: the no-op truncation path runs.
	for i := 0; i < 2*opts.SnapshotInterval; i++ {
		if _, err := l.Read(ctx, []byte("key")); err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
	}

	if restores := l.Restores(victim); restores != 0 {
		t.Fatalf("Restores(%s) = %d, want 0 (every restore fails)", victim, restores)
	}
	l.mu.Lock()
	lagging := l.lagging[victim]
	nextSlot := l.replicas[victim].nextSlot
	firstSlot := l.firstSlot
	l.mu.Unlock()
	if nextSlot >= firstSlot {
		t.Fatalf("victim's nextSlot = %d ≥ firstSlot %d: the no-op truncation fast-forwarded a view past %d real commands it never applied", nextSlot, firstSlot, opts.SnapshotInterval)
	}
	if !lagging {
		t.Fatalf("victim cleared from the lagging set without a successful restore")
	}
}

// TestCommitThroughSnapshotUnderMemoryCrash crashes 2 of 5 memories
// mid-workload and checks that commits, snapshots and truncation all keep
// going: region release is host-side bookkeeping, not an RDMA operation, so
// GC must not need the crashed minority.
func TestCommitThroughSnapshotUnderMemoryCrash(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Cluster.Memories = 5
	opts.NewSM = newTestSM
	opts.SnapshotInterval = 4
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const total = 24
	for i := 0; i < total; i++ {
		if i == total/2 {
			l.Cluster().CrashMemories(2)
		}
		propose(t, ctx, l, fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", i))
	}
	if snaps := l.Snapshots(); snaps < total/opts.SnapshotInterval-1 {
		t.Fatalf("Snapshots() = %d: snapshotting stalled after the memory crash", snaps)
	}
	if first := l.FirstIndex(); first < uint64(total-opts.SnapshotInterval) {
		t.Fatalf("FirstIndex() = %d: truncation stalled after the memory crash", first)
	}
	resp, err := l.Read(ctx, []byte("k2"))
	if err != nil {
		t.Fatalf("Read(k2): %v", err)
	}
	if want := fmt.Sprintf("v%d", total-1); string(resp) != want {
		t.Fatalf("Read(k2) = %q, want %q", resp, want)
	}
}

// TestLaggingReplicaRestoredFromSnapshot crashes one non-leader replica, runs
// the log through several snapshot intervals and checks that the crashed
// replica's view is brought to the snapshot point by Restore — zero Apply
// calls — rather than by replaying the (truncated) log.
func TestLaggingReplicaRestoredFromSnapshot(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	opts.SnapshotInterval = 4
	opts.ReplicaCatchUp = 500 * time.Millisecond
	l := newTestLog(t, opts)

	leader := l.Cluster().Leader()
	victim := types.NoProcess
	for _, p := range l.Cluster().Procs {
		if p != leader {
			victim = p
			break
		}
	}
	l.Cluster().CrashProcess(victim)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	total := 3 * opts.SnapshotInterval
	for i := 0; i < total; i++ {
		propose(t, ctx, l, "key", fmt.Sprintf("v%d", i))
	}

	if restores := l.Restores(victim); restores < 1 {
		t.Fatalf("Restores(%s) = %d, want ≥ 1: lagging replica never restored from snapshot", victim, restores)
	}
	applied, ok := l.ReplicaApplied(victim)
	if !ok || applied < uint64(opts.SnapshotInterval) {
		t.Fatalf("ReplicaApplied(%s) = %d (ok=%v), want ≥ %d after restore", victim, applied, ok, opts.SnapshotInterval)
	}
	// The restore must have carried state without replay: the view holds a
	// snapshot-era value of "key" while having executed zero Apply calls.
	applies, err := l.StaleRead(victim, []byte("__applies"))
	if err != nil {
		t.Fatalf("StaleRead(__applies): %v", err)
	}
	if string(applies) != "0" {
		t.Fatalf("victim executed %s Apply calls, want 0 (state must come from Restore, not replay)", applies)
	}
	got, err := l.StaleRead(victim, []byte("key"))
	if err != nil {
		t.Fatalf("StaleRead(key): %v", err)
	}
	if len(got) == 0 {
		t.Fatalf("victim has no value for \"key\" after a snapshot restore")
	}
	// Healthy replicas kept applying the log; no restore for them.
	for _, p := range l.Cluster().Procs {
		if p == victim {
			continue
		}
		if r := l.Restores(p); r != 0 {
			t.Fatalf("healthy replica %s restored %d times, want 0", p, r)
		}
		applied, _ := l.ReplicaApplied(p)
		if applied != uint64(total) {
			t.Fatalf("healthy replica %s applied %d entries, want %d", p, applied, total)
		}
	}
}
