package smr

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdmaagreement/internal/core"
)

// TestBarrierFlushesCommittedPrefix pins Barrier's contract: when it returns,
// every command enqueued before the call is committed and applied, and the
// returned index is the applied prefix length. It must pay the slot path even
// when a lease is in force — a zero-slot answer would flush nothing.
func TestBarrierFlushesCommittedPrefix(t *testing.T) {
	opts := leaseTestOptions(time.Second)
	opts.NewSM = newTestSM
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 3; i++ {
		propose(t, ctx, l, "key", "v")
	}
	slotsBefore := l.Slots()
	index, err := l.Barrier(ctx)
	if err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	if index != 3 {
		t.Fatalf("Barrier index = %d, want 3 (the applied prefix)", index)
	}
	if got := l.Slots(); got <= slotsBefore {
		t.Fatalf("Barrier committed no slot (Slots() %d, was %d): the flush must ride the log even under a lease", got, slotsBefore)
	}
}

// TestBarrierAfterClose pins the lifecycle error.
func TestBarrierAfterClose(t *testing.T) {
	l := newTestLog(t, testOptions(core.ProtocolProtectedMemoryPaxos))
	l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := l.Barrier(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Barrier after Close: err = %v, want ErrClosed", err)
	}
}

// TestLocalReadPrefersLeaseHolderThenApplied pins the stale-read routing fix:
// under a healthy lease LocalRead answers (from the holder's view); after the
// holder's process is stalled — the window in which Cluster.Leader() may
// still name the deposed holder, whose learner view is frozen — LocalRead
// must still answer, from whichever replica view has applied the most.
func TestLocalReadPrefersLeaseHolderThenApplied(t *testing.T) {
	opts := leaseTestOptions(150 * time.Millisecond)
	opts.NewSM = newTestSM
	opts.ReplicaCatchUp = 200 * time.Millisecond
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	propose(t, ctx, l, "key", "v1")
	if got, err := l.LocalRead([]byte("key")); err != nil || string(got) != "v1" {
		t.Fatalf("LocalRead under lease = %q, %v; want v1", got, err)
	}

	// Stall the holder and poll LocalRead continuously through the takeover:
	// it must answer at every point — mid-takeover included — never error and
	// never lose the committed value.
	old := l.Cluster().LeaseHolder()
	l.Cluster().CrashProcess(old)
	deadline := time.Now().Add(10 * time.Second)
	for l.Cluster().LeaseEpoch() == 1 {
		if got, err := l.LocalRead([]byte("key")); err != nil || string(got) != "v1" {
			t.Fatalf("LocalRead mid-takeover = %q, %v; want v1", got, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no takeover after stalling %s", old)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, err := l.LocalRead([]byte("key")); err != nil || string(got) != "v1" {
		t.Fatalf("LocalRead after takeover = %q, %v; want v1", got, err)
	}
}

// TestClosedLogReportsZeroPipelineDepth pins the "closed is not backed off"
// normalization: a live group reports its adaptive depth, a closed one
// reports 0 so that cross-group minimum aggregations can skip it.
func TestClosedLogReportsZeroPipelineDepth(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Pipeline = 4
	l, err := NewLog(opts)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	if got := l.Stats().PipelineDepth; got != 4 {
		t.Fatalf("live PipelineDepth = %d, want 4", got)
	}
	l.Close()
	if got := l.Stats().PipelineDepth; got != 0 {
		t.Fatalf("closed PipelineDepth = %d, want 0", got)
	}
}
