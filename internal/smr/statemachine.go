package smr

import "errors"

// Lifecycle errors. Propose, Read, ReadFrom and StaleRead wrap these so
// callers can distinguish misuse (errors.Is(err, ErrClosed)) from a group that
// lost the ability to make progress (errors.Is(err, ErrHalted)).
var (
	// ErrClosed is returned by every method invoked after Close. Close is
	// idempotent; only operations started after it observe ErrClosed.
	ErrClosed = errors.New("smr: log closed")
	// ErrHalted is returned once the committer has halted on a slot it could
	// not resolve: the slot's agreement timed out (its outcome may or may
	// not be durable) and every recovery round failed to learn its fate too.
	// The halt is permanent for the group; the wrapped cause is preserved.
	ErrHalted = errors.New("smr: log halted")
	// ErrNotQueryable is returned by Read, ReadFrom and StaleRead when the
	// group's state machine does not implement Querier.
	ErrNotQueryable = errors.New("smr: state machine does not implement Querier")
	// ErrLeaseLost is the typed retryable error returned to waiters whose
	// batch was displaced by leadership changes without committing: a
	// takeover fences the epoch the batch was proposed under, and the
	// fencing no-ops can win its slots. A takeover-displaced batch is
	// retried at a later slot exactly once; displaced by a takeover again,
	// its waiters get this error instead of an unbounded chase. The command
	// provably did NOT commit, so resubmitting it is safe. Displacement by
	// plain timeout recovery — no leadership change involved — never counts:
	// such a batch is re-dispatched until it commits, exactly as before
	// leases.
	ErrLeaseLost = errors.New("smr: command displaced by a leadership change; safe to retry")
)

// StateMachine is the application contract of a replicated log group: the
// classic RSM interface. One instance is owned by the group (the authoritative
// machine that produces Propose responses) and one per replica (the learner
// views behind StaleRead), all built by the Options.NewSM factory.
//
// The log serializes every call — no two methods of one machine instance ever
// run concurrently (Apply and Query run under the log's lock, which also
// serializes the pipeline workers that drive replica views; Snapshot and the
// Restore of a replacement machine run on the committer's applier goroutine,
// which is the only other caller and the sole driver of the authoritative
// machine) — so implementations need no internal synchronization. They
// must not call back into the Log, and Apply must be deterministic: every
// replica applies the identical entry sequence and must reach the identical
// state.
//
// Entry.Cmd is handed to Apply zero-copy: it aliases the decided slot value
// the log retains, so implementations must treat it as read-only and must
// not hold onto it past the call (copy it if the state needs the bytes).
type StateMachine interface {
	// Apply executes one committed entry and returns the response delivered
	// to the Propose caller. An error is an application-level rejection: the
	// entry stays committed in the log (every replica applies it and must
	// reject it identically) and the group keeps running.
	Apply(e Entry) (resp []byte, err error)
	// Snapshot serializes the complete current state. It is called by the
	// committer every SnapshotInterval applied entries; the returned bytes
	// replace the truncated log prefix, so Restore(Snapshot()) must rebuild
	// exactly the state at the moment of the call.
	Snapshot() ([]byte, error)
	// Restore replaces the machine's state with a snapshot. lastIndex is the
	// log index of the last entry the snapshot covers; the next Apply the
	// machine sees has index lastIndex+1. It is how a lagging replica view
	// catches up after the slots it missed have been truncated. The snapshot
	// buffer is shared (one snapshot may restore several views): treat it as
	// read-only and do not retain it after returning.
	Restore(snapshot []byte, lastIndex uint64) error
}

// Querier is optionally implemented by state machines that serve reads.
// Query must be read-only: it runs outside the log order (at the read index
// established by Read/ReadFrom, or at whatever state a StaleRead finds) and
// must not mutate the machine.
type Querier interface {
	Query(query []byte) ([]byte, error)
}

// nopSM is the state machine used when Options.NewSM is nil: the log is then
// a plain replicated log of opaque commands. Apply responds with nil and
// Query answers nil, so Read still works as a pure linearization barrier.
// Its snapshot is empty — a truncated prefix could never be recovered from
// it — which is why slot GC defaults to disabled for plain logs; setting
// SnapshotInterval > 0 without a NewSM is an explicit opt-in to discarding
// the prefix.
type nopSM struct{}

func (nopSM) Apply(Entry) ([]byte, error)  { return nil, nil }
func (nopSM) Snapshot() ([]byte, error)    { return nil, nil }
func (nopSM) Restore([]byte, uint64) error { return nil }
func (nopSM) Query([]byte) ([]byte, error) { return nil, nil }

// querySM serves query against sm, or reports ErrNotQueryable.
func querySM(sm StateMachine, query []byte) ([]byte, error) {
	q, ok := sm.(Querier)
	if !ok {
		return nil, ErrNotQueryable
	}
	return q.Query(query)
}
