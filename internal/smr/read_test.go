package smr

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/core"
	"rdmaagreement/internal/types"
)

// rawSM implements StateMachine but not Querier: reads against it must
// report ErrNotQueryable.
type rawSM struct{}

func (rawSM) Apply(Entry) ([]byte, error)  { return nil, nil }
func (rawSM) Snapshot() ([]byte, error)    { return nil, nil }
func (rawSM) Restore([]byte, uint64) error { return nil }

// follower returns a non-leader replica of l's cluster.
func follower(t *testing.T, l *Log) types.ProcID {
	t.Helper()
	leader := l.Cluster().Leader()
	for _, p := range l.Cluster().Procs {
		if p != leader {
			return p
		}
	}
	t.Fatalf("single-process cluster has no follower")
	return types.NoProcess
}

// TestLinearizableReadFromFollower commits writes through the leader and
// checks that a ReadFrom served by a DIFFERENT replica, issued after each
// Propose returned, always observes that write: the read-index barrier plus
// the wait-for-apply step make a follower's answer as current as the
// leader's. Run under the race detector in CI.
func TestLinearizableReadFromFollower(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	f := follower(t, l)

	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("v%d", i)
		propose(t, ctx, l, "key", want)
		got, err := l.ReadFrom(ctx, f, []byte("key"))
		if err != nil {
			t.Fatalf("ReadFrom(%s) after write %d: %v", f, i, err)
		}
		if string(got) != want {
			t.Fatalf("ReadFrom(%s) = %q after Propose(key=%s) returned: stale read", f, got, want)
		}
	}
}

// TestLinearizableReadConcurrent runs a writer that bumps a counter and a
// reader issuing linearizable Reads concurrently: observed values must be
// monotone (a later read never sees an earlier state), and a read issued
// after the writer finished must see the final value. Run under the race
// detector in CI.
func TestLinearizableReadConcurrent(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const writes = 15
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			if _, _, err := l.Propose(ctx, []byte("n="+strconv.Itoa(i))); err != nil {
				t.Errorf("Propose(n=%d): %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		last := 0
		for i := 0; i < writes; i++ {
			resp, err := l.Read(ctx, []byte("n"))
			if err != nil {
				t.Errorf("Read: %v", err)
				return
			}
			cur := 0
			if len(resp) > 0 {
				var convErr error
				cur, convErr = strconv.Atoi(string(resp))
				if convErr != nil {
					t.Errorf("Read returned %q", resp)
					return
				}
			}
			if cur < last {
				t.Errorf("Read went backwards: %d after %d", cur, last)
				return
			}
			last = cur
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	resp, err := l.Read(ctx, []byte("n"))
	if err != nil {
		t.Fatalf("final Read: %v", err)
	}
	if string(resp) != strconv.Itoa(writes) {
		t.Fatalf("final Read = %q, want %d (must observe every returned Propose)", resp, writes)
	}
}

// TestStaleReadMayLagReadMustNot crashes a follower, commits a write, and
// checks the contrast the API promises: StaleRead on the lagging replica
// serves its old local state while a linearizable Read observes the write.
func TestStaleReadMayLagReadMustNot(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	opts.SnapshotInterval = -1 // keep the victim un-restored so its staleness is visible
	opts.ReplicaCatchUp = 300 * time.Millisecond
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	victim := follower(t, l)
	l.Cluster().CrashProcess(victim)

	propose(t, ctx, l, "key", "committed")

	stale, err := l.StaleRead(victim, []byte("key"))
	if err != nil {
		t.Fatalf("StaleRead(%s): %v", victim, err)
	}
	if string(stale) == "committed" {
		t.Fatalf("crashed replica %s observed the write: test cannot distinguish stale from fresh", victim)
	}
	fresh, err := l.Read(ctx, []byte("key"))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(fresh) != "committed" {
		t.Fatalf("Read = %q, want %q: linearizable read missed a committed write", fresh, "committed")
	}
}

// TestLifecycleErrors checks the typed errors on misuse: ErrClosed after
// Close (which is idempotent), ErrHalted on a halted group — with StaleRead
// explicitly surviving the halt (local state needs no consensus).
func TestLifecycleErrors(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	t.Run("closed", func(t *testing.T) {
		opts := testOptions(core.ProtocolProtectedMemoryPaxos)
		opts.NewSM = newTestSM
		l, err := NewLog(opts)
		if err != nil {
			t.Fatalf("NewLog: %v", err)
		}
		leader := l.Cluster().Leader()
		l.Close()
		l.Close() // idempotent: a second Close must be a harmless no-op

		if _, _, err := l.Propose(ctx, []byte("k=v")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Propose after Close: err = %v, want ErrClosed", err)
		}
		if _, err := l.Read(ctx, []byte("k")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Read after Close: err = %v, want ErrClosed", err)
		}
		if _, err := l.ReadFrom(ctx, leader, []byte("k")); !errors.Is(err, ErrClosed) {
			t.Fatalf("ReadFrom after Close: err = %v, want ErrClosed", err)
		}
		if _, err := l.StaleRead(leader, []byte("k")); !errors.Is(err, ErrClosed) {
			t.Fatalf("StaleRead after Close: err = %v, want ErrClosed", err)
		}
	})

	t.Run("close-in-flight", func(t *testing.T) {
		// A command caught mid-commit by Close is a clean shutdown: its
		// waiter must see ErrClosed (or success), never ErrHalted.
		opts := testOptions(core.ProtocolProtectedMemoryPaxos)
		opts.NewSM = newTestSM
		opts.Cluster.MemoryLatency = 20 * time.Millisecond
		l, err := NewLog(opts)
		if err != nil {
			t.Fatalf("NewLog: %v", err)
		}
		done := make(chan error, 1)
		go func() {
			_, _, err := l.Propose(ctx, []byte("k=v"))
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		l.Close()
		if err := <-done; err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight Propose at Close: err = %v, want nil or ErrClosed (never ErrHalted)", err)
		}
	})

	t.Run("halted", func(t *testing.T) {
		opts := testOptions(core.ProtocolProtectedMemoryPaxos)
		opts.NewSM = newTestSM
		opts.SlotTimeout = 200 * time.Millisecond
		l := newTestLog(t, opts)
		leader := l.Cluster().Leader()
		propose(t, ctx, l, "k", "v")
		l.Cluster().Pool.CrashQuorumSafe(3) // all memories: no quorum possible
		if _, _, err := l.Propose(ctx, []byte("doomed=1")); !errors.Is(err, ErrHalted) {
			t.Fatalf("Propose on dead quorum: err = %v, want ErrHalted", err)
		}
		if _, _, err := l.Propose(ctx, []byte("after=1")); !errors.Is(err, ErrHalted) {
			t.Fatalf("Propose after halt: err = %v, want ErrHalted", err)
		}
		if _, err := l.Read(ctx, []byte("k")); !errors.Is(err, ErrHalted) {
			t.Fatalf("Read after halt: err = %v, want ErrHalted", err)
		}
		// StaleRead still serves the locally applied prefix.
		got, err := l.StaleRead(leader, []byte("k"))
		if err != nil {
			t.Fatalf("StaleRead on halted group: %v", err)
		}
		if string(got) != "v" {
			t.Fatalf("StaleRead on halted group = %q, want %q", got, "v")
		}
	})
}

// TestReadNotQueryable plugs in a state machine without Querier and checks
// that every read path reports ErrNotQueryable instead of guessing.
func TestReadNotQueryable(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = func() StateMachine { return rawSM{} }
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := l.Read(ctx, []byte("q")); !errors.Is(err, ErrNotQueryable) {
		t.Fatalf("Read: err = %v, want ErrNotQueryable", err)
	}
	if _, err := l.StaleRead(l.Cluster().Leader(), []byte("q")); !errors.Is(err, ErrNotQueryable) {
		t.Fatalf("StaleRead: err = %v, want ErrNotQueryable", err)
	}
}
