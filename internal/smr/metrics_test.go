package smr

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/core"
	"rdmaagreement/internal/metrics"
	"rdmaagreement/internal/trace"
)

// TestMetricsConcurrentObservation is the acceptance gate of the
// observability layer: Log.Metrics() polled from a concurrent goroutine
// during a pipelined workload must return consistent snapshots — counters
// monotone across reads, gauges within their structural bounds — and after
// the workload the per-stage latencies must decompose the end-to-end latency
// (stage p50s sum to the same order of magnitude as EndToEnd.P50). Run under
// -race in CI.
func TestMetricsConcurrentObservation(t *testing.T) {
	l := newTestLog(t, Options{
		Cluster:  core.Options{Processes: 3, Memories: 3, MemoryLatency: 500 * time.Microsecond},
		Pipeline: 4,
		MaxBatch: 8,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const clients = 8
	const perClient = 40

	stop := make(chan struct{})
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	go func() {
		defer monitorWG.Done()
		var last Metrics
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := l.Metrics()
			if m.Enqueued < last.Enqueued || m.Batches < last.Batches ||
				m.Slots < last.Slots || m.Committed < last.Committed {
				t.Errorf("counters went backwards: %+v then %+v", last, m)
				return
			}
			if m.EndToEnd.Count < last.EndToEnd.Count || m.Agreement.Count < last.Agreement.Count {
				t.Errorf("histogram counts went backwards: %+v then %+v", last, m)
				return
			}
			if m.InflightSlots.Current < 0 || m.InflightSlots.Current > int64(m.InflightSlots.Peak) {
				t.Errorf("inflight gauge out of bounds: %+v", m.InflightSlots)
				return
			}
			if m.QueueDepth.Current < 0 {
				t.Errorf("queue depth went negative: %+v", m.QueueDepth)
				return
			}
			last = m
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("c%d-%d", c, i))); err != nil {
					t.Errorf("Propose: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	monitorWG.Wait()

	m := l.Metrics()
	const total = clients * perClient
	if m.Enqueued != total {
		t.Fatalf("Enqueued = %d, want %d", m.Enqueued, total)
	}
	if m.Committed < total {
		t.Fatalf("Committed = %d, want >= %d", m.Committed, total)
	}
	if m.EndToEnd.Count != total || m.BatchWait.Count != total {
		t.Fatalf("per-command stage counts: e2e %d, batch-wait %d, want %d",
			m.EndToEnd.Count, m.BatchWait.Count, total)
	}
	if m.Slots == 0 || m.Agreement.Count != m.Batches || m.CommitWait.Count != m.Slots || m.Apply.Count != m.Slots {
		t.Fatalf("per-slot stage counts inconsistent: %+v", m)
	}
	if m.QueueDepth.Current != 0 {
		t.Fatalf("queue depth settled at %d, want 0", m.QueueDepth.Current)
	}
	if m.InflightSlots.Current != 0 {
		t.Fatalf("inflight settled at %d, want 0", m.InflightSlots.Current)
	}
	if m.ReorderDepth.Current != 0 {
		t.Fatalf("reorder depth settled at %d, want 0", m.ReorderDepth.Current)
	}
	if m.EndToEnd.P50 <= 0 || m.Agreement.P50 <= 0 {
		t.Fatalf("latency stages must be positive: %+v", m)
	}
	// The stages partition a command's life, so their p50s must sum to the
	// same order of magnitude as the end-to-end p50. Wide tolerance: p50s of
	// different distributions do not add exactly.
	sum := m.BatchWait.P50 + m.Agreement.P50 + m.CommitWait.P50 + m.Apply.P50
	if sum < m.EndToEnd.P50/4 || sum > m.EndToEnd.P50*4 {
		t.Fatalf("stage p50 sum %v inconsistent with end-to-end p50 %v (batch-wait %v, agreement %v, commit-wait %v, apply %v)",
			sum, m.EndToEnd.P50, m.BatchWait.P50, m.Agreement.P50, m.CommitWait.P50, m.Apply.P50)
	}
}

// TestMetricsSharedRegistry runs two groups recording into one registry and
// checks the aggregated view sums their activity — the sharded layer's
// aggregation contract.
func TestMetricsSharedRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var logs []*Log
	for i := 0; i < 2; i++ {
		l := newTestLog(t, Options{
			Cluster: core.Options{Processes: 3, Memories: 3},
			Metrics: reg,
		})
		logs = append(logs, l)
	}
	for i, l := range logs {
		for j := 0; j < 5; j++ {
			if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("g%d-%d", i, j))); err != nil {
				t.Fatalf("Propose: %v", err)
			}
		}
	}

	agg := MetricsFrom(reg)
	if agg.Enqueued != 10 {
		t.Fatalf("aggregated Enqueued = %d, want 10", agg.Enqueued)
	}
	if agg.EndToEnd.Count != 10 {
		t.Fatalf("aggregated EndToEnd.Count = %d, want 10", agg.EndToEnd.Count)
	}
	// Both groups' snapshots read the same shared registry.
	if logs[0].Metrics() != agg || logs[1].Metrics() != agg {
		t.Fatalf("shared-registry groups must report the aggregate")
	}
	if logs[0].Registry() != reg {
		t.Fatalf("Registry() must hand back the shared registry")
	}
}

// TestMetricsPrivateRegistryByDefault pins the default: without
// Options.Metrics each group gets its own registry.
func TestMetricsPrivateRegistryByDefault(t *testing.T) {
	a := newTestLog(t, testOptions(core.ProtocolProtectedMemoryPaxos))
	b := newTestLog(t, testOptions(core.ProtocolProtectedMemoryPaxos))
	if a.Registry() == b.Registry() {
		t.Fatal("default registries must be private per group")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, _, err := a.Propose(ctx, []byte("x")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if got := a.Metrics().Enqueued; got != 1 {
		t.Fatalf("a.Enqueued = %d, want 1", got)
	}
	if got := b.Metrics().Enqueued; got != 0 {
		t.Fatalf("b.Enqueued = %d, want 0", got)
	}
}

// TestMetricsBarriersNotCounted pins that read barriers are queue traffic
// (gauge) but not command traffic (Enqueued / stage histograms).
func TestMetricsBarriersNotCounted(t *testing.T) {
	l := newTestLog(t, testOptions(core.ProtocolProtectedMemoryPaxos))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := l.Barrier(ctx); err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	m := l.Metrics()
	if m.Enqueued != 0 || m.EndToEnd.Count != 0 || m.BatchWait.Count != 0 {
		t.Fatalf("barrier leaked into command metrics: %+v", m)
	}
	if m.Slots == 0 {
		t.Fatalf("barrier slot not counted: %+v", m)
	}
	if m.QueueDepth.Peak < 1 {
		t.Fatalf("barrier never showed in queue depth: %+v", m.QueueDepth)
	}
}

// TestTraceLifecycleEvents attaches a ring recorder to a group and checks the
// long-lived lifecycle events land in it: snapshot truncation plus a lease
// takeover recorded through the cluster's detector hook.
func TestTraceLifecycleEvents(t *testing.T) {
	rec := trace.NewRing(128)
	l := newTestLog(t, Options{
		Cluster:          core.Options{Processes: 3, Memories: 3, Recorder: rec},
		SnapshotInterval: 2,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 6; i++ {
		if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatalf("Propose: %v", err)
		}
	}
	if got := len(rec.ByKind(trace.KindSnapshot)); got == 0 {
		t.Fatalf("no snapshot events recorded (snapshots=%d)", l.Snapshots())
	}

	// A forced transfer is a takeover: the detector's hook must record it.
	target := l.Cluster().Procs[1]
	l.Cluster().SetLeader(target)
	events := rec.ByKind(trace.KindLeaseTakeover)
	if len(events) == 0 {
		t.Fatal("no lease-takeover event recorded after SetLeader")
	}
	if events[len(events)-1].Proc != target {
		t.Fatalf("takeover event proc = %s, want %s", events[len(events)-1].Proc, target)
	}
}
