package smr

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/core"
)

func testOptions(protocol core.Protocol) Options {
	return Options{
		Protocol: protocol,
		Cluster:  core.Options{Processes: 3, Memories: 3},
	}
}

func newTestLog(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := NewLog(opts)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	t.Cleanup(l.Close)
	return l
}

// TestProposeSequential commits a handful of commands one by one and checks
// the committed prefix.
func TestProposeSequential(t *testing.T) {
	l := newTestLog(t, testOptions(core.ProtocolProtectedMemoryPaxos))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 10; i++ {
		cmd := []byte(fmt.Sprintf("cmd-%d", i))
		index, _, err := l.Propose(ctx, cmd)
		if err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
		if index != uint64(i) {
			t.Fatalf("Propose(%d): index = %d, want %d", i, index, i)
		}
	}
	if got := l.Len(); got != 10 {
		t.Fatalf("Len() = %d, want 10", got)
	}
	for i := uint64(0); i < 10; i++ {
		e, ok := l.Get(i)
		if !ok {
			t.Fatalf("Get(%d): missing", i)
		}
		if want := fmt.Sprintf("cmd-%d", i); string(e.Cmd) != want {
			t.Fatalf("Get(%d) = %q, want %q", i, e.Cmd, want)
		}
	}
}

// TestConcurrentProposeReplicasAgree drives concurrent Propose calls from many
// goroutines and checks that (a) the committed log is gap-free with every
// command exactly once, and (b) every replica learned the identical command
// sequence.
func TestConcurrentProposeReplicasAgree(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	// A little memory latency makes slots slow enough that concurrent
	// submissions actually pile up into batches.
	opts.Cluster.MemoryLatency = 500 * time.Microsecond
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const clients = 8
	const perClient = 5
	indices := make(chan uint64, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				index, _, err := l.Propose(ctx, []byte(fmt.Sprintf("c%d/%d", c, k)))
				if err != nil {
					t.Errorf("Propose(c%d/%d): %v", c, k, err)
					return
				}
				indices <- index
			}
		}(c)
	}
	wg.Wait()
	close(indices)
	if t.Failed() {
		t.FailNow()
	}

	// Gap-free: the returned indices are exactly 0..N-1.
	seen := make(map[uint64]bool)
	for i := range indices {
		if seen[i] {
			t.Fatalf("index %d returned twice", i)
		}
		seen[i] = true
	}
	total := uint64(clients * perClient)
	if l.Len() != total {
		t.Fatalf("Len() = %d, want %d", l.Len(), total)
	}
	for i := uint64(0); i < total; i++ {
		if !seen[i] {
			t.Fatalf("index %d never returned: log has a gap", i)
		}
	}

	// Every replica learned the identical, gap-free sequence.
	leaderLog, ok := l.ReplicaLog(l.Cluster().Leader())
	if !ok {
		t.Fatalf("leader replica log has gaps")
	}
	if uint64(len(leaderLog)) != total {
		t.Fatalf("leader replica log has %d commands, want %d", len(leaderLog), total)
	}
	for _, p := range l.Cluster().Procs {
		replicaLog, ok := l.ReplicaLog(p)
		if !ok {
			t.Fatalf("replica %s log has gaps", p)
		}
		if len(replicaLog) != len(leaderLog) {
			t.Fatalf("replica %s log has %d commands, leader has %d", p, len(replicaLog), len(leaderLog))
		}
		for i := range leaderLog {
			if !bytes.Equal(replicaLog[i], leaderLog[i]) {
				t.Fatalf("replica %s log[%d] = %q, leader log[%d] = %q", p, i, replicaLog[i], i, leaderLog[i])
			}
		}
	}

	// Concurrent submission must actually have batched: strictly fewer slots
	// than commands.
	if slots := l.Slots(); slots >= total {
		t.Fatalf("Slots() = %d for %d commands: batching never happened", slots, total)
	}
}

// TestBatchingPreservesClientFIFO checks that each client's commands appear
// in the log in submission order even when batched with other clients'.
func TestBatchingPreservesClientFIFO(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Cluster.MemoryLatency = 500 * time.Microsecond
	opts.MaxBatch = 4 // force several partial batches
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const clients = 6
	const perClient = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("c%d/%d", c, k))); err != nil {
					t.Errorf("Propose(c%d/%d): %v", c, k, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	entries := l.Entries(0)
	if len(entries) != clients*perClient {
		t.Fatalf("committed %d entries, want %d", len(entries), clients*perClient)
	}
	lastSeq := make([]int, clients)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	for _, e := range entries {
		parts := strings.SplitN(strings.TrimPrefix(string(e.Cmd), "c"), "/", 2)
		c, err1 := strconv.Atoi(parts[0])
		k, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("malformed command %q", e.Cmd)
		}
		if k != lastSeq[c]+1 {
			t.Fatalf("client %d: command %d committed after %d — FIFO violated", c, k, lastSeq[c])
		}
		lastSeq[c] = k
	}
}

// TestEntriesCatchUp reads the committed suffix from an arbitrary index.
func TestEntriesCatchUp(t *testing.T) {
	l := newTestLog(t, testOptions(core.ProtocolProtectedMemoryPaxos))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 6; i++ {
		if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
	}
	tail := l.Entries(4)
	if len(tail) != 2 {
		t.Fatalf("Entries(4) returned %d entries, want 2", len(tail))
	}
	for i, e := range tail {
		if e.Index != uint64(4+i) {
			t.Fatalf("Entries(4)[%d].Index = %d, want %d", i, e.Index, 4+i)
		}
	}
	if got := l.Entries(100); got != nil {
		t.Fatalf("Entries(100) = %v, want nil", got)
	}
}

// TestLogOverMessagePassingProtocols runs the log over the Paxos and Fast
// Paxos baselines, exercising the per-slot message-kind multiplexing.
func TestLogOverMessagePassingProtocols(t *testing.T) {
	for _, protocol := range []core.Protocol{core.ProtocolPaxos, core.ProtocolFastPaxos} {
		protocol := protocol
		t.Run(string(protocol), func(t *testing.T) {
			l := newTestLog(t, testOptions(protocol))
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < 5; i++ {
				index, _, err := l.Propose(ctx, []byte(fmt.Sprintf("cmd-%d", i)))
				if err != nil {
					t.Fatalf("Propose(%d): %v", i, err)
				}
				if index != uint64(i) {
					t.Fatalf("Propose(%d): index = %d, want %d", i, index, i)
				}
			}
			for _, p := range l.Cluster().Procs {
				replicaLog, ok := l.ReplicaLog(p)
				if !ok || len(replicaLog) != 5 {
					t.Fatalf("replica %s learned %d commands (gap-free=%v), want 5", p, len(replicaLog), ok)
				}
			}
		})
	}
}

// TestUnsupportedProtocol checks the error path for single-shot-only
// protocols.
func TestUnsupportedProtocol(t *testing.T) {
	_, err := NewLog(Options{Protocol: core.ProtocolDiskPaxos, Cluster: core.Options{Processes: 3, Memories: 3}})
	if err == nil {
		t.Fatalf("NewLog(disk-paxos) succeeded, want slot-multiplexing error")
	}
}

// TestHaltOnAmbiguousSlot crashes every memory so the slot cannot complete:
// the waiting Propose must fail, and the log must halt permanently (no retry of
// the slot, immediate errors afterwards) because the slot's outcome is
// ambiguous.
func TestHaltOnAmbiguousSlot(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.SlotTimeout = 200 * time.Millisecond
	l := newTestLog(t, opts)
	l.Cluster().Pool.CrashQuorumSafe(3) // all memories: no quorum possible

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := l.Propose(ctx, []byte("doomed")); err == nil {
		t.Fatalf("Propose succeeded with every memory crashed")
	}
	// The group is halted: later commands fail fast instead of queueing
	// behind a slot that can never be resolved.
	start := time.Now()
	if _, _, err := l.Propose(ctx, []byte("after-halt")); err == nil {
		t.Fatalf("Propose after halt succeeded")
	} else if !errors.Is(err, ErrHalted) {
		t.Fatalf("Propose after halt: err = %v, want ErrHalted", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Propose after halt took %s, want fail-fast", elapsed)
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d after halt, want 0", l.Len())
	}
}

// TestCrashedReplicaDoesNotStallLog crashes one non-leader replica — the
// fault the protocols advertise tolerating — and checks that the log keeps
// committing at speed: only the first slot after the crash may pay the
// catch-up timeout (the replica is then marked lagging), and the healthy
// replicas stay gap-free.
func TestCrashedReplicaDoesNotStallLog(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.ReplicaCatchUp = time.Second
	l := newTestLog(t, opts)

	leader := l.Cluster().Leader()
	victim := leader
	for _, p := range l.Cluster().Procs {
		if p != leader {
			victim = p
			break
		}
	}
	l.Cluster().CrashProcess(victim)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	const cmds = 5
	for i := 0; i < cmds; i++ {
		if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("cmd-%d", i))); err != nil {
			t.Fatalf("Propose(%d): %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// One catch-up window at most, not one per slot.
	if elapsed > 2*opts.ReplicaCatchUp {
		t.Fatalf("%d commits took %s with one crashed replica (catch-up %s): log stalls per slot", cmds, elapsed, opts.ReplicaCatchUp)
	}

	for _, p := range l.Cluster().Procs {
		replicaLog, gapFree := l.ReplicaLog(p)
		if p == victim {
			continue // the crashed replica is allowed (expected) to lag
		}
		if !gapFree || len(replicaLog) != cmds {
			t.Fatalf("healthy replica %s: %d commands, gap-free=%v; want %d, true", p, len(replicaLog), gapFree, cmds)
		}
	}
}
