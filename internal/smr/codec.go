package smr

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"rdmaagreement/internal/types"
)

// The slot-value wire format.
//
// A decided slot value is one wireBatch. Since the hot-path campaign it is a
// length-prefixed binary framing — one flat allocation to encode, zero-copy
// subslices to decode — replacing the JSON object the committer shipped
// before (and still accepts: see decodeBatchInto's legacy branch, which keeps
// recovery and mixed-version replay working against values written by older
// code).
//
//	magic "rbat\x00\x01"        6 bytes
//	origin                      uvarint (0 = recovery/fencing no-op)
//	count                       uvarint (number of commands)
//	count × {
//	    id                      uvarint (proposer-local command id)
//	    len(cmd)                uvarint
//	    cmd                     len(cmd) bytes
//	}
//
// The magic is what makes mixed decode unambiguous: a legacy JSON batch
// always starts with '{', which can never collide with the tag. Everything a
// decoder hands out aliases the decided value it was given — decided values
// are immutable and retained by the log for the slot window, so the apply
// path never clones command payloads again.
var batchMagic = []byte("rbat\x00\x01")

// appendBatch appends the binary framing of (origin, ids, cmds) to dst. The
// two slices must be the same length; callers that encode straight from a
// []queued batch use encodeBatchFrom instead.
//
//smrlint:noalloc
func appendBatch(dst []byte, origin uint64, ids []uint64, cmds [][]byte) []byte {
	dst = append(dst, batchMagic...)
	dst = binary.AppendUvarint(dst, origin)
	dst = binary.AppendUvarint(dst, uint64(len(cmds)))
	for i, cmd := range cmds {
		dst = binary.AppendUvarint(dst, ids[i])
		dst = binary.AppendUvarint(dst, uint64(len(cmd)))
		dst = append(dst, cmd...)
	}
	return dst
}

// batchSize is the exact encoded size, so encode allocates once, right-sized.
//
//smrlint:noalloc
func batchSize(origin uint64, ids []uint64, cmds [][]byte) int {
	n := len(batchMagic) + uvarintLen(origin) + uvarintLen(uint64(len(cmds)))
	for i, cmd := range cmds {
		n += uvarintLen(ids[i]) + uvarintLen(uint64(len(cmd))) + len(cmd)
	}
	return n
}

//smrlint:noalloc
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// encode emits the binary framing. The returned value is retained by the
// protocol substrate and the log's slot window, so it is a fresh allocation,
// not a pooled buffer.
//
//smrlint:noalloc
func (b wireBatch) encode() types.Value {
	return appendBatch(make([]byte, 0, batchSize(b.Origin, b.IDs, b.Cmds)), b.Origin, b.IDs, b.Cmds)
}

// encodeBatchFrom builds a slot value straight from a dispatched batch:
// barriers contribute nothing to the value and are skipped in place, so the
// hot path never materializes intermediate id/cmd slices.
//
//smrlint:noalloc
func encodeBatchFrom(origin uint64, batch []queued) types.Value {
	n := len(batchMagic) + uvarintLen(origin)
	cmds := 0
	for _, q := range batch {
		if q.barrier {
			continue
		}
		cmds++
		n += uvarintLen(q.id) + uvarintLen(uint64(len(q.cmd))) + len(q.cmd)
	}
	n += uvarintLen(uint64(cmds))
	dst := make([]byte, 0, n)
	dst = append(dst, batchMagic...)
	dst = binary.AppendUvarint(dst, origin)
	dst = binary.AppendUvarint(dst, uint64(cmds))
	for _, q := range batch {
		if q.barrier {
			continue
		}
		dst = binary.AppendUvarint(dst, q.id)
		dst = binary.AppendUvarint(dst, uint64(len(q.cmd)))
		dst = append(dst, q.cmd...)
	}
	return dst
}

// batchPool recycles decode envelopes: the id/cmd slices of a wireBatch are
// reused across decodes on the apply path, so steady state allocates none.
var batchPool = sync.Pool{New: func() any { return new(wireBatch) }}

func borrowBatch() *wireBatch { return batchPool.Get().(*wireBatch) }

//smrlint:noalloc
func releaseBatch(b *wireBatch) {
	b.Origin = 0
	b.IDs = b.IDs[:0]
	for i := range b.Cmds {
		b.Cmds[i] = nil // drop references into decided values
	}
	b.Cmds = b.Cmds[:0]
	batchPool.Put(b)
}

// decodeBatchInto decodes raw into b, reusing b's slice capacity. Binary
// values decode to zero-copy subslices of raw; legacy JSON values (the
// pre-binary wire format, still possible in slots recovered across a version
// boundary) decode through encoding/json. Anything else — truncated framing,
// overlong counts, a blob that is neither tagged nor JSON — is an error,
// never a panic: decided values normally always decode, but the fuzz harness
// (and a hostile raw Propose) feeds this arbitrary bytes.
//
//smrlint:noalloc
func decodeBatchInto(b *wireBatch, raw types.Value) error {
	if bytes.HasPrefix(raw, batchMagic) {
		return decodeBinaryInto(b, raw[len(batchMagic):])
	}
	// Legacy JSON batch. Reset first: json.Unmarshal leaves absent fields
	// untouched, and b may carry a previous decode.
	*b = wireBatch{IDs: b.IDs[:0], Cmds: b.Cmds[:0]}
	if err := json.Unmarshal(raw, b); err != nil {
		return fmt.Errorf("decode batch: %w", err)
	}
	if len(b.IDs) != len(b.Cmds) {
		return fmt.Errorf("decode batch: %d ids for %d commands", len(b.IDs), len(b.Cmds))
	}
	return nil
}

//smrlint:noalloc
func decodeBinaryInto(b *wireBatch, rest []byte) error {
	origin, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("decode batch: truncated origin")
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("decode batch: truncated count")
	}
	rest = rest[n:]
	// Each command costs at least two bytes of framing, so an honest count
	// can never exceed half the remaining length — reject before allocating.
	if count > uint64(len(rest)) {
		return fmt.Errorf("decode batch: count %d exceeds payload", count)
	}
	b.Origin = origin
	b.IDs = b.IDs[:0]
	b.Cmds = b.Cmds[:0]
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("decode batch: truncated id %d", i)
		}
		rest = rest[n:]
		size, n := binary.Uvarint(rest)
		if n <= 0 {
			return fmt.Errorf("decode batch: truncated length %d", i)
		}
		rest = rest[n:]
		if size > uint64(len(rest)) {
			return fmt.Errorf("decode batch: command %d overruns payload", i)
		}
		b.IDs = append(b.IDs, id)
		b.Cmds = append(b.Cmds, rest[:size:size])
		rest = rest[size:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("decode batch: %d trailing bytes", len(rest))
	}
	return nil
}

// decodeBatch is the allocate-a-fresh-envelope variant, for cold paths and
// tests. The hot path uses decodeBatchInto with a pooled envelope.
func decodeBatch(raw types.Value) (wireBatch, error) {
	var b wireBatch
	if err := decodeBatchInto(&b, raw); err != nil {
		return wireBatch{}, err
	}
	return b, nil
}

// peekOrigin reads a decided value's origin tag without materializing the
// batch: a header parse for binary values, a full decode for legacy JSON
// ones. The dispatcher uses it at result-receipt time to tell won from
// displaced before the slot reaches the applier.
//
//smrlint:noalloc
func peekOrigin(raw types.Value) (uint64, error) {
	if bytes.HasPrefix(raw, batchMagic) {
		origin, n := binary.Uvarint(raw[len(batchMagic):])
		if n <= 0 {
			return 0, fmt.Errorf("decode batch: truncated origin")
		}
		return origin, nil
	}
	b, err := decodeBatch(raw)
	if err != nil {
		return 0, err
	}
	return b.Origin, nil
}
