package smr

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCodecRoundTrip pins the binary framing: encode → decode is identity,
// for empty no-ops through multi-command batches with empty and large values.
func TestCodecRoundTrip(t *testing.T) {
	cases := []wireBatch{
		{},
		{Origin: 1},
		{Origin: 3, IDs: []uint64{7}, Cmds: [][]byte{[]byte("x")}},
		{Origin: 2, IDs: []uint64{1, 2, 3}, Cmds: [][]byte{[]byte("a"), {}, bytes.Repeat([]byte("v"), 4096)}},
		{Origin: 1 << 62, IDs: []uint64{0, 1 << 63}, Cmds: [][]byte{nil, []byte{0, 1, 2}}},
	}
	for i, want := range cases {
		raw := want.encode()
		got, err := decodeBatch(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Origin != want.Origin || len(got.IDs) != len(want.IDs) {
			t.Fatalf("case %d: got %+v, want %+v", i, got, want)
		}
		for j := range want.IDs {
			if got.IDs[j] != want.IDs[j] || !bytes.Equal(got.Cmds[j], want.Cmds[j]) {
				t.Fatalf("case %d cmd %d: got (%d, %q), want (%d, %q)",
					i, j, got.IDs[j], got.Cmds[j], want.IDs[j], want.Cmds[j])
			}
		}
		origin, err := peekOrigin(raw)
		if err != nil || origin != want.Origin {
			t.Fatalf("case %d: peekOrigin = (%d, %v), want %d", i, origin, err, want.Origin)
		}
	}
}

// TestCodecLegacyJSON pins mixed decode: a batch committed by pre-binary code
// (a bare JSON object, no magic) still decodes, and peekOrigin sees through it.
func TestCodecLegacyJSON(t *testing.T) {
	legacy, err := json.Marshal(wireBatch{Origin: 5, IDs: []uint64{9, 10}, Cmds: [][]byte{[]byte("old"), []byte("er")}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatch(legacy)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if got.Origin != 5 || len(got.IDs) != 2 || string(got.Cmds[0]) != "old" {
		t.Fatalf("legacy decode: got %+v", got)
	}
	if origin, err := peekOrigin(legacy); err != nil || origin != 5 {
		t.Fatalf("legacy peekOrigin = (%d, %v), want 5", origin, err)
	}
	// Mismatched ids/cmds is the one structural invariant JSON can violate.
	if _, err := decodeBatch([]byte(`{"origin":1,"ids":[1,2],"cmds":["YQ=="]}`)); err == nil {
		t.Fatal("mismatched ids/cmds decoded without error")
	}
}

// TestCodecPoolReuse pins that a released envelope decodes the next value
// correctly — stale ids/cmds from the previous decode must not leak through.
func TestCodecPoolReuse(t *testing.T) {
	b := borrowBatch()
	defer releaseBatch(b)
	big := wireBatch{Origin: 1, IDs: []uint64{1, 2, 3, 4}, Cmds: [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}}
	if err := decodeBatchInto(b, big.encode()); err != nil {
		t.Fatal(err)
	}
	small := wireBatch{Origin: 2, IDs: []uint64{9}, Cmds: [][]byte{[]byte("z")}}
	if err := decodeBatchInto(b, small.encode()); err != nil {
		t.Fatal(err)
	}
	if b.Origin != 2 || len(b.IDs) != 1 || len(b.Cmds) != 1 || string(b.Cmds[0]) != "z" {
		t.Fatalf("reused envelope decoded to %+v", *b)
	}
}

// FuzzDecodeBatch feeds the decoder arbitrary bytes. Whatever comes in —
// valid binary framing, legacy JSON, truncated headers, hostile counts,
// garbage — it must never panic, and anything it accepts must re-encode to a
// value that decodes to the same batch (decode → encode → decode is
// identity, which is exactly the property recovery relies on when it
// re-proposes a learned value).
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(wireBatch{}.encode()))
	f.Add([]byte(wireBatch{Origin: 1, IDs: []uint64{1}, Cmds: [][]byte{[]byte("put")}}.encode()))
	f.Add([]byte(wireBatch{Origin: 300, IDs: []uint64{1 << 40, 2}, Cmds: [][]byte{bytes.Repeat([]byte("k"), 300), nil}}.encode()))
	if legacy, err := json.Marshal(wireBatch{Origin: 7, IDs: []uint64{1, 2}, Cmds: [][]byte{[]byte("a"), []byte("b")}}); err == nil {
		f.Add(legacy)
	}
	f.Add([]byte("rbat\x00\x01"))                 // magic, then nothing
	f.Add([]byte("rbat\x00\x01\x01\xff"))         // truncated count
	f.Add([]byte("rbat\x00\x01\x00\xff\xff\xff")) // hostile count, no payload
	f.Add([]byte(`{"origin":1,"ids":[1,2],"cmds":["YQ=="]}`))
	f.Add([]byte{})
	f.Add([]byte("not a batch at all"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		b := borrowBatch()
		defer releaseBatch(b)
		if err := decodeBatchInto(b, raw); err != nil {
			return // rejected is fine; panicking is not
		}
		if len(b.IDs) != len(b.Cmds) {
			t.Fatalf("accepted batch with %d ids for %d cmds", len(b.IDs), len(b.Cmds))
		}
		// peekOrigin must agree with the full decode on anything decodable.
		if origin, err := peekOrigin(raw); err != nil || origin != b.Origin {
			t.Fatalf("peekOrigin = (%d, %v), decode said origin %d", origin, err, b.Origin)
		}
		again, err := decodeBatch(b.encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch: %v", err)
		}
		if again.Origin != b.Origin || len(again.IDs) != len(b.IDs) {
			t.Fatalf("round trip changed the batch: %+v vs %+v", again, *b)
		}
		for i := range b.IDs {
			if again.IDs[i] != b.IDs[i] || !bytes.Equal(again.Cmds[i], b.Cmds[i]) {
				t.Fatalf("round trip changed command %d", i)
			}
		}
	})
}
