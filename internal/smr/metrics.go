package smr

import (
	"time"

	"rdmaagreement/internal/metrics"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Metric names the committer records under. They are package-level constants
// so external aggregators (the sharded layer, the bench harness, a scrape of
// Registry.WriteText) address the same series the committer writes.
const (
	// Counters.
	metricEnqueued  = "smr_enqueued_total"  // commands accepted by enqueue
	metricBatches   = "smr_batches_total"   // batches dispatched to slot workers (incl. re-dispatches)
	metricSlots     = "smr_slots_total"     // slots applied in order
	metricCommitted = "smr_committed_total" // committed commands (own and foreign)

	// Gauges.
	metricQueueDepth = "smr_queue_depth"    // commands+barriers waiting for dispatch
	metricInflight   = "smr_inflight_slots" // slots being agreed concurrently
	metricReorder    = "smr_reorder_depth"  // decided slots waiting for a predecessor

	// Per-stage latency histograms of the slot lifecycle.
	metricBatchWait  = "smr_batch_wait_seconds"  // command: enqueue → dispatch
	metricAgreement  = "smr_agreement_seconds"   // slot: dispatch → decided
	metricCommitWait = "smr_commit_wait_seconds" // slot: decided → applier pickup
	metricApply      = "smr_apply_seconds"       // slot: record + apply + resolve
	metricEndToEnd   = "smr_e2e_seconds"         // command: enqueue → waiter resolved

	// Unit-valued histogram: commands per cut batch, recorded as 1ns units
	// on power-of-two bounds. How adaptive group commit tracks offered load.
	metricBatchSize = "smr_batch_size"
)

// batchSizeBounds buckets the chosen batch sizes at powers of two through
// MaxBatch's plausible range: 1, 2, 4, … 4096 commands.
var batchSizeBounds = func() []time.Duration {
	var b []time.Duration
	for v := time.Duration(1); v <= 4096; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// logMetrics holds the committer's pre-resolved instrument handles: the hot
// path records through these pointers and never touches the registry's map.
type logMetrics struct {
	reg *metrics.Registry

	enqueued  *metrics.Counter
	batches   *metrics.Counter
	slots     *metrics.Counter
	committed *metrics.Counter

	queueDepth *metrics.Gauge
	inflight   *metrics.Gauge
	reorder    *metrics.Gauge

	batchWait  *metrics.Histogram
	agreement  *metrics.Histogram
	commitWait *metrics.Histogram
	apply      *metrics.Histogram
	e2e        *metrics.Histogram
	batchSize  *metrics.Histogram
}

func newLogMetrics(reg *metrics.Registry) *logMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &logMetrics{
		reg:        reg,
		enqueued:   reg.Counter(metricEnqueued),
		batches:    reg.Counter(metricBatches),
		slots:      reg.Counter(metricSlots),
		committed:  reg.Counter(metricCommitted),
		queueDepth: reg.Gauge(metricQueueDepth),
		inflight:   reg.Gauge(metricInflight),
		reorder:    reg.Gauge(metricReorder),
		batchWait:  reg.Histogram(metricBatchWait),
		agreement:  reg.Histogram(metricAgreement),
		commitWait: reg.Histogram(metricCommitWait),
		apply:      reg.Histogram(metricApply),
		e2e:        reg.Histogram(metricEndToEnd),
		batchSize:  reg.HistogramWith(metricBatchSize, batchSizeBounds),
	}
}

// StageLatency summarizes one lifecycle stage's latency histogram.
type StageLatency struct {
	// Count is how many observations the stage has recorded (commands for
	// BatchWait/EndToEnd, slots for the others).
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
}

func stageOf(h *metrics.Histogram) StageLatency {
	s := h.Snapshot()
	return StageLatency{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}

// SizeStats summarizes a unit-valued histogram — observations are counts
// (commands per batch), not durations, so the summary reads in plain units.
type SizeStats struct {
	// Count is how many batches have been cut.
	Count uint64
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
}

func sizeOf(h *metrics.Histogram) SizeStats {
	s := h.Snapshot()
	return SizeStats{
		Count: s.Count,
		Mean:  float64(s.Mean()),
		P50:   float64(s.Quantile(0.50)),
		P90:   float64(s.Quantile(0.90)),
		P99:   float64(s.Quantile(0.99)),
		Max:   float64(s.Max),
	}
}

// GaugeStats is a level gauge's current value and high-water mark.
type GaugeStats struct {
	Current int64
	Peak    int64
}

func gaugeOf(g *metrics.Gauge) GaugeStats {
	return GaugeStats{Current: g.Load(), Peak: g.Peak()}
}

// Metrics is a point-in-time snapshot of the slot-lifecycle instrumentation
// (Log.Metrics). Counters are monotone; the stage histograms decompose a
// command's end-to-end latency:
//
//	enqueue --BatchWait--> dispatch --Agreement--> decided
//	        --CommitWait--> in-order release --Apply--> resolved
//
// BatchWait and EndToEnd are per command, the middle stages per slot, so on a
// batching workload EndToEnd.P50 ≈ BatchWait.P50 + Agreement.P50 +
// CommitWait.P50 + Apply.P50 (each command pays its slot's stage costs once).
// Snapshots taken from a concurrent goroutine mid-workload are valid: each
// instrument is internally consistent and counters never move backwards.
type Metrics struct {
	// Enqueued counts commands accepted into the pending queue.
	Enqueued uint64
	// Batches counts batch dispatches to slot workers, including the
	// re-dispatch of a displaced batch at a later slot.
	Batches uint64
	// Slots counts slots applied in slot order.
	Slots uint64
	// Committed counts committed commands, own and foreign.
	Committed uint64

	// BatchWait is enqueue → dispatch, per command: time spent waiting in
	// the pending queue for the dispatcher to take it into a batch.
	BatchWait StageLatency
	// Agreement is dispatch → decided, per slot: the consensus rounds,
	// including any recovery rounds and the replica catch-up wait.
	Agreement StageLatency
	// CommitWait is decided → in-order release, per slot: time spent in the
	// reorder buffer behind still-running predecessor slots.
	CommitWait StageLatency
	// Apply is the in-order commit step, per slot: appending the decided
	// batch, applying it to the authoritative machine, resolving waiters.
	Apply StageLatency
	// EndToEnd is enqueue → waiter resolved, per command.
	EndToEnd StageLatency

	// BatchSize is the distribution of chosen batch sizes (commands per cut
	// batch): how adaptive group commit is tracking offered load. Mean ≈ 1
	// means no coalescing (every command rides its own slot); a mean near
	// the client count means the drain is absorbing the whole queue.
	BatchSize SizeStats

	// QueueDepth is the pending queue (commands + barriers not yet taken
	// into a batch).
	QueueDepth GaugeStats
	// InflightSlots is how many slots are being agreed concurrently (≤ the
	// adaptive pipeline depth).
	InflightSlots GaugeStats
	// ReorderDepth is how many decided slots sit in the reorder buffer
	// waiting for a predecessor.
	ReorderDepth GaugeStats
}

// MetricsFrom snapshots the smr instrumentation recorded in reg. It is how
// aggregated views work: every group of a sharded deployment records into one
// shared registry, and one MetricsFrom call reads the fleet-wide totals.
func MetricsFrom(reg *metrics.Registry) Metrics {
	return Metrics{
		Enqueued:      reg.Counter(metricEnqueued).Load(),
		Batches:       reg.Counter(metricBatches).Load(),
		Slots:         reg.Counter(metricSlots).Load(),
		Committed:     reg.Counter(metricCommitted).Load(),
		BatchWait:     stageOf(reg.Histogram(metricBatchWait)),
		Agreement:     stageOf(reg.Histogram(metricAgreement)),
		CommitWait:    stageOf(reg.Histogram(metricCommitWait)),
		Apply:         stageOf(reg.Histogram(metricApply)),
		EndToEnd:      stageOf(reg.Histogram(metricEndToEnd)),
		BatchSize:     sizeOf(reg.HistogramWith(metricBatchSize, batchSizeBounds)),
		QueueDepth:    gaugeOf(reg.Gauge(metricQueueDepth)),
		InflightSlots: gaugeOf(reg.Gauge(metricInflight)),
		ReorderDepth:  gaugeOf(reg.Gauge(metricReorder)),
	}
}

// Metrics returns a snapshot of the group's slot-lifecycle metrics. Safe to
// call from any goroutine at any time, including mid-workload: the record
// path is lock-free, so observing never stalls the committer.
//
// When Options.Metrics names a registry shared with other groups, the
// snapshot covers every group recording into it (see MetricsFrom); with a
// private registry (the default) it covers this group alone.
func (l *Log) Metrics() Metrics { return MetricsFrom(l.m.reg) }

// Registry returns the metrics registry the group records into — the
// caller-supplied Options.Metrics, or the group's private one — for text
// exposition (Registry.WriteText) and expvar publication.
func (l *Log) Registry() *metrics.Registry { return l.m.reg }

// traceEvent records a structured lifecycle event into the cluster's trace
// recorder (core.Options.Recorder). Nil-safe: without a recorder it is a
// no-op, so call sites record unconditionally.
func (l *Log) traceEvent(proc types.ProcID, kind trace.Kind, format string, args ...any) {
	l.cluster.Opts.Recorder.Record(proc, kind, nil, 0, format, args...)
}
