package smr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/core"
)

// leaseTestOptions is a 3-process Protected Memory Paxos group with
// time-bounded leases enabled.
func leaseTestOptions(duration time.Duration) Options {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Cluster.LeaseDuration = duration
	return opts
}

// TestLeaseReadServesLocally pins the lease fast path's contract: while the
// holder keeps renewing, linearizable reads observe every returned Propose,
// commit ZERO consensus slots, and are counted as lease reads — the
// read-index barrier is never paid.
func TestLeaseReadServesLocally(t *testing.T) {
	opts := leaseTestOptions(time.Second)
	opts.NewSM = newTestSM
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	propose(t, ctx, l, "key", "v1")
	slotsBefore := l.Slots()

	for i := 0; i < 10; i++ {
		got, err := l.Read(ctx, []byte("key"))
		if err != nil {
			t.Fatalf("lease Read %d: %v", i, err)
		}
		if string(got) != "v1" {
			t.Fatalf("lease Read %d = %q, want %q", i, got, "v1")
		}
	}
	if got := l.Slots(); got != slotsBefore {
		t.Fatalf("lease reads committed %d consensus slots, want 0", got-slotsBefore)
	}
	stats := l.Stats()
	if stats.LeaseReads != 10 || stats.BarrierReads != 0 {
		t.Fatalf("Stats reads = {Lease:%d Barrier:%d}, want {Lease:10 Barrier:0}", stats.LeaseReads, stats.BarrierReads)
	}
	if stats.Epoch != 1 || stats.Takeovers != 0 {
		t.Fatalf("healthy group: epoch %d takeovers %d, want 1 and 0", stats.Epoch, stats.Takeovers)
	}

	// Freshness across a write, and a follower-served lease read: ReadFrom
	// still costs no slot — it waits for the follower's view to reach the
	// local read index, then answers there.
	propose(t, ctx, l, "key", "v2")
	slotsBefore = l.Slots()
	if got, err := l.Read(ctx, []byte("key")); err != nil || string(got) != "v2" {
		t.Fatalf("lease Read after write = %q, %v; want %q", got, err, "v2")
	}
	f := follower(t, l)
	if got, err := l.ReadFrom(ctx, f, []byte("key")); err != nil || string(got) != "v2" {
		t.Fatalf("lease ReadFrom(%s) = %q, %v; want %q", f, got, err, "v2")
	}
	if got := l.Slots(); got != slotsBefore {
		t.Fatalf("lease Read+ReadFrom committed %d slots, want 0", got-slotsBefore)
	}
}

// TestBarrierReadWithoutLease pins the fallback: with leases disabled (the
// default), linearizable reads keep paying the read-index barrier and are
// counted as barrier reads.
func TestBarrierReadWithoutLease(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.NewSM = newTestSM
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	propose(t, ctx, l, "key", "v1")
	slotsBefore := l.Slots()
	if got, err := l.Read(ctx, []byte("key")); err != nil || string(got) != "v1" {
		t.Fatalf("Read = %q, %v; want %q", got, err, "v1")
	}
	if got := l.Slots(); got <= slotsBefore {
		t.Fatalf("barrier read committed no slot: Slots() = %d, was %d", got, slotsBefore)
	}
	stats := l.Stats()
	if stats.LeaseReads != 0 || stats.BarrierReads != 1 {
		t.Fatalf("Stats reads = {Lease:%d Barrier:%d}, want {Lease:0 Barrier:1}", stats.LeaseReads, stats.BarrierReads)
	}
}

// TestLeaseInDoubtFallsBackToBarrier silences the whole cluster (every
// process network-crashed, so nobody heartbeats and nobody is electable):
// the lease expires with no successor, and reads must fall back to the
// read-index barrier — which still works, because the committer's memory
// path is alive — rather than serve under a lapsed lease.
func TestLeaseInDoubtFallsBackToBarrier(t *testing.T) {
	opts := leaseTestOptions(150 * time.Millisecond)
	opts.NewSM = newTestSM
	opts.ReplicaCatchUp = 200 * time.Millisecond // crashed learners: lag fast
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	propose(t, ctx, l, "key", "v1")
	for _, p := range l.Cluster().Procs {
		l.Cluster().CrashProcess(p)
	}
	deadline := time.Now().Add(10 * time.Second)
	for l.Cluster().Lease().Valid(time.Now()) {
		if time.Now().After(deadline) {
			t.Fatalf("lease still valid with every process crashed: %+v", l.Cluster().Lease())
		}
		time.Sleep(10 * time.Millisecond)
	}

	slotsBefore := l.Slots()
	if got, err := l.Read(ctx, []byte("key")); err != nil || string(got) != "v1" {
		t.Fatalf("Read with lapsed lease = %q, %v; want %q", got, err, "v1")
	}
	if got := l.Slots(); got <= slotsBefore {
		t.Fatalf("lapsed-lease read served locally: Slots() = %d, was %d (want a barrier slot)", got, slotsBefore)
	}
	stats := l.Stats()
	if stats.LeaseReads != 0 || stats.BarrierReads != 1 {
		t.Fatalf("Stats reads = {Lease:%d Barrier:%d}, want {Lease:0 Barrier:1}", stats.LeaseReads, stats.BarrierReads)
	}
	if stats.Takeovers != 0 {
		t.Fatalf("a fully silent cluster elected a leader: %d takeovers", stats.Takeovers)
	}
}

// TestLeaseFailoverMidPipeline is the leader-change-mid-pipeline suite: the
// lease holder's process stalls while pipelined slots are in flight and
// writers keep submitting. It asserts the takeover contract end to end —
// a follower takes over under a bumped epoch; every Propose waiter gets a
// committed response or the typed retryable ErrLeaseLost; every
// acknowledged command is in the log exactly once at its returned index (no
// committed entry lost, no duplicate); every ErrLeaseLost command is absent
// (it provably did not commit); and slots committed after the takeover are
// never decided by the deposed holder or under its epoch. Run with -race in
// CI: the dispatcher, slot workers, lease watcher and writers all race here.
func TestLeaseFailoverMidPipeline(t *testing.T) {
	opts := leaseTestOptions(250 * time.Millisecond)
	opts.Pipeline = 4
	opts.MaxBatch = 1
	opts.SnapshotInterval = -1 // retain every entry for the exactly-once audit
	opts.Cluster.MemoryLatency = time.Millisecond
	opts.ReplicaCatchUp = 200 * time.Millisecond
	l := newTestLog(t, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	old := l.Cluster().LeaseHolder()

	// result is one writer submission's fate.
	type result struct {
		cmd   string
		index uint64
		err   error
	}
	const writers = 4
	var mu sync.Mutex
	var results []result
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				cmd := fmt.Sprintf("w%d/%d", w, seq)
				index, _, err := l.Propose(ctx, []byte(cmd))
				mu.Lock()
				results = append(results, result{cmd: cmd, index: index, err: err})
				mu.Unlock()
			}
		}(w)
	}

	// Let the pipeline fill, then stall the holder: its heartbeats stop, the
	// lease expires, and a follower must take over.
	time.Sleep(100 * time.Millisecond)
	l.Cluster().CrashProcess(old)
	deadline := time.Now().Add(30 * time.Second)
	for l.Cluster().LeaseEpoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no takeover after stalling the lease holder (lease %+v)", l.Cluster().Lease())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Keep writing across the transition, then stop.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	stats := l.Stats()
	if stats.Takeovers < 1 || stats.Epoch < 2 {
		t.Fatalf("Stats = epoch %d, %d takeovers; want a takeover under a bumped epoch", stats.Epoch, stats.Takeovers)
	}
	newHolder := l.Cluster().LeaseHolder()
	if newHolder == old {
		t.Fatalf("lease holder is still the stalled %s after the takeover", old)
	}

	// Every waiter got a response or the typed retryable error — nothing
	// else, and nobody was left hanging (wg.Wait returned).
	mu.Lock()
	defer mu.Unlock()
	acked := make(map[string]uint64)
	for _, r := range results {
		switch {
		case r.err == nil:
			acked[r.cmd] = r.index
		case errors.Is(r.err, ErrLeaseLost):
			// retryable: provably not committed — audited below
		default:
			t.Fatalf("Propose(%s) failed with %v, want success or ErrLeaseLost", r.cmd, r.err)
		}
	}

	// The committed log is gap-free with every acknowledged command exactly
	// once, at its acknowledged index; ErrLeaseLost commands are absent.
	seen := make(map[string]int)
	for i := uint64(0); i < l.Len(); i++ {
		e, ok := l.Get(i)
		if !ok {
			t.Fatalf("Get(%d): gap in the committed log (Len %d)", i, l.Len())
		}
		seen[string(e.Cmd)]++
	}
	for cmd, index := range acked {
		if seen[cmd] != 1 {
			t.Fatalf("acked command %q appears %d times in the log, want exactly once", cmd, seen[cmd])
		}
		if e, ok := l.Get(index); !ok || string(e.Cmd) != cmd {
			t.Fatalf("acked command %q not at its returned index %d (got %q, %v)", cmd, index, e.Cmd, ok)
		}
	}
	for _, r := range results {
		if errors.Is(r.err, ErrLeaseLost) && seen[r.cmd] != 0 {
			t.Fatalf("ErrLeaseLost command %q IS committed (%d times): the error promised it was not", r.cmd, seen[r.cmd])
		}
	}

	// The group remains live under the new epoch, and post-takeover slots
	// are never decided by the deposed holder or under its old epoch.
	epoch := l.Cluster().LeaseEpoch()
	for i := 0; i < 3; i++ {
		index, _, err := l.Propose(ctx, []byte(fmt.Sprintf("after/%d", i)))
		if err != nil {
			t.Fatalf("Propose after takeover: %v", err)
		}
		e, ok := l.Get(index)
		if !ok {
			t.Fatalf("Get(%d) after takeover: missing", index)
		}
		decider, ok := l.DeciderOf(e.Slot)
		if !ok {
			t.Fatalf("DeciderOf(%d): unknown slot", e.Slot)
		}
		if decider.Proposer == old {
			t.Fatalf("slot %d decided by the deposed holder %s after the takeover", e.Slot, old)
		}
		if decider.Epoch < epoch {
			t.Fatalf("slot %d decided under epoch %d after epoch %d began", e.Slot, decider.Epoch, epoch)
		}
	}

	// Lease reads resume on the survivor: zero additional slots.
	leaseReadsBefore, slotsBefore := l.Stats().LeaseReads, l.Slots()
	if _, err := l.Read(ctx, nil); err != nil {
		t.Fatalf("Read after takeover: %v", err)
	}
	after := l.Stats()
	if after.LeaseReads != leaseReadsBefore+1 || l.Slots() != slotsBefore {
		t.Fatalf("post-takeover read: lease reads %d→%d, slots %d→%d; want a local lease read",
			leaseReadsBefore, after.LeaseReads, slotsBefore, l.Slots())
	}
}

// TestAdaptivePipelineBacksOff drives a slot through ambiguous-timeout
// recovery and checks the committer's adaptive depth: a recovered slot must
// halve the live depth (surfaced in Stats), and a streak of clean commits
// must restore it to Options.Pipeline.
func TestAdaptivePipelineBacksOff(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Pipeline = 4
	opts.SlotTimeout = 300 * time.Millisecond
	l := newTestLog(t, opts)
	pool := l.Cluster().Pool

	if depth := l.Stats().PipelineDepth; depth != 4 {
		t.Fatalf("initial PipelineDepth = %d, want Options.Pipeline 4", depth)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	pool.CrashQuorumSafe(3)
	done := make(chan error, 1)
	go func() {
		_, _, err := l.Propose(ctx, []byte("through-the-stall"))
		done <- err
	}()
	time.Sleep(2 * opts.SlotTimeout)
	pool.Revive()
	if err := <-done; err != nil {
		t.Fatalf("Propose through the stall: %v", err)
	}

	stats := l.Stats()
	if stats.PipelineBackoffs < 1 {
		t.Fatalf("PipelineBackoffs = %d after a recovered slot, want ≥ 1", stats.PipelineBackoffs)
	}
	if stats.PipelineDepth >= 4 {
		t.Fatalf("PipelineDepth = %d after a recovered slot, want backed off below 4", stats.PipelineDepth)
	}

	// A streak of clean commits restores the depth stepwise to the ceiling.
	for i := 0; i < 2*adaptiveRestoreStreak; i++ {
		if _, _, err := l.Propose(ctx, []byte(fmt.Sprintf("clean-%d", i))); err != nil {
			t.Fatalf("Propose(clean-%d): %v", i, err)
		}
	}
	if depth := l.Stats().PipelineDepth; depth != 4 {
		t.Fatalf("PipelineDepth = %d after %d clean commits, want restored to 4", depth, 2*adaptiveRestoreStreak)
	}
}

// TestDeciderOfTracksProposer checks the per-slot decider bookkeeping on the
// healthy path: slots are decided by the lease holder under epoch 1.
func TestDeciderOfTracksProposer(t *testing.T) {
	l := newTestLog(t, leaseTestOptions(time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	index, _, err := l.Propose(ctx, []byte("cmd"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	e, ok := l.Get(index)
	if !ok {
		t.Fatalf("Get(%d): missing", index)
	}
	decider, ok := l.DeciderOf(e.Slot)
	if !ok {
		t.Fatalf("DeciderOf(%d): unknown slot", e.Slot)
	}
	if want := l.Cluster().LeaseHolder(); decider.Proposer != want || decider.Epoch != 1 {
		t.Fatalf("DeciderOf(%d) = %+v, want proposer %s under epoch 1", e.Slot, decider, want)
	}
	if _, ok := l.DeciderOf(e.Slot + 100); ok {
		t.Fatalf("DeciderOf reported an undecided slot")
	}
}
