package smr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rdmaagreement/internal/core"
)

// TestRecoveryDisplacedCommand stages the ambiguous-slot scenario the
// committer must survive: the proposer's slot attempt is killed mid-agreement
// by stalling its entire memory quorum (every phase-2 write is swallowed by
// crashed memories, so the slot times out with its outcome unknown), and the
// fabric then comes back. The group must NOT halt: a recovery round
// re-proposes a no-op into the ambiguous slot, learns that the original batch
// never became durable (the no-op wins the slot), and the displaced command
// lands at a later slot — exactly once.
func TestRecoveryDisplacedCommand(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.SlotTimeout = 300 * time.Millisecond
	l := newTestLog(t, opts)
	pool := l.Cluster().Pool
	pool.CrashQuorumSafe(3) // the whole fabric stalls: the slot cannot resolve

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The proposer's writes are issued into the crashed memories immediately
	// (where they block forever — a crash consumes in-flight operations), so
	// the original attempt is guaranteed to time out ambiguously. Revive the
	// fabric once that timeout has surely fired: one of the remaining
	// recovery rounds then runs against live memories.
	done := make(chan error, 1)
	go func() {
		index, _, err := l.Propose(ctx, []byte("displaced"))
		if err == nil && index != 0 {
			err = fmt.Errorf("displaced command got index %d, want 0", index)
		}
		done <- err
	}()
	time.Sleep(2 * opts.SlotTimeout)
	pool.Revive()

	if err := <-done; err != nil {
		t.Fatalf("Propose through ambiguous slot: %v", err)
	}

	// Exactly once, at a later slot: the ambiguous slot 0 was resolved to a
	// no-op, and the command committed in a retry slot above it.
	if l.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (exactly-once retry)", l.Len())
	}
	e, ok := l.Get(0)
	if !ok || string(e.Cmd) != "displaced" {
		t.Fatalf("Get(0) = %q, %v; want the displaced command", e.Cmd, ok)
	}
	if e.Slot == 0 {
		t.Fatalf("displaced command committed at slot 0, want a later slot (slot 0 resolved to the recovery no-op)")
	}
	stats := l.Stats()
	if stats.Recovered != 1 || stats.Refused != 0 {
		t.Fatalf("Stats = %+v, want {Recovered:1 Refused:0}", stats)
	}

	// The group resumed, not halted.
	index, _, err := l.Propose(ctx, []byte("after-recovery"))
	if err != nil {
		t.Fatalf("Propose after recovery: %v", err)
	}
	if index != 1 {
		t.Fatalf("Propose after recovery: index = %d, want 1", index)
	}
}

// TestRecoveryAdoptsPersistedValue stages the other fate of an ambiguous
// slot: the attempt's phase-2 write reached one memory before the rest of
// the quorum stalled, so the value persists in the slot's substrate. The
// recovery round's no-op must be refused — phase 1 adopts the persisted
// batch and re-decides it — and the waiting command resolves at the
// recovered slot itself, not at a retry slot. Memory 3 stays crashed during
// recovery so the recovery quorum provably includes the memory holding the
// value (the protocol tolerates f_M = 1 crashed memory).
func TestRecoveryAdoptsPersistedValue(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.SlotTimeout = 300 * time.Millisecond
	l := newTestLog(t, opts)
	mems := l.Cluster().Pool.Memories()
	mems[1].Crash()
	mems[2].Crash() // memory 1 stays alive: the write lands there, short of a quorum

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		index, _, err := l.Propose(ctx, []byte("persisted"))
		if err == nil && index != 0 {
			err = fmt.Errorf("persisted command got index %d, want 0", index)
		}
		done <- err
	}()
	time.Sleep(2 * opts.SlotTimeout)
	mems[1].Revive() // memories 1+2 form the recovery quorum; 3 stays down

	if err := <-done; err != nil {
		t.Fatalf("Propose through ambiguous slot: %v", err)
	}

	if l.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (exactly-once)", l.Len())
	}
	e, ok := l.Get(0)
	if !ok || string(e.Cmd) != "persisted" {
		t.Fatalf("Get(0) = %q, %v; want the persisted command", e.Cmd, ok)
	}
	if e.Slot != 0 {
		t.Fatalf("persisted command committed at slot %d, want the recovered slot 0", e.Slot)
	}
	stats := l.Stats()
	if stats.Recovered != 1 || stats.Refused != 1 {
		t.Fatalf("Stats = %+v, want {Recovered:1 Refused:1}", stats)
	}

	mems[2].Revive()
	if _, _, err := l.Propose(ctx, []byte("after-recovery")); err != nil {
		t.Fatalf("Propose after recovery: %v", err)
	}
}

// TestHaltWhenRecoveryCannotResolve keeps the fabric down for good: the
// original attempt AND every recovery round fail, so the group must still
// halt (recovery resolves transient stalls; it must not spin forever on a
// permanent one).
func TestHaltWhenRecoveryCannotResolve(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.SlotTimeout = 150 * time.Millisecond
	l := newTestLog(t, opts)
	l.Cluster().Pool.CrashQuorumSafe(3)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := l.Propose(ctx, []byte("doomed")); err == nil {
		t.Fatalf("Propose succeeded with the whole fabric down")
	} else if !errors.Is(err, ErrHalted) {
		t.Fatalf("Propose: err = %v, want ErrHalted", err)
	}
	if _, _, err := l.Propose(ctx, []byte("after-halt")); !errors.Is(err, ErrHalted) {
		t.Fatalf("Propose after halt: err = %v, want ErrHalted", err)
	}
	if stats := l.Stats(); stats.Recovered != 0 {
		t.Fatalf("Stats = %+v, want no recoveries on a permanent fault", stats)
	}
}

// TestHaltCommitsDecidedPrefix pins the committer's halt semantics under
// pipelining: a slot that already DECIDED (its worker succeeded and the
// replica learner views observed it) must still be committed when a later
// in-flight slot halts the group — discarding it would tell a
// durably-committed command's waiter it never committed while
// StaleRead/ReplicaLog keep showing it. Slot 0 is made slow-but-successful
// (a crashed replica process holds its worker in the learner catch-up wait),
// slot 1 fails permanently (the whole fabric crashes before it starts), so
// slot 1's halt reaches the dispatcher while slot 0's success is still in
// flight.
func TestHaltCommitsDecidedPrefix(t *testing.T) {
	opts := testOptions(core.ProtocolProtectedMemoryPaxos)
	opts.Pipeline = 2
	opts.MaxBatch = 1
	opts.SlotTimeout = 200 * time.Millisecond
	opts.ReplicaCatchUp = 2 * time.Second
	l := newTestLog(t, opts)

	leader := l.Cluster().Leader()
	victim := leader
	for _, p := range l.Cluster().Procs {
		if p != leader {
			victim = p
			break
		}
	}
	l.Cluster().CrashProcess(victim) // slot 0 decides fast but waits out the catch-up budget

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	committed := make(chan error, 1)
	go func() {
		index, _, err := l.Propose(ctx, []byte("decided"))
		if err == nil && index != 0 {
			err = fmt.Errorf("decided command got index %d, want 0", index)
		}
		committed <- err
	}()
	time.Sleep(100 * time.Millisecond) // slot 0 has decided; its worker is in the catch-up wait
	l.Cluster().Pool.CrashQuorumSafe(3)
	if _, _, err := l.Propose(ctx, []byte("doomed")); !errors.Is(err, ErrHalted) {
		t.Fatalf("Propose into the dead fabric: err = %v, want ErrHalted", err)
	}
	if err := <-committed; err != nil {
		t.Fatalf("Propose of the decided slot: %v — a decided slot was discarded by the halt", err)
	}

	// The authoritative log and the replica views agree about the decided
	// slot on the halted group.
	if l.Len() != 1 {
		t.Fatalf("Len() = %d after halt, want 1 (the decided slot committed)", l.Len())
	}
	if e, ok := l.Get(0); !ok || string(e.Cmd) != "decided" {
		t.Fatalf("Get(0) = %q, %v; want the decided command", e.Cmd, ok)
	}
	replicaLog, gapFree := l.ReplicaLog(leader)
	if !gapFree || len(replicaLog) != 1 || string(replicaLog[0]) != "decided" {
		t.Fatalf("leader replica log = %q (gap-free=%v), want exactly the decided command", replicaLog, gapFree)
	}
}
