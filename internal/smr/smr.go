// Package smr builds a replicated state machine on top of the single-shot
// agreement protocols: one long-lived cluster serves an unbounded sequence of
// consensus instances (slots), one decided batch of commands per slot, and a
// pluggable StateMachine consumes the decided log.
//
// The paper's protocols decide a single value per deployment; serving real
// traffic needs a log of decisions. A Log owns one core.Cluster and
// multiplexes slots over its shared memories and network via
// core.Cluster.NewInstance, so committing entry k+1 reuses every substrate
// that committed entry k — no per-entry cluster construction, no per-entry
// memory pools, no per-entry network goroutines.
//
// Commands submitted concurrently are batched: a committer goroutine drains
// the queue and agrees on many commands as one slot value, so slot throughput
// amortizes over batch size while each command still gets its own log index.
// Batches preserve arrival order, which gives per-client FIFO: a client that
// submits its commands in order observes them committed in order.
//
// Slot agreement is pipelined: up to Options.Pipeline batches run their slots
// concurrently, each on its own consensus instance, so log throughput is
// bounded by the memory fabric rather than by sequential slot latency. A
// reorder buffer applies decided slots to the StateMachine strictly in slot
// order, so commit order stays gap-free and every prefix-derived artifact
// (responses, read indexes, snapshots, slot GC) is keyed to the contiguous
// applied prefix. A slot whose agreement times out mid-flight — an ambiguous
// outcome: its value may or may not be durable — no longer halts the group:
// a recovery round re-proposes a no-op into the slot from another replica to
// learn its decided fate, and a displaced batch is retried at a later slot,
// exactly once (see Stats).
//
// Leadership is a lease, not a constant: the committer proposes from the
// cluster's current lease holder (core.Cluster.LeaseHolder), and when the
// holder stalls — its heartbeats stop and the lease expires — a follower
// replica takes over under a bumped epoch. The takeover fences the old
// epoch: in-flight proposals of the superseded holder are cancelled and
// their slots re-run from the new holder through the recovery machinery,
// whose phase-1 permission steal guarantees a deposed leader's writes cannot
// decide after its epoch ends, while any batch that already persisted is
// adopted rather than lost. The reorder buffer carries across the epoch
// change untouched — slots still apply in slot order, whoever proposed them
// — and a batch displaced twice by the transition fails its waiters with the
// typed, retryable ErrLeaseLost instead of committing ambiguously.
//
// The application side is the classic RSM contract (StateMachine): Propose
// replicates a command and returns the machine's response for it, Read serves
// linearizable queries via a read-index barrier (a no-op slot commit) — or,
// while the group's lease is in force, straight from the authoritative
// machine with zero consensus slots, the lease being exactly the guarantee
// that no other proposer can have committed unseen writes — and StaleRead
// serves local, possibly-stale queries from a replica's learner view. Every SnapshotInterval applied entries the committer snapshots the
// machine and truncates the decided prefix — releasing the per-slot memory
// regions — so live memory is bounded by the machine's state plus one
// interval, not by log length; a replica that missed truncated slots is
// restored from the snapshot instead of replaying them.
package smr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/core"
	"rdmaagreement/internal/metrics"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Options configure a Log.
type Options struct {
	// Protocol is the agreement protocol run per slot. It must be one of the
	// slot-capable protocols (Protected Memory Paxos, Paxos, Fast Paxos).
	// Empty means Protected Memory Paxos, the paper's 2-deciding crash
	// algorithm.
	Protocol core.Protocol
	// Cluster describes the long-lived cluster (topology, failure bounds,
	// timing).
	Cluster core.Options
	// NewSM builds the group's state machines: one authoritative machine
	// applied by the committer (it produces Propose responses and the
	// snapshots behind slot GC) plus one learner view per replica (behind
	// StaleRead). Nil means a no-op machine: the Log is then a plain
	// replicated log of opaque commands.
	NewSM func() StateMachine
	// SnapshotInterval is the number of applied entries — or decided slots,
	// whichever threshold is crossed first, so that no-op read-barrier slots
	// are collected too — between committer snapshots. Each snapshot
	// truncates the decided slot prefix and releases its per-slot memory
	// regions, bounding live memory independent of log length. Zero means
	// 1024 when NewSM is set, and disabled when it is not:
	// a plain log's entries ARE its state, and a no-op machine's snapshot
	// could never bring them back. Negative disables snapshots and
	// truncation explicitly.
	SnapshotInterval int
	// MaxBatch bounds how many queued commands are agreed as one slot value.
	// Zero means 64.
	MaxBatch int
	// BatchBytes bounds the total command payload bytes coalesced into one
	// slot value: the dispatcher absorbs the whole pending queue into a
	// batch until MaxBatch commands or BatchBytes bytes, whichever binds
	// first (a single oversized command still ships alone — the budget
	// splits batches, it never rejects commands). Zero means 256 KiB;
	// negative disables the byte budget.
	BatchBytes int
	// BatchWait is the coalescing horizon of adaptive group commit: when
	// the pending queue holds fewer commands than the budgets allow, the
	// dispatcher waits up to BatchWait — measured from the oldest queued
	// command's enqueue — for more arrivals before cutting the batch, so
	// batch size tracks offered load instead of whatever fragment the
	// scheduler happened to deliver. A full budget or a queued read barrier
	// cuts immediately regardless (reads never wait on the horizon). Zero
	// means no horizon: every dispatch drains whatever is queued right
	// away, the pre-adaptive behavior.
	BatchWait time.Duration
	// Pipeline is the maximum number of slots the committer keeps in flight
	// concurrently. Each in-flight slot runs on its own consensus instance
	// over the shared cluster, so slot agreement latency overlaps instead of
	// serializing; a reorder buffer still applies decided slots to the
	// StateMachine strictly in slot order, so commit order stays gap-free
	// and responses, read barriers, snapshots and slot GC are all keyed to
	// the contiguous applied prefix. Zero means 4; 1 (or negative) disables
	// pipelining and commits one slot at a time.
	//
	// Pipeline is a ceiling, not a constant: the committer adapts the live
	// depth, halving it whenever a slot times out into recovery (a struggling
	// fabric gains nothing from more concurrent timeouts) and restoring one
	// step after every run of consecutive clean slots. The live depth is
	// surfaced as Stats.PipelineDepth.
	Pipeline int
	// SlotTimeout bounds the agreement of one slot. A slot that times out
	// mid-agreement has an ambiguous outcome (its value may or may not be
	// durable); the committer then runs a recovery round — re-proposing a
	// no-op into the slot from another replica to learn its fate — instead
	// of halting the group. Zero means 30s.
	SlotTimeout time.Duration
	// ReplicaCatchUp bounds how long the committer waits for non-proposing
	// replicas to learn an already-made decision before moving to the next
	// slot (their learner keeps the value; the wait only orders the replica
	// bookkeeping). Zero means 5s.
	ReplicaCatchUp time.Duration
	// OnCommit, if set, is called once per committed entry in index order
	// from the committer's applier goroutine. Callbacks must be fast; they
	// serialize the log. State machines should be plugged in via NewSM;
	// OnCommit is an observability hook, not the application path.
	// Entry.Rejected tells the hook whether Apply refused the entry
	// (committed but no state changed). Like Apply, the hook receives
	// Entry.Cmd zero-copy: treat it as read-only and copy it before
	// retaining it past the call.
	OnCommit func(Entry)
	// Metrics is the registry the group's slot-lifecycle instrumentation
	// records into: per-stage latency histograms, queue-depth gauges and
	// commit counters (see Metrics and Log.Metrics). Nil means a private
	// registry per group. Several groups may share one registry — the
	// sharded layer does — and their counters, histogram buckets and
	// delta-maintained gauges then aggregate naturally.
	Metrics *metrics.Registry
}

func (o *Options) applyDefaults() {
	if o.Protocol == "" {
		o.Protocol = core.ProtocolProtectedMemoryPaxos
	}
	if o.SnapshotInterval == 0 {
		if o.NewSM != nil {
			o.SnapshotInterval = 1024
		} else {
			o.SnapshotInterval = -1
		}
	}
	if o.NewSM == nil {
		o.NewSM = func() StateMachine { return nopSM{} }
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.BatchBytes == 0 {
		o.BatchBytes = 256 << 10
	}
	if o.Pipeline == 0 {
		o.Pipeline = 4
	}
	if o.Pipeline < 1 {
		o.Pipeline = 1
	}
	if o.SlotTimeout <= 0 {
		o.SlotTimeout = 30 * time.Second
	}
	if o.ReplicaCatchUp <= 0 {
		o.ReplicaCatchUp = 5 * time.Second
	}
}

// Entry is one committed command.
type Entry struct {
	// Index is the command's position in the replicated log (0-based,
	// gap-free).
	Index uint64
	// Slot is the consensus instance whose decided batch contained the
	// command.
	Slot uint64
	// Cmd is the command payload.
	Cmd []byte
	// Rejected records that StateMachine.Apply refused this entry (an
	// application-level rejection: the entry is committed, every replica
	// rejects it identically, no state changed). Set on the copies the log
	// retains and hands to OnCommit — so observers like change feeds can
	// skip commands that never took effect — not on the Entry passed INTO
	// Apply.
	Rejected bool
}

// wireBatch is the value agreed on per slot: an ordered batch of commands
// tagged with their submitting log's identity, so a proposer can tell whether
// the decided batch is its own. A batch with zero commands is a no-op slot,
// committed by Read/ReadFrom as the read-index barrier when no writes are
// queued alongside, and by recovery rounds to learn an ambiguous slot's fate.
//
// The origin/ID plumbing is what keeps multi-proposer slots honest — and
// with leases the multi-proposer case is real: across a takeover the old
// epoch's batch and the new holder's fencing no-op compete for the same
// slot, and a slot lost to a competitor must commit the competitor's batch
// and retry (or fail) ours, never mislabel it.
//
// On the wire a batch is the length-prefixed binary framing in codec.go; the
// json tags survive only for the legacy decode path (values written by the
// pre-binary format, replayed through recovery or a mixed-version restart).
type wireBatch struct {
	Origin uint64   `json:"origin"`
	IDs    []uint64 `json:"ids"`
	Cmds   [][]byte `json:"cmds"`
}

// Stats are per-group counters of the committer's recovery, lease and
// pipeline activity, exposed via Log.Stats.
type Stats struct {
	// Recovered counts slots whose agreement attempt timed out mid-slot and
	// whose fate was then learned by a recovery round instead of halting the
	// group: the recovery proposer re-runs the slot with a no-op, which
	// either adopts the original batch (it was durable) or decides the no-op
	// (it was not), and in the latter case the displaced batch is retried at
	// a later slot.
	Recovered uint64
	// Refused counts the subset of recovered slots whose no-op was refused:
	// the recovery round found the original batch persisted in the slot's
	// substrate and re-decided it, so the waiting commands resolved at the
	// recovered slot itself and nothing was displaced.
	Refused uint64
	// Epoch is the group's current lease epoch. It starts at 1 and is bumped
	// by every takeover; a proposal fenced by an epoch change can never
	// decide under the old epoch.
	Epoch uint64
	// Takeovers counts lease takeovers: elections after the holder's
	// renewals stopped, plus forced transfers.
	Takeovers uint64
	// LeaseReads counts linearizable reads served locally under an unexpired
	// lease — zero consensus slots committed.
	LeaseReads uint64
	// BarrierReads counts linearizable reads that paid the read-index
	// barrier (a slot ride or a dedicated no-op slot) because the lease was
	// absent, expired or in doubt.
	BarrierReads uint64
	// PipelineDepth is the committer's CURRENT adaptive pipeline depth: at
	// most Options.Pipeline, halved while slots time out into recovery and
	// restored stepwise by runs of clean commits. A closed group reports 0 —
	// it runs no pipeline at all, which is not the same as being backed off
	// to depth 1.
	PipelineDepth int
	// PipelineBackoffs counts the depth halvings.
	PipelineBackoffs uint64
}

// queued is one command — or one read barrier — waiting for a slot.
type queued struct {
	id         uint64
	cmd        []byte
	barrier    bool
	bare       bool         // barrier only: no query; resolve with the read index alone
	query      []byte       // barrier only: query served at the read index
	replica    types.ProcID // barrier only: NoProcess = authoritative machine
	enqueuedAt time.Time    // when enqueue accepted it (BatchWait/EndToEnd spans)
	done       chan proposeResult
}

type proposeResult struct {
	index uint64
	resp  []byte
	err   error
}

// replicaView is the learner-side state of one replica: the slot values its
// learner saw plus its own StateMachine instance, applied in slot order.
type replicaView struct {
	sm        StateMachine
	learned   map[uint64]types.Value // decided value per slot (retained window)
	nextSlot  uint64                 // next slot to apply to sm
	nextIndex uint64                 // log index of the next command to apply
	restores  int                    // times restored from a snapshot instead of replay
}

// snapState is the latest committer snapshot; the truncated prefix's only
// surviving representation.
type snapState struct {
	data      []byte
	lastIndex uint64 // log index of the last entry the snapshot covers
	lastSlot  uint64 // last slot folded into the snapshot
}

// Log is a replicated state-machine group: one long-lived cluster plus the
// committer that multiplexes slots over it and applies decided entries to the
// group's StateMachine. All methods are safe for concurrent use.
type Log struct {
	opts         Options
	cluster      *core.Cluster
	origin       uint64
	leaseEnabled bool // cluster runs time-bounded leases (LeaseDuration > 0)

	m *logMetrics // slot-lifecycle instrumentation; never nil

	mu           sync.Mutex
	sm           StateMachine                  // authoritative machine, committer-applied
	pending      []queued                      // guarded by mu
	nextID       uint64                        // guarded by mu
	holder       types.ProcID                  // guarded by mu; lease holder the committer proposes from
	epoch        uint64                        // guarded by mu; lease epoch the committer has adopted
	epochCtx     context.Context               // guarded by mu; cancelled when the adopted epoch is superseded
	epochCancel  context.CancelFunc            // guarded by mu; fences epochCtx
	deciders     map[uint64]SlotDecider        // guarded by mu; per retained slot: who drove its decision, under which epoch
	entries      []Entry                       // guarded by mu; committed entries since the last truncation
	firstIndex   uint64                        // guarded by mu; index of entries[0]
	slots        []types.Value                 // guarded by mu; decided value per retained slot, in slot order
	firstSlot    uint64                        // guarded by mu; slot of slots[0]
	sinceSnap    int                           // guarded by mu; entries applied since the last snapshot
	sinceSlots   int                           // guarded by mu; slots decided since the last truncation
	snapFailures int                           // guarded by mu; failed Snapshot() attempts
	snapErr      error                         // guarded by mu; last Snapshot() failure; nil once one succeeds
	snap         *snapState                    // guarded by mu
	snapCount    int                           // guarded by mu
	replicas     map[types.ProcID]*replicaView // guarded by mu
	lagging      map[types.ProcID]bool         // guarded by mu; replicas that missed a catch-up window
	stats        Stats                         // guarded by mu; recovery counters
	closed       bool                          // guarded by mu
	failure      error                         // guarded by mu; set when the committer halts on an unrecoverable slot
	applied      *sync.Cond                    // on mu: broadcast when a view advances, or on close/halt

	applyByID map[uint64]int // recordSlot scratch (applier-only): command id → result offset

	notify chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// originCounter gives each Log a process-wide unique origin tag for its
// batches.
var originCounter struct {
	mu sync.Mutex
	n  uint64
}

func nextOrigin() uint64 {
	originCounter.mu.Lock()
	defer originCounter.mu.Unlock()
	originCounter.n++
	return originCounter.n
}

// NewLog builds the long-lived cluster, instantiates the state machines and
// starts the committer.
func NewLog(opts Options) (*Log, error) {
	opts.applyDefaults()
	// The log drives only per-slot instances; skip the cluster's single-shot
	// proposer nodes so a group does not carry idle base nodes for its
	// lifetime.
	opts.Cluster.InstancesOnly = true
	cluster, err := core.NewCluster(opts.Protocol, opts.Cluster)
	if err != nil {
		return nil, fmt.Errorf("smr log: %w", err)
	}
	// Fail fast if the protocol cannot multiplex slots: build and discard a
	// probe instance rather than failing on the first Propose.
	probe, err := cluster.NewInstance(0)
	if err != nil {
		cluster.Close()
		return nil, fmt.Errorf("smr log: %w", err)
	}
	probe.Close()

	ctx, cancel := context.WithCancel(context.Background())
	l := &Log{
		opts:         opts,
		cluster:      cluster,
		origin:       nextOrigin(),
		leaseEnabled: opts.Cluster.LeaseDuration > 0,
		m:            newLogMetrics(opts.Metrics),
		sm:           opts.NewSM(),
		deciders:     make(map[uint64]SlotDecider),
		replicas:     make(map[types.ProcID]*replicaView, len(cluster.Procs)),
		lagging:      make(map[types.ProcID]bool),
		notify:       make(chan struct{}, 1),
		cancel:       cancel,
	}
	l.applied = sync.NewCond(&l.mu)
	lease := cluster.Lease()
	l.holder, l.epoch = lease.Holder, lease.Epoch
	l.epochCtx, l.epochCancel = context.WithCancel(context.Background())
	l.stats.PipelineDepth = opts.Pipeline
	for _, p := range cluster.Procs {
		l.replicas[p] = &replicaView{sm: opts.NewSM(), learned: make(map[uint64]types.Value)}
	}
	l.wg.Add(2)
	go l.commitLoop(ctx)
	go l.leaseWatch(ctx)
	return l, nil
}

// leaseWatch adopts lease epoch changes: whenever the cluster's detector
// reports a takeover (an election after the holder stalled, or a forced
// SetLeader transfer), the committer's proposer view moves to the new holder
// and the superseded epoch's context is cancelled, fencing its in-flight
// proposals — their workers fall into the recovery path, which re-runs the
// slots from the new holder with a full phase 1 (permission steal) so
// nothing can decide under the dead epoch.
func (l *Log) leaseWatch(ctx context.Context) {
	defer l.wg.Done()
	changes := l.cluster.Oracle.Changes()
	for {
		select {
		case <-ctx.Done():
			return
		case <-changes:
			lease := l.cluster.Lease()
			l.mu.Lock()
			if lease.Epoch == l.epoch {
				l.mu.Unlock()
				continue
			}
			superseded := l.epoch
			l.holder, l.epoch = lease.Holder, lease.Epoch
			fence := l.epochCancel
			l.epochCtx, l.epochCancel = context.WithCancel(context.Background())
			l.mu.Unlock()
			fence()
			l.traceEvent(lease.Holder, trace.KindEpochFence,
				"epoch %d fenced; committer adopted epoch %d (holder %s)", superseded, lease.Epoch, lease.Holder)
		}
	}
}

// leaseView snapshots the committer's lease state: the holder to propose
// from, the adopted epoch, and the context fenced when that epoch is
// superseded.
func (l *Log) leaseView() (types.ProcID, uint64, context.Context) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.holder, l.epoch, l.epochCtx
}

// leaseValid reports whether the group currently holds an unexpired
// time-bounded lease (always false when leases are disabled: an eternal
// static lease justifies nothing, the barrier path keeps its semantics).
func (l *Log) leaseValid() bool {
	return l.leaseEnabled && l.cluster.Lease().Valid(time.Now())
}

// fenceContext derives a context cancelled when either the caller's context
// ends or the given epoch context is fenced by a takeover.
func fenceContext(ctx, epochCtx context.Context) (context.Context, context.CancelFunc) {
	merged, cancel := context.WithCancel(ctx)
	stop := context.AfterFunc(epochCtx, cancel)
	return merged, func() { stop(); cancel() }
}

// Cluster exposes the underlying long-lived cluster (for fault injection in
// tests and experiments).
func (l *Log) Cluster() *core.Cluster { return l.cluster }

// Close stops the committer and the cluster. Pending commands and reads fail
// with ErrClosed. Close is idempotent: second and later calls are no-ops.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	pending := l.pending
	l.pending = nil
	l.applied.Broadcast() // release ReadFrom waiters into the ErrClosed path
	l.mu.Unlock()

	l.cancel()
	l.wg.Wait()
	l.epochCancel()
	// A closed group runs no pipeline: zero the adaptive depth (after the
	// committer exited, so a worker's last report cannot overwrite it) so
	// aggregators that take a minimum across groups can tell "closed" apart
	// from "backed off to depth 1" instead of letting a dead shard masquerade
	// as the most-throttled live one.
	l.mu.Lock()
	l.stats.PipelineDepth = 0
	l.mu.Unlock()
	l.m.queueDepth.Add(-int64(len(pending)))
	for _, q := range pending {
		q.done <- proposeResult{err: fmt.Errorf("%w before command committed", ErrClosed)}
	}
	l.cluster.Close()
}

// enqueue appends one command or barrier to the pending queue and wakes the
// committer, after the lifecycle checks every submission path shares.
func (l *Log) enqueue(q queued) (queued, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return queued{}, ErrClosed
	}
	if l.failure != nil {
		cause := l.failure
		l.mu.Unlock()
		return queued{}, fmt.Errorf("%w: %w", ErrHalted, cause)
	}
	l.nextID++
	q.id = l.nextID
	q.enqueuedAt = time.Now()
	q.done = make(chan proposeResult, 1)
	if q.barrier && !q.bare {
		// Bare barriers (Log.Barrier) answer no query; counting them as
		// barrier READS would skew the lease-vs-barrier read split.
		l.stats.BarrierReads++
	}
	l.pending = append(l.pending, q)
	l.mu.Unlock()
	if !q.barrier {
		l.m.enqueued.Inc()
	}
	l.m.queueDepth.Add(1)

	select {
	case l.notify <- struct{}{}:
	default:
	}
	return q, nil
}

// Propose submits one command, blocks until it is committed and applied to
// the group's state machine, and returns its log index plus the machine's
// response. Commands submitted by one goroutine in sequence are committed in
// that sequence (per-client FIFO). A non-nil error with a valid index is an
// application-level rejection by StateMachine.Apply: the entry is committed
// (every replica applies and rejects it identically) but the machine refused
// it. If ctx expires first, Propose returns the context error, but the
// command may still commit later (it cannot be withdrawn once proposed).
//
// After Close, Propose returns ErrClosed; on a halted group it returns
// ErrHalted wrapping the halt's cause.
func (l *Log) Propose(ctx context.Context, cmd []byte) (uint64, []byte, error) {
	q, err := l.enqueue(queued{cmd: append([]byte(nil), cmd...)})
	if err != nil {
		return 0, nil, fmt.Errorf("smr propose: %w", err)
	}
	select {
	case res := <-q.done:
		return res.index, res.resp, res.err
	case <-ctx.Done():
		return 0, nil, fmt.Errorf("smr propose: %w", ctx.Err())
	}
}

// Read serves a linearizable query against the group's state machine.
//
// While the group holds an unexpired lease, the query is answered straight
// from the authoritative machine — zero consensus slots — with the same
// guarantee: a Read that starts after any Propose returned observes that
// command, because the machine has applied every returned Propose and the
// lease certifies that no other proposer can have committed writes this
// group has not applied (a competitor must first take the lease over, which
// fences this epoch and is visible here as an epoch bump).
//
// When the lease is absent, expired or in doubt, Read falls back to the
// read-index barrier: it commits through the group's slot sequence — the
// query rides the next batch's slot, or a dedicated no-op slot when no
// writes are queued — and answers from the authoritative machine at that
// point. The query is served via the machine's Querier implementation;
// machines without one get ErrNotQueryable.
func (l *Log) Read(ctx context.Context, query []byte) ([]byte, error) {
	if resp, handled, err := l.tryLeaseRead(query); handled {
		if err != nil {
			return nil, fmt.Errorf("smr read: %w", err)
		}
		return resp, nil
	}
	q, err := l.enqueue(queued{barrier: true, query: append([]byte(nil), query...), replica: types.NoProcess})
	if err != nil {
		return nil, fmt.Errorf("smr read: %w", err)
	}
	select {
	case res := <-q.done:
		if res.err != nil {
			return nil, fmt.Errorf("smr read: %w", res.err)
		}
		return res.resp, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("smr read: %w", ctx.Err())
	}
}

// leaseReadLocked is the shared lease fast-path prologue, called with l.mu
// held once leaseValid passed: it re-checks the lifecycle, counts the lease
// read, and returns the zero-slot read index — the applied prefix right now,
// which covers every returned Propose.
//
//smrlint:holds mu
func (l *Log) leaseReadLocked() (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if l.failure != nil {
		return 0, fmt.Errorf("%w: %w", ErrHalted, l.failure)
	}
	l.stats.LeaseReads++
	return l.firstIndex + uint64(len(l.entries)), nil
}

// tryLeaseRead is Read's fast path: while the lease is in force it serves
// the query from the authoritative machine under l.mu — the same
// serialization every query runs under — without touching the slot
// sequence. handled=false means the lease is in doubt and the caller must
// take the barrier path.
func (l *Log) tryLeaseRead(query []byte) (resp []byte, handled bool, err error) {
	if !l.leaseValid() {
		return nil, false, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.leaseReadLocked(); err != nil {
		return nil, true, err
	}
	resp, err = querySM(l.sm, query)
	return resp, true, err
}

// tryLeaseReadIndex is ReadFrom's fast path: the same prologue, handing back
// only the read index for the replica-side wait.
func (l *Log) tryLeaseReadIndex() (readIndex uint64, handled bool, err error) {
	if !l.leaseValid() {
		return 0, false, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	readIndex, err = l.leaseReadLocked()
	return readIndex, true, err
}

// Barrier commits a pure read-index barrier through the group's slot
// sequence — a ride on the next write batch's slot, or a dedicated no-op slot
// when none is queued — and returns the contiguous applied log index it
// established. When Barrier returns, every command enqueued before it was
// called has been committed and applied to the authoritative machine.
//
// Unlike Read, Barrier never takes the lease fast path: its job is to flush
// the queue through the log, not to answer a query, and a zero-slot answer
// would flush nothing. It is the prefix fence of a live shard rebalance (the
// sharded layer barriers a ceding group immediately before committing its
// migrate-out command, so the export captures every write routed there before
// the handoff began), and is useful to any caller that needs "everything
// before this point is applied" without reading state.
func (l *Log) Barrier(ctx context.Context) (uint64, error) {
	q, err := l.enqueue(queued{barrier: true, bare: true, replica: types.NoProcess})
	if err != nil {
		return 0, fmt.Errorf("smr barrier: %w", err)
	}
	select {
	case res := <-q.done:
		if res.err != nil {
			return 0, fmt.Errorf("smr barrier: %w", res.err)
		}
		return res.index, nil
	case <-ctx.Done():
		return 0, fmt.Errorf("smr barrier: %w", ctx.Err())
	}
}

// ReadFrom serves a linearizable query from replica p's learner view: it
// establishes the read index exactly like Read — locally under an unexpired
// lease, through the barrier otherwise — then waits until p's view has
// applied through that index before querying p's machine. The answer is as
// current as Read's even though a follower serves it; on a lagging replica
// the wait lasts until the replica catches up (via a snapshot restore) or ctx
// expires.
func (l *Log) ReadFrom(ctx context.Context, p types.ProcID, query []byte) ([]byte, error) {
	l.mu.Lock()
	_, ok := l.replicas[p]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("smr read: unknown replica %s", p)
	}
	if readIndex, handled, err := l.tryLeaseReadIndex(); handled {
		if err != nil {
			return nil, fmt.Errorf("smr read: %w", err)
		}
		return l.awaitReplicaRead(ctx, p, readIndex, query)
	}
	q, err := l.enqueue(queued{barrier: true, replica: p})
	if err != nil {
		return nil, fmt.Errorf("smr read: %w", err)
	}
	var readIndex uint64
	select {
	case res := <-q.done:
		if res.err != nil {
			return nil, fmt.Errorf("smr read: %w", res.err)
		}
		readIndex = res.index
	case <-ctx.Done():
		return nil, fmt.Errorf("smr read: %w", ctx.Err())
	}
	return l.awaitReplicaRead(ctx, p, readIndex, query)
}

// awaitReplicaRead waits for p's view to apply through the read index, then
// queries p's machine. The cond is broadcast whenever any view advances (and
// on close/halt); the AfterFunc wakes waiters on ctx expiry — it takes the
// mutex first, so a waiter is either already in Wait or will re-check ctx
// before entering it.
func (l *Log) awaitReplicaRead(ctx context.Context, p types.ProcID, readIndex uint64, query []byte) ([]byte, error) {
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.applied.Broadcast()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		view := l.replicas[p]
		if view.nextIndex >= readIndex {
			resp, err := querySM(view.sm, query)
			if err != nil {
				return nil, fmt.Errorf("smr read: %w", err)
			}
			return resp, nil
		}
		if l.closed {
			return nil, fmt.Errorf("smr read: %w", ErrClosed)
		}
		if l.failure != nil {
			return nil, fmt.Errorf("smr read: %w: %w", ErrHalted, l.failure)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("smr read: replica %s behind read index %d: %w", p, readIndex, err)
		}
		l.applied.Wait()
	}
}

// StaleRead serves a query from replica p's learner view without any
// linearization barrier: local, immediate, and possibly stale (a lagging
// replica answers from whatever prefix it has applied). It remains available
// on a halted group — local state needs no consensus — but not after Close.
func (l *Log) StaleRead(p types.ProcID, query []byte) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("smr stale read: %w", ErrClosed)
	}
	view, ok := l.replicas[p]
	if !ok {
		return nil, fmt.Errorf("smr stale read: unknown replica %s", p)
	}
	resp, err := querySM(view.sm, query)
	if err != nil {
		return nil, fmt.Errorf("smr stale read: %w", err)
	}
	return resp, nil
}

// LocalRead serves a local, possibly-stale query from the freshest replica
// view the group can vouch for: the lease holder's view while the lease is in
// force (the lease certifies the holder is alive and applying), otherwise the
// view with the highest applied index. It exists because "read from
// Cluster.Leader()" is wrong mid-takeover — a deposed or crashed holder's
// learner view is frozen, and routing stale reads to it returns state that
// stops advancing even though other replicas keep applying. Like StaleRead it
// involves no linearization barrier and stays available on a halted group.
func (l *Log) LocalRead(query []byte) ([]byte, error) {
	holder := types.NoProcess
	if l.leaseValid() {
		holder = l.cluster.LeaseHolder()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, fmt.Errorf("smr local read: %w", ErrClosed)
	}
	view, ok := l.replicas[holder]
	if !ok {
		// No valid lease (or an unknown holder): fall back to the
		// most-applied view, which by definition has observed at least as
		// much of the log as any other replica.
		for _, v := range l.replicas {
			if view == nil || v.nextIndex > view.nextIndex {
				view = v
			}
		}
		if view == nil {
			return nil, fmt.Errorf("smr local read: group has no replicas")
		}
	}
	resp, err := querySM(view.sm, query)
	if err != nil {
		return nil, fmt.Errorf("smr local read: %w", err)
	}
	return resp, nil
}

// Len returns the total number of committed commands, including those folded
// into snapshots.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstIndex + uint64(len(l.entries))
}

// FirstIndex returns the index of the oldest retained entry; entries below it
// have been truncated into the latest snapshot.
func (l *Log) FirstIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstIndex
}

// Get returns the committed entry at index i. It reports false both for
// indexes not committed yet and for indexes already truncated into a snapshot
// (compare with FirstIndex to tell the cases apart).
func (l *Log) Get(i uint64) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < l.firstIndex || i >= l.firstIndex+uint64(len(l.entries)) {
		return Entry{}, false
	}
	return cloneEntry(l.entries[i-l.firstIndex]), true
}

// Entries returns a copy of the retained committed suffix starting at index
// from — the catch-up read used by learners that fell behind. It returns nil
// when from lies below FirstIndex: the prefix has been truncated, and
// silently serving a later suffix would hand the learner a gap. Such a
// learner must first restore from Snapshot and resume at lastIndex+1.
func (l *Log) Entries(from uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.firstIndex {
		return nil
	}
	if from >= l.firstIndex+uint64(len(l.entries)) {
		return nil
	}
	out := make([]Entry, 0, l.firstIndex+uint64(len(l.entries))-from)
	for _, e := range l.entries[from-l.firstIndex:] {
		out = append(out, cloneEntry(e))
	}
	return out
}

// Snapshot returns the latest committer snapshot and the log index of the
// last entry it covers, or ok=false if none has been taken yet. Together with
// Entries(lastIndex+1) it is the catch-up path for replicas that fell behind
// a truncated prefix.
func (l *Log) Snapshot() (data []byte, lastIndex uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snap == nil {
		return nil, 0, false
	}
	return append([]byte(nil), l.snap.data...), l.snap.lastIndex, true
}

// Stats returns the group's recovery, lease and pipeline counters.
func (l *Log) Stats() Stats {
	takeovers := l.cluster.LeaseTakeovers()
	epoch := l.cluster.LeaseEpoch()
	l.mu.Lock()
	defer l.mu.Unlock()
	stats := l.stats
	stats.Epoch = epoch
	stats.Takeovers = takeovers
	return stats
}

// SlotDecider records who drove a slot's decision: the proposer whose
// proposal (regular or recovery) completed the slot, and the lease epoch the
// committer had adopted when it ran. Across a takeover, every slot completed
// from the fencing path onward carries the new epoch — a deposed holder
// never decides a slot under an epoch newer than its own.
type SlotDecider struct {
	Proposer types.ProcID
	Epoch    uint64
}

// DeciderOf reports who decided the given slot, for slots still inside the
// retained (un-truncated) window.
func (l *Log) DeciderOf(slot uint64) (SlotDecider, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.deciders[slot]
	return d, ok
}

// Snapshots returns how many snapshots the committer has taken.
func (l *Log) Snapshots() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapCount
}

// SnapshotFailures reports how many Snapshot() attempts the committer had to
// abandon and the most recent failure (nil after a subsequent success). While
// failures persist the log stays intact — and keeps growing: truncation
// cannot run without a snapshot, so a persistent failure deserves attention.
func (l *Log) SnapshotFailures() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapFailures, l.snapErr
}

// Restores returns how many times replica p's view was restored from a
// snapshot (because the slots it missed had been truncated) instead of
// replaying the log.
func (l *Log) Restores(p types.ProcID) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	view, ok := l.replicas[p]
	if !ok {
		return 0
	}
	return view.restores
}

// ReplicaApplied returns the next log index replica p's view will apply —
// i.e. p has applied entries [0, n).
func (l *Log) ReplicaApplied(p types.ProcID) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	view, ok := l.replicas[p]
	if !ok {
		return 0, false
	}
	return view.nextIndex, true
}

func cloneEntry(e Entry) Entry {
	return Entry{Index: e.Index, Slot: e.Slot, Cmd: append([]byte(nil), e.Cmd...), Rejected: e.Rejected}
}

// Slots returns the number of decided slots, including truncated ones.
func (l *Log) Slots() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSlot + uint64(len(l.slots))
}

// ReplicaLog returns the command sequence process p has learned over the
// retained slot window (since the last truncation), by decoding the slot
// values recorded at p in slot order. The boolean reports whether p's view is
// gap-free through every retained decided slot; a lagging replica (one that
// missed a decide broadcast within the catch-up bound) yields false until a
// snapshot restore resets its window.
func (l *Log) ReplicaLog(p types.ProcID) ([][]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	view, ok := l.replicas[p]
	if !ok {
		return nil, false
	}
	var out [][]byte
	last := l.firstSlot + uint64(len(l.slots))
	for slot := l.firstSlot; slot < last; slot++ {
		raw, ok := view.learned[slot]
		if !ok {
			return out, false
		}
		b, err := decodeBatch(raw)
		if err != nil {
			return out, false
		}
		for _, cmd := range b.Cmds {
			out = append(out, append([]byte(nil), cmd...))
		}
	}
	return out, true
}

// work is one dispatched batch plus its displacement history: how many
// slots it has already lost to a takeover's fencing no-op. Only
// fence-induced displacements count: a leadership change may displace a
// batch exactly once before its waiters are failed with the typed retryable
// ErrLeaseLost (a contended takeover must not starve them), while a batch
// displaced by plain timeout recovery — no leadership change to blame — is
// re-dispatched until it commits, exactly as before leases.
type work struct {
	batch        []queued
	displaced    int
	dispatchedAt time.Time // when the dispatcher last handed it to a worker (Agreement span)
}

// maxDisplacements bounds how many slots one batch may lose to takeover
// fences before its waiters are failed with ErrLeaseLost: the initial slot
// plus one retry.
const maxDisplacements = 2

// adaptiveRestoreStreak is how many consecutive clean (non-recovered) slot
// outcomes restore one step of adaptive pipeline depth.
const adaptiveRestoreStreak = 8

// slotOutcome is one pipeline worker's report: the slot it drove, the value
// the slot decided (possibly learned by a recovery round), who drove the
// deciding proposal under which lease epoch, whether recovery was needed —
// and whether the ambiguity came from an epoch fence (a takeover cancelling
// the attempt) rather than a slot timeout, which the adaptive pipeline must
// not mistake for fabric distress. A non-nil err is unrecoverable and halts
// the group.
type slotOutcome struct {
	slot      uint64
	decided   types.Value
	w         work
	proposer  types.ProcID
	epoch     uint64
	recovered bool
	fenced    bool
	decidedAt time.Time // when the worker finished (CommitWait span starts here)
	err       error
}

// commitLoop is the committer's dispatcher: it drains the queue into batches
// (adaptively coalesced up to the byte/count budgets and the BatchWait
// horizon), keeps up to Options.Pipeline slots in flight — each driven end to
// end by its own worker goroutine over its own consensus instance — and
// forwards the decided slots in slot order, through a reorder buffer, to the
// group's applier goroutine. Commit order therefore stays gap-free even when
// slot agreements complete out of order, and every prefix-derived artifact
// (Propose responses, read barriers, snapshots, slot GC) is keyed to the
// contiguous applied prefix, never to the highest decided slot.
//
// The dispatcher/applier split is what makes apply work overlap agreement:
// while the applier grinds through a decided slot (or an O(state) snapshot),
// the dispatcher keeps cutting batches and driving consensus — and since
// every Log owns its own applier, one group's slow apply never stalls a
// sibling group's. Won/displaced is decided here, at result-receipt time, by
// peeking the decided value's origin tag: a displaced batch re-dispatches
// immediately instead of waiting for its losing slot to drain through the
// in-order apply path, so the re-proposals of multiple ambiguous slots run
// concurrently, bounded only by the pipeline depth.
func (l *Log) commitLoop(ctx context.Context) {
	defer l.wg.Done()
	depth := l.opts.Pipeline // live adaptive depth, ≤ Options.Pipeline
	cleanStreak := 0         // consecutive clean outcomes since the last backoff
	workerCtx, cancelWorkers := context.WithCancel(ctx)
	defer cancelWorkers()
	// Each worker sends exactly one outcome and at most Options.Pipeline are
	// in flight, so the buffer guarantees workers never block on a departing
	// dispatcher.
	results := make(chan slotOutcome, l.opts.Pipeline)
	reorder := make(map[uint64]slotOutcome) // decided out of order, awaiting their turn
	var retry []work                        // displaced batches, re-dispatched before new work
	nextSlot := uint64(0)                   // next slot to hand to a worker
	nextApply := uint64(0)                  // next slot to forward (== firstSlot + len(slots) eventually)
	inflight := 0

	// The applier: decided slots arrive in slot order and are recorded,
	// applied and resolved there. The buffer lets agreement run ahead of a
	// slow apply by a few pipelines' worth before backpressure reaches the
	// dispatcher. applyFailed is buffered so a failing applier never blocks
	// reporting; it keeps draining applyCh (failing the batches) until the
	// channel closes.
	applyCh := make(chan slotOutcome, 4*l.opts.Pipeline+16)
	applyFailed := make(chan error, 1)
	applierDone := make(chan struct{})
	go l.applyLoop(applyCh, applyFailed, applierDone)

	// The BatchWait horizon timer: armed when takeBatch reports the queue is
	// holding for more arrivals, nil (blocking forever) otherwise.
	var batchTimer *time.Timer
	var batchC <-chan time.Time
	armBatchTimer := func(d time.Duration) {
		if batchTimer == nil {
			batchTimer = time.NewTimer(d)
			batchC = batchTimer.C
			return
		}
		if batchC == nil {
			// Fired and observed: the channel is drained, safe to reuse.
			batchTimer.Reset(d)
			batchC = batchTimer.C
			return
		}
		if !batchTimer.Stop() {
			select {
			case <-batchTimer.C:
			default:
			}
		}
		batchTimer.Reset(d)
		batchC = batchTimer.C
	}
	defer func() {
		if batchTimer != nil {
			batchTimer.Stop()
		}
	}()

	// setDepth tracks the live adaptive depth in Stats.PipelineDepth.
	setDepth := func(d int) {
		depth = d
		l.mu.Lock()
		l.stats.PipelineDepth = d
		l.mu.Unlock()
	}
	// adapt backs the pipeline off while slots time out into recovery — a
	// struggling fabric gains nothing from more concurrent timeouts — and
	// restores it one step per streak of clean commits. Fence-induced
	// recoveries (a takeover cancelled the attempt; the fabric is fine) are
	// treated as clean: a failover on a healthy fabric must not throttle
	// the pipeline exactly when the new holder needs throughput.
	adapt := func(recovered bool) {
		if recovered {
			cleanStreak = 0
			if depth > 1 {
				setDepth((depth + 1) / 2)
				l.mu.Lock()
				l.stats.PipelineBackoffs++
				l.mu.Unlock()
			}
			return
		}
		cleanStreak++
		if cleanStreak >= adaptiveRestoreStreak && depth < l.opts.Pipeline {
			setDepth(depth + 1)
			cleanStreak = 0
		}
	}
	// receive settles won-vs-displaced at receipt time. A batch that lost
	// its slot to a competitor — a recovery or fencing no-op, or a foreign
	// batch — is re-dispatched (or failed) HERE, before the losing slot
	// reaches the applier: that is what pipelines the recovery path, because
	// the re-proposal no longer serializes behind the in-order apply of the
	// slot it lost. Only fence-induced displacements count toward the
	// ErrLeaseLost cap: a takeover may displace a batch exactly once, while
	// timeout-recovery displacement keeps the retry-until-commit semantics
	// (no leadership change to blame). With draining set (the terminate
	// path) a displaced batch always lands on the retry list instead of
	// being failed with ErrLeaseLost: terminate owns those waiters and fails
	// them with ErrClosed/ErrHalted per its contract — telling them "safe to
	// retry" on a closing or halting group would be a lie. If the origin
	// peek fails (a decided value that does not decode), the batch rides to
	// the applier untouched: recordSlot will fail on the same bytes and the
	// halt path owns the waiters.
	receive := func(res slotOutcome, draining bool) slotOutcome {
		if len(res.w.batch) == 0 {
			return res
		}
		origin, err := peekOrigin(res.decided)
		if err != nil || origin == l.origin {
			return res
		}
		if res.fenced {
			res.w.displaced++
		}
		if res.w.displaced >= maxDisplacements && !draining {
			l.failWork(res.w, fmt.Errorf("%w (displaced %d times)", ErrLeaseLost, res.w.displaced))
		} else {
			retry = append(retry, res.w)
		}
		res.w.batch = nil
		return res
	}

	// terminate ends the committer: on Close it is a clean shutdown and the
	// abandoned batches' waiters get ErrClosed, per Close's contract; on any
	// other cause the group halts permanently with ErrHalted wrapping it.
	// Every in-flight worker is cancelled and drained first, and the
	// decided slots that are contiguous with the applied prefix are still
	// forwarded to the applier on the way out: their values are durable and
	// the replica learner views have already observed them (recordReplica
	// runs in the workers), so discarding them would fork StaleRead/
	// ReplicaLog from the authoritative log and tell a durably-committed
	// command's waiter it never committed. Only after the applier has
	// drained and exited is everything beyond the failed slot's gap —
	// decided-but-unforwardable, displaced, still queued — told exactly
	// once.
	terminate := func(cause error, last []queued) {
		cancelWorkers()
		failed := [][]queued{last}
		for inflight > 0 {
			res := <-results
			inflight--
			l.m.inflight.Add(-1)
			if res.err != nil {
				failed = append(failed, res.w.batch)
			} else {
				res = receive(res, true)
				reorder[res.slot] = res
				l.m.reorder.Add(1)
			}
		}
		for {
			r, ok := reorder[nextApply]
			if !ok {
				break
			}
			delete(reorder, nextApply)
			l.m.reorder.Add(-1)
			nextApply++
			applyCh <- r
		}
		for _, res := range reorder {
			failed = append(failed, res.w.batch)
			l.m.reorder.Add(-1)
		}
		for _, w := range retry {
			failed = append(failed, w.batch)
		}
		close(applyCh)
		<-applierDone // batches forwarded above are resolved (or failed) by now
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		wrapped := fmt.Errorf("%w before command committed", ErrClosed)
		if !closed {
			wrapped = fmt.Errorf("%w: %w", ErrHalted, cause)
		}
		for _, batch := range failed {
			for _, q := range batch {
				q.done <- proposeResult{err: wrapped}
			}
		}
		l.halt(cause)
	}

	for {
		// Fill the pipeline: displaced batches first (their commands are the
		// oldest), then fresh batches from the queue.
		for inflight < depth {
			var w work
			if len(retry) > 0 {
				w = retry[0]
				retry = retry[1:]
			} else if batch, wait := l.takeBatch(); batch != nil {
				w = work{batch: batch}
			} else {
				if wait > 0 {
					armBatchTimer(wait)
				}
				break
			}
			slot := nextSlot
			nextSlot++
			inflight++
			w.dispatchedAt = time.Now() // Agreement opens per dispatch, re-dispatches included
			l.m.batches.Inc()
			l.m.inflight.Add(1)
			go l.driveSlot(workerCtx, slot, w, results)
		}

		select {
		case <-ctx.Done():
			terminate(ctx.Err(), nil)
			return
		case err := <-applyFailed:
			terminate(err, nil)
			return
		case <-l.notify:
			continue // fill the remaining pipeline slots
		case <-batchC:
			batchC = nil // horizon expired: cut whatever is queued
			continue
		case res := <-results:
			inflight--
			l.m.inflight.Add(-1)
			if res.err != nil {
				terminate(res.err, res.w.batch)
				return
			}
			l.m.agreement.Observe(res.decidedAt.Sub(res.w.dispatchedAt))
			adapt(res.recovered && !res.fenced)
			res = receive(res, false)
			reorder[res.slot] = res
			l.m.reorder.Add(1)
			// Forward the contiguous decided prefix in slot order; slots
			// decided ahead of a still-running predecessor wait in the
			// buffer. The reorder buffer is epoch-agnostic: slots decided
			// under different lease epochs interleave through it unchanged,
			// which is what carries the pipeline cleanly across a takeover.
			for {
				r, ok := reorder[nextApply]
				if !ok {
					break
				}
				delete(reorder, nextApply)
				l.m.reorder.Add(-1)
				nextApply++
				applyCh <- r
			}
		}
	}
}

// applyLoop is the group's applier: decided slots arrive strictly in slot
// order and are recorded into the log, applied to the authoritative machine
// and resolved to their waiters here, off the dispatcher's critical path. The
// applier is the sole writer of the authoritative machine and the sole
// snapshot/truncation driver, which is the safety argument maybeSnapshot
// leans on. If recordSlot fails — a decided value that does not decode, or an
// own batch decided without one of its commands — the applier reports the
// cause to the dispatcher (which terminates the group) and fails every
// subsequent forwarded batch until the channel closes: once the in-order
// prefix has a gap, nothing behind it may apply.
func (l *Log) applyLoop(in <-chan slotOutcome, failedOut chan<- error, done chan<- struct{}) {
	defer close(done)
	var failed error
	for r := range in {
		if failed != nil {
			l.failBatchTerminal(r.w.batch, failed)
			continue
		}
		// CommitWait closes when the applier picks the slot up; Apply spans
		// the in-order commit step itself.
		l.m.commitWait.Observe(time.Since(r.decidedAt))
		applyStart := time.Now()
		won, err := l.recordSlot(r.slot, r.decided, r.w.batch, SlotDecider{Proposer: r.proposer, Epoch: r.epoch})
		if err != nil {
			failed = err
			failedOut <- err
			l.failBatchTerminal(r.w.batch, err)
			continue
		}
		l.m.apply.Observe(time.Since(applyStart))
		l.m.slots.Inc()
		if won {
			l.resolveBarriers(barriersOf(r.w.batch))
		}
		l.maybeSnapshot()
	}
}

// failBatchTerminal resolves a forwarded batch's waiters on the applier's
// failure path, with the same closed-vs-halted wrapping terminate uses.
func (l *Log) failBatchTerminal(batch []queued, cause error) {
	if len(batch) == 0 {
		return
	}
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	wrapped := fmt.Errorf("%w before command committed", ErrClosed)
	if !closed {
		wrapped = fmt.Errorf("%w: %w", ErrHalted, cause)
	}
	for _, q := range batch {
		q.done <- proposeResult{err: wrapped}
	}
}

// failWork resolves every waiter of a displaced batch with the given
// (retryable) error: the batch provably did not commit at any slot.
func (l *Log) failWork(w work, err error) {
	res := proposeResult{err: err}
	for _, q := range w.batch {
		q.done <- res
	}
}

// barriersOf extracts a batch's read barriers (the hot path iterates batches
// in place; only the barrier-resolution tail materializes a subset).
func barriersOf(batch []queued) []queued {
	var barriers []queued
	for _, q := range batch {
		if q.barrier {
			barriers = append(barriers, q)
		}
	}
	return barriers
}

// takeBatch is the adaptive group-commit drain: it absorbs the whole pending
// queue into one batch, up to MaxBatch commands or BatchBytes payload bytes
// (whichever binds first), along with every read barrier queued among or
// immediately after them. Barriers contribute nothing to the slot value, so
// they do not count against either budget — a burst of Reads must not shrink
// or displace a write batch. Riding the same slot is also the cheapest
// correct place for them: the read index then covers the batch's own writes
// too, which only makes the reads fresher.
//
// When a BatchWait horizon is configured and neither budget is full, a young
// queue is held back: takeBatch returns (nil, wait) with wait > 0, telling
// the dispatcher how long until the oldest queued command has waited the
// full horizon — batch size then tracks offered load instead of whatever
// fragment the scheduler delivered between two dispatcher wakeups. A queued
// barrier always cuts immediately: reads never wait on the horizon.
func (l *Log) takeBatch() ([]queued, time.Duration) {
	l.mu.Lock()
	if len(l.pending) == 0 {
		l.mu.Unlock()
		return nil, 0
	}
	n, cmds, size := 0, 0, 0
	full, barrier := false, false
	for n < len(l.pending) {
		q := &l.pending[n]
		if !q.barrier {
			if cmds == l.opts.MaxBatch {
				full = true
				break
			}
			if cmds > 0 && l.opts.BatchBytes > 0 && size+len(q.cmd) > l.opts.BatchBytes {
				full = true
				break
			}
			cmds++
			size += len(q.cmd)
		} else {
			barrier = true
		}
		n++
	}
	if !full && !barrier && l.opts.BatchWait > 0 {
		if wait := l.opts.BatchWait - time.Since(l.pending[0].enqueuedAt); wait > 0 {
			l.mu.Unlock()
			return nil, wait
		}
	}
	batch := l.pending[:n:n]
	l.pending = append([]queued(nil), l.pending[n:]...)
	l.mu.Unlock()
	// BatchWait closes here — once per command, at its first (and only) trip
	// through the queue; a batch later displaced and re-dispatched does not
	// pass this way again, so the stage is never double-counted.
	now := time.Now()
	for _, q := range batch {
		if !q.barrier {
			l.m.batchWait.Observe(now.Sub(q.enqueuedAt))
		}
	}
	if cmds > 0 {
		// The chosen batch size, in commands, on the unit-valued histogram.
		l.m.batchSize.Observe(time.Duration(cmds))
	}
	l.m.queueDepth.Add(-int64(n))
	return batch, 0
}

// halt permanently halts the log: the cause is recorded (subsequent Propose
// and Read calls return ErrHalted immediately) and every queued command is
// told. Setting failure and draining the queue happen in one critical
// section, so a submission either enqueues before the drain (and is drained)
// or observes the failure.
func (l *Log) halt(cause error) {
	l.mu.Lock()
	if l.failure == nil {
		l.failure = cause
	}
	pending := l.pending
	l.pending = nil
	closed := l.closed
	l.applied.Broadcast() // release ReadFrom waiters into the ErrHalted path
	l.mu.Unlock()
	l.m.queueDepth.Add(-int64(len(pending)))
	if closed {
		return // Close already owns the pending queue (pending is empty here)
	}
	for _, q := range pending {
		q.done <- proposeResult{err: fmt.Errorf("%w: %w", ErrHalted, cause)}
	}
}

// driveSlot is one pipeline worker: it owns slot end to end — agree on the
// batch's commands there from the current lease holder, learn the slot's
// fate through a recovery round if the attempt's outcome turns ambiguous
// (a timeout, or an epoch change fencing it mid-flight), wait for the
// replica learners — and reports exactly one outcome to the dispatcher. If a
// competing proposer's batch (or a recovery/fencing no-op) wins the slot,
// the dispatcher commits the winner at this slot and re-dispatches ours at a
// later one, preserving its internal order; the batch's read barriers, too,
// wait for our own slot, as only then is the read index known to cover every
// command decided before it.
func (l *Log) driveSlot(ctx context.Context, slot uint64, w work, results chan<- slotOutcome) {
	out := l.commitSlot(ctx, slot, w)
	out.decidedAt = time.Now()
	results <- out
}

func (l *Log) commitSlot(ctx context.Context, slot uint64, w work) slotOutcome {
	out := slotOutcome{slot: slot, w: w}
	// One flat, right-sized allocation per slot: the binary framing is built
	// straight from the batch, barriers skipped in place.
	blob := encodeBatchFrom(l.origin, w.batch)

	holder, epoch, epochCtx := l.leaseView()
	inst, err := l.cluster.NewInstance(slot)
	if err != nil {
		out.err = fmt.Errorf("smr slot %d: %w", slot, err)
		return out
	}
	// The attempt runs fenced by its epoch: a takeover cancels it mid-flight
	// so a deposed holder's proposal cannot decide after its epoch ended —
	// the recovery path below then re-runs the slot from the new holder,
	// whose phase-1 permission steal makes the fence durable in the memories.
	runCtx, stopFence := fenceContext(ctx, epochCtx)
	decided, err := l.runSlot(runCtx, inst, holder, blob)
	stopFence()
	inst.Close()
	if err == nil {
		out.decided, out.proposer, out.epoch = decided, holder, epoch
		return out
	}
	if ctx.Err() != nil {
		// Cancelled by Close or by another slot's halt — a shutdown, not an
		// ambiguous outcome; the dispatcher owns the waiters.
		out.err = err
		return out
	}
	// The slot timed out mid-agreement or was fenced by a takeover, so its
	// outcome is ambiguous: the batch may already be durable in the slot's
	// substrate (a phase-2 write can reach a quorum before the timeout or
	// fence fires), in which case retrying a different value at the same
	// slot could re-decide the old batch under a new batch's name, and
	// skipping the slot would commit a gap. Run a recovery round to learn
	// the slot's true fate instead of halting the group.
	out.fenced = epochCtx.Err() != nil
	decided, by, repoch, rerr := l.recoverSlot(ctx, slot, blob, holder)
	if rerr != nil {
		out.err = fmt.Errorf("smr slot %d: ambiguous outcome (%v) and recovery failed: %w", slot, err, rerr)
		return out
	}
	out.decided, out.proposer, out.epoch, out.recovered = decided, by, repoch, true
	return out
}

// recoveryAttempts bounds how many recovery rounds a worker runs for one
// ambiguous slot before giving up and halting the group. Each round pays at
// most one SlotTimeout, so a transient stall (a rebooting memory, a brief
// partition) that outlives the original attempt still resolves, while a
// permanent fault halts after a bounded delay.
const recoveryAttempts = 3

// epochRetryBound separately bounds recovery re-runs caused by further lease
// takeovers: a round fenced mid-flight by yet another epoch change is
// restarted under the new holder without consuming a recovery attempt (the
// fabric did not fail, leadership moved), but only this many times — epoch
// churn must not spin a worker forever.
const epochRetryBound = 8

// recoverSlot learns the fate of a slot whose agreement attempt timed out.
// It re-runs the slot from a recovery proposer — a replica other than the
// regular leader — with a no-op value: the protocol's phase-1 adoption then
// yields the original batch if it persisted in the slot's state (the no-op
// is refused), and decides the no-op otherwise, proving the original batch
// lost the slot so the dispatcher can retry it later without double-commit
// risk.
//
// How much of the original attempt the recovery round can see is
// per-backend. Protected Memory Paxos keeps the slot's state in the shared
// memories, which the recovery instance reuses: a persisted original batch
// IS adopted, and the recovery proposer's permission acquisition fences any
// still-in-flight write of the original attempt. The message-passing
// backends (Paxos, Fast Paxos) keep acceptor state inside the instance's
// nodes, which closing the failed instance discards — their recovery always
// decides the no-op and displaces the batch, never the refused fate. That
// is still exactly-once safe for every backend: a failed Propose never
// broadcast a decision (the protocols decide before disseminating), so no
// learner view can have observed the original attempt, and whatever the
// recovery round decides is the slot's first observable outcome.
//
// On a single-process group there is no other replica to propose from, so
// the original batch itself is re-proposed: re-deciding the identical value
// is always safe, and a success resolves the ambiguity just as well.
//
// Recovery is also the fencing path of a lease takeover: when the ambiguity
// came from an epoch change (rather than a plain timeout), the recovery
// proposer is the NEW lease holder, whose full phase 1 steals the write
// permission out from under the deposed holder's in-flight writes — after
// it, nothing can decide under the old epoch — and adopts the old batch if
// it had already persisted, so no committed entry is ever lost to a
// failover. Each attempt re-reads the lease, so a takeover mid-recovery
// moves the round to the newest holder.
func (l *Log) recoverSlot(ctx context.Context, slot uint64, originalBlob types.Value, originalProposer types.ProcID) (types.Value, types.ProcID, uint64, error) {
	var lastErr error
	epochRetries := 0
	for attempt := 0; attempt < recoveryAttempts; {
		if err := ctx.Err(); err != nil {
			return nil, types.NoProcess, 0, err
		}
		holder, epoch, epochCtx := l.leaseView()
		proposer := l.recoveryProposer(holder, originalProposer)
		blob, noop := originalBlob, false
		if proposer != originalProposer {
			blob = (wireBatch{}).encode()
			noop = true
		}
		inst, err := l.cluster.NewRecoveryInstance(slot, proposer)
		if err != nil {
			return nil, types.NoProcess, 0, err
		}
		runCtx, stopFence := fenceContext(ctx, epochCtx)
		decided, err := l.runSlot(runCtx, inst, proposer, blob)
		stopFence()
		inst.Close()
		if err == nil {
			refused := l.noteRecovery(decided, noop)
			l.traceEvent(proposer, trace.KindRecover,
				"slot %d recovered by %s under epoch %d (noop=%v)", slot, proposer, epoch, noop)
			if refused {
				l.traceEvent(proposer, trace.KindRefusedNoOp,
					"slot %d refused the recovery no-op: original batch had persisted", slot)
			}
			return decided, proposer, epoch, nil
		}
		if ctx.Err() != nil {
			return nil, types.NoProcess, 0, err
		}
		if epochCtx.Err() != nil && epochRetries < epochRetryBound {
			// Fenced by yet another takeover, not failed: re-run under the
			// new epoch's holder without consuming a recovery attempt.
			epochRetries++
			continue
		}
		attempt++
		lastErr = err
	}
	return nil, types.NoProcess, 0, lastErr
}

// recoveryProposer picks the process that re-runs an ambiguous slot: the
// current lease holder when it is not the proposer whose attempt went
// ambiguous (the post-takeover fencing case), else the first replica other
// than that proposer — either way the recovery proposal runs the full first
// phase (permission steal plus adoption of any durable value) instead of a
// skip-phase-1 fast path. A single-process group falls back to the original
// proposer.
func (l *Log) recoveryProposer(holder, original types.ProcID) types.ProcID {
	if holder != types.NoProcess && holder != original {
		return holder
	}
	for _, p := range l.cluster.Procs {
		if p != original {
			return p
		}
	}
	return original
}

// noteRecovery bumps the recovery counters: every recovered slot counts, and
// a no-op that lost to the (durable) original batch additionally counts as
// refused — which is also what it reports, so the caller can trace the
// refusal as its own event.
func (l *Log) noteRecovery(decided types.Value, noop bool) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Recovered++
	if !noop {
		return false // same-value re-propose: the fate was forced, not read
	}
	if origin, err := peekOrigin(decided); err == nil && origin == l.origin {
		l.stats.Refused++
		return true
	}
	return false
}

// resolveBarriers answers the batch's read barriers at the just-established
// read index: every command committed before the barrier was enqueued has
// been applied to the authoritative machine by now.
func (l *Log) resolveBarriers(barriers []queued) {
	if len(barriers) == 0 {
		return
	}
	l.mu.Lock()
	readIndex := l.firstIndex + uint64(len(l.entries))
	results := make([]proposeResult, len(barriers))
	for i, q := range barriers {
		if q.bare {
			// Pure barrier (Log.Barrier): the established read index is the
			// whole answer.
			results[i] = proposeResult{index: readIndex}
		} else if q.replica == types.NoProcess {
			resp, err := querySM(l.sm, q.query)
			results[i] = proposeResult{index: readIndex, resp: resp, err: err}
		} else {
			// Replica-served read: hand back only the read index; ReadFrom
			// waits for the replica's view to reach it before querying.
			results[i] = proposeResult{index: readIndex}
		}
	}
	l.mu.Unlock()
	for i, q := range barriers {
		q.done <- results[i]
	}
}

// runSlot drives one consensus instance over the long-lived cluster: the
// given process proposes (the cluster leader on the regular path, another
// replica on the recovery path) and every other process learns. The caller
// owns the instance's lifecycle.
func (l *Log) runSlot(ctx context.Context, inst *core.Instance, proposer types.ProcID, blob types.Value) (types.Value, error) {
	slotCtx, cancel := context.WithTimeout(ctx, l.opts.SlotTimeout)
	defer cancel()

	res, err := inst.Proposer(proposer).Propose(slotCtx, blob)
	if err != nil {
		return nil, fmt.Errorf("smr slot %d: %w", inst.Slot, err)
	}
	l.recordReplica(proposer, inst.Slot, res.Value)
	l.awaitLearners(ctx, inst, proposer)
	return res.Value, nil
}

// awaitLearners waits — in parallel, under one shared budget — for the
// non-proposing replicas to learn the slot's decision, so every replica's
// log advances in near lock step. A replica that misses its window (for
// example a crashed process) is marked lagging and never waited for again:
// otherwise a single crashed replica — the very fault the protocols tolerate
// — would cost the full catch-up timeout on EVERY subsequent slot. Lagging
// replicas show the gap in ReplicaLog and catch up off the hot path — from
// the next snapshot once their missed slots are truncated.
func (l *Log) awaitLearners(ctx context.Context, inst *core.Instance, proposer types.ProcID) {
	catchUp, cancel := context.WithTimeout(ctx, l.opts.ReplicaCatchUp)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range l.cluster.Procs {
		if p == proposer || l.isLagging(p) {
			continue
		}
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			v, err := inst.Proposer(p).WaitDecision(catchUp)
			if err != nil {
				l.markLagging(p)
				return
			}
			l.recordReplica(p, inst.Slot, v)
		}(p)
	}
	wg.Wait()
}

func (l *Log) isLagging(p types.ProcID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lagging[p]
}

func (l *Log) markLagging(p types.ProcID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lagging[p] = true
}

// recordReplica stores the slot value replica p learned and advances p's
// state machine through every consecutively-learned slot. The decided value
// is retained as handed in — the protocol substrate returns a private copy
// per read — and the entries applied to the view alias it, per the
// StateMachine read-only contract on Entry.Cmd.
func (l *Log) recordReplica(p types.ProcID, slot uint64, v types.Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	view := l.replicas[p]
	view.learned[slot] = v
	b := borrowBatch()
	defer releaseBatch(b)
	for {
		raw, ok := view.learned[view.nextSlot]
		if !ok {
			return
		}
		if err := decodeBatchInto(b, raw); err != nil {
			return // a decided value must decode; leave the view stuck rather than skip
		}
		for _, cmd := range b.Cmds {
			// Application-level rejections are deterministic: every view
			// rejects the same entries the authoritative machine rejected.
			view.sm.Apply(Entry{Index: view.nextIndex, Slot: view.nextSlot, Cmd: cmd})
			view.nextIndex++
		}
		view.nextSlot++
		l.applied.Broadcast() // wake ReadFrom waiters on this view
	}
}

// recordSlot appends the decided batch to the committed log, applies it to
// the authoritative state machine, records who decided the slot under which
// epoch, and resolves the waiters whose commands it contains (batch is the
// dispatched batch when the slot is ours, empty or stripped otherwise;
// barriers in it are skipped here and resolved by the caller). It reports
// whether the proposed batch won the slot.
//
// Called only from the applier goroutine. The decided value is retained
// as-is — the protocol substrate hands back a private copy — and the log's
// entries alias subslices of it: decided values are immutable, the slot
// window retains the backing array, and StateMachine.Apply/OnCommit must
// treat Entry.Cmd as read-only. Get/Entries still clone outward.
func (l *Log) recordSlot(slot uint64, decided types.Value, batch []queued, by SlotDecider) (bool, error) {
	b := borrowBatch()
	defer releaseBatch(b)
	if err := decodeBatchInto(b, decided); err != nil {
		return false, fmt.Errorf("smr slot %d: %w", slot, err)
	}

	l.mu.Lock()
	l.slots = append(l.slots, decided)
	l.deciders[slot] = by
	l.sinceSlots++
	first := len(l.entries)
	results := make([]proposeResult, 0, len(b.Cmds))
	for _, cmd := range b.Cmds {
		e := Entry{Index: l.firstIndex + uint64(len(l.entries)), Slot: slot, Cmd: cmd}
		resp, applyErr := l.sm.Apply(e)
		e.Rejected = applyErr != nil
		l.entries = append(l.entries, e)
		l.sinceSnap++
		results = append(results, proposeResult{index: e.Index, resp: resp, err: applyErr})
	}
	// The tail just appended is stable off-lock: only the applier (this
	// goroutine) appends or truncates entries, and truncation swaps the
	// slice header without touching the old array.
	committed := l.entries[first:]
	onCommit := l.opts.OnCommit
	l.mu.Unlock()
	l.m.committed.Add(uint64(len(b.Cmds)))

	if onCommit != nil {
		for _, e := range committed {
			onCommit(e)
		}
	}

	won := b.Origin == l.origin
	if won {
		if l.applyByID == nil {
			l.applyByID = make(map[uint64]int, len(b.IDs))
		}
		byID := l.applyByID // command id -> results offset; applier-only scratch
		clear(byID)
		for i, id := range b.IDs {
			byID[id] = i
		}
		// Validate the whole batch before resolving any waiter: each done
		// channel holds exactly one result, so a mid-loop error after some
		// sends would leave the terminate path double-sending into full
		// buffers (a committer deadlock). Either every command resolves
		// here or none does and the error path owns them all.
		resolved := make([]proposeResult, 0, len(batch))
		for _, q := range batch {
			if q.barrier {
				continue
			}
			ri, ok := byID[q.id]
			if !ok {
				return false, fmt.Errorf("smr slot %d: own batch decided without command %d", slot, q.id)
			}
			resolved = append(resolved, results[ri])
		}
		now := time.Now()
		i := 0
		for _, q := range batch {
			if q.barrier {
				continue
			}
			l.m.e2e.Observe(now.Sub(q.enqueuedAt))
			q.done <- resolved[i]
			i++
		}
	}
	return won, nil
}

// maybeSnapshot runs the committer's snapshot-and-truncate step once
// SnapshotInterval entries have been applied since the last one: serialize
// the authoritative machine, truncate the decided prefix, release every
// truncated slot's memory regions, and restore any replica view that had
// fallen behind the truncation point from the snapshot (it can never replay
// the released slots). A restored replica is also cleared from the lagging
// set: it is current again as of the snapshot, so the committer resumes
// waiting for its learner — a replica that is genuinely dead simply re-lags
// after one catch-up window, costing at most one window per interval.
//
// Called only from the committer's applier goroutine — and that it runs
// there, not on the dispatcher, is the point of the split: an O(state)
// snapshot no longer freezes batch cutting or slot dispatch, it only delays
// subsequent applies of this one group. The O(state) work — serializing the
// authoritative machine, deserializing replacement machines for lagging
// views, releasing the dead slots' regions — all runs OUTSIDE l.mu, so reads
// and submissions proceed during it; the lock covers only the truncation
// bookkeeping and the pointer swaps that install restored views. That is
// safe because the applier is the sole writer of the authoritative machine
// (and the sole appender/truncator of the committed log), and the pipeline
// workers that advance view progress concurrently (their learner goroutines
// record decisions of in-flight slots) can never move a behind view across
// the truncation point: its next slot's learned value was deleted by the
// truncation, workers only ever record slots above the applied prefix, and
// both the deletion and the restored-view swap happen under l.mu. Released
// regions are never read again once truncation is decided — every released
// slot is below the applied prefix, and in-flight slots are all above it.
func (l *Log) maybeSnapshot() {
	l.mu.Lock()
	interval := l.opts.SnapshotInterval
	// Slots count toward the interval too: a read-heavy group commits no-op
	// barrier slots that apply nothing, and without this trigger their
	// regions and recorded values would accumulate forever.
	due := interval >= 0 && (l.sinceSnap >= interval || l.sinceSlots >= interval) && len(l.slots) > 0
	if due && len(l.entries) == 0 {
		// Every retained slot is a no-op: no state changed, so this is pure
		// bookkeeping truncation — no snapshot, no restores. Only views
		// inside this all-no-op window may fast-forward over it; a view
		// still behind an EARLIER truncation (a failed Restore left it
		// there) misses real commands and must keep waiting for a snapshot.
		windowStart := l.firstSlot
		releaseFrom, lastSlot := l.truncateLocked()
		for p, view := range l.replicas {
			if view.nextSlot >= windowStart && view.nextSlot < l.firstSlot {
				view.nextSlot = l.firstSlot
				delete(l.lagging, p)
				l.applied.Broadcast()
			}
		}
		l.mu.Unlock()
		l.releaseSlots(releaseFrom, lastSlot)
		return
	}
	l.mu.Unlock()
	if !due {
		return
	}
	data, err := l.sm.Snapshot()
	if err != nil {
		// Keep the log intact, surface the failure, and reset the counters
		// so the retry costs one O(state) attempt per interval, not one per
		// slot on the hot committer path.
		l.mu.Lock()
		l.snapFailures++
		l.snapErr = err
		l.sinceSnap = 0
		l.sinceSlots = 0
		l.mu.Unlock()
		return
	}

	// Truncation bookkeeping: slice/map surgery only.
	l.mu.Lock()
	holder := l.holder
	lastIndex := l.firstIndex + uint64(len(l.entries)) - 1
	releaseFrom, lastSlot := l.truncateLocked()
	l.snap = &snapState{data: data, lastIndex: lastIndex, lastSlot: lastSlot}
	l.snapCount++
	l.snapErr = nil
	var behind []types.ProcID
	for p, view := range l.replicas {
		if view.nextSlot < l.firstSlot {
			behind = append(behind, p)
		}
	}
	l.mu.Unlock()

	l.traceEvent(holder, trace.KindSnapshot,
		"snapshot through index %d; slots ≤ %d truncated", lastIndex, lastSlot)
	l.releaseSlots(releaseFrom, lastSlot)

	// Lagging views: build a restored machine off-lock, install it with a
	// pointer swap. StaleRead keeps serving the old (stale) machine until
	// the swap, which is exactly its contract.
	for _, p := range behind {
		fresh := l.opts.NewSM()
		if err := fresh.Restore(data, lastIndex); err != nil {
			continue // the view stays behind; the next snapshot retries
		}
		l.mu.Lock()
		view := l.replicas[p]
		view.sm = fresh
		view.nextSlot = l.firstSlot
		view.nextIndex = l.firstIndex
		view.restores++
		delete(l.lagging, p)
		l.applied.Broadcast() // a restore can satisfy ReadFrom waiters too
		l.mu.Unlock()
	}
}

// truncateLocked drops the retained log prefix — entries, slot values, the
// interval counters and every view's learned values for the dropped slots —
// and returns the released slot range for the caller to free off-lock via
// releaseSlots. View progress (nextSlot/nextIndex/machines) is NOT touched:
// each truncation path decides for itself how a behind view catches up.
// Callers must hold l.mu.
//
//smrlint:holds mu
func (l *Log) truncateLocked() (releaseFrom, lastSlot uint64) {
	releaseFrom = l.firstSlot
	lastSlot = l.firstSlot + uint64(len(l.slots)) - 1
	l.sinceSnap = 0
	l.sinceSlots = 0
	l.firstIndex += uint64(len(l.entries))
	l.entries = nil
	l.firstSlot = lastSlot + 1
	l.slots = nil
	for slot := range l.deciders {
		if slot < l.firstSlot {
			delete(l.deciders, slot)
		}
	}
	for _, view := range l.replicas {
		for slot := range view.learned {
			if slot < l.firstSlot {
				delete(view.learned, slot)
			}
		}
	}
	return releaseFrom, lastSlot
}

// releaseSlots frees the truncated slots' memory regions. It runs without
// l.mu: truncation is already decided, the regions are never read again, and
// memsim has its own locking.
func (l *Log) releaseSlots(from, through uint64) {
	for slot := from; slot <= through; slot++ {
		l.cluster.ReleaseInstance(slot)
	}
}
