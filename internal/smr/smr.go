// Package smr builds a replicated state-machine log on top of the single-shot
// agreement protocols: one long-lived cluster serves an unbounded sequence of
// consensus instances (slots), one decided batch of commands per slot.
//
// The paper's protocols decide a single value per deployment; serving real
// traffic needs a log of decisions. A Log owns one core.Cluster and
// multiplexes slots over its shared memories and network via
// core.Cluster.NewInstance, so committing entry k+1 reuses every substrate
// that committed entry k — no per-entry cluster construction, no per-entry
// memory pools, no per-entry network goroutines.
//
// Commands submitted concurrently are batched: a committer goroutine drains
// the queue and agrees on many commands as one slot value, so slot throughput
// amortizes over batch size while each command still gets its own log index.
// Batches preserve arrival order, which gives per-client FIFO: a client that
// submits its commands in order observes them committed in order.
package smr

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/core"
	"rdmaagreement/internal/types"
)

// Options configure a Log.
type Options struct {
	// Protocol is the agreement protocol run per slot. It must be one of the
	// slot-capable protocols (Protected Memory Paxos, Paxos, Fast Paxos).
	// Empty means Protected Memory Paxos, the paper's 2-deciding crash
	// algorithm.
	Protocol core.Protocol
	// Cluster describes the long-lived cluster (topology, failure bounds,
	// timing).
	Cluster core.Options
	// MaxBatch bounds how many queued commands are agreed as one slot value.
	// Zero means 64.
	MaxBatch int
	// SlotTimeout bounds the agreement of one slot. Zero means 30s.
	SlotTimeout time.Duration
	// ReplicaCatchUp bounds how long the committer waits for non-proposing
	// replicas to learn an already-made decision before moving to the next
	// slot (their learner keeps the value; the wait only orders the replica
	// bookkeeping). Zero means 5s.
	ReplicaCatchUp time.Duration
	// OnCommit, if set, is called once per committed entry in index order
	// from the committer goroutine. Callbacks must be fast; they serialize
	// the log.
	OnCommit func(Entry)
}

func (o *Options) applyDefaults() {
	if o.Protocol == "" {
		o.Protocol = core.ProtocolProtectedMemoryPaxos
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.SlotTimeout <= 0 {
		o.SlotTimeout = 30 * time.Second
	}
	if o.ReplicaCatchUp <= 0 {
		o.ReplicaCatchUp = 5 * time.Second
	}
}

// Entry is one committed command.
type Entry struct {
	// Index is the command's position in the replicated log (0-based,
	// gap-free).
	Index uint64
	// Slot is the consensus instance whose decided batch contained the
	// command.
	Slot uint64
	// Cmd is the command payload.
	Cmd []byte
}

// wireBatch is the value agreed on per slot: an ordered batch of commands
// tagged with their submitting log's identity, so a proposer can tell whether
// the decided batch is its own.
//
// With today's single committer per group the decided batch is always the
// proposed one; the origin/ID plumbing is the safety net for the multi-
// proposer setups the slots already support (core.Instance allows concurrent
// proposers, and per-shard leases are a ROADMAP follow-up): a slot lost to a
// competitor must commit the competitor's batch and retry ours, never
// mislabel it.
type wireBatch struct {
	Origin uint64   `json:"origin"`
	IDs    []uint64 `json:"ids"`
	Cmds   [][]byte `json:"cmds"`
}

func (b wireBatch) encode() (types.Value, error) {
	out, err := json.Marshal(b)
	if err != nil {
		return nil, fmt.Errorf("encode batch: %w", err)
	}
	return out, nil
}

func decodeBatch(raw types.Value) (wireBatch, error) {
	var b wireBatch
	if err := json.Unmarshal(raw, &b); err != nil {
		return wireBatch{}, fmt.Errorf("decode batch: %w", err)
	}
	if len(b.IDs) != len(b.Cmds) {
		return wireBatch{}, fmt.Errorf("decode batch: %d ids for %d commands", len(b.IDs), len(b.Cmds))
	}
	return b, nil
}

// queued is one command waiting for a slot.
type queued struct {
	id   uint64
	cmd  []byte
	done chan applyResult
}

type applyResult struct {
	index uint64
	err   error
}

// Log is a sharded-log group: one long-lived cluster plus the committer that
// multiplexes slots over it. All methods are safe for concurrent use.
type Log struct {
	opts    Options
	cluster *core.Cluster
	origin  uint64

	mu       sync.Mutex
	pending  []queued
	nextID   uint64
	entries  []Entry
	slots    []types.Value                           // decided value per slot, in slot order
	replicas map[types.ProcID]map[uint64]types.Value // slot values learned per replica
	lagging  map[types.ProcID]bool                   // replicas that missed a catch-up window
	closed   bool
	failure  error // set when the committer halts on an ambiguous slot

	notify chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// originCounter gives each Log a process-wide unique origin tag for its
// batches.
var originCounter struct {
	mu sync.Mutex
	n  uint64
}

func nextOrigin() uint64 {
	originCounter.mu.Lock()
	defer originCounter.mu.Unlock()
	originCounter.n++
	return originCounter.n
}

// NewLog builds the long-lived cluster and starts the committer.
func NewLog(opts Options) (*Log, error) {
	opts.applyDefaults()
	// The log drives only per-slot instances; skip the cluster's single-shot
	// proposer nodes so a group does not carry idle base nodes for its
	// lifetime.
	opts.Cluster.InstancesOnly = true
	cluster, err := core.NewCluster(opts.Protocol, opts.Cluster)
	if err != nil {
		return nil, fmt.Errorf("smr log: %w", err)
	}
	// Fail fast if the protocol cannot multiplex slots: build and discard a
	// probe instance rather than failing on the first Apply.
	probe, err := cluster.NewInstance(0)
	if err != nil {
		cluster.Close()
		return nil, fmt.Errorf("smr log: %w", err)
	}
	probe.Close()

	ctx, cancel := context.WithCancel(context.Background())
	l := &Log{
		opts:     opts,
		cluster:  cluster,
		origin:   nextOrigin(),
		replicas: make(map[types.ProcID]map[uint64]types.Value, len(cluster.Procs)),
		lagging:  make(map[types.ProcID]bool),
		notify:   make(chan struct{}, 1),
		cancel:   cancel,
	}
	for _, p := range cluster.Procs {
		l.replicas[p] = make(map[uint64]types.Value)
	}
	l.wg.Add(1)
	go l.commitLoop(ctx)
	return l, nil
}

// Cluster exposes the underlying long-lived cluster (for fault injection in
// tests and experiments).
func (l *Log) Cluster() *core.Cluster { return l.cluster }

// Close stops the committer and the cluster. Pending commands fail with an
// error.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	pending := l.pending
	l.pending = nil
	l.mu.Unlock()

	l.cancel()
	l.wg.Wait()
	for _, q := range pending {
		q.done <- applyResult{err: fmt.Errorf("smr log: closed before command committed")}
	}
	l.cluster.Close()
}

// Apply submits one command and blocks until it is committed, returning its
// log index. Commands submitted by one goroutine in sequence are committed in
// that sequence (per-client FIFO). If ctx expires first, Apply returns the
// context error, but the command may still commit later (it cannot be
// withdrawn once proposed).
func (l *Log) Apply(ctx context.Context, cmd []byte) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("smr log: closed")
	}
	if l.failure != nil {
		err := l.failure
		l.mu.Unlock()
		return 0, fmt.Errorf("smr log halted: %w", err)
	}
	l.nextID++
	q := queued{id: l.nextID, cmd: append([]byte(nil), cmd...), done: make(chan applyResult, 1)}
	l.pending = append(l.pending, q)
	l.mu.Unlock()

	select {
	case l.notify <- struct{}{}:
	default:
	}

	select {
	case res := <-q.done:
		return res.index, res.err
	case <-ctx.Done():
		return 0, fmt.Errorf("smr apply: %w", ctx.Err())
	}
}

// Len returns the number of committed commands.
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// Get returns the committed entry at index i.
func (l *Log) Get(i uint64) (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i >= uint64(len(l.entries)) {
		return Entry{}, false
	}
	return cloneEntry(l.entries[i]), true
}

// Entries returns a copy of the committed suffix starting at index from —
// the catch-up read used by learners that fell behind.
func (l *Log) Entries(from uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from >= uint64(len(l.entries)) {
		return nil
	}
	out := make([]Entry, 0, uint64(len(l.entries))-from)
	for _, e := range l.entries[from:] {
		out = append(out, cloneEntry(e))
	}
	return out
}

func cloneEntry(e Entry) Entry {
	return Entry{Index: e.Index, Slot: e.Slot, Cmd: append([]byte(nil), e.Cmd...)}
}

// Slots returns the number of decided slots.
func (l *Log) Slots() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.slots))
}

// ReplicaLog returns the command sequence process p has learned, by decoding
// the slot values recorded at p in slot order. The boolean reports whether
// p's view is gap-free through every decided slot; a lagging replica (one
// that missed a decide broadcast within the catch-up bound) yields false.
func (l *Log) ReplicaLog(p types.ProcID) ([][]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	learned, ok := l.replicas[p]
	if !ok {
		return nil, false
	}
	var out [][]byte
	for slot := uint64(0); slot < uint64(len(l.slots)); slot++ {
		raw, ok := learned[slot]
		if !ok {
			return out, false
		}
		b, err := decodeBatch(raw)
		if err != nil {
			return out, false
		}
		for _, cmd := range b.Cmds {
			out = append(out, append([]byte(nil), cmd...))
		}
	}
	return out, true
}

// commitLoop is the committer: it drains the queue into batches and agrees on
// one batch per slot.
func (l *Log) commitLoop(ctx context.Context) {
	defer l.wg.Done()
	for {
		batch := l.takeBatch()
		if batch == nil {
			select {
			case <-ctx.Done():
				l.fail(ctx.Err())
				return
			case <-l.notify:
				continue
			}
		}
		if err := l.commitBatch(ctx, batch); err != nil {
			// The failed slot's outcome is ambiguous: the batch's value may
			// already be durable in the slot's region (a phase-2 write can
			// reach a quorum before the timeout fires), in which case a
			// retry at the same slot would re-decide the old batch under a
			// new batch's name. The log can neither retry the slot with a
			// different batch nor skip it without risking a gap, so the
			// group halts; recovery (re-reading the slot to learn its fate)
			// is a ROADMAP follow-up.
			for _, q := range batch {
				q.done <- applyResult{err: err}
			}
			l.fail(err)
			return
		}
	}
}

// takeBatch removes up to MaxBatch commands from the queue.
func (l *Log) takeBatch() []queued {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return nil
	}
	n := len(l.pending)
	if n > l.opts.MaxBatch {
		n = l.opts.MaxBatch
	}
	batch := l.pending[:n:n]
	l.pending = append([]queued(nil), l.pending[n:]...)
	return batch
}

// fail permanently halts the log: the cause is recorded (subsequent Apply
// calls error immediately) and every queued command is told. Setting failure
// and draining the queue happen in one critical section, so an Apply either
// enqueues before the drain (and is drained) or observes the failure.
func (l *Log) fail(cause error) {
	l.mu.Lock()
	if l.failure == nil {
		l.failure = cause
	}
	pending := l.pending
	l.pending = nil
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return // Close already owns the pending queue
	}
	for _, q := range pending {
		q.done <- applyResult{err: fmt.Errorf("smr log halted: %w", cause)}
	}
}

// commitBatch agrees on the batch in the next slot. If a competing proposer's
// batch wins the slot instead, the foreign batch is committed at this slot
// and ours is retried at the next one, preserving its internal order.
func (l *Log) commitBatch(ctx context.Context, batch []queued) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("smr commit: %w", err)
		}
		proposal := wireBatch{Origin: l.origin, IDs: make([]uint64, 0, len(batch)), Cmds: make([][]byte, 0, len(batch))}
		for _, q := range batch {
			proposal.IDs = append(proposal.IDs, q.id)
			proposal.Cmds = append(proposal.Cmds, q.cmd)
		}
		blob, err := proposal.encode()
		if err != nil {
			return err
		}

		l.mu.Lock()
		slot := uint64(len(l.slots))
		l.mu.Unlock()

		decided, err := l.runSlot(ctx, slot, blob)
		if err != nil {
			return err
		}
		won, err := l.recordSlot(slot, decided, batch)
		if err != nil {
			return err
		}
		if won {
			return nil
		}
		// A foreign batch occupied the slot; retry ours at the next slot.
	}
}

// runSlot drives one consensus instance over the long-lived cluster: the
// leader process proposes, every other process learns, and the instance's
// live resources are released before returning.
func (l *Log) runSlot(ctx context.Context, slot uint64, blob types.Value) (types.Value, error) {
	slotCtx, cancel := context.WithTimeout(ctx, l.opts.SlotTimeout)
	defer cancel()

	inst, err := l.cluster.NewInstance(slot)
	if err != nil {
		return nil, fmt.Errorf("smr slot %d: %w", slot, err)
	}
	defer inst.Close()

	leader := l.cluster.Leader()
	res, err := inst.Proposer(leader).Propose(slotCtx, blob)
	if err != nil {
		return nil, fmt.Errorf("smr slot %d: %w", slot, err)
	}
	l.recordReplica(leader, slot, res.Value)

	// Wait — in parallel, under one shared budget — for the remaining
	// replicas to learn the decision, so every replica's log advances in
	// lock step. A replica that misses its window (for example a crashed
	// process) is marked lagging and never waited for again: otherwise a
	// single crashed replica — the very fault the protocols tolerate —
	// would cost the full catch-up timeout on EVERY subsequent slot.
	// Lagging replicas show the gap in ReplicaLog and catch up off the hot
	// path via Entries().
	catchUp, cancelCatchUp := context.WithTimeout(ctx, l.opts.ReplicaCatchUp)
	defer cancelCatchUp()
	var wg sync.WaitGroup
	for _, p := range l.cluster.Procs {
		if p == leader || l.isLagging(p) {
			continue
		}
		wg.Add(1)
		go func(p types.ProcID) {
			defer wg.Done()
			v, err := inst.Proposer(p).WaitDecision(catchUp)
			if err != nil {
				l.markLagging(p)
				return
			}
			l.recordReplica(p, slot, v)
		}(p)
	}
	wg.Wait()
	return res.Value, nil
}

func (l *Log) isLagging(p types.ProcID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lagging[p]
}

func (l *Log) markLagging(p types.ProcID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lagging[p] = true
}

func (l *Log) recordReplica(p types.ProcID, slot uint64, v types.Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.replicas[p][slot] = v.Clone()
}

// recordSlot appends the decided batch to the committed log and resolves the
// waiters whose commands it contains. It reports whether the proposed batch
// won the slot.
func (l *Log) recordSlot(slot uint64, decided types.Value, batch []queued) (bool, error) {
	b, err := decodeBatch(decided)
	if err != nil {
		return false, fmt.Errorf("smr slot %d: %w", slot, err)
	}

	l.mu.Lock()
	l.slots = append(l.slots, decided.Clone())
	committed := make([]Entry, 0, len(b.Cmds))
	for _, cmd := range b.Cmds {
		e := Entry{Index: uint64(len(l.entries)), Slot: slot, Cmd: append([]byte(nil), cmd...)}
		l.entries = append(l.entries, e)
		committed = append(committed, e)
	}
	onCommit := l.opts.OnCommit
	l.mu.Unlock()

	if onCommit != nil {
		for _, e := range committed {
			onCommit(cloneEntry(e))
		}
	}

	won := b.Origin == l.origin
	if won {
		ids := make(map[uint64]uint64, len(b.IDs)) // command id -> entry index
		for i, id := range b.IDs {
			ids[id] = committed[i].Index
		}
		// Validate the whole batch before resolving any waiter: each done
		// channel holds exactly one result, so a mid-loop error after some
		// sends would leave commitLoop's error path double-sending into
		// full buffers (a committer deadlock). Either every command
		// resolves here or none does and the error path owns them all.
		results := make([]applyResult, len(batch))
		for i, q := range batch {
			index, ok := ids[q.id]
			if !ok {
				return false, fmt.Errorf("smr slot %d: own batch decided without command %d", slot, q.id)
			}
			results[i] = applyResult{index: index}
		}
		for i, q := range batch {
			q.done <- results[i]
		}
	}
	return won, nil
}
