package paxos

import (
	"context"
	"fmt"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/types"
)

// NetTransport is the plain message-passing transport over the simulated
// network. Messages travel under a configurable kind (so several protocol
// instances can share one router) and carry the sender's delay stamp.
type NetTransport struct {
	ep   *netsim.Endpoint
	in   <-chan netsim.Message
	kind string
}

var _ Transport = (*NetTransport)(nil)

// NewNetTransport builds a transport that sends with the given message kind
// and receives from the given router subscription.
func NewNetTransport(ep *netsim.Endpoint, in <-chan netsim.Message, kind string) *NetTransport {
	return &NetTransport{ep: ep, in: in, kind: kind}
}

// Send implements Transport.
func (t *NetTransport) Send(ctx context.Context, to types.ProcID, payload []byte, stamp delayclock.Stamp) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("net transport send: %w", err)
	}
	return t.ep.Send(to, t.kind, payload, stamp)
}

// Broadcast implements Transport.
func (t *NetTransport) Broadcast(ctx context.Context, payload []byte, stamp delayclock.Stamp) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("net transport broadcast: %w", err)
	}
	return t.ep.Broadcast(t.kind, payload, stamp)
}

// Receive implements Transport.
func (t *NetTransport) Receive(ctx context.Context) (types.ProcID, []byte, delayclock.Stamp, error) {
	select {
	case msg := <-t.in:
		return msg.From, msg.Payload, msg.Stamp, nil
	case <-ctx.Done():
		return types.NoProcess, nil, 0, fmt.Errorf("net transport receive: %w", ctx.Err())
	}
}
