// Package paxos implements single-decree Paxos for the crash-failure model
// with a pluggable message transport.
//
// The same implementation serves three roles in the repository:
//
//   - over the simulated network (NetTransport) it is the classic
//     message-passing baseline (4 delays, n ≥ 2f_P+1);
//   - over the trusted T-send/T-receive transport (package robust) it becomes
//     the crash-tolerant algorithm "A" that the Robust Backup construction
//     hardens against Byzantine failures;
//   - wrapped by Preferential Paxos it is the backup path of Fast & Robust.
//
// The protocol is leader based: a process proposes only while the Ω oracle
// reports it as leader. Safety (agreement, validity) holds regardless of the
// oracle's output; the oracle is only needed for liveness, as usual.
package paxos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

// Kind identifies a Paxos message type.
type Kind string

// Paxos message kinds.
const (
	KindPrepare  Kind = "prepare"
	KindPromise  Kind = "promise"
	KindAccept   Kind = "accept"
	KindAccepted Kind = "accepted"
	KindNack     Kind = "nack"
	KindDecide   Kind = "decide"
)

// Message is the wire format of every Paxos message.
type Message struct {
	Kind           Kind                 `json:"kind"`
	From           types.ProcID         `json:"from"`
	Ballot         types.ProposalNumber `json:"ballot"`
	AcceptedBallot types.ProposalNumber `json:"accepted_ballot,omitempty"`
	Value          types.Value          `json:"value,omitempty"`
}

// Encode serializes a message.
func (m Message) Encode() ([]byte, error) {
	out, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("encode paxos message: %w", err)
	}
	return out, nil
}

// DecodeMessage parses a message.
func DecodeMessage(payload []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return Message{}, fmt.Errorf("decode paxos message: %w", err)
	}
	return m, nil
}

// Transport abstracts how Paxos messages travel between processes. Both the
// plain network transport and the Byzantine-hardened trusted transport
// implement it.
type Transport interface {
	// Send delivers payload to one process.
	Send(ctx context.Context, to types.ProcID, payload []byte, stamp delayclock.Stamp) error
	// Broadcast delivers payload to every process (including the sender).
	Broadcast(ctx context.Context, payload []byte, stamp delayclock.Stamp) error
	// Receive blocks for the next incoming payload.
	Receive(ctx context.Context) (from types.ProcID, payload []byte, stamp delayclock.Stamp, err error)
}

// Config configures a Node.
type Config struct {
	// Self is this process.
	Self types.ProcID
	// Procs is the full process set.
	Procs []types.ProcID
	// Oracle is the Ω leader oracle used for liveness. Nil means the process
	// considers itself leader whenever it proposes.
	Oracle omega.Oracle
	// RoundTimeout bounds how long a proposer waits for a quorum of
	// responses before retrying with a higher ballot. Zero means 50ms.
	RoundTimeout time.Duration
	// Clock is the causal delay clock; nil allocates a private one.
	Clock *delayclock.Clock
	// Recorder receives trace events; may be nil.
	Recorder *trace.Recorder
}

func (c *Config) applyDefaults() {
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = &delayclock.Clock{}
	}
}

// Node is one Paxos participant: proposer (when leader), acceptor and
// learner.
type Node struct {
	cfg Config
	tr  Transport

	mu           sync.Mutex
	minProposal  types.ProposalNumber
	acceptedProp types.ProposalNumber
	acceptedVal  types.Value
	highestSeen  types.ProposalNumber
	decided      types.Value
	hasDecided   bool

	decidedCh chan struct{}
	responses chan Message

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// NewNode creates a Paxos node over the given transport.
func NewNode(cfg Config, tr Transport) *Node {
	cfg.applyDefaults()
	return &Node{
		cfg:       cfg,
		tr:        tr,
		decidedCh: make(chan struct{}),
		responses: make(chan Message, 4*len(cfg.Procs)+16),
	}
}

// Start launches the node's message loop. Stop terminates it.
func (n *Node) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	n.cancel = cancel
	n.wg.Add(1)
	go n.run(ctx)
}

// Stop terminates the message loop and waits for it to exit.
func (n *Node) Stop() {
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
}

// Clock returns the node's delay clock.
func (n *Node) Clock() *delayclock.Clock { return n.cfg.Clock }

// Decided returns the decided value, if any.
func (n *Node) Decided() (types.Value, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.decided.Clone(), n.hasDecided
}

// WaitDecision blocks until the node learns a decision or ctx is cancelled.
func (n *Node) WaitDecision(ctx context.Context) (types.Value, error) {
	select {
	case <-n.decidedCh:
		v, _ := n.Decided()
		return v, nil
	case <-ctx.Done():
		// Both channels may be ready; prefer the decision so a learner
		// polled with an already-expired context still reports a value it
		// has in fact learned.
		select {
		case <-n.decidedCh:
			v, _ := n.Decided()
			return v, nil
		default:
		}
		return nil, fmt.Errorf("wait decision at %s: %w", n.cfg.Self, ctx.Err())
	}
}

// quorum is the number of responses a proposer waits for: a majority of the
// process set.
func (n *Node) quorum() int { return types.Majority(len(n.cfg.Procs)) }

// run processes incoming messages until the context is cancelled.
func (n *Node) run(ctx context.Context) {
	defer n.wg.Done()
	for {
		from, payload, stamp, err := n.tr.Receive(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return
			}
			if ctx.Err() != nil {
				return
			}
			continue
		}
		// A message from the process to itself is a local computation and
		// costs no network delay; only remote messages cost one delay.
		if from == n.cfg.Self {
			n.cfg.Clock.Merge(stamp)
		} else {
			n.cfg.Clock.MergeAfterMessage(stamp)
		}
		msg, err := DecodeMessage(payload)
		if err != nil {
			continue
		}
		msg.From = from
		n.handle(ctx, msg)
	}
}

func (n *Node) handle(ctx context.Context, msg Message) {
	switch msg.Kind {
	case KindPrepare:
		n.handlePrepare(ctx, msg)
	case KindAccept:
		n.handleAccept(ctx, msg)
	case KindDecide:
		n.learn(msg.Value)
	case KindPromise, KindAccepted, KindNack:
		// Route responses to the proposer loop; drop them if no proposal is
		// in progress (stale responses).
		select {
		case n.responses <- msg:
		default:
		}
	}
}

func (n *Node) handlePrepare(ctx context.Context, msg Message) {
	n.mu.Lock()
	reply := Message{From: n.cfg.Self, Ballot: msg.Ballot}
	if n.minProposal.Less(msg.Ballot) {
		n.minProposal = msg.Ballot
		reply.Kind = KindPromise
		reply.AcceptedBallot = n.acceptedProp
		reply.Value = n.acceptedVal.Clone()
	} else {
		reply.Kind = KindNack
		reply.AcceptedBallot = n.minProposal
	}
	n.mu.Unlock()
	n.send(ctx, msg.From, reply)
}

func (n *Node) handleAccept(ctx context.Context, msg Message) {
	n.mu.Lock()
	reply := Message{From: n.cfg.Self, Ballot: msg.Ballot}
	if !msg.Ballot.Less(n.minProposal) {
		n.minProposal = msg.Ballot
		n.acceptedProp = msg.Ballot
		n.acceptedVal = msg.Value.Clone()
		reply.Kind = KindAccepted
	} else {
		reply.Kind = KindNack
		reply.AcceptedBallot = n.minProposal
	}
	n.mu.Unlock()
	n.send(ctx, msg.From, reply)
}

func (n *Node) learn(v types.Value) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hasDecided {
		return
	}
	n.decided = v.Clone()
	n.hasDecided = true
	close(n.decidedCh)
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindDecide, v, n.cfg.Clock.Now(), "paxos learn")
}

func (n *Node) send(ctx context.Context, to types.ProcID, msg Message) {
	payload, err := msg.Encode()
	if err != nil {
		return
	}
	// Send errors (for example, the process was crashed by the fault
	// injector) are not actionable here; the proposer's timeout handles them.
	_ = n.tr.Send(ctx, to, payload, n.cfg.Clock.Now())
}

func (n *Node) broadcast(ctx context.Context, msg Message) {
	payload, err := msg.Encode()
	if err != nil {
		return
	}
	_ = n.tr.Broadcast(ctx, payload, n.cfg.Clock.Now())
}

// isLeader reports whether this node currently believes it is the leader.
func (n *Node) isLeader() bool {
	if n.cfg.Oracle == nil {
		return true
	}
	return n.cfg.Oracle.Leader() == n.cfg.Self
}

// Propose runs the proposer role with initial value v until a decision is
// learned (by this proposal or any other) and returns the decided value.
func (n *Node) Propose(ctx context.Context, v types.Value) (types.Value, error) {
	n.cfg.Recorder.Record(n.cfg.Self, trace.KindPropose, v, n.cfg.Clock.Now(), "paxos propose")
	for {
		if value, ok := n.Decided(); ok {
			return value, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("propose at %s: %w", n.cfg.Self, err)
		}
		if !n.isLeader() {
			// Wait for leadership or for someone else's decision.
			select {
			case <-n.decidedCh:
				continue
			case <-time.After(n.cfg.RoundTimeout):
				continue
			case <-ctx.Done():
				return nil, fmt.Errorf("propose at %s: %w", n.cfg.Self, ctx.Err())
			}
		}
		decided, done, err := n.runRound(ctx, v)
		if err != nil {
			return nil, err
		}
		if done {
			return decided, nil
		}
	}
}

// runRound executes one prepare/accept round. It returns done=false when the
// round was preempted and should be retried with a higher ballot.
func (n *Node) runRound(ctx context.Context, v types.Value) (types.Value, bool, error) {
	n.mu.Lock()
	ballot := n.highestSeen.Next(n.cfg.Self, n.minProposal)
	n.highestSeen = ballot
	n.mu.Unlock()

	// Phase 1: prepare / promise.
	n.drainResponses()
	n.broadcast(ctx, Message{Kind: KindPrepare, From: n.cfg.Self, Ballot: ballot})
	promises := 0
	var adoptBallot types.ProposalNumber
	adoptValue := v.Clone()
	deadline := time.After(n.cfg.RoundTimeout)
	for promises < n.quorum() {
		select {
		case resp := <-n.responses:
			if !resp.Ballot.Equal(ballot) {
				continue
			}
			switch resp.Kind {
			case KindNack:
				n.observe(resp.AcceptedBallot)
				return nil, false, nil
			case KindPromise:
				promises++
				if !resp.AcceptedBallot.IsZero() && adoptBallot.Less(resp.AcceptedBallot) {
					adoptBallot = resp.AcceptedBallot
					adoptValue = resp.Value.Clone()
				}
			}
		case <-deadline:
			return nil, false, nil
		case <-n.decidedCh:
			value, _ := n.Decided()
			return value, true, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("propose at %s: %w", n.cfg.Self, ctx.Err())
		}
	}

	// Phase 2: accept / accepted.
	n.broadcast(ctx, Message{Kind: KindAccept, From: n.cfg.Self, Ballot: ballot, Value: adoptValue})
	accepted := 0
	deadline = time.After(n.cfg.RoundTimeout)
	for accepted < n.quorum() {
		select {
		case resp := <-n.responses:
			if !resp.Ballot.Equal(ballot) {
				continue
			}
			switch resp.Kind {
			case KindNack:
				n.observe(resp.AcceptedBallot)
				return nil, false, nil
			case KindAccepted:
				accepted++
			}
		case <-deadline:
			return nil, false, nil
		case <-n.decidedCh:
			value, _ := n.Decided()
			return value, true, nil
		case <-ctx.Done():
			return nil, false, fmt.Errorf("propose at %s: %w", n.cfg.Self, ctx.Err())
		}
	}

	// The value is chosen; tell every learner (including ourselves).
	n.broadcast(ctx, Message{Kind: KindDecide, From: n.cfg.Self, Ballot: ballot, Value: adoptValue})
	n.learn(adoptValue)
	return adoptValue, true, nil
}

// observe records a higher ballot seen in a nack so the next round picks a
// larger one.
func (n *Node) observe(b types.ProposalNumber) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.highestSeen.Less(b) {
		n.highestSeen = b
	}
}

// drainResponses discards stale responses from previous rounds.
func (n *Node) drainResponses() {
	for {
		select {
		case <-n.responses:
		default:
			return
		}
	}
}
