package paxos

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/omega"
	"rdmaagreement/internal/trace"
	"rdmaagreement/internal/types"
)

type cluster struct {
	procs   []types.ProcID
	net     *netsim.Network
	routers map[types.ProcID]*netsim.Router
	nodes   map[types.ProcID]*Node
	oracle  *omega.Static
	rec     *trace.Recorder
}

func newCluster(t *testing.T, n int, netOpts netsim.Options) *cluster {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	c := &cluster{
		procs:   procs,
		net:     netsim.New(netOpts),
		routers: make(map[types.ProcID]*netsim.Router),
		nodes:   make(map[types.ProcID]*Node),
		oracle:  omega.NewStatic(1),
		rec:     &trace.Recorder{},
	}
	t.Cleanup(c.net.Close)
	for _, p := range procs {
		ep := c.net.Register(p)
		router := netsim.NewRouter(ep)
		c.routers[p] = router
		tr := NewNetTransport(ep, router.Subscribe("paxos/", 0), "paxos/msg")
		node := NewNode(Config{
			Self:     p,
			Procs:    procs,
			Oracle:   c.oracle,
			Recorder: c.rec,
		}, tr)
		node.Start()
		c.nodes[p] = node
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			node.Stop()
		}
		for _, r := range c.routers {
			r.Close()
		}
	})
	return c
}

func TestSingleProposerDecides(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	got, err := c.nodes[1].Propose(ctx, types.Value("alpha"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !got.Equal(types.Value("alpha")) {
		t.Fatalf("decided %v, want alpha", got)
	}
	// Every node eventually learns the decision.
	for _, p := range c.procs {
		v, err := c.nodes[p].WaitDecision(ctx)
		if err != nil {
			t.Fatalf("WaitDecision at %v: %v", p, err)
		}
		if !v.Equal(types.Value("alpha")) {
			t.Fatalf("node %v learned %v", p, v)
		}
	}
}

func TestValidityDecidesAProposedValue(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := c.nodes[1].Propose(ctx, types.Value("only-input"))
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if !got.Equal(types.Value("only-input")) {
		t.Fatalf("decision %v is not the proposed value", got)
	}
}

func TestAgreementUnderCompetingProposers(t *testing.T) {
	c := newCluster(t, 5, netsim.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Two processes believe they are leader in turn; both propose different
	// values concurrently. Agreement requires that every decision is the
	// same value.
	var wg sync.WaitGroup
	results := make([]types.Value, 2)
	errs := make([]error, 2)
	proposers := []types.ProcID{1, 2}
	for i, p := range proposers {
		wg.Add(1)
		go func(i int, p types.ProcID) {
			defer wg.Done()
			// Alternate the oracle so both proposers get a chance to run.
			results[i], errs[i] = c.nodes[p].Propose(ctx, types.Value(fmt.Sprintf("from-%d", p)))
		}(i, p)
	}
	// Flip leadership a few times to create contention, then settle on p1.
	for i := 0; i < 6; i++ {
		c.oracle.SetLeader(proposers[i%2])
		time.Sleep(20 * time.Millisecond)
	}
	c.oracle.SetLeader(1)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("proposer %d error: %v", i, err)
		}
	}
	if !results[0].Equal(results[1]) {
		t.Fatalf("agreement violated: %v vs %v", results[0], results[1])
	}
	for _, p := range c.procs {
		if v, ok := c.nodes[p].Decided(); ok && !v.Equal(results[0]) {
			t.Fatalf("node %v decided %v, others decided %v", p, v, results[0])
		}
	}
}

func TestToleratesMinorityCrash(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Crash one follower (minority for n=3): the leader must still decide.
	c.net.CrashProcess(3)
	got, err := c.nodes[1].Propose(ctx, types.Value("survives-crash"))
	if err != nil {
		t.Fatalf("Propose with crashed follower: %v", err)
	}
	if !got.Equal(types.Value("survives-crash")) {
		t.Fatalf("decided %v", got)
	}
}

func TestBlocksWithoutMajority(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	// Crash a majority of acceptors; the proposer cannot decide.
	c.net.CrashProcess(2)
	c.net.CrashProcess(3)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.nodes[1].Propose(ctx, types.Value("stuck")); err == nil {
		t.Fatalf("proposal should not complete without a majority (n ≥ 2f+1 bound)")
	}
}

func TestLeaderFailoverDecides(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// The initial leader crashes before proposing; p2 takes over.
	c.net.CrashProcess(1)
	c.oracle.SetLeader(2)
	got, err := c.nodes[2].Propose(ctx, types.Value("failover"))
	if err != nil {
		t.Fatalf("Propose after failover: %v", err)
	}
	if !got.Equal(types.Value("failover")) {
		t.Fatalf("decided %v", got)
	}
	if v, err := c.nodes[3].WaitDecision(ctx); err != nil || !v.Equal(types.Value("failover")) {
		t.Fatalf("follower did not learn failover decision: %v %v", v, err)
	}
}

func TestCommonCaseDelayCount(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	start := c.nodes[1].Clock().Now()
	if _, err := c.nodes[1].Propose(ctx, types.Value("count-delays")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	delays := int64(c.nodes[1].Clock().Now() - start)
	// Classic Paxos needs two round trips: prepare/promise + accept/accepted
	// = 4 delays at the proposer in the common case.
	if delays != 4 {
		t.Fatalf("common-case Paxos decision took %d delays, want 4", delays)
	}
}

func TestSecondProposerAdoptsChosenValue(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if _, err := c.nodes[1].Propose(ctx, types.Value("first")); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	// A later proposer with a different input must decide the already chosen
	// value.
	c.oracle.SetLeader(2)
	got, err := c.nodes[2].Propose(ctx, types.Value("second"))
	if err != nil {
		t.Fatalf("second Propose: %v", err)
	}
	if !got.Equal(types.Value("first")) {
		t.Fatalf("second proposer decided %v, want the already chosen value", got)
	}
}

func TestDecidedBeforeAnyProposal(t *testing.T) {
	c := newCluster(t, 3, netsim.Options{})
	if _, ok := c.nodes[2].Decided(); ok {
		t.Fatalf("node reports a decision before any proposal")
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	msg := Message{
		Kind:           KindAccept,
		From:           2,
		Ballot:         types.ProposalNumber{Round: 3, Proposer: 2},
		AcceptedBallot: types.ProposalNumber{Round: 1, Proposer: 1},
		Value:          types.Value("payload"),
	}
	enc, err := msg.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := DecodeMessage(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Kind != msg.Kind || !dec.Ballot.Equal(msg.Ballot) || !dec.Value.Equal(msg.Value) {
		t.Fatalf("round trip mismatch: %+v vs %+v", dec, msg)
	}
	if _, err := DecodeMessage([]byte("not json")); err == nil {
		t.Fatalf("decoding garbage should fail")
	}
}
