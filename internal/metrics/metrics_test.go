package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestGaugeDeltaAndPeak(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(4) // level 7 — peak
	g.Add(-5)
	if got := g.Load(); got != 2 {
		t.Fatalf("Load = %d, want 2", got)
	}
	if got := g.Peak(); got != 7 {
		t.Fatalf("Peak = %d, want 7", got)
	}
	// A later lower level must not move the peak.
	g.Add(1)
	if got := g.Peak(); got != 7 {
		t.Fatalf("Peak after re-raise = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound ("le")
// semantics: a value exactly on a bound lands in that bound's bucket, one
// nanosecond above it lands in the next, and values past the last bound land
// in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond})
	h.Observe(time.Millisecond)                   // exactly bound 0 → bucket 0
	h.Observe(time.Millisecond + time.Nanosecond) // just above → bucket 1
	h.Observe(2 * time.Millisecond)               // exactly bound 1 → bucket 1
	h.Observe(4 * time.Millisecond)               // exactly last bound → bucket 2
	h.Observe(5 * time.Millisecond)               // past last bound → overflow
	h.Observe(0)                                  // zero → bucket 0
	h.Observe(-time.Millisecond)                  // negative clamps to zero → bucket 0

	s := h.Snapshot()
	want := []uint64{3, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if s.Max != 5*time.Millisecond {
		t.Fatalf("Max = %v, want 5ms", s.Max)
	}
	// Sum: 1 + 1.000000001 + 2 + 4 + 5 + 0 + 0 ms.
	wantSum := 13*time.Millisecond + time.Nanosecond
	if s.Sum != wantSum {
		t.Fatalf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	// All observations are 1ms, which falls in the (512µs, 1024µs] bucket of
	// the default bounds; interpolation must stay inside that bucket and
	// strictly above zero (the property the CI non-zero gates rely on).
	if p50 <= 512*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Fatalf("p50 = %v, want within (512µs, 1024µs]", p50)
	}
	if got := s.Quantile(1.0); got > s.Max {
		t.Fatalf("p100 = %v exceeds Max %v", got, s.Max)
	}
	if s.Mean() != time.Millisecond {
		t.Fatalf("Mean = %v, want 1ms", s.Mean())
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 50*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms", p99)
	}
	// Quantiles must be monotone in q.
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower q %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram accepted non-ascending bounds")
		}
	}()
	NewHistogram([]time.Duration{2 * time.Millisecond, time.Millisecond})
}

// TestZeroAllocRecordPath is the satellite allocation gate: the record path
// of every instrument must not allocate.
func TestZeroAllocRecordPath(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(nil)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(1); g.Add(-1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Millisecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}

// TestConcurrentRecordSnapshot races writers against snapshot readers (run
// under -race in CI). Snapshots taken mid-flight must be internally
// consistent: Count equals the bucket sum by construction, and counters are
// monotone across successive reads.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	h := r.Histogram("lat")

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%10+1) * time.Millisecond)
				g.Add(-1)
			}
		}()
	}

	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var lastCount uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			var sum uint64
			for _, n := range snap.Counts {
				sum += n
			}
			if sum != snap.Count {
				t.Errorf("snapshot inconsistent: bucket sum %d != count %d", sum, snap.Count)
				return
			}
			if snap.Count < lastCount {
				t.Errorf("histogram count went backwards: %d -> %d", lastCount, snap.Count)
				return
			}
			lastCount = snap.Count
			_ = r.Snapshot()
			var sb strings.Builder
			_ = r.WriteText(&sb)
		}
	}()

	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge settled at %d, want 0", got)
	}
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter(a) not stable across calls")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge(b) not stable across calls")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Fatal("Histogram(c) not stable across calls")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("smr_slots_total").Add(3)
	r.Gauge("smr_queue_depth").Add(5)
	r.Histogram("smr_apply").Observe(2 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE smr_slots_total counter\nsmr_slots_total 3\n",
		"# TYPE smr_queue_depth gauge\nsmr_queue_depth 5\nsmr_queue_depth_peak 5\n",
		"# TYPE smr_apply histogram\n",
		"smr_apply_bucket{le=\"+Inf\"} 1\n",
		"smr_apply_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotMap(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(7)
	r.Gauge("depth").Add(2)
	r.Histogram("lat").Observe(time.Millisecond)

	snap := r.Snapshot()
	if got, ok := snap["ops"].(uint64); !ok || got != 7 {
		t.Fatalf("snap[ops] = %v", snap["ops"])
	}
	gv, ok := snap["depth"].(map[string]int64)
	if !ok || gv["current"] != 2 || gv["peak"] != 2 {
		t.Fatalf("snap[depth] = %v", snap["depth"])
	}
	hv, ok := snap["lat"].(map[string]any)
	if !ok || hv["count"].(uint64) != 1 {
		t.Fatalf("snap[lat] = %v", snap["lat"])
	}
	if p50 := hv["p50_ms"].(float64); p50 <= 0 {
		t.Fatalf("snap[lat].p50_ms = %v, want > 0", p50)
	}
}
