// Package metrics is the always-on observability substrate of the
// replicated-log stack: counters, gauges and fixed-bucket latency histograms
// that are safe for concurrent use, lock-free and allocation-free on the
// record path, and snapshot-able both as typed Go values and as
// Prometheus-style text.
//
// The design splits the two sides of an instrument apart. Recording — the hot
// path, called per command, per slot, per queue transition — touches only
// pre-allocated atomics: Counter.Add and Gauge.Add are single atomic
// operations, Histogram.Observe is a branch-free binary search over a fixed
// bound table plus three atomic adds. Reading — Snapshot, WriteText — walks
// the same atomics without stopping writers, so a monitor goroutine (or a
// debug HTTP endpoint) can poll mid-workload; the view it gets is
// per-instrument consistent, not a cross-instrument atomic cut, which is the
// standard contract of scrape-based metrics.
//
// A Registry names instruments and hands out process-lifetime handles
// (get-or-create). Sharing one Registry across several replicated-log groups
// aggregates them for free: counters and histogram buckets sum because the
// groups add into the same atomics, and delta-maintained gauges (queue
// depths) sum the same way — which is exactly how the sharded layer exposes
// one stack-wide view without a merge step.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotone event count. The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
//
//smrlint:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//smrlint:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, slots in flight) maintained
// by deltas, with a high-water mark. The zero value is ready to use.
//
// Maintaining gauges by Add rather than Set is what makes them shardable:
// several groups adding into one shared gauge yield the level of the whole
// fleet, and Peak is then the peak of that sum.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Add moves the gauge by delta and updates the high-water mark.
//
//smrlint:noalloc
func (g *Gauge) Add(delta int64) {
	v := g.v.Add(delta)
	for {
		cur := g.peak.Load()
		if v <= cur || g.peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak returns the highest level ever observed by Add.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// defaultBounds are the default latency bucket upper bounds: exponential
// (×2) from 1µs to ~34s — wide enough to span a sub-microsecond apply and a
// multi-second recovery round in one table. 26 buckets keeps the per-observe
// binary search at 5 probes.
func defaultBounds() []time.Duration {
	bounds := make([]time.Duration, 0, 26)
	for b := time.Microsecond; b <= 34*time.Second; b *= 2 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free and
// allocation-free; buckets are cumulative-upper-bound ("le") style, with one
// implicit overflow bucket above the last bound.
type Histogram struct {
	bounds []int64 // ascending inclusive upper bounds, in nanoseconds
	counts []atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket bounds
// (nil means the default exponential latency bounds, 1µs–34s).
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = defaultBounds()
	}
	ns := make([]int64, len(bounds))
	for i, b := range bounds {
		ns[i] = int64(b)
		if i > 0 && ns[i] <= ns[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: ns, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. Negative durations clamp to zero.
//
//smrlint:noalloc
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	// Binary search for the first bound >= v; the overflow bucket is
	// len(bounds). Hand-rolled so the record path allocates nothing.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets.
type HistogramSnapshot struct {
	// Count is the total observations (the sum of Counts).
	Count uint64
	// Sum is the sum of all observed values.
	Sum time.Duration
	// Max is the largest value ever observed.
	Max time.Duration
	// Bounds are the buckets' inclusive upper bounds; Counts[i] is the
	// number of observations ≤ Bounds[i] and > Bounds[i-1]. Counts has one
	// more element than Bounds: the overflow bucket.
	Bounds []time.Duration
	Counts []uint64
}

// Snapshot copies the histogram's current state. Concurrent Observe calls may
// land between bucket reads; the snapshot's Count is derived from the bucket
// copies, so quantiles stay internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Sum:    time.Duration(h.sum.Load()),
		Max:    time.Duration(h.max.Load()),
		Bounds: make([]time.Duration, len(h.bounds)),
		Counts: make([]uint64, len(h.counts)),
	}
	for i, b := range h.bounds {
		s.Bounds[i] = time.Duration(b)
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Mean returns the mean observed value (zero when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear interpolation
// inside the bucket holding it; the overflow bucket interpolates toward Max.
// Returns zero when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			cum += float64(c)
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lower := time.Duration(0)
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Max
			if i < len(s.Bounds) {
				upper = s.Bounds[i]
			}
			if upper < lower {
				upper = lower
			}
			frac := (target - cum) / float64(c)
			v := lower + time.Duration(frac*float64(upper-lower))
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}

// Registry names instruments and hands out get-or-create handles. The hot
// path never touches the registry: callers look their instruments up once and
// keep the pointers.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default latency bounds,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket bounds on first use (nil means the default latency bounds). The
// bounds matter only at creation: a later lookup of the same name — with
// different bounds, or through plain Histogram — returns the existing
// instrument unchanged, so every recorder of a series observes into one set
// of buckets. Bounds need not be durations semantically: a unit-valued
// series (the committer's batch-size histogram records commands per batch as
// 1ns units) works the same, it just reads in units instead of seconds.
func (r *Registry) HistogramWith(name string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns every instrument's current value as a JSON-friendly map:
// counters as uint64, gauges as {current, peak}, histograms as
// {count, mean_ms, p50_ms, p90_ms, p99_ms, max_ms}. It is the expvar-shaped
// view (publish it with expvar.Func).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	r.mu.Unlock()

	out := make(map[string]any, len(counters)+len(gauges)+len(histograms))
	for n, c := range counters {
		out[n] = c.Load()
	}
	for n, g := range gauges {
		out[n] = map[string]int64{"current": g.Load(), "peak": g.Peak()}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for n, h := range histograms {
		s := h.Snapshot()
		out[n] = map[string]any{
			"count":   s.Count,
			"mean_ms": ms(s.Mean()),
			"p50_ms":  ms(s.Quantile(0.50)),
			"p90_ms":  ms(s.Quantile(0.90)),
			"p99_ms":  ms(s.Quantile(0.99)),
			"max_ms":  ms(s.Max),
		}
	}
	return out
}

// WriteText renders every instrument in Prometheus text exposition style —
// counters and gauges as plain samples (gauges with a _peak companion),
// histograms as cumulative le-buckets with _sum/_count, durations in seconds
// — in stable name order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	counterNames := sortedKeys(r.counters)
	gaugeNames := sortedKeys(r.gauges)
	histNames := sortedKeys(r.histograms)
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	r.mu.Unlock()

	for _, n := range counterNames {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[n].Load()); err != nil {
			return err
		}
	}
	for _, n := range gaugeNames {
		g := gauges[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n%s_peak %d\n", n, n, g.Load(), n, g.Peak()); err != nil {
			return err
		}
	}
	for _, n := range histNames {
		s := histograms[n].Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := uint64(0)
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, b.Seconds(), cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			n, cum, n, s.Sum.Seconds(), n, cum); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
