package retained_test

import (
	"testing"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/analysistest"
	"rdmaagreement/internal/lint/retained"
)

func TestRetained(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), []*analysis.Analyzer{retained.Analyzer}, "retained/entry", "retained")
}
