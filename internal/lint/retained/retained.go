// Package retained implements the smrlint analyzer enforcing the read-only
// aliasing contract on command and snapshot buffers: Entry.Cmd (and the byte
// slices handed to Restore/MigrateIn) are borrowed from the log's receive
// path and are only valid for the duration of the call. Callers must not
//
//   - store them (or a reslice of them) in a struct field reachable through a
//     pointer, a map, a slice, a package-level variable, or a channel;
//   - mutate their elements, directly or via copy.
//
// Copying is the sanctioned escape hatch: string(cmd), append(dst, cmd...),
// and copy(dst, cmd) all produce owned data and end the borrow. Assigning
// into a field of a local value-typed struct is likewise fine — the copy dies
// with the frame.
//
// Taint tracking is intra-function and source-ordered: aliases made with :=,
// plain assignment, or reslicing are followed; values passed to ordinary
// function calls are not (the callee is separately analyzed if it also
// handles entries). The package that declares the Entry type is exempt — the
// log internals legitimately retain command buffers they own.
package retained

import (
	"go/ast"
	"go/types"

	"rdmaagreement/internal/lint/analysis"
)

// Analyzer is the retained analysis.
var Analyzer = &analysis.Analyzer{
	Name: "retained",
	Doc:  "check that borrowed Entry.Cmd / snapshot slices are not retained or mutated",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := make(map[*types.Var]bool)

	// Restore and MigrateIn receive a borrowed buffer as their first
	// parameter.
	if fd.Recv != nil && (fd.Name.Name == "Restore" || fd.Name.Name == "MigrateIn") {
		if p := firstParam(fd); p != nil {
			if obj, ok := pass.TypesInfo.Defs[p].(*types.Var); ok && isByteSlice(obj.Type()) {
				tainted[obj] = true
			}
		}
	}

	isTainted := func(e ast.Expr) bool { return taintedExpr(pass, tainted, e) }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, n, tainted, isTainted)
		case *ast.SendStmt:
			if isTainted(n.Value) {
				pass.Reportf(n.Value.Pos(), "%s sends a borrowed command slice on a channel; the receiver outlives the call", describe(n.Value))
			}
		case *ast.CallExpr:
			checkCall(pass, n, isTainted)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, tainted map[*types.Var]bool, isTainted func(ast.Expr) bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		hot := isTainted(rhs)

		// Mutation: writing through a borrowed slice, tainted[i] = x.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if isTainted(idx.X) {
				pass.Reportf(lhs.Pos(), "%s mutates a borrowed command slice; Entry.Cmd is read-only", describe(idx.X))
				continue
			}
			if hot {
				if _, isMap := pass.TypesInfo.TypeOf(idx.X).Underlying().(*types.Map); isMap {
					pass.Reportf(rhs.Pos(), "%s stores a borrowed command slice in a map; copy it first", describe(rhs))
				}
				continue
			}
		}

		// Retention: storing into a field reachable through a pointer, or a
		// package-level variable.
		if sel, ok := lhs.(*ast.SelectorExpr); ok && hot {
			if escapingBase(pass, sel) {
				pass.Reportf(rhs.Pos(), "%s stores a borrowed command slice in a field; copy it first (Entry.Cmd is only valid during the call)", describe(rhs))
			}
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
			if obj == nil {
				obj, _ = pass.TypesInfo.Defs[id].(*types.Var)
			}
			if obj == nil {
				continue
			}
			if hot && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(rhs.Pos(), "%s stores a borrowed command slice in a package-level variable; copy it first", describe(rhs))
				continue
			}
			// Alias tracking for locals.
			tainted[obj] = hot
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, isTainted func(ast.Expr) bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsBuiltin() {
		return
	}
	switch name := builtinName(call.Fun); name {
	case "append":
		// append(dst, cmd...) copies bytes — fine. append(dst, cmd) stores
		// the slice header — retention.
		if call.Ellipsis.IsValid() {
			return
		}
		for _, arg := range call.Args[1:] {
			if isTainted(arg) {
				pass.Reportf(arg.Pos(), "%s stores a borrowed command slice in a slice; copy it first", describe(arg))
			}
		}
	case "copy":
		if len(call.Args) == 2 && isTainted(call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "%s mutates a borrowed command slice via copy; Entry.Cmd is read-only", describe(call.Args[0]))
		}
	}
}

// taintedExpr reports whether e aliases a borrowed buffer: a tainted local,
// an Entry.Cmd selector from another package, or a reslice of either.
func taintedExpr(pass *analysis.Pass, tainted map[*types.Var]bool, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj, _ := pass.TypesInfo.Uses[e].(*types.Var)
		return obj != nil && tainted[obj]
	case *ast.SelectorExpr:
		return isEntryCmd(pass, e)
	case *ast.SliceExpr:
		return taintedExpr(pass, tainted, e.X)
	case *ast.ParenExpr:
		return taintedExpr(pass, tainted, e.X)
	}
	return false
}

// isEntryCmd matches X.Cmd where X is a struct type named Entry (declared in
// a different package) with a Cmd []byte field.
func isEntryCmd(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Cmd" {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Entry" {
		return false
	}
	if named.Obj().Pkg() == nil || named.Obj().Pkg() == pass.Pkg {
		return false // the log package owns its entries
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Cmd" {
			return isByteSlice(f.Type())
		}
	}
	return false
}

// escapingBase reports whether the selector's base escapes the frame: any
// pointer traversal, a package-level root, or a non-local root. Field stores
// into a local value-typed struct copy are fine.
func escapingBase(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	x := sel.X
	for {
		t := pass.TypesInfo.TypeOf(x)
		if t != nil {
			if _, ok := t.Underlying().(*types.Pointer); ok {
				return true
			}
		}
		switch e := x.(type) {
		case *ast.SelectorExpr:
			x = e.X
		case *ast.ParenExpr:
			x = e.X
		case *ast.Ident:
			obj, _ := pass.TypesInfo.Uses[e].(*types.Var)
			if obj == nil {
				return true
			}
			return obj.Parent() == pass.Pkg.Scope()
		default:
			return true
		}
	}
}

func firstParam(fd *ast.FuncDecl) *ast.Ident {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return nil
	}
	f := fd.Type.Params.List[0]
	if len(f.Names) == 0 {
		return nil
	}
	return f.Names[0]
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func builtinName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.ParenExpr:
		return builtinName(f.X)
	}
	return ""
}

func describe(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := describe(e.X)
		return base + "." + e.Sel.Name
	case *ast.SliceExpr:
		return describe(e.X) + "[…]"
	case *ast.ParenExpr:
		return describe(e.X)
	}
	return "expression"
}
