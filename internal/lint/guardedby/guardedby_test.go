package guardedby_test

import (
	"testing"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/analysistest"
	"rdmaagreement/internal/lint/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), []*analysis.Analyzer{guardedby.Analyzer}, "guardedby")
}
