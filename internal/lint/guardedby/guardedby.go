// Package guardedby implements the smrlint analyzer that checks
// "// guarded by mu" field annotations: every access to an annotated struct
// field must be lexically preceded, in the same function, by a Lock (or, for
// reads, RLock) call on the named sibling mutex through the same base
// expression.
//
// The check is deliberately lightweight — positional, not all-paths: a Lock
// anywhere earlier in the function satisfies it, and Unlock is not tracked.
// It exists to catch the common real bug (a new method or branch touching
// guarded state with no locking at all), not to be a full lockset analysis.
//
// Recognized escape hatches:
//
//   - a function whose doc carries //smrlint:holds <mu> is treated as running
//     with the receiver's <mu> already held (lock-held helpers);
//   - accesses through a variable the function itself built with a composite
//     literal (constructors: no concurrency before the value escapes);
//   - function literals inherit the locks of enclosing scopes, except across
//     a `go` boundary (a spawned goroutine does not hold the spawner's locks).
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/directive"
)

// Analyzer is the guardedby analysis.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check that fields annotated `// guarded by mu` are accessed with the named mutex held",
	Run:  run,
}

// guard describes one annotated field.
type guard struct {
	mu     string // sibling mutex field name
	rwlock bool   // mutex is a sync.RWMutex (RLock is acceptable for reads)
}

func run(pass *analysis.Pass) (any, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil, nil
}

// collectGuards finds every `// guarded by mu` field annotation in the
// package and validates that the named guard is a sibling sync.Mutex or
// sync.RWMutex field.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := make(map[types.Object]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, found := directive.GuardedBy(field.Comment)
				if !found {
					mu, found = directive.GuardedBy(field.Doc)
				}
				if !found {
					continue
				}
				rw, ok := siblingMutex(pass, st, mu)
				if !ok {
					pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex or sync.RWMutex field", mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard{mu: mu, rwlock: rw}
					}
				}
			}
			return true
		})
	}
	return guards
}

// siblingMutex reports whether the struct has a field named mu of mutex type
// and whether that mutex is an RWMutex.
func siblingMutex(pass *analysis.Pass, st *ast.StructType, mu string) (rwlock, ok bool) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				return false, false
			}
			switch mutexKind(t) {
			case "sync.Mutex":
				return false, true
			case "sync.RWMutex":
				return true, true
			}
			return false, false
		}
	}
	return false, false
}

func mutexKind(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	return "sync." + obj.Name()
}

// lockEvent is one Lock/RLock call: where, on which rendered chain ("l.mu"),
// and whether it was a read lock.
type lockEvent struct {
	pos   token.Pos
	chain string
	read  bool
	scope int // innermost FuncLit scope id at the call (0 = function body)
}

// checkFunc walks one function, collecting lock events and checking guarded
// accesses against them.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[types.Object]guard) {
	held := holdsChains(pass, fd)
	constructed := constructedVars(pass, fd)

	// Scope numbering: each FuncLit gets an id; parent[i] is the enclosing
	// scope, goBoundary[i] marks FuncLits launched by a `go` statement.
	type scopeInfo struct {
		parent     int
		goBoundary bool
	}
	scopes := []scopeInfo{{parent: -1}}
	var locks []lockEvent

	var walk func(n ast.Node, scope int, inGo bool)
	walk = func(n ast.Node, scope int, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				// The spawned goroutine does not hold the spawner's locks.
				if fl, ok := m.Call.Fun.(*ast.FuncLit); ok {
					scopes = append(scopes, scopeInfo{parent: scope, goBoundary: true})
					walk(fl.Body, len(scopes)-1, false)
					for _, arg := range m.Call.Args {
						walk(arg, scope, false)
					}
					return false
				}
			case *ast.FuncLit:
				scopes = append(scopes, scopeInfo{parent: scope, goBoundary: false})
				walk(m.Body, len(scopes)-1, false)
				return false
			case *ast.CallExpr:
				if chain, read, ok := lockCall(pass, m); ok {
					locks = append(locks, lockEvent{pos: m.Pos(), chain: chain, read: read, scope: scope})
				}
			}
			return true
		})
	}
	walk(fd.Body, 0, false)

	// covered reports whether a lock on chain precedes pos in scope or an
	// ancestor scope, without crossing a go boundary.
	covered := func(chain string, pos token.Pos, scope int, needWrite bool) bool {
		for s := scope; s >= 0; {
			for _, l := range locks {
				if l.chain == chain && l.pos < pos && l.scope == s && (!needWrite || !l.read) {
					return true
				}
			}
			info := scopes[s]
			if info.goBoundary {
				break
			}
			s = info.parent
		}
		return false
	}

	checkAccess := func(sel *ast.SelectorExpr, scope int, write bool) {
		obj := fieldObject(pass, sel)
		g, guarded := guards[obj]
		if !guarded {
			return
		}
		base, ok := render(sel.X)
		if !ok {
			return
		}
		if baseObj := rootObject(pass, sel.X); baseObj != nil && constructed[baseObj] {
			return
		}
		chain := base + "." + g.mu
		if held[chain] {
			return
		}
		if covered(chain, sel.Pos(), scope, write && g.rwlock) {
			return
		}
		verb := "read"
		if write {
			verb = "written"
		}
		if write && g.rwlock && covered(chain, sel.Pos(), scope, false) {
			pass.Reportf(sel.Pos(), "%s.%s %s under %s.RLock; writes need %s.Lock (field guarded by %s)",
				base, sel.Sel.Name, verb, chain, chain, g.mu)
			return
		}
		pass.Reportf(sel.Pos(), "%s.%s %s without %s held (field guarded by %s)",
			base, sel.Sel.Name, verb, chain, g.mu)
	}

	// Second pass: visit accesses with their scopes and write/read mode. The
	// traversal mirrors walk, so scope ids line up with the scopes slice.
	next := 0
	var visit func(n ast.Node, scope int)
	visit = func(n ast.Node, scope int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				if fl, ok := m.Call.Fun.(*ast.FuncLit); ok {
					next++
					visit(fl.Body, next)
					for _, arg := range m.Call.Args {
						visit(arg, scope)
					}
					return false
				}
			case *ast.FuncLit:
				next++
				visit(m.Body, next)
				return false
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						checkAccess(sel, scope, true)
						visit(sel.X, scope)
					} else {
						visit(lhs, scope)
					}
				}
				for _, rhs := range m.Rhs {
					visit(rhs, scope)
				}
				return false
			case *ast.IncDecStmt:
				if sel, ok := m.X.(*ast.SelectorExpr); ok {
					checkAccess(sel, scope, true)
					visit(sel.X, scope)
					return false
				}
			case *ast.UnaryExpr:
				if m.Op == token.AND {
					if sel, ok := m.X.(*ast.SelectorExpr); ok {
						// Taking the address hands out mutable access.
						checkAccess(sel, scope, true)
						visit(sel.X, scope)
						return false
					}
				}
			case *ast.SelectorExpr:
				checkAccess(m, scope, false)
			}
			return true
		})
	}
	visit(fd.Body, 0)
}

// holdsChains parses //smrlint:holds annotations on the function: each named
// mutex is treated as held on entry, through the receiver (methods) or any
// single-identifier base (functions).
func holdsChains(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	held := make(map[string]bool)
	args, ok := directive.Marker(fd.Doc, "holds")
	if !ok {
		return held
	}
	var recv string
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	for _, mu := range splitFields(args) {
		if recv != "" {
			held[recv+"."+mu] = true
		}
		held[mu] = true
	}
	return held
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' || s[i] == '\t' || s[i] == ',' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return out
}

// constructedVars returns the local variables the function initializes from a
// composite literal (possibly via &): no other goroutine can hold the lock of
// a value that has not escaped its constructor yet.
func constructedVars(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// lockCall matches <chain>.Lock() / <chain>.RLock() calls on sync mutexes and
// returns the rendered chain.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (chain string, read, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" {
		return "", false, false
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	if recv == nil || mutexKind(recv) == "" {
		return "", false, false
	}
	chain, rok := render(sel.X)
	if !rok {
		return "", false, false
	}
	return chain, name == "RLock", true
}

// fieldObject resolves a selector to the struct field object it reads, if
// any.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// render flattens a pure identifier/selector chain ("l", "s.inner") — the
// only base shapes the positional matching can correlate. Anything else
// (calls, indexing) renders not-ok and the access is skipped.
func render(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := render(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return render(e.X)
	}
	return "", false
}

// rootObject resolves the leftmost identifier of a base chain.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
