// Fixture for the guardedby analyzer: true positives (unlocked reads and
// writes, RLock-only writes, goroutine escapes) and near misses that must not
// be flagged (locked accesses, lock-held helpers, constructors, inherited
// closure locks, unannotated fields).
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	rw   sync.RWMutex
	peak int // guarded by rw

	label string // unannotated: never checked
}

func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // near miss: mu is held
	return c.n
}

func (c *counter) unlockedRead() int {
	return c.n // want `c\.n read without c\.mu held`
}

func (c *counter) unlockedWrite() {
	c.n = 7 // want `c\.n written without c\.mu held`
}

func (c *counter) readLockedRead() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.peak // near miss: RLock suffices for reads
}

func (c *counter) readLockedWrite() {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.peak = 1 // want `c\.peak written under c\.rw\.RLock; writes need c\.rw\.Lock`
}

//smrlint:holds mu
func (c *counter) lockedHelper() int {
	return c.n // near miss: annotated lock-held helper
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // near miss: constructor, value has not escaped
	return c
}

func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `c\.n written without c\.mu held`
	}()
}

func (c *counter) closure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	bump := func() { c.n++ } // near miss: closure inherits the held lock
	bump()
}

func (c *counter) unannotated() string {
	return c.label // near miss: field carries no guard annotation
}

func (c *counter) ignored() int {
	//smrlint:ignore guardedby stats snapshot tolerates a racy read
	return c.n // suppressed by the justified ignore above
}

func (c *counter) ignoreNeedsReason() int {
	/* want `needs a non-empty reason` */ //smrlint:ignore guardedby
	return c.n // want `c\.n read without c\.mu held`
}

type badAnnotation struct {
	count int /* want `guarded-by annotation names "missing"` */ // guarded by missing
}
