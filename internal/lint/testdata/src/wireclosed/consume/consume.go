// Fixture consumer for the wireclosed analyzer: Unwrap misses two admission
// codes, and stale string-literal comparisons against Code fields are
// flagged.
//
//smrlint:wire consumer
package consume

import (
	"errors"

	"wireclosed/tax"
)

var errBusy = errors.New("busy")

// Error mirrors the client error shape.
type Error struct{ Code string }

// Unwrap maps admission codes to sentinels — incompletely.
func (e *Error) Unwrap() error {
	switch e.Code { // want `admission code CodeLazy has no case in Unwrap` `admission code CodeLeaky has no case in Unwrap`
	case tax.CodeBusy:
		return errBusy
	}
	return nil
}

func stale(e *Error) bool {
	return e.Code == "good_code" // want `use tax\.CodeGood instead of the literal "good_code"`
}

func freshName(name string) bool {
	return name == "good_code" // near miss: not a Code field comparison
}

func staleSwitch(e *Error) bool {
	switch e.Code {
	case "lazy_code": // want `use tax\.CodeLazy instead of the literal "lazy_code"`
		return true
	}
	return false
}
