// Fixture producer for the wireclosed analyzer: only CodeBusy is produced,
// so the other admission codes are flagged at the package clause.
//
//smrlint:wire producer
package produce // want `admission code CodeLazy is never produced` `admission code CodeLeaky is never produced`

import "wireclosed/tax"

// Refuse sheds load with the busy code.
func Refuse() string {
	return tax.CodeBusy
}
