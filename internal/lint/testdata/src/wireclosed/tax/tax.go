// Fixture taxonomy for the wireclosed analyzer: classified codes whose
// Sentinel/Retryable/FromError obligations are variously met (near misses)
// and violated (true positives).
//
//smrlint:wire taxonomy
package tax

import "errors"

var (
	errGood = errors.New("good")
	errLeak = errors.New("leak")
	errAnon = errors.New("anon")
)

const (
	//smrlint:wire store
	CodeGood = "good_code" // near miss: has a Sentinel case and a FromError mapping

	//smrlint:wire store
	CodeOrphan = "orphan_code" // want `store code CodeOrphan has no Sentinel case` `store code CodeOrphan is not produced in FromError`

	//smrlint:wire admission
	CodeBusy = "busy_code" // near miss: retryable, no Sentinel

	//smrlint:wire admission
	CodeLazy = "lazy_code" // want `admission code CodeLazy is not in Retryable's true cases`

	//smrlint:wire admission
	CodeLeaky = "leaky_code" // want `admission code CodeLeaky must not have a Sentinel case`

	//smrlint:wire anonymous
	CodeAnon = "anon_code" // near miss: anonymous codes stay out of Sentinel

	//smrlint:wire anonymous
	CodeAnonBad = "anon_bad_code" // want `anonymous code CodeAnonBad must not have a Sentinel case`

	//smrlint:wire gibberish
	CodeWeird = "weird_code" // want `wire code CodeWeird has unknown class "gibberish"`

	CodeUnmarked = "unmarked_code" // want `wire code CodeUnmarked needs a //smrlint:wire class marker`
)

// Sentinel maps store codes to their sentinel errors.
func Sentinel(code string) error {
	switch code {
	case CodeGood:
		return errGood
	case CodeLeaky:
		return errLeak
	case CodeAnonBad:
		return errAnon
	}
	return nil
}

// Retryable reports whether a code is safe to retry.
func Retryable(code string) bool {
	switch code {
	case CodeBusy, CodeLeaky:
		return true
	}
	return false
}

// FromError maps an error to a code and HTTP status.
func FromError(err error) (string, int) {
	if errors.Is(err, errGood) {
		return CodeGood, 503
	}
	return CodeAnon, 500
}
