// Fixture dependency for the retained analyzer: the package that owns the
// Entry type. Its own functions may retain command buffers freely.
package entry

// Entry mirrors the log's entry shape: Cmd is a borrowed buffer.
type Entry struct {
	ID  uint64
	Cmd []byte
}

var stash []byte

// Keep retains an entry's command in the owning package: exempt.
func Keep(e Entry) {
	stash = e.Cmd // near miss: the declaring package owns its entries
}
