// Fixture for the retained analyzer: true positives (field stores through
// pointers, map stores, channel sends, appends of slice headers, element
// mutation, package-level stores, reslice aliases) and near misses (copies
// via string/append.../copy, local value-struct stores, plain local aliases).
package retained

import "retained/entry"

type machine struct {
	last    []byte
	pending chan []byte
	byID    map[uint64][]byte
	hist    [][]byte
}

var lastGlobal []byte

func (m *machine) storeField(e entry.Entry) {
	m.last = e.Cmd // want `e\.Cmd stores a borrowed command slice in a field`
}

func (m *machine) storeAlias(e entry.Entry) {
	cmd := e.Cmd
	m.last = cmd // want `cmd stores a borrowed command slice in a field`
}

func (m *machine) storeReslice(e entry.Entry) {
	m.last = e.Cmd[1:] // want `e\.Cmd\[…\] stores a borrowed command slice in a field`
}

func (m *machine) storeMap(e entry.Entry) {
	m.byID[e.ID] = e.Cmd // want `e\.Cmd stores a borrowed command slice in a map`
}

func (m *machine) send(e entry.Entry) {
	m.pending <- e.Cmd // want `e\.Cmd sends a borrowed command slice on a channel`
}

func (m *machine) appendHeader(e entry.Entry) {
	m.hist = append(m.hist, e.Cmd) // want `e\.Cmd stores a borrowed command slice in a slice`
}

func (m *machine) mutate(e entry.Entry) {
	e.Cmd[0] = 0 // want `e\.Cmd mutates a borrowed command slice`
}

func (m *machine) mutateCopy(e entry.Entry, src []byte) {
	copy(e.Cmd, src) // want `e\.Cmd mutates a borrowed command slice via copy`
}

func storeGlobal(e entry.Entry) {
	lastGlobal = e.Cmd // want `e\.Cmd stores a borrowed command slice in a package-level variable`
}

func (m *machine) Restore(snap []byte, index uint64) error {
	m.last = snap // want `snap stores a borrowed command slice in a field`
	return nil
}

func (m *machine) copied(e entry.Entry) {
	owned := append([]byte(nil), e.Cmd...) // near miss: append(dst, cmd...) copies bytes
	m.last = owned
}

func (m *machine) stringCopy(e entry.Entry) string {
	return string(e.Cmd) // near miss: string conversion copies
}

func localValueStore(e entry.Entry) uint64 {
	var shadow entry.Entry
	shadow.Cmd = e.Cmd // near miss: field of a local value struct dies with the frame
	return shadow.ID
}

func localAlias(e entry.Entry) byte {
	cmd := e.Cmd // near miss: a plain local alias is fine until it escapes
	return cmd[0]
}

func (m *machine) reassigned(e entry.Entry) {
	cmd := e.Cmd
	cmd = append([]byte(nil), cmd...)
	m.last = cmd // near miss: the alias was replaced by an owned copy
}

func (m *machine) ignored(e entry.Entry) {
	//smrlint:ignore retained entries pinned by the snapshot barrier in tests
	m.last = e.Cmd // suppressed by the justified ignore above
}
