// Fixture for the noalloc analyzer: true positives (unevidenced appends,
// string↔[]byte copies, fmt outside returns, capturing closures, boxing, map
// makes, literals, concatenation) and near misses mirroring the real codec
// idioms (3-arg make, [:0] reslice, slice parameters, map-index conversion,
// error-path fmt and boxing, struct composite literals).
package noalloc

import "fmt"

type frame struct {
	ids  []uint64
	data []byte
}

//smrlint:noalloc
func appendParam(dst []byte, b byte) []byte {
	return append(dst, b) // near miss: dst is a slice parameter
}

//smrlint:noalloc
func appendMake(n int) []byte {
	out := make([]byte, 0, n)
	out = append(out, 1) // near miss: out was made with explicit cap
	return out
}

//smrlint:noalloc
func appendInline(n int) []byte {
	return append(make([]byte, 0, n), 1) // near miss: inline 3-arg make
}

//smrlint:noalloc
func appendReslice(f *frame, id uint64) {
	f.ids = f.ids[:0]
	f.ids = append(f.ids, id) // near miss: [:0] reslice reuses capacity
}

//smrlint:noalloc
func appendChained(dst []byte) []byte {
	out := append(dst, 1)
	out = append(out, 2) // near miss: chains off the evidenced append
	return out
}

//smrlint:noalloc
func appendCold(f *frame, id uint64) {
	f.ids = append(f.ids, id) // want `append to f\.ids without preallocated-cap evidence`
}

//smrlint:noalloc
func appendBare(id uint64) []uint64 {
	var out []uint64
	out = append(out, id) // want `append to out without preallocated-cap evidence`
	return out
}

//smrlint:noalloc
func mapKey(m map[string]int, b []byte) int {
	return m[string(b)] // near miss: map-index conversion is free
}

//smrlint:noalloc
func byteCopy(b []byte) string {
	s := string(b) // want `\[\]byte→string conversion allocates a copy`
	return s
}

//smrlint:noalloc
func stringCopy(s string) []byte {
	return []byte(s) // want `string→\[\]byte conversion allocates a copy`
}

//smrlint:noalloc
func errPath(n int) error {
	if n < 0 {
		return fmt.Errorf("bad frame size %d", n) // near miss: fmt and boxing on the return path
	}
	return nil
}

//smrlint:noalloc
func hotFmt(n int) {
	fmt.Println("frame", n) // want `fmt\.Println allocates`
}

//smrlint:noalloc
func box(n uint64) {
	sink(n) // want `passing n boxes a non-pointer uint64 into an interface`
}

//smrlint:noalloc
func boxPointer(f *frame) {
	sink(f) // near miss: pointers do not box-allocate
}

//smrlint:noalloc
func structReset(f *frame) {
	*f = frame{ids: f.ids[:0], data: f.data[:0]} // near miss: struct composite literal, no heap
}

//smrlint:noalloc
func makeMap() map[string]int {
	return make(map[string]int) // want `make\(map\) allocates`
}

//smrlint:noalloc
func sliceLit() []int {
	return []int{1, 2} // want `slice literal allocates`
}

//smrlint:noalloc
func addrLit() *frame {
	return &frame{} // want `&composite literal allocates`
}

//smrlint:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//smrlint:noalloc
func constConcat() string {
	return "a" + "b" // near miss: constant-folded
}

//smrlint:noalloc
func closure(n int) func() int {
	return func() int { return n } // want `function literal captures n and allocates a closure`
}

//smrlint:noalloc
func freeLit() func() int {
	return func() int { return 42 } // near miss: captures nothing
}

//smrlint:noalloc
func ignored(f *frame, id uint64) {
	//smrlint:ignore noalloc cold shutdown path, measured free
	f.ids = append(f.ids, id) // suppressed by the justified ignore above
}

func sink(any) {}
