// Fixture for the applydet analyzer: true positives (clock reads, randomness,
// goroutines, channel operations, order-dependent map ranges — direct, via
// same-package helpers, and via imported facts) and near misses (map writes
// and deletes, commutative accumulation, collect-then-sort, non-root
// functions like Snapshot, justified ignores).
package applydet

import (
	"math/rand"
	"sort"
	"time"

	"applydet/dep"
)

// Entry mirrors the log's entry shape.
type Entry struct {
	ID  uint64
	Cmd []byte
}

type machine struct {
	state map[string]string
	total int
}

func (m *machine) Apply(e Entry) ([]byte, error) {
	stamp := time.Now() // want `call to time\.Now in code reachable from machine\.Apply`
	_ = stamp
	m.state["k"] = string(e.Cmd) // near miss: map writes are deterministic
	delete(m.state, "old")       // near miss: deletes too
	m.total++                    // near miss: commutative accumulation
	return m.helper(), nil
}

func (m *machine) helper() []byte {
	n := rand.Intn(2) // want `call to math/rand\.Intn in code reachable from machine\.Apply`
	return []byte{byte(n)}
}

func (m *machine) Restore(snap []byte, index uint64) error {
	time.Sleep(time.Millisecond) // want `call to time\.Sleep in code reachable from machine\.Restore`
	return nil
}

type spawner struct {
	ch chan int
}

func (s *spawner) Apply(e Entry) ([]byte, error) {
	go func() {}() // want `goroutine spawn in code reachable from spawner\.Apply`
	s.ch <- 1      // want `channel send in code reachable from spawner\.Apply`
	v := <-s.ch    // want `channel receive in code reachable from spawner\.Apply`
	close(s.ch)    // want `channel close in code reachable from spawner\.Apply`
	_ = v
	select {} // want `select statement in code reachable from spawner\.Apply`
}

type rangeMachine struct {
	state map[string]string
}

func (r *rangeMachine) Apply(e Entry) ([]byte, error) {
	var out []byte
	for k := range r.state {
		out = append(out, k...) // want `append to out inside a map range is order-dependent`
	}
	label := ""
	for k := range r.state {
		label += k // want `string accumulation over a map range is order-dependent`
	}
	_ = label
	return out, nil
}

func (r *rangeMachine) MigrateOut(keep func(string) bool) ([]byte, int, error) {
	keys := make([]string, 0, len(r.state))
	for k := range r.state {
		keys = append(keys, k) // near miss: collected keys are sorted below
	}
	sort.Strings(keys)
	for k := range r.state {
		if !keep(k) {
			delete(r.state, k) // near miss: deletes are order-independent
		}
	}
	return nil, len(keys), nil
}

func (r *rangeMachine) Snapshot() ([]byte, error) {
	var b []byte
	for k := range r.state {
		b = append(b, k...) // near miss: Snapshot is not a determinism root
	}
	return b, nil
}

//smrlint:deterministic
func replayCheck() {
	time.Sleep(0) // want `call to time\.Sleep in code reachable from replayCheck`
}

type stamped struct{}

func (s *stamped) Apply(e Entry) ([]byte, error) {
	v := dep.Stamp() // want `call to Stamp is nondeterministic \(time\.Now\) in code reachable from stamped\.Apply`
	_ = v
	return nil, nil
}

func (s *stamped) Restore(snap []byte, index uint64) error {
	//smrlint:ignore applydet replay stamp feeds metrics only, not state
	time.Sleep(0) // suppressed by the justified ignore above
	return nil
}

func wallClock() int64 {
	return time.Now().UnixNano() // near miss: not reachable from any root
}
