// Fixture dependency for the applydet analyzer: exports a nondeterministic
// helper whose NondetFact must flow to importing packages.
package dep

import "time"

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}
