package applydet_test

import (
	"testing"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/analysistest"
	"rdmaagreement/internal/lint/applydet"
)

func TestApplyDet(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), []*analysis.Analyzer{applydet.Analyzer}, "applydet/dep", "applydet")
}
