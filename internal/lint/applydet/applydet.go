// Package applydet implements the smrlint analyzer that machine-checks the
// replicated-state-machine determinism contract: every replica must compute
// the identical result for the identical entry sequence, so code reachable
// from StateMachine.Apply / Restore and Migrator.MigrateOut / MigrateIn must
// not consult wall clocks, randomness, scheduling, or map iteration order.
//
// Roots are detected structurally — an Apply method whose first parameter is
// a struct carrying a Cmd []byte field, a Restore([]byte, …) method on a type
// that also has Apply, MigrateOut(func(string) bool …), and
// MigrateIn([]byte, func(string) bool …) — plus any function annotated
// //smrlint:deterministic.
//
// Forbidden in reachable code:
//
//   - time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker;
//   - any use of math/rand, math/rand/v2, or crypto/rand;
//   - go statements (scheduling is nondeterministic);
//   - channel operations: send, receive, close, select;
//   - order-dependent map iteration: appending to a slice declared outside
//     the range (unless the slice is later passed to sort or slices, the
//     collect-then-sort idiom) or accumulating a string with +=. Map writes,
//     deletes, and commutative numeric accumulation remain allowed.
//
// Reachability is the static call graph: direct calls within the package are
// walked, and cross-package calls are checked against exported facts, so a
// nondeterministic helper in internal/shard is caught from an Apply in the
// root package. Dynamic calls (interface methods, function values) are not
// followed — the callee's own Apply/annotation coverage is the backstop.
package applydet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/directive"
)

// NondetFact marks an exported function as nondeterministic for callers in
// other packages.
type NondetFact struct {
	Reason string
}

// AFact marks NondetFact as an analysis fact.
func (*NondetFact) AFact() {}

// Analyzer is the applydet analysis.
var Analyzer = &analysis.Analyzer{
	Name:      "applydet",
	Doc:       "check determinism of code reachable from Apply/Restore/MigrateOut/MigrateIn",
	Run:       run,
	FactTypes: []analysis.Fact{(*NondetFact)(nil)},
}

// violation is a direct nondeterministic operation inside one function.
type violation struct {
	pos    token.Pos
	what   string // e.g. "time.Now"
	detail string // full diagnostic clause
}

// funcInfo is the per-function summary the call-graph walk consumes.
type funcInfo struct {
	decl       *ast.FuncDecl
	violations []violation
	callees    []*types.Func
}

func run(pass *analysis.Pass) (any, error) {
	infos := make(map[*types.Func]*funcInfo)
	var roots []*types.Func

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[fn] = summarize(pass, fd)
			if isRoot(pass, fd) {
				roots = append(roots, fn)
			}
		}
	}

	// Export facts: any function that transitively reaches a violation is
	// nondeterministic from its callers' point of view.
	memo := make(map[*types.Func]string)
	for fn := range infos {
		if reason := transitiveReason(pass, fn, infos, memo, make(map[*types.Func]bool)); reason != "" {
			pass.ExportObjectFact(fn, &NondetFact{Reason: reason})
		}
	}

	// Report every violation reachable from a root, once per site.
	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		reportReachable(pass, root, rootName(root), infos, reported, make(map[*types.Func]bool))
	}
	return nil, nil
}

// transitiveReason returns the first nondeterminism reason reachable from fn,
// or "".
func transitiveReason(pass *analysis.Pass, fn *types.Func, infos map[*types.Func]*funcInfo, memo map[*types.Func]string, visiting map[*types.Func]bool) string {
	if r, ok := memo[fn]; ok {
		return r
	}
	if visiting[fn] {
		return ""
	}
	visiting[fn] = true
	defer delete(visiting, fn)

	info := infos[fn]
	if info == nil {
		// Cross-package callee: consult its exported fact.
		var fact NondetFact
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg && pass.ImportObjectFact(fn, &fact) {
			memo[fn] = fact.Reason
			return fact.Reason
		}
		memo[fn] = ""
		return ""
	}
	if len(info.violations) > 0 {
		memo[fn] = info.violations[0].what
		return info.violations[0].what
	}
	for _, callee := range info.callees {
		if r := transitiveReason(pass, callee, infos, memo, visiting); r != "" {
			reason := fmt.Sprintf("calls %s: %s", callee.Name(), r)
			memo[fn] = reason
			return reason
		}
	}
	memo[fn] = ""
	return ""
}

// reportReachable walks the static call graph from root and reports each
// violation at its site.
func reportReachable(pass *analysis.Pass, fn *types.Func, root string, infos map[*types.Func]*funcInfo, reported map[token.Pos]bool, seen map[*types.Func]bool) {
	if seen[fn] {
		return
	}
	seen[fn] = true
	info := infos[fn]
	if info == nil {
		return
	}
	for _, v := range info.violations {
		if !reported[v.pos] {
			reported[v.pos] = true
			pass.Reportf(v.pos, "%s in code reachable from %s; replicas must apply deterministically", v.detail, root)
		}
	}
	for _, callee := range info.callees {
		if infos[callee] == nil {
			// Cross-package: report at the first call site if the callee
			// carries a nondeterminism fact.
			var fact NondetFact
			if callee.Pkg() != nil && callee.Pkg() != pass.Pkg && pass.ImportObjectFact(callee, &fact) {
				pos := callSite(info.decl, pass, callee)
				if pos.IsValid() && !reported[pos] {
					reported[pos] = true
					pass.Reportf(pos, "call to %s is nondeterministic (%s) in code reachable from %s", callee.Name(), fact.Reason, root)
				}
			}
			continue
		}
		reportReachable(pass, callee, root, infos, reported, seen)
	}
}

// callSite finds the first call to callee within decl.
func callSite(decl *ast.FuncDecl, pass *analysis.Pass, callee *types.Func) token.Pos {
	var pos token.Pos
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if staticCallee(pass, call) == callee {
			pos = call.Pos()
			return false
		}
		return true
	})
	return pos
}

// summarize collects a function's direct violations and static callees.
func summarize(pass *analysis.Pass, fd *ast.FuncDecl) *funcInfo {
	info := &funcInfo{decl: fd}

	// Candidate order-dependent appends inside map ranges, suppressed when
	// the target is later sorted (the collect-then-sort idiom).
	type rangeAppend struct {
		pos    token.Pos
		target types.Object
		name   string
	}
	var rangeAppends []rangeAppend
	sorted := make(map[types.Object]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			info.violations = append(info.violations, violation{n.Pos(), "spawns a goroutine", "goroutine spawn"})
		case *ast.SendStmt:
			info.violations = append(info.violations, violation{n.Pos(), "channel send", "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				info.violations = append(info.violations, violation{n.Pos(), "channel receive", "channel receive"})
			}
		case *ast.SelectStmt:
			info.violations = append(info.violations, violation{n.Pos(), "select statement", "select statement"})
		case *ast.CallExpr:
			if v, ok := callViolation(pass, n); ok {
				info.violations = append(info.violations, v)
				return true
			}
			if callee := staticCallee(pass, n); callee != nil {
				info.callees = append(info.callees, callee)
			}
			// Note sort/slices calls for the collect-then-sort suppression.
			if pkg, sel := pkgCall(pass, n); pkg == "sort" || pkg == "slices" {
				_ = sel
				for _, arg := range n.Args {
					markSorted(pass, arg, sorted)
				}
			}
		case *ast.RangeStmt:
			if _, isMap := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				as, ok := inner.(*ast.AssignStmt)
				if !ok {
					return true
				}
				if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
					if isString(pass.TypesInfo.TypeOf(as.Lhs[0])) && declaredOutside(pass, as.Lhs[0], n) {
						info.violations = append(info.violations, violation{as.Pos(), "order-dependent map iteration", fmt.Sprintf("string accumulation over a map range is order-dependent (%s)", render(as.Lhs[0]))})
					}
					return true
				}
				if len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || builtinName(pass, call) != "append" {
						continue
					}
					lhs := as.Lhs[i]
					if !declaredOutside(pass, lhs, n) {
						continue
					}
					rangeAppends = append(rangeAppends, rangeAppend{as.Pos(), rootObject(pass, lhs), render(lhs)})
				}
				return true
			})
		}
		return true
	})

	for _, ra := range rangeAppends {
		if ra.target != nil && sorted[ra.target] {
			continue
		}
		info.violations = append(info.violations, violation{ra.pos, "order-dependent map iteration", fmt.Sprintf("append to %s inside a map range is order-dependent unless sorted afterwards", ra.name)})
	}
	return info
}

// forbiddenTime is the set of time functions that read clocks or schedule.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// callViolation classifies calls that are themselves nondeterministic.
func callViolation(pass *analysis.Pass, call *ast.CallExpr) (violation, bool) {
	if builtinName(pass, call) == "close" {
		return violation{call.Pos(), "channel close", "channel close"}, true
	}
	pkg, sel := pkgCall(pass, call)
	switch pkg {
	case "time":
		if forbiddenTime[sel] {
			return violation{call.Pos(), "time." + sel, "call to time." + sel}, true
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return violation{call.Pos(), pkg + "." + sel, "call to " + pkg + "." + sel}, true
	}
	return violation{}, false
}

// pkgCall resolves a pkg.Fn(...) call to its import path and selector name.
func pkgCall(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pkg.Imported().Path(), sel.Sel.Name
}

// staticCallee resolves a call to a statically known function or method.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isRoot detects the determinism-contract entry points.
func isRoot(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if _, ok := directive.Marker(fd.Doc, "deterministic"); ok {
		return true
	}
	if fd.Recv == nil {
		return false
	}
	params := fd.Type.Params
	switch fd.Name.Name {
	case "Apply":
		return params != nil && len(params.List) > 0 && hasCmdField(pass.TypesInfo.TypeOf(params.List[0].Type))
	case "Restore":
		if params == nil || len(params.List) == 0 || !isByteSlice(pass.TypesInfo.TypeOf(params.List[0].Type)) {
			return false
		}
		return recvHasApply(pass, fd)
	case "MigrateOut":
		return params != nil && len(params.List) > 0 && isKeepFunc(pass.TypesInfo.TypeOf(params.List[0].Type))
	case "MigrateIn":
		return params != nil && len(params.List) >= 2 &&
			isByteSlice(pass.TypesInfo.TypeOf(params.List[0].Type)) &&
			isKeepFunc(pass.TypesInfo.TypeOf(params.List[1].Type))
	}
	return false
}

// recvHasApply reports whether the receiver's type also has an Apply method.
func recvHasApply(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "Apply")
	_, ok := obj.(*types.Func)
	return ok
}

// hasCmdField matches the log entry shape: a struct with a Cmd []byte field.
func hasCmdField(t types.Type) bool {
	if t == nil {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Cmd" {
			return isByteSlice(st.Field(i).Type())
		}
	}
	return false
}

// isKeepFunc matches func(string) bool, the migration keep predicate.
func isKeepFunc(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isString(sig.Params().At(0).Type()) && isBool(sig.Results().At(0).Type())
}

func rootName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
		}
		if named, okn := t.(*types.Named); okn {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// declaredOutside reports whether the assignment target's root is declared
// outside the range statement (a field always is).
func declaredOutside(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	obj := rootObject(pass, lhs)
	if obj == nil {
		return false
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return true
	}
	if _, isSel := lhs.(*ast.SelectorExpr); isSel {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// rootObject resolves the base identifier's object for a selector chain.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		// For fields, the field object identifies the accumulation target.
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.ParenExpr:
		return rootObject(pass, e.X)
	}
	return nil
}

// markSorted records the objects appearing in a sort/slices call argument.
func markSorted(pass *analysis.Pass, arg ast.Expr, sorted map[types.Object]bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil {
				sorted[obj] = true
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok {
				sorted[sel.Obj()] = true
			}
		}
		return true
	})
}

func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsBuiltin() {
		return ""
	}
	return id.Name
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

// render flattens an expression for diagnostics.
func render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return render(e.X)
	}
	return "target"
}
