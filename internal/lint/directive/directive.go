// Package directive parses the //smrlint:* comment vocabulary shared by the
// analyzers and the drivers:
//
//	//smrlint:noalloc                 — function must avoid allocating constructs
//	//smrlint:deterministic           — function is an extra applydet root
//	//smrlint:holds mu                — function runs with the receiver's mu held
//	//smrlint:wire store|admission|anonymous — classify one wire code const
//	//smrlint:wire taxonomy|producer|consumer — classify a package's wire role
//	//smrlint:ignore <analyzer> <reason>      — suppress one finding, reason required
//	// guarded by mu                  — field is protected by the sibling mutex mu
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "//smrlint:"

// Marker scans a comment group for //smrlint:<name> and returns the text
// after the name, trimmed. A group may carry several markers; the first with
// the given name wins.
func Marker(cg *ast.CommentGroup, name string) (args string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if rest, found := cutMarker(c.Text, name); found {
			return rest, true
		}
	}
	return "", false
}

// MarkerPos is Marker plus the position of the matched comment.
func MarkerPos(cg *ast.CommentGroup, name string) (args string, pos token.Pos, ok bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	for _, c := range cg.List {
		if rest, found := cutMarker(c.Text, name); found {
			return rest, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

func cutMarker(text, name string) (string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if rest == name {
		return "", true
	}
	if strings.HasPrefix(rest, name) && (rest[len(name)] == ' ' || rest[len(name)] == '\t') {
		return strings.TrimSpace(rest[len(name):]), true
	}
	return "", false
}

// GuardedBy parses the "// guarded by <mu>" convention off a struct field's
// comment or doc group, returning the named sibling mutex field.
func GuardedBy(cg *ast.CommentGroup) (mu string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		const tag = "guarded by "
		if i := strings.Index(text, tag); i >= 0 {
			rest := strings.TrimSpace(text[i+len(tag):])
			if f := strings.Fields(rest); len(f) > 0 {
				return strings.TrimRight(f[0], ".,;:"), true
			}
		}
	}
	return "", false
}

// An Ignore is one //smrlint:ignore directive.
type Ignore struct {
	Analyzer string    // analyzer the suppression applies to
	Reason   string    // justification; the drivers reject empty ones
	Pos      token.Pos // position of the directive comment
	Line     int       // line the directive sits on
	File     string    // file name
}

// Ignores collects every //smrlint:ignore directive in files. A directive
// suppresses findings of its analyzer on the same line and on the line
// directly below (so it can ride as a trailing comment or sit above the
// flagged statement).
func Ignores(fset *token.FileSet, files []*ast.File) []Ignore {
	var out []Ignore
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, found := cutMarker(c.Text, "ignore")
				if !found {
					continue
				}
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out = append(out, Ignore{
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
					Pos:      c.Pos(),
					Line:     pos.Line,
					File:     pos.Filename,
				})
			}
		}
	}
	return out
}
