// Package load enumerates and typechecks the packages smrlint analyzes.
//
// The standalone driver cannot depend on golang.org/x/tools/go/packages (the
// repository builds with no module downloads), so it speaks to the go command
// directly: `go list -export -deps -json` yields every package in dependency
// order together with build-cache export data for the compiled dependencies.
// Packages of the main module are parsed and typechecked from source (the
// analyzers need syntax); everything else is imported from export data, which
// is both faster and immune to source drift in GOROOT.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one typechecked main-module package, ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, non-test files only

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Result is the loaded set: main-module packages in dependency order
// (dependencies first), sharing one FileSet.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path      string
		Main      bool
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load lists patterns (plus all dependencies) in dir and typechecks every
// main-module package from source. The go command compiles dependencies as a
// side effect of -export, so a cold cache costs one build.
func Load(dir string, patterns ...string) (*Result, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	exports := make(map[string]string, len(listed))
	goVersion := ""
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
	}

	imp := newImporter(fset, exports)
	res := &Result{Fset: fset}
	for _, p := range listed {
		if p.Standard || p.Module == nil || !p.Module.Main {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typecheck(fset, imp, p, goVersion)
		if err != nil {
			return nil, err
		}
		imp.module[p.ImportPath] = pkg.Pkg
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

// Check typechecks one package's files against an importer — the shared core
// of the standalone loader and the vet -vettool unit driver.
func Check(fset *token.FileSet, imp types.Importer, path, goVersion string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(error) {}, // collect everything; first error returned below
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return pkg, info, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, p listPackage, goVersion string) (*Package, error) {
	out := &Package{ImportPath: p.ImportPath, Dir: p.Dir, Fset: fset}
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		out.GoFiles = append(out.GoFiles, path)
		out.Files = append(out.Files, f)
	}
	pkg, info, err := Check(fset, imp, p.ImportPath, goVersion, out.Files)
	if err != nil {
		return nil, err
	}
	out.Pkg, out.Info = pkg, info
	return out, nil
}

// ExportImporter builds a gc export-data importer for the named packages
// (and their dependencies) via one `go list -export -deps` run in the current
// directory. The analysistest harness uses it to resolve fixture imports of
// the standard library.
func ExportImporter(fset *token.FileSet, paths []string) (types.Importer, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return newImporter(fset, exports), nil
}

// moduleImporter resolves main-module packages to their source-typechecked
// form (so object identity is shared with the packages under analysis) and
// everything else through gc export data from the build cache.
type moduleImporter struct {
	module map[string]*types.Package
	gc     types.Importer
}

func newImporter(fset *token.FileSet, exports map[string]string) *moduleImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &moduleImporter{
		module: make(map[string]*types.Package),
		gc:     importer.ForCompiler(fset, "gc", lookup),
	}
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.module[path]; ok {
		return pkg, nil
	}
	return m.gc.Import(path)
}
