// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: Analyzer, Pass, Diagnostic and
// object facts. The repository builds hermetically (no module downloads), so
// smrlint cannot depend on x/tools; this shim keeps the analyzers written
// against the same shapes, making a later swap to the real framework a
// mechanical import change.
//
// Only the subset smrlint needs is implemented: single-pass analyzers over a
// typechecked package, position-based diagnostics, and gob-serializable
// object facts on package-level objects (the cross-package channel wireclosed
// uses to see the wire taxonomy's classification from client and kvserver).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis: a named check over a typechecked
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //smrlint:ignore directives.
	Name string
	// Doc is the analyzer's documentation, shown by cmd/smrlint -help.
	Doc string
	// Run applies the analyzer to a package.
	Run func(*Pass) (any, error)
	// FactTypes lists the fact types the analyzer exports or imports. Each
	// must be a pointer to a gob-encodable struct. Declaring them here is
	// what lets drivers serialize facts across processes (vet -vettool mode).
	FactTypes []Fact
}

// A Fact is a datum attached to a package-level object by one package's
// analysis and visible to the analysis of importing packages. Facts must be
// pointers to gob-encodable structs.
type Fact interface {
	// AFact marks the type as a fact and is otherwise unused.
	AFact()
}

// A Pass is one analyzer applied to one package: the syntax, the type
// information, and the reporting and fact channels back to the driver.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// Facts is the driver's fact store. Nil when the driver does not
	// support facts; the accessors below treat that as an empty store.
	Facts FactStore
}

// FactStore is the driver-side half of fact plumbing.
type FactStore interface {
	// ExportObjectFact attaches fact to obj, an object of the package under
	// analysis.
	ExportObjectFact(obj types.Object, fact Fact)
	// ImportObjectFact copies into fact the fact of the same concrete type
	// previously attached to obj (by this or an earlier pass), reporting
	// whether one existed.
	ImportObjectFact(obj types.Object, fact Fact) bool
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj for importing packages to see.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts != nil {
		p.Facts.ExportObjectFact(obj, fact)
	}
}

// ImportObjectFact reads the fact of fact's concrete type attached to obj,
// reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.Facts != nil && p.Facts.ImportObjectFact(obj, fact)
}

// A Diagnostic is one finding: a position and a message. Category is the
// analyzer name (filled by the driver if empty).
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
