// Package checker runs a set of analyzers over typechecked packages: it owns
// the in-memory fact store, the //smrlint:ignore suppression pass, and the
// finding format shared by the standalone driver, the vet unit driver, and
// the analysistest harness.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/directive"
)

// A Finding is one reportable diagnostic after suppression filtering.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Facts is the in-memory object-fact store shared by every pass of one
// checker run. All packages are analyzed in one process in dependency order,
// so a fact exported while analyzing a dependency is visible — by object
// identity — when its importers are analyzed.
type Facts struct {
	m map[types.Object]map[reflect.Type]analysis.Fact
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: make(map[types.Object]map[reflect.Type]analysis.Fact)}
}

// ExportObjectFact implements analysis.FactStore.
func (s *Facts) ExportObjectFact(obj types.Object, fact analysis.Fact) {
	if obj == nil {
		return
	}
	byType := s.m[obj]
	if byType == nil {
		byType = make(map[reflect.Type]analysis.Fact)
		s.m[obj] = byType
	}
	byType[reflect.TypeOf(fact)] = fact
}

// ImportObjectFact implements analysis.FactStore.
func (s *Facts) ImportObjectFact(obj types.Object, fact analysis.Fact) bool {
	stored, ok := s.m[obj][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// All returns every stored fact, for serialization by the unit driver.
func (s *Facts) All() map[types.Object]map[reflect.Type]analysis.Fact { return s.m }

// A Target is one package to analyze.
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Analyze runs every analyzer over one package, appending suppressed-and-
// filtered findings. Directive errors (an ignore with no reason, an ignore
// naming no known analyzer) are findings themselves: a suppression that
// cannot be audited is a violation of the fix-forward policy.
func Analyze(t Target, analyzers []*analysis.Analyzer, facts *Facts) ([]Finding, error) {
	var raw []analysis.Diagnostic
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.Info,
			Facts:     facts,
			Report: func(d analysis.Diagnostic) {
				if d.Category == "" {
					d.Category = a.Name
				}
				raw = append(raw, d)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", t.Pkg.Path(), a.Name, err)
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	ignores := directive.Ignores(t.Fset, t.Files)
	var out []Finding
	for _, ig := range ignores {
		if ig.Reason == "" {
			out = append(out, Finding{
				Pos:      t.Fset.Position(ig.Pos),
				Analyzer: "smrlint",
				Message:  fmt.Sprintf("//smrlint:ignore %s needs a non-empty reason", ig.Analyzer),
			})
		}
		if !known[ig.Analyzer] {
			out = append(out, Finding{
				Pos:      t.Fset.Position(ig.Pos),
				Analyzer: "smrlint",
				Message:  fmt.Sprintf("//smrlint:ignore names unknown analyzer %q", ig.Analyzer),
			})
		}
	}

	for _, d := range raw {
		pos := t.Fset.Position(d.Pos)
		if suppressed(ignores, d.Category, pos) {
			continue
		}
		out = append(out, Finding{Pos: pos, Analyzer: d.Category, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// suppressed reports whether an ignore directive with a non-empty reason
// covers the diagnostic: same analyzer, same file, on the finding's line or
// the line directly above it.
func suppressed(ignores []directive.Ignore, analyzer string, pos token.Position) bool {
	for _, ig := range ignores {
		if ig.Analyzer != analyzer || ig.Reason == "" || ig.File != pos.Filename {
			continue
		}
		if ig.Line == pos.Line || ig.Line == pos.Line-1 {
			return true
		}
	}
	return false
}
