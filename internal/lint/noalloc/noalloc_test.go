package noalloc_test

import (
	"testing"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/analysistest"
	"rdmaagreement/internal/lint/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), []*analysis.Analyzer{noalloc.Analyzer}, "noalloc")
}
