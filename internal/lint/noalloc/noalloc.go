// Package noalloc implements the smrlint analyzer that checks functions
// annotated //smrlint:noalloc — the codec encode/decode path, the metrics
// record path, and friends whose per-op allocation budget the bench gates pin
// — for allocating constructs:
//
//   - append without preallocated-cap evidence (the destination must be a
//     slice parameter, built by a 3-arg make, or resliced to [:0] earlier in
//     the function — the pooled-envelope and right-sized-encode patterns);
//   - string ↔ []byte conversions, except in map-index position (m[string(b)]
//     is compiler-optimized and does not allocate);
//   - non-constant string concatenation;
//   - make(map…)/make(chan…), new, map/slice composite literals, and &T{…};
//   - function literals that capture variables (closures allocate);
//   - fmt calls and interface boxing of non-pointer values, both allowed
//     inside return statements only: error exit paths may allocate, the
//     steady-state path may not.
//
// The check is per annotated function: callees are not walked. Transitive
// allocation budgets are pinned dynamically by the alloc regression tests;
// this analyzer catches the accidental allocation introduced by an edit to an
// annotated function itself.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/directive"
)

// Analyzer is the noalloc analysis.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check //smrlint:noalloc functions for allocating constructs",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := directive.Marker(fd.Doc, "noalloc"); ok {
				checkFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	parents := parentMap(fd.Body)

	// Slice-typed parameters are append targets by contract: the caller owns
	// the preallocation policy (append-style APIs à la binary.AppendUvarint).
	params := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := pass.TypesInfo.TypeOf(field.Type).Underlying().(*types.Slice); !ok {
				continue
			}
			for _, name := range field.Names {
				params[name.Name] = true
			}
		}
	}

	evidence := collectEvidence(pass, fd, params)

	hasEvidence := func(chain string, pos token.Pos) bool {
		if params[chain] {
			return true
		}
		for _, e := range evidence {
			if e.chain == chain && e.pos < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, parents, hasEvidence)
		case *ast.FuncLit:
			if name, ok := captures(pass, n); ok {
				pass.Reportf(n.Pos(), "function literal captures %s and allocates a closure", name)
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := pass.TypesInfo.Types[n]
				if tv.Value == nil && isString(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation allocates")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node, hasEvidence func(string, token.Pos) bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	switch {
	case tv.IsType():
		checkConversion(pass, call, parents)
		return
	case tv.IsBuiltin():
		name := builtinName(call.Fun)
		switch name {
		case "append":
			dst := call.Args[0]
			if inlineCapEvidence(pass, dst) {
				return
			}
			chain, rok := render(dst)
			if !rok || !hasEvidence(chain, call.Pos()) {
				pass.Reportf(call.Pos(), "append to %s without preallocated-cap evidence (make with cap, [:0] reslice, or slice parameter) may allocate", describe(dst))
			}
		case "make":
			switch pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(type) {
			case *types.Map:
				pass.Reportf(call.Pos(), "make(map) allocates")
			case *types.Chan:
				pass.Reportf(call.Pos(), "make(chan) allocates")
			}
		case "new":
			pass.Reportf(call.Pos(), "new allocates")
		}
		return
	}

	// fmt calls: error exit paths (returns) may format; the steady-state path
	// may not.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				if !insideReturn(call, parents) {
					pass.Reportf(call.Pos(), "fmt.%s allocates; only return statements (error paths) may format", sel.Sel.Name)
				}
				return
			}
		}
	}

	// Interface boxing of non-pointer arguments, likewise allowed on return
	// paths only.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || insideReturn(call, parents) {
		return
	}
	for i, arg := range call.Args {
		param := paramType(sig, i, call.Ellipsis.IsValid())
		if param == nil {
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		av := pass.TypesInfo.Types[arg]
		if av.IsNil() || av.Type == nil {
			continue
		}
		switch av.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s boxes a non-pointer %s into an interface and allocates", describe(arg), av.Type.String())
	}
}

// checkConversion flags string↔[]byte conversions outside map-index position.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	to := pass.TypesInfo.TypeOf(call)
	from := pass.TypesInfo.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return
	}
	s2b := isString(from) && isByteSlice(to)
	b2s := isByteSlice(from) && isString(to)
	if !s2b && !b2s {
		return
	}
	if b2s && isMapIndex(pass, call, parents) {
		return // m[string(b)] is compiler-optimized: no allocation
	}
	pass.Reportf(call.Pos(), "%s conversion allocates a copy", convName(s2b))
}

func convName(s2b bool) string {
	if s2b {
		return "string→[]byte"
	}
	return "[]byte→string"
}

// evidenceEvent marks a chain having preallocated-cap evidence from its
// position onward.
type evidenceEvent struct {
	chain string
	pos   token.Pos
}

// collectEvidence walks assignments in source order: 3-arg makes, [:0]
// reslices, and appends that chain off an already-evidenced destination all
// give their assignee evidence.
func collectEvidence(pass *analysis.Pass, fd *ast.FuncDecl, params map[string]bool) []evidenceEvent {
	var evidence []evidenceEvent
	has := func(chain string, pos token.Pos) bool {
		if params[chain] {
			return true
		}
		for _, e := range evidence {
			if e.chain == chain && e.pos < pos {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			chain, rok := render(lhs)
			if !rok {
				continue
			}
			rhs := as.Rhs[i]
			if capEvidence(pass, rhs, has, as.Pos()) {
				evidence = append(evidence, evidenceEvent{chain: chain, pos: as.Pos()})
			}
		}
		return true
	})
	return evidence
}

// capEvidence reports whether rhs yields a slice whose capacity was
// explicitly provisioned: make([]T, n, cap), x[:0] (capacity reuse), or an
// append chaining off an evidenced destination.
func capEvidence(pass *analysis.Pass, rhs ast.Expr, has func(string, token.Pos) bool, pos token.Pos) bool {
	switch rhs := rhs.(type) {
	case *ast.CallExpr:
		if tv, ok := pass.TypesInfo.Types[rhs.Fun]; ok && tv.IsBuiltin() {
			switch builtinName(rhs.Fun) {
			case "make":
				return len(rhs.Args) == 3
			case "append":
				if inlineCapEvidence(pass, rhs.Args[0]) {
					return true
				}
				chain, rok := render(rhs.Args[0])
				return rok && has(chain, pos)
			}
		}
	case *ast.SliceExpr:
		return isZeroReslice(rhs)
	}
	return false
}

// inlineCapEvidence matches append destinations that carry evidence in the
// expression itself: append(x[:0], …) and append(make([]T, 0, n), …).
func inlineCapEvidence(pass *analysis.Pass, dst ast.Expr) bool {
	switch dst := dst.(type) {
	case *ast.SliceExpr:
		return isZeroReslice(dst)
	case *ast.CallExpr:
		if tv, ok := pass.TypesInfo.Types[dst.Fun]; ok && tv.IsBuiltin() && builtinName(dst.Fun) == "make" {
			return len(dst.Args) == 3
		}
	}
	return false
}

// isZeroReslice matches x[:0] (and x[0:0]): length zero, capacity retained.
func isZeroReslice(se *ast.SliceExpr) bool {
	if se.Slice3 || se.High == nil {
		return false
	}
	lit, ok := se.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// captures reports whether the function literal references a variable
// declared outside it.
func captures(pass *analysis.Pass, fl *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

func insideReturn(n ast.Node, parents map[ast.Node]ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// isMapIndex reports whether call sits in index position of a map index
// expression.
func isMapIndex(pass *analysis.Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	p := parents[call]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			_ = pe
			p = parents[p]
			continue
		}
		break
	}
	idx, ok := p.(*ast.IndexExpr)
	if !ok || idx.Index != call {
		// The conversion may be wrapped in parens; re-check one level up.
		return false
	}
	_, isMap := pass.TypesInfo.TypeOf(idx.X).Underlying().(*types.Map)
	return isMap
}

func parentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return nil // slice passed through, no boxing
		}
		s, ok := sig.Params().At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

func builtinName(fun ast.Expr) string {
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.ParenExpr:
		return builtinName(f.X)
	}
	return ""
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// render flattens a pure identifier/selector chain.
func render(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := render(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return render(e.X)
	}
	return "", false
}

// describe renders an expression for a diagnostic, falling back to a generic
// phrase for complex shapes.
func describe(e ast.Expr) string {
	if s, ok := render(e); ok {
		return s
	}
	return "destination"
}
