// Package analysistest runs an analyzer over fixture packages and compares
// its findings against `// want "regexp"` expectations in the fixture source
// — the same contract as golang.org/x/tools/go/analysis/analysistest, built
// on the in-repo framework.
//
// Fixtures live under testdata/src/<importpath>/. A Run call may name several
// fixture packages; they are typechecked and analyzed in the given order with
// a shared fact store, so cross-package analyzers (wireclosed) can be tested
// end to end: list the fact-exporting package first, its importer second.
// Standard-library imports in fixtures resolve through build-cache export
// data via the go command.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/checker"
	"rdmaagreement/internal/lint/load"
)

// TestData returns the calling test's shared fixture root,
// internal/lint/testdata (the analyzers' test packages all sit one level
// below internal/lint).
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		return "../testdata"
	}
	return filepath.Join(filepath.Dir(file), "..", "testdata")
}

// Run analyzes the fixture packages in order with a shared fact store and
// reports every mismatch between findings and // want expectations through t.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()

	type fixture struct {
		path  string
		files []*ast.File
		names []string
	}
	var fixtures []*fixture
	std := make(map[string]bool)
	local := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		local[p] = true
	}
	for _, p := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(p))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("fixture %s: %v", p, err)
		}
		fx := &fixture{path: p}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			name := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			fx.files = append(fx.files, f)
			fx.names = append(fx.names, name)
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if !local[path] {
					std[path] = true
				}
			}
		}
		if len(fx.files) == 0 {
			t.Fatalf("fixture %s: no Go files in %s", p, dir)
		}
		fixtures = append(fixtures, fx)
	}

	imp, err := stdImporter(fset, std)
	if err != nil {
		t.Fatal(err)
	}
	facts := checker.NewFacts()
	want := make(map[string][]*expectation) // file:line → pending expectations
	var findings []checker.Finding
	for _, fx := range fixtures {
		pkg, info, err := load.Check(fset, imp, fx.path, "", fx.files)
		if err != nil {
			t.Fatalf("fixture %s: %v", fx.path, err)
		}
		imp.local[fx.path] = pkg
		for i, f := range fx.files {
			collectWant(t, fset, fx.names[i], f, want)
		}
		found, err := checker.Analyze(checker.Target{Fset: fset, Files: fx.files, Pkg: pkg, Info: info}, analyzers, facts)
		if err != nil {
			t.Fatalf("fixture %s: %v", fx.path, err)
		}
		findings = append(findings, found...)
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		if !consume(want[key], f.Message) {
			t.Errorf("unexpected finding at %s: %s (%s)", key, f.Message, f.Analyzer)
		}
	}
	var missed []string
	for key, exps := range want {
		for _, e := range exps {
			if !e.matched {
				missed = append(missed, fmt.Sprintf("%s: no finding matched %q", key, e.re.String()))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func consume(exps []*expectation, message string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWant parses `// want "re" "re"` comments, keyed by file:line.
func collectWant(t *testing.T, fset *token.FileSet, filename string, f *ast.File, want map[string][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if strings.HasPrefix(text, "/*") {
				text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
			}
			text = strings.TrimSpace(text)
			idx := strings.Index(text, "want ")
			if idx != 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			key := fmt.Sprintf("%s:%d", filename, line)
			rest := strings.TrimSpace(text[idx+len("want "):])
			for rest != "" {
				var lit string
				var err error
				switch rest[0] {
				case '"':
					end := findStringEnd(rest)
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern: %s", key, rest)
					}
					lit, err = strconv.Unquote(rest[:end])
					rest = strings.TrimSpace(rest[end:])
				case '`':
					end := strings.Index(rest[1:], "`")
					if end < 0 {
						t.Fatalf("%s: unterminated want pattern: %s", key, rest)
					}
					lit = rest[1 : 1+end]
					rest = strings.TrimSpace(rest[2+end:])
				default:
					t.Fatalf("%s: malformed want pattern: %s", key, rest)
				}
				if err != nil {
					t.Fatalf("%s: bad want pattern: %v", key, err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", key, err)
				}
				want[key] = append(want[key], &expectation{re: re})
			}
		}
	}
}

// findStringEnd returns the index just past the closing quote of the
// double-quoted Go string literal at the start of s, or -1.
func findStringEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}

// fixtureImporter resolves fixture packages locally and standard-library
// imports through export data.
type fixtureImporter struct {
	local map[string]*types.Package
	gc    types.Importer
}

func (f *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := f.local[path]; ok {
		return pkg, nil
	}
	if f.gc == nil {
		return nil, fmt.Errorf("fixture imports %q but no std importer is available", path)
	}
	return f.gc.Import(path)
}

// stdImporter builds an export-data importer for the std packages the
// fixtures import, via one `go list -export -deps` run.
func stdImporter(fset *token.FileSet, std map[string]bool) (*fixtureImporter, error) {
	fi := &fixtureImporter{local: make(map[string]*types.Package)}
	if len(std) == 0 {
		return fi, nil
	}
	paths := make([]string, 0, len(std))
	for p := range std {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	imp, err := load.ExportImporter(fset, paths)
	if err != nil {
		return nil, err
	}
	fi.gc = imp
	return fi, nil
}
