package wireclosed_test

import (
	"testing"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/analysistest"
	"rdmaagreement/internal/lint/wireclosed"
)

func TestWireClosed(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), []*analysis.Analyzer{wireclosed.Analyzer}, "wireclosed/tax", "wireclosed/produce", "wireclosed/consume")
}
