// Package wireclosed implements the smrlint analyzer that keeps the wire
// error-code taxonomy closed: every code is classified, and each class's
// obligations — sentinel mapping, HTTP production, retryability, client
// handling — are checked exhaustively, so adding a code without wiring it
// through the stack is a lint error, not a latent 500.
//
// The taxonomy package (marked //smrlint:wire taxonomy in its package doc)
// declares string constants named Code*; each carries a class marker:
//
//	//smrlint:wire store      — lost-ownership codes: must have a Sentinel
//	                            case and be produced (HTTP-mapped) in FromError
//	//smrlint:wire admission  — load-shedding codes: must be in Retryable's
//	                            true cases and must NOT have a Sentinel
//	//smrlint:wire anonymous  — codes with no sentinel identity: must NOT
//	                            have a Sentinel case
//
// A WireCodeFact is exported per classified constant. Downstream packages opt
// in via their package doc: //smrlint:wire consumer requires an Unwrap method
// switching on a Code field to case every admission code; //smrlint:wire
// producer requires every admission code to be referenced (produced) in the
// package. In any package importing the taxonomy, comparing or switching a
// Code field against a string literal that spells a known code value is
// flagged — use the named constant.
package wireclosed

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"rdmaagreement/internal/lint/analysis"
	"rdmaagreement/internal/lint/directive"
)

// WireCodeFact records a wire code constant's class and string value for
// importing packages.
type WireCodeFact struct {
	Class string
	Value string
}

// AFact marks WireCodeFact as an analysis fact.
func (*WireCodeFact) AFact() {}

// Analyzer is the wireclosed analysis.
var Analyzer = &analysis.Analyzer{
	Name:      "wireclosed",
	Doc:       "check exhaustiveness of the closed wire error-code taxonomy",
	Run:       run,
	FactTypes: []analysis.Fact{(*WireCodeFact)(nil)},
}

func run(pass *analysis.Pass) (any, error) {
	switch role(pass) {
	case "taxonomy":
		checkTaxonomy(pass)
	case "consumer":
		checkLiterals(pass)
		checkConsumer(pass)
	case "producer":
		checkLiterals(pass)
		checkProducer(pass)
	default:
		checkLiterals(pass)
	}
	return nil, nil
}

// role reads the package's //smrlint:wire marker from any file's package doc.
func role(pass *analysis.Pass) string {
	for _, f := range pass.Files {
		if args, ok := directive.Marker(f.Doc, "wire"); ok {
			return strings.TrimSpace(args)
		}
	}
	return ""
}

// wireConst is a classified Code* constant in the taxonomy package.
type wireConst struct {
	obj   *types.Const
	pos   token.Pos
	class string
	value string
}

func checkTaxonomy(pass *analysis.Pass) {
	var consts []*wireConst
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Code") {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isString(obj.Type()) {
						continue
					}
					wc := &wireConst{obj: obj, pos: name.Pos(), value: constant.StringVal(obj.Val())}
					args, ok := directive.Marker(vs.Doc, "wire")
					if !ok {
						pass.Reportf(name.Pos(), "wire code %s needs a //smrlint:wire class marker (store, admission, or anonymous)", name.Name)
					} else {
						switch class := strings.TrimSpace(args); class {
						case "store", "admission", "anonymous":
							wc.class = class
						default:
							pass.Reportf(name.Pos(), "wire code %s has unknown class %q (want store, admission, or anonymous)", name.Name, class)
						}
					}
					consts = append(consts, wc)
				}
			}
		}
	}

	sentinelCases := constsInCases(pass, funcDecl(pass, "Sentinel"), nil)
	retryTrue := constsInCases(pass, funcDecl(pass, "Retryable"), returnsTrue)
	fromError := constsReferenced(pass, funcDecl(pass, "FromError"))

	for _, wc := range consts {
		if wc.class != "" {
			pass.ExportObjectFact(wc.obj, &WireCodeFact{Class: wc.class, Value: wc.value})
		}
		name := wc.obj.Name()
		switch wc.class {
		case "store":
			if !sentinelCases[wc.obj] {
				pass.Reportf(wc.pos, "store code %s has no Sentinel case; callers cannot errors.Is it", name)
			}
			if !fromError[wc.obj] {
				pass.Reportf(wc.pos, "store code %s is not produced in FromError (no HTTP mapping)", name)
			}
		case "admission":
			if !retryTrue[wc.obj] {
				pass.Reportf(wc.pos, "admission code %s is not in Retryable's true cases", name)
			}
			if sentinelCases[wc.obj] {
				pass.Reportf(wc.pos, "admission code %s must not have a Sentinel case; clients map it in Unwrap", name)
			}
		case "anonymous":
			if sentinelCases[wc.obj] {
				pass.Reportf(wc.pos, "anonymous code %s must not have a Sentinel case", name)
			}
		}
	}
}

// importedCodes collects classified wire constants from directly imported
// packages via their exported facts.
func importedCodes(pass *analysis.Pass) map[*types.Const]*WireCodeFact {
	codes := make(map[*types.Const]*WireCodeFact)
	for _, imp := range pass.Pkg.Imports() {
		scope := imp.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			var fact WireCodeFact
			if pass.ImportObjectFact(c, &fact) {
				codes[c] = &fact
			}
		}
	}
	return codes
}

// checkConsumer requires an Unwrap method switching on a Code field to case
// every admission code.
func checkConsumer(pass *analysis.Pass) {
	codes := importedCodes(pass)

	var swPos token.Pos
	cased := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Unwrap" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || !isCodeSelector(sw.Tag) {
					return true
				}
				swPos = sw.Pos()
				for _, stmt := range sw.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if obj := usedConst(pass, e); obj != nil {
							cased[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	if !swPos.IsValid() {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Package, "consumer package has no Unwrap method switching on a Code field")
		}
		return
	}
	for c, fact := range codes {
		if fact.Class == "admission" && !cased[c] {
			pass.Reportf(swPos, "admission code %s has no case in Unwrap; clients cannot map it to a sentinel", c.Name())
		}
	}
}

// checkProducer requires every admission code to be referenced in the
// package.
func checkProducer(pass *analysis.Pass) {
	codes := importedCodes(pass)
	used := make(map[types.Object]bool)
	for _, obj := range pass.TypesInfo.Uses {
		if c, ok := obj.(*types.Const); ok {
			used[c] = true
		}
	}
	for c, fact := range codes {
		if fact.Class == "admission" && !used[c] {
			if len(pass.Files) > 0 {
				pass.Reportf(pass.Files[0].Package, "admission code %s is never produced in this package", c.Name())
			}
		}
	}
}

// checkLiterals flags Code-field comparisons and switches against string
// literals spelling known code values.
func checkLiterals(pass *analysis.Pass) {
	codes := importedCodes(pass)
	if len(codes) == 0 {
		return
	}
	byValue := make(map[string]*types.Const, len(codes))
	for c, fact := range codes {
		byValue[fact.Value] = c
	}
	report := func(lit *ast.BasicLit) {
		v, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		if c, ok := byValue[v]; ok {
			pass.Reportf(lit.Pos(), "use %s.%s instead of the literal %q", c.Pkg().Name(), c.Name(), v)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				lit, olit := n.Y.(*ast.BasicLit)
				other := n.X
				if !olit {
					lit, olit = n.X.(*ast.BasicLit)
					other = n.Y
				}
				if olit && lit.Kind == token.STRING && isCodeSelector(other) {
					report(lit)
				}
			case *ast.SwitchStmt:
				if !isCodeSelector(n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							report(lit)
						}
					}
				}
			}
			return true
		})
	}
}

// isCodeSelector matches expressions selecting a field or method named Code.
func isCodeSelector(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Code"
}

// usedConst resolves an expression to the constant it names, if any.
func usedConst(pass *analysis.Pass, e ast.Expr) *types.Const {
	switch e := e.(type) {
	case *ast.Ident:
		c, _ := pass.TypesInfo.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pass.TypesInfo.Uses[e.Sel].(*types.Const)
		return c
	case *ast.ParenExpr:
		return usedConst(pass, e.X)
	}
	return nil
}

// funcDecl finds a top-level function by name.
func funcDecl(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// returnsTrue reports whether a case clause's body begins with return true.
func returnsTrue(cc *ast.CaseClause) bool {
	if len(cc.Body) == 0 {
		return false
	}
	ret, ok := cc.Body[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	id, ok := ret.Results[0].(*ast.Ident)
	return ok && id.Name == "true"
}

// constsInCases collects constants named in the case clauses of switches in
// fn, optionally filtered by a case predicate.
func constsInCases(pass *analysis.Pass, fn *ast.FuncDecl, filter func(*ast.CaseClause) bool) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn == nil || fn.Body == nil {
		return out
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		if filter != nil && !filter(cc) {
			return true
		}
		for _, e := range cc.List {
			if obj := usedConst(pass, e); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// constsReferenced collects every constant used anywhere in fn.
func constsReferenced(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn == nil || fn.Body == nil {
		return out
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
				out[c] = true
			}
		}
		return true
	})
	return out
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
