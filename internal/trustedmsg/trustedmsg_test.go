package trustedmsg

import (
	"context"
	"testing"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/memsim"
	"rdmaagreement/internal/neb"
	"rdmaagreement/internal/regreg"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/types"
)

type cluster struct {
	procs     []types.ProcID
	pool      *memsim.Pool
	ring      *sigs.KeyRing
	endpoints map[types.ProcID]*Endpoint
}

func newCluster(t *testing.T, n int, opts Options) *cluster {
	t.Helper()
	procs := make([]types.ProcID, 0, n)
	for i := 1; i <= n; i++ {
		procs = append(procs, types.ProcID(i))
	}
	pool := memsim.NewPool(3, func(types.MemID) []memsim.RegionSpec {
		return regreg.DynamicLayout(procs)
	}, memsim.Options{})
	ring := sigs.NewKeyRing(procs)
	c := &cluster{procs: procs, pool: pool, ring: ring, endpoints: make(map[types.ProcID]*Endpoint)}
	for _, p := range procs {
		store, err := regreg.NewStore(p, pool.Memories(), 1, &delayclock.Clock{})
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
		b := neb.New(p, procs, store, ring.SignerFor(p), neb.Options{})
		ep := New(p, b, ring.SignerFor(p), opts)
		ep.Start()
		c.endpoints[p] = ep
	}
	t.Cleanup(func() {
		for _, ep := range c.endpoints {
			ep.Stop()
		}
	})
	return c
}

func receiveWithin(t *testing.T, ep *Endpoint, d time.Duration) Received {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	r, err := ep.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive at %s: %v", ep.Self(), err)
	}
	return r
}

func TestBroadcastReceivedByAll(t *testing.T) {
	c := newCluster(t, 3, Options{})
	ctx := context.Background()
	if err := c.endpoints[1].TSend(ctx, BroadcastTo, []byte("hello")); err != nil {
		t.Fatalf("TSend: %v", err)
	}
	for _, p := range c.procs {
		r := receiveWithin(t, c.endpoints[p], 5*time.Second)
		if r.From != 1 || string(r.Msg) != "hello" {
			t.Fatalf("process %v received %+v", p, r)
		}
	}
}

func TestPointToPointOnlyDeliveredToDestination(t *testing.T) {
	c := newCluster(t, 3, Options{})
	ctx := context.Background()
	if err := c.endpoints[1].TSend(ctx, 2, []byte("secret")); err != nil {
		t.Fatalf("TSend: %v", err)
	}
	r := receiveWithin(t, c.endpoints[2], 5*time.Second)
	if r.From != 1 || r.To != 2 || string(r.Msg) != "secret" {
		t.Fatalf("p2 received %+v", r)
	}
	// p3 must not T-receive a message addressed to p2.
	shortCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := c.endpoints[3].Receive(shortCtx); err == nil {
		t.Fatalf("p3 received a message addressed to p2")
	}
}

func TestSequenceOfMessagesArrivesInOrder(t *testing.T) {
	c := newCluster(t, 2, Options{})
	ctx := context.Background()
	msgs := []string{"one", "two", "three"}
	for _, m := range msgs {
		if err := c.endpoints[1].TSend(ctx, BroadcastTo, []byte(m)); err != nil {
			t.Fatalf("TSend %q: %v", m, err)
		}
	}
	for i, want := range msgs {
		r := receiveWithin(t, c.endpoints[2], 5*time.Second)
		if string(r.Msg) != want {
			t.Fatalf("message %d = %q, want %q", i, r.Msg, want)
		}
		if r.Seq != uint64(i+1) {
			t.Fatalf("message %d seq = %d", i, r.Seq)
		}
	}
}

func TestValidatorCanReject(t *testing.T) {
	reject := func(from types.ProcID, history []historyRecord, msg []byte) bool {
		return string(msg) != "bad"
	}
	c := newCluster(t, 2, Options{Validator: reject})
	ctx := context.Background()
	if err := c.endpoints[1].TSend(ctx, BroadcastTo, []byte("bad")); err != nil {
		t.Fatalf("TSend: %v", err)
	}
	if err := c.endpoints[1].TSend(ctx, BroadcastTo, []byte("good")); err != nil {
		t.Fatalf("TSend: %v", err)
	}
	r := receiveWithin(t, c.endpoints[2], 5*time.Second)
	if string(r.Msg) != "good" {
		t.Fatalf("validator did not filter the bad message, got %q", r.Msg)
	}
}

func TestHistoryGrowsWithTraffic(t *testing.T) {
	c := newCluster(t, 2, Options{})
	ctx := context.Background()
	if err := c.endpoints[1].TSend(ctx, BroadcastTo, []byte("a")); err != nil {
		t.Fatalf("TSend: %v", err)
	}
	receiveWithin(t, c.endpoints[2], 5*time.Second)
	if err := c.endpoints[2].TSend(ctx, BroadcastTo, []byte("b")); err != nil {
		t.Fatalf("TSend: %v", err)
	}
	// p1 also receives its own broadcast of "a"; skip to the message from p2.
	var r Received
	for {
		r = receiveWithin(t, c.endpoints[1], 5*time.Second)
		if r.From == 2 {
			break
		}
	}
	if string(r.Msg) != "b" {
		t.Fatalf("p1 received %+v", r)
	}
	// p2's history attached to its message included a received record for
	// "a" and was accepted, which is what this test demonstrates end to end.
	if c.endpoints[1].Clock().Now() == 0 {
		t.Fatalf("delay clock should have advanced through memory operations")
	}
}

func TestSelfReceivesOwnBroadcast(t *testing.T) {
	c := newCluster(t, 2, Options{})
	if err := c.endpoints[1].TSend(context.Background(), BroadcastTo, []byte("loop")); err != nil {
		t.Fatalf("TSend: %v", err)
	}
	r := receiveWithin(t, c.endpoints[1], 5*time.Second)
	if r.From != 1 || string(r.Msg) != "loop" {
		t.Fatalf("self reception = %+v", r)
	}
}
