// Package trustedmsg implements the trusted message-passing primitives
// T-send and T-receive of Clement et al. (Algorithm 3 in the paper), built on
// non-equivocating broadcast and signatures.
//
// A process T-sends a message by broadcasting it, together with its signed
// communication history, through non-equivocating broadcast. A receiver
// T-receives the message only after checking that the attached history is
// properly signed and consistent; this restricts Byzantine senders to
// behaviours that are indistinguishable from crashes, which is what lets the
// Robust Backup protocol run a crash-tolerant consensus algorithm (Paxos)
// among up to f Byzantine processes with only n ≥ 2f+1.
//
// History verification here checks that every history entry is correctly
// signed by the sender and that the sender's own sent-sequence numbers are
// consecutive. Full protocol-conformance checking of the embedded history is
// protocol specific (see DESIGN.md); the Validator hook lets a protocol
// install stricter checks.
package trustedmsg

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/neb"
	"rdmaagreement/internal/sigs"
	"rdmaagreement/internal/types"
)

// BroadcastTo is the destination value meaning "every process".
const BroadcastTo types.ProcID = 0

// historyRecord is one entry of a process's communication history. Records
// are signed by the process that appends them.
type historyRecord struct {
	Direction string       `json:"direction"` // "sent" or "received"
	Seq       uint64       `json:"seq"`
	Peer      types.ProcID `json:"peer"`
	Digest    []byte       `json:"digest"`
}

// envelope is the payload carried by each non-equivocating broadcast.
type envelope struct {
	To      types.ProcID  `json:"to"`
	Msg     []byte        `json:"msg"`
	History []sigs.Signed `json:"history"`
}

// Received is a message accepted by T-receive.
type Received struct {
	From  types.ProcID
	To    types.ProcID
	Seq   uint64
	Msg   []byte
	Stamp delayclock.Stamp
}

// Validator allows protocols to install additional history checks. It
// receives the sender, the decoded history records (already signature
// checked) and the message, and returns false to reject.
type Validator func(from types.ProcID, history []historyRecord, msg []byte) bool

// Options configure an Endpoint.
type Options struct {
	// Validator is the extra history check; nil accepts any
	// signature-consistent history.
	Validator Validator
	// ReceiveBuffer sizes the channel of accepted messages. Zero means 1024.
	ReceiveBuffer int
}

// Endpoint is one process's T-send/T-receive endpoint.
type Endpoint struct {
	self   types.ProcID
	bcast  *neb.Broadcaster
	signer *sigs.Signer
	opts   Options

	mu      sync.Mutex
	history []sigs.Signed
	sentSeq uint64

	received chan Received

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// New creates an endpoint for process self over the given non-equivocating
// broadcaster.
func New(self types.ProcID, bcast *neb.Broadcaster, signer *sigs.Signer, opts Options) *Endpoint {
	if opts.ReceiveBuffer <= 0 {
		opts.ReceiveBuffer = 1024
	}
	return &Endpoint{
		self:     self,
		bcast:    bcast,
		signer:   signer,
		opts:     opts,
		received: make(chan Received, opts.ReceiveBuffer),
	}
}

// Self returns the endpoint's process identifier.
func (e *Endpoint) Self() types.ProcID { return e.self }

// Clock returns the delay clock of the underlying replicated-register store
// (shared through the broadcaster), which accounts the memory round trips
// performed by T-send and T-receive.
func (e *Endpoint) Clock() *delayclock.Clock { return e.bcast.Clock() }

// TSend sends msg to the destination process (or to every process when to is
// BroadcastTo) through non-equivocating broadcast, attaching the sender's
// signed history.
func (e *Endpoint) TSend(ctx context.Context, to types.ProcID, msg []byte) error {
	e.mu.Lock()
	e.sentSeq++
	seq := e.sentSeq
	hist := make([]sigs.Signed, len(e.history))
	copy(hist, e.history)
	e.mu.Unlock()

	env := envelope{To: to, Msg: msg, History: hist}
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("t-send: encode: %w", err)
	}
	if _, err := e.bcast.Broadcast(ctx, payload); err != nil {
		return fmt.Errorf("t-send: %w", err)
	}
	if err := e.appendHistory("sent", seq, to, msg); err != nil {
		return fmt.Errorf("t-send: %w", err)
	}
	return nil
}

// appendHistory signs and appends a record to the endpoint's history.
func (e *Endpoint) appendHistory(direction string, seq uint64, peer types.ProcID, msg []byte) error {
	digest := sha256.Sum256(msg)
	rec := historyRecord{Direction: direction, Seq: seq, Peer: peer, Digest: digest[:]}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("history record: encode: %w", err)
	}
	signed, err := e.signer.Sign(payload)
	if err != nil {
		return fmt.Errorf("history record: sign: %w", err)
	}
	e.mu.Lock()
	e.history = append(e.history, signed)
	e.mu.Unlock()
	return nil
}

// Receive returns the next accepted message, blocking until one is available
// or ctx is cancelled. Start must have been called.
func (e *Endpoint) Receive(ctx context.Context) (Received, error) {
	select {
	case r := <-e.received:
		return r, nil
	case <-ctx.Done():
		return Received{}, fmt.Errorf("t-receive at %s: %w", e.self, ctx.Err())
	}
}

// Start launches the delivery pump: it starts the underlying broadcaster's
// delivery loop and validates every delivered broadcast, pushing accepted
// messages to Receive.
func (e *Endpoint) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel
	e.bcast.Start()
	e.wg.Add(1)
	go e.pump(ctx)
}

// Stop terminates the delivery pump and the underlying broadcaster.
func (e *Endpoint) Stop() {
	if e.cancel != nil {
		e.cancel()
	}
	e.bcast.Stop()
	e.wg.Wait()
}

func (e *Endpoint) pump(ctx context.Context) {
	defer e.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case d := <-e.bcast.Deliveries():
			if rec, ok := e.validate(d); ok {
				select {
				case e.received <- rec:
				case <-ctx.Done():
					return
				}
			}
		}
	}
}

// validate applies the T-receive checks to a delivered broadcast: the
// attached history must be signed by the sender and its sent-sequence numbers
// consecutive, and the protocol validator (if any) must accept it. Messages
// addressed to another process are ignored (they are still part of the
// sender's non-equivocation record).
func (e *Endpoint) validate(d neb.Delivery) (Received, bool) {
	var env envelope
	if err := json.Unmarshal(d.Msg, &env); err != nil {
		return Received{}, false
	}
	records := make([]historyRecord, 0, len(env.History))
	var sentCount uint64
	for _, signed := range env.History {
		if !e.signer.Valid(d.From, signed) {
			return Received{}, false
		}
		var rec historyRecord
		if err := json.Unmarshal(signed.Payload, &rec); err != nil {
			return Received{}, false
		}
		records = append(records, rec)
		if rec.Direction == "sent" {
			sentCount++
			if rec.Seq != sentCount {
				return Received{}, false
			}
		}
	}
	// The history attached to the k-th broadcast must contain exactly k-1
	// sent records (every earlier T-send, in order).
	if sentCount != d.Seq-1 {
		return Received{}, false
	}
	if e.opts.Validator != nil && !e.opts.Validator(d.From, records, env.Msg) {
		return Received{}, false
	}
	if env.To != BroadcastTo && env.To != e.self {
		return Received{}, false
	}
	if err := e.appendHistory("received", d.Seq, d.From, env.Msg); err != nil {
		return Received{}, false
	}
	return Received{
		From:  d.From,
		To:    env.To,
		Seq:   d.Seq,
		Msg:   env.Msg,
		Stamp: e.Clock().Now(),
	}, true
}
