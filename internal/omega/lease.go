package omega

import (
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/types"
)

// LeaseHeartbeatKind is the message kind of lease heartbeats; clusters that
// run a lease detector dedicate this kind to it on every process's router.
const LeaseHeartbeatKind = "omega/lease/heartbeat"

// DefaultLeaseDuration is the lease length used when LeaseOptions.Duration is
// zero but leases are requested.
const DefaultLeaseDuration = 150 * time.Millisecond

// Lease is an epoch-stamped, time-bounded leadership grant: the holder may
// act as the group's proposer — and serve local linearizable reads — until
// Expiry, unless a successor takes over first (which bumps Epoch). Epochs are
// strictly monotone: at most one process ever holds a given epoch, so an
// epoch comparison totally orders any two leadership claims.
type Lease struct {
	// Holder is the process the lease is granted to.
	Holder types.ProcID
	// Epoch is the grant's monotone epoch. Takeovers (elections and forced
	// transfers) increment it; renewals do not.
	Epoch uint64
	// Expiry is when the lease lapses unless renewed. The zero time means
	// the lease never expires (the static-leader degenerate mode).
	Expiry time.Time
	// Stamp is the causal delay-clock reading at the grant or latest
	// renewal, merged from the heartbeats that drove it.
	Stamp delayclock.Stamp
}

// Valid reports whether the lease is in force at the given time.
func (l Lease) Valid(now time.Time) bool {
	return l.Holder != types.NoProcess && (l.Expiry.IsZero() || now.Before(l.Expiry))
}

// LeaseOptions configure a LeaseDetector.
type LeaseOptions struct {
	// Duration is the lease length. Zero or negative disables expiry: the
	// initial holder keeps an eternal epoch-1 lease and Transfer is the only
	// takeover path (the pre-lease static-oracle behavior).
	Duration time.Duration
	// Now is the wall clock, injectable for tests. Nil means time.Now.
	Now func() time.Time
	// OnTakeover, if set, is called with the fresh lease after every epoch
	// change (election or forced transfer), outside the detector's lock —
	// the observability hook behind trace lease-takeover events. Callbacks
	// must be fast; they run on the lease runtime's tick goroutine.
	OnTakeover func(Lease)
}

// LeaseDetector is a lease-granting failure detector: the follower side of
// the cluster grants the current holder a time-bounded lease, renewed by the
// holder's heartbeats, and elects a successor — bumping the epoch — once
// renewals stop and the lease expires. It implements Oracle (the reported
// leader is the current holder, expired or not: Ω is liveness-only, while
// epoch fencing is what protects safety across takeovers).
//
// The detector is the cluster-wide aggregate of the followers' grant state,
// which the simulation keeps in one place the way it keeps one memory pool
// and one network. Heartbeats still ride the simulated network, so a process
// crashed there (the paper's zombie server: CPU dead, memory alive) stops
// renewing and stops being electable, exactly as in a distributed
// deployment.
type LeaseDetector struct {
	mu         sync.Mutex
	procs      []types.ProcID
	duration   time.Duration
	now        func() time.Time
	onTakeover func(Lease)
	clock      delayclock.Clock
	heard      map[types.ProcID]time.Time // last heartbeat per process
	lease      Lease
	takeovers  uint64
	changes    chan struct{} // coalescing epoch-change notification
}

var _ Oracle = (*LeaseDetector)(nil)

// NewLeaseDetector creates a detector over procs with the initial lease
// (epoch 1) granted to holder. Every process starts considered alive, like
// the heartbeat Detector: election needs evidence of silence, not of life.
func NewLeaseDetector(procs []types.ProcID, holder types.ProcID, opts LeaseOptions) *LeaseDetector {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Duration < 0 {
		opts.Duration = 0
	}
	d := &LeaseDetector{
		procs:      append([]types.ProcID(nil), procs...),
		duration:   opts.Duration,
		now:        opts.Now,
		onTakeover: opts.OnTakeover,
		heard:      make(map[types.ProcID]time.Time, len(procs)),
		changes:    make(chan struct{}, 1),
	}
	now := d.now()
	for _, p := range procs {
		d.heard[p] = now
	}
	d.lease = Lease{Holder: holder, Epoch: 1, Expiry: d.expiryFrom(now)}
	return d
}

// expiryFrom returns the expiry of a grant made at now: now+Duration, or the
// never-expires zero time when leases are disabled.
func (d *LeaseDetector) expiryFrom(now time.Time) time.Time {
	if d.duration <= 0 {
		return time.Time{}
	}
	return now.Add(d.duration)
}

// Duration returns the configured lease length (zero when expiry is
// disabled).
func (d *LeaseDetector) Duration() time.Duration { return d.duration }

// Heartbeat records a heartbeat from one process received AT another,
// carrying the sender's delay-clock stamp. A heartbeat from the current
// holder renews its lease — followers keep granting for Duration past the
// latest beat — as long as no successor has taken over; a superseded
// holder's late heartbeats change nothing, its epoch is already fenced.
//
// Self-delivered heartbeats (from == at) are NOT grants: leases are granted
// by followers, so a process partitioned away from everyone must lose its
// lease — and its electability — rather than keep itself leader on its own
// vouching. A single-process group is the exception: it is its own entire
// follower set.
func (d *LeaseDetector) Heartbeat(from, at types.ProcID, stamp delayclock.Stamp) {
	now := d.now()
	merged := d.clock.MergeAfterMessage(stamp)
	d.mu.Lock()
	defer d.mu.Unlock()
	if from == at && len(d.procs) > 1 {
		return
	}
	d.heard[from] = now
	if from == d.lease.Holder && d.duration > 0 {
		d.lease.Expiry = now.Add(d.duration)
		d.lease.Stamp = merged
	}
}

// Tick is the election step, run periodically by the cluster's lease
// runtime: while the lease is in force it does nothing; once it has expired,
// the smallest recently-heard-from process — preferring one other than the
// expired holder, so a holder whose renewals stopped is actually replaced —
// acquires a fresh lease under the next epoch. If every process is silent
// the lease stays expired: no successor can be granted what no follower
// vouches for.
func (d *LeaseDetector) Tick() Lease {
	now := d.now()
	d.mu.Lock()
	if d.duration <= 0 || d.lease.Valid(now) {
		lease := d.lease
		d.mu.Unlock()
		return lease
	}
	expired := d.lease.Holder
	successor := types.NoProcess
	expiredFresh := false
	for _, p := range d.procs {
		if now.Sub(d.heard[p]) > d.duration {
			continue // silent: not electable
		}
		if p == expired {
			expiredFresh = true
			continue
		}
		if successor == types.NoProcess || p < successor {
			successor = p
		}
	}
	if successor == types.NoProcess && expiredFresh {
		successor = expired // electable again only when nobody else is
	}
	if successor == types.NoProcess {
		lease := d.lease
		d.mu.Unlock()
		return lease
	}
	d.lease = Lease{Holder: successor, Epoch: d.lease.Epoch + 1, Expiry: d.expiryFrom(now), Stamp: d.clock.Now()}
	d.takeovers++
	lease := d.lease
	d.mu.Unlock()
	d.notify()
	if d.onTakeover != nil {
		d.onTakeover(lease)
	}
	return lease
}

// Transfer forces a takeover by p under the next epoch — the programmatic
// leader change behind Cluster.SetLeader (tests, planned handoffs). It is a
// no-op when p already holds an unexpired lease.
func (d *LeaseDetector) Transfer(p types.ProcID) Lease {
	now := d.now()
	d.mu.Lock()
	if d.lease.Holder == p && d.lease.Valid(now) {
		lease := d.lease
		d.mu.Unlock()
		return lease
	}
	d.lease = Lease{Holder: p, Epoch: d.lease.Epoch + 1, Expiry: d.expiryFrom(now), Stamp: d.clock.Now()}
	d.takeovers++
	lease := d.lease
	d.mu.Unlock()
	d.notify()
	if d.onTakeover != nil {
		d.onTakeover(lease)
	}
	return lease
}

// notify coalesces an epoch-change signal into the changes channel.
func (d *LeaseDetector) notify() {
	select {
	case d.changes <- struct{}{}:
	default:
	}
}

// Changes returns a channel that receives a (coalesced) signal after every
// epoch change. Receivers re-read Lease for the current state.
func (d *LeaseDetector) Changes() <-chan struct{} { return d.changes }

// Lease returns a snapshot of the current lease.
func (d *LeaseDetector) Lease() Lease {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lease
}

// Leader implements Oracle: the current lease holder, expired or not.
func (d *LeaseDetector) Leader() types.ProcID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lease.Holder
}

// Epoch returns the current lease epoch.
func (d *LeaseDetector) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lease.Epoch
}

// Now returns the detector's causal delay-clock reading, advanced by the
// heartbeats it has merged. Heartbeat senders stamp their next beat with it,
// so successive heartbeat rounds form a causal chain.
func (d *LeaseDetector) Now() delayclock.Stamp { return d.clock.Now() }

// Takeovers returns how many epoch changes (elections and forced transfers)
// have happened.
func (d *LeaseDetector) Takeovers() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.takeovers
}
