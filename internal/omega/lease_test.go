package omega

import (
	"testing"
	"time"

	"rdmaagreement/internal/types"
)

// fakeClock is an adjustable wall clock for deterministic lease tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                 { return &fakeClock{t: time.Unix(1000, 0)} }
func procs(ids ...types.ProcID) []types.ProcID { return ids }
func leaseOpts(c *fakeClock, d time.Duration) LeaseOptions {
	return LeaseOptions{Duration: d, Now: c.now}
}

// TestLeaseRenewalKeepsHolder drives holder heartbeats past several lease
// lengths: the lease must stay valid under the same epoch, and Tick must not
// elect anyone.
func TestLeaseRenewalKeepsHolder(t *testing.T) {
	clock := newFakeClock()
	d := NewLeaseDetector(procs(1, 2, 3), 1, leaseOpts(clock, 100*time.Millisecond))
	for i := 0; i < 10; i++ {
		clock.advance(50 * time.Millisecond)
		d.Heartbeat(1, 2, 0)
		d.Heartbeat(2, 1, 0)
		d.Heartbeat(3, 1, 0)
		if got := d.Tick(); got.Holder != 1 || got.Epoch != 1 {
			t.Fatalf("tick %d: lease = %+v, want holder 1 epoch 1", i, got)
		}
	}
	if !d.Lease().Valid(clock.now()) {
		t.Fatalf("renewed lease expired: %+v at %v", d.Lease(), clock.now())
	}
	if d.Takeovers() != 0 {
		t.Fatalf("Takeovers = %d, want 0", d.Takeovers())
	}
}

// TestLeaseExpiryElectsSuccessor stops the holder's heartbeats while the
// followers keep beating: the lease must expire, and the next Tick must
// elect the smallest live follower under epoch 2.
func TestLeaseExpiryElectsSuccessor(t *testing.T) {
	clock := newFakeClock()
	d := NewLeaseDetector(procs(1, 2, 3), 1, leaseOpts(clock, 100*time.Millisecond))
	// The holder goes silent; followers stay fresh.
	for i := 0; i < 4; i++ {
		clock.advance(40 * time.Millisecond)
		d.Heartbeat(2, 3, 0)
		d.Heartbeat(3, 2, 0)
	}
	if d.Lease().Valid(clock.now()) {
		t.Fatalf("lease still valid %v past the last holder heartbeat", clock.now())
	}
	lease := d.Tick()
	if lease.Holder != 2 || lease.Epoch != 2 {
		t.Fatalf("after expiry: lease = %+v, want holder 2 epoch 2", lease)
	}
	if !lease.Valid(clock.now()) {
		t.Fatalf("fresh takeover lease is not valid: %+v", lease)
	}
	if d.Takeovers() != 1 {
		t.Fatalf("Takeovers = %d, want 1", d.Takeovers())
	}
	select {
	case <-d.Changes():
	default:
		t.Fatalf("no change notification after an election")
	}
	// The deposed holder's late heartbeat must not renew anything: its epoch
	// is over.
	d.Heartbeat(1, 2, 0)
	if got := d.Lease(); got.Holder != 2 || got.Epoch != 2 {
		t.Fatalf("late heartbeat from the deposed holder changed the lease: %+v", got)
	}
}

// TestLeaseNoSuccessorStaysExpired silences every process: the lease must
// expire and stay expired — nobody can be granted a lease no follower
// vouches for.
func TestLeaseNoSuccessorStaysExpired(t *testing.T) {
	clock := newFakeClock()
	d := NewLeaseDetector(procs(1, 2, 3), 1, leaseOpts(clock, 100*time.Millisecond))
	clock.advance(500 * time.Millisecond)
	lease := d.Tick()
	if lease.Valid(clock.now()) {
		t.Fatalf("lease valid with every process silent: %+v", lease)
	}
	if lease.Holder != 1 || lease.Epoch != 1 {
		t.Fatalf("silent cluster elected someone: %+v", lease)
	}
}

// TestLeaseTransfer checks the forced-takeover path (Cluster.SetLeader):
// epoch bump, notification, and the no-op on transferring to the current
// valid holder.
func TestLeaseTransfer(t *testing.T) {
	clock := newFakeClock()
	d := NewLeaseDetector(procs(1, 2, 3), 1, leaseOpts(clock, 100*time.Millisecond))
	lease := d.Transfer(3)
	if lease.Holder != 3 || lease.Epoch != 2 {
		t.Fatalf("Transfer(3): lease = %+v, want holder 3 epoch 2", lease)
	}
	if again := d.Transfer(3); again.Epoch != 2 {
		t.Fatalf("Transfer to the valid holder bumped the epoch: %+v", again)
	}
	if d.Takeovers() != 1 {
		t.Fatalf("Takeovers = %d, want 1", d.Takeovers())
	}
}

// TestLeaseDisabledNeverExpires runs the degenerate static mode (Duration 0):
// the initial lease is eternal, Tick never elects, and only Transfer moves
// leadership.
func TestLeaseDisabledNeverExpires(t *testing.T) {
	clock := newFakeClock()
	d := NewLeaseDetector(procs(1, 2), 1, leaseOpts(clock, 0))
	clock.advance(24 * time.Hour)
	if lease := d.Tick(); lease.Holder != 1 || lease.Epoch != 1 || !lease.Valid(clock.now()) {
		t.Fatalf("static lease changed or expired: %+v", lease)
	}
	if lease := d.Transfer(2); lease.Holder != 2 || lease.Epoch != 2 || !lease.Valid(clock.now()) {
		t.Fatalf("static transfer: lease = %+v, want eternal holder 2 epoch 2", lease)
	}
}

// TestLeaseRevivedHolderNotPreferred revives the deposed holder after a
// takeover: leadership must stay with the successor as long as it renews,
// even though the old holder has the smaller identifier.
func TestLeaseRevivedHolderNotPreferred(t *testing.T) {
	clock := newFakeClock()
	d := NewLeaseDetector(procs(1, 2, 3), 1, leaseOpts(clock, 100*time.Millisecond))
	clock.advance(150 * time.Millisecond)
	d.Heartbeat(2, 3, 0)
	d.Heartbeat(3, 2, 0)
	if lease := d.Tick(); lease.Holder != 2 {
		t.Fatalf("takeover went to %v, want 2", lease.Holder)
	}
	// p1 comes back and beats alongside everyone else: the lease must stick
	// with p2 (renewals win over identifier order — no flapping).
	for i := 0; i < 5; i++ {
		clock.advance(50 * time.Millisecond)
		d.Heartbeat(1, 2, 0)
		d.Heartbeat(2, 1, 0)
		d.Heartbeat(3, 1, 0)
		if lease := d.Tick(); lease.Holder != 2 || lease.Epoch != 2 {
			t.Fatalf("revived p1 stole the lease: %+v", lease)
		}
	}
}

// TestLeaseSelfHeartbeatIsNotAGrant feeds the detector only self-delivered
// heartbeats from the holder (the partitioned-leader picture: its broadcasts
// reach nobody but itself): the lease must expire anyway — followers grant
// leases, a holder cannot vouch for itself — and the followers, who still
// hear each other, must elect a successor. A single-process group is the
// exception: it is its own follower set, so its self-beats do renew.
func TestLeaseSelfHeartbeatIsNotAGrant(t *testing.T) {
	clock := newFakeClock()
	d := NewLeaseDetector(procs(1, 2, 3), 1, leaseOpts(clock, 100*time.Millisecond))
	for i := 0; i < 4; i++ {
		clock.advance(40 * time.Millisecond)
		d.Heartbeat(1, 1, 0) // self-delivery only: not a grant
		d.Heartbeat(2, 3, 0)
		d.Heartbeat(3, 2, 0)
	}
	if d.Lease().Valid(clock.now()) {
		t.Fatalf("self-heartbeats renewed the lease: %+v", d.Lease())
	}
	if lease := d.Tick(); lease.Holder != 2 || lease.Epoch != 2 {
		t.Fatalf("partitioned holder not deposed: %+v, want holder 2 epoch 2", lease)
	}

	single := NewLeaseDetector(procs(1), 1, leaseOpts(clock, 100*time.Millisecond))
	for i := 0; i < 4; i++ {
		clock.advance(40 * time.Millisecond)
		single.Heartbeat(1, 1, 0)
	}
	if !single.Lease().Valid(clock.now()) {
		t.Fatalf("single-process group lost its own lease: %+v", single.Lease())
	}
}
