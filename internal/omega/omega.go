// Package omega implements the Ω failure detector assumed by the paper's
// leader-based protocols (Protected Memory Paxos, and the liveness argument
// of Fast & Robust): an oracle that eventually reports the same correct
// process as leader at every correct process.
//
// Two implementations are provided. Static is a trivially correct oracle for
// tests and common-case experiments (the paper measures the common case where
// the initial leader never changes). Detector is a heartbeat-based eventual
// leader elector over the simulated network; it elects the smallest process
// identifier that is not currently suspected.
package omega

import (
	"context"
	"sync"
	"time"

	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/types"
)

// Oracle reports the current leader at one process.
type Oracle interface {
	Leader() types.ProcID
}

// Static is an Oracle whose leader is set explicitly. The zero value reports
// NoProcess; use NewStatic or SetLeader. Static is safe for concurrent use.
type Static struct {
	mu     sync.RWMutex
	leader types.ProcID
}

var _ Oracle = (*Static)(nil)

// NewStatic creates a static oracle with the given initial leader.
func NewStatic(leader types.ProcID) *Static { return &Static{leader: leader} }

// Leader returns the configured leader.
func (s *Static) Leader() types.ProcID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.leader
}

// SetLeader changes the reported leader. Tests use it to simulate leader
// changes and the resulting contention.
func (s *Static) SetLeader(p types.ProcID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.leader = p
}

// HeartbeatKind is the message kind used by Detector heartbeats; routers
// should dedicate this prefix to the detector.
const HeartbeatKind = "omega/heartbeat"

// DetectorOptions configure a Detector.
type DetectorOptions struct {
	// Period between heartbeats. Zero means 5ms.
	Period time.Duration
	// Timeout after which a silent process is suspected. Zero means 4×Period.
	Timeout time.Duration
}

// Detector is a heartbeat-based Ω implementation. Each correct process
// periodically broadcasts a heartbeat; a process suspects peers whose
// heartbeats it has not seen within the timeout and trusts the smallest
// unsuspected identifier (itself included) as leader.
type Detector struct {
	self  types.ProcID
	procs []types.ProcID
	ep    *netsim.Endpoint
	in    <-chan netsim.Message
	opts  DetectorOptions

	mu       sync.RWMutex
	lastSeen map[types.ProcID]time.Time

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

var _ Oracle = (*Detector)(nil)

// NewDetector creates a detector for process self among procs, using the
// router subscription in for incoming heartbeats and ep for sending.
func NewDetector(self types.ProcID, procs []types.ProcID, ep *netsim.Endpoint, in <-chan netsim.Message, opts DetectorOptions) *Detector {
	if opts.Period <= 0 {
		opts.Period = 5 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 4 * opts.Period
	}
	d := &Detector{
		self:     self,
		procs:    append([]types.ProcID(nil), procs...),
		ep:       ep,
		in:       in,
		opts:     opts,
		lastSeen: make(map[types.ProcID]time.Time),
	}
	now := time.Now()
	for _, p := range procs {
		d.lastSeen[p] = now
	}
	return d
}

// Start launches the heartbeat sender and receiver goroutines. Stop must be
// called to terminate them.
func (d *Detector) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	d.cancel = cancel
	d.wg.Add(2)
	go d.sendLoop(ctx)
	go d.recvLoop(ctx)
}

// Stop terminates the detector's goroutines and waits for them to exit.
func (d *Detector) Stop() {
	if d.cancel != nil {
		d.cancel()
	}
	d.wg.Wait()
}

func (d *Detector) sendLoop(ctx context.Context) {
	defer d.wg.Done()
	ticker := time.NewTicker(d.opts.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			// Errors (for example, the process was crashed by the fault
			// injector) simply mean peers will stop seeing our heartbeats.
			_ = d.ep.Broadcast(HeartbeatKind, nil, 0)
		}
	}
}

func (d *Detector) recvLoop(ctx context.Context) {
	defer d.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-d.in:
			d.mu.Lock()
			d.lastSeen[msg.From] = time.Now()
			d.mu.Unlock()
		}
	}
}

// Leader returns the smallest process identifier that is not currently
// suspected. The detector always trusts itself.
func (d *Detector) Leader() types.ProcID {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	leader := d.self
	for _, p := range d.procs {
		if p == d.self {
			if p < leader {
				leader = p
			}
			continue
		}
		if now.Sub(d.lastSeen[p]) <= d.opts.Timeout {
			if p < leader {
				leader = p
			}
		}
	}
	return leader
}

// Suspects returns the set of processes currently suspected by this detector.
func (d *Detector) Suspects() types.ProcSet {
	now := time.Now()
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := types.NewProcSet()
	for _, p := range d.procs {
		if p == d.self {
			continue
		}
		if now.Sub(d.lastSeen[p]) > d.opts.Timeout {
			out = out.Add(p)
		}
	}
	return out
}
