package omega

import (
	"testing"
	"time"

	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/types"
)

func TestStaticOracle(t *testing.T) {
	s := NewStatic(1)
	if s.Leader() != 1 {
		t.Fatalf("leader = %v", s.Leader())
	}
	s.SetLeader(3)
	if s.Leader() != 3 {
		t.Fatalf("leader after SetLeader = %v", s.Leader())
	}
	var zero Static
	if zero.Leader() != types.NoProcess {
		t.Fatalf("zero static oracle should report no process")
	}
}

type detectorCluster struct {
	net       *netsim.Network
	routers   map[types.ProcID]*netsim.Router
	detectors map[types.ProcID]*Detector
}

func newDetectorCluster(t *testing.T, procs []types.ProcID, opts DetectorOptions) *detectorCluster {
	t.Helper()
	c := &detectorCluster{
		net:       netsim.New(netsim.Options{}),
		routers:   make(map[types.ProcID]*netsim.Router),
		detectors: make(map[types.ProcID]*Detector),
	}
	t.Cleanup(c.net.Close)
	for _, p := range procs {
		ep := c.net.Register(p)
		router := netsim.NewRouter(ep)
		c.routers[p] = router
		in := router.Subscribe(HeartbeatKind, 0)
		c.detectors[p] = NewDetector(p, procs, ep, in, opts)
	}
	for p, d := range c.detectors {
		d.Start()
		c.detectors[p] = d
	}
	t.Cleanup(func() {
		for _, d := range c.detectors {
			d.Stop()
		}
		for _, r := range c.routers {
			r.Close()
		}
	})
	return c
}

func eventually(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", timeout, msg)
}

func TestDetectorElectsSmallestAliveProcess(t *testing.T) {
	procs := []types.ProcID{1, 2, 3}
	c := newDetectorCluster(t, procs, DetectorOptions{Period: 2 * time.Millisecond})
	eventually(t, 2*time.Second, func() bool {
		for _, d := range c.detectors {
			if d.Leader() != 1 {
				return false
			}
		}
		return true
	}, "all detectors should elect p1")
}

func TestDetectorFailsOverWhenLeaderCrashes(t *testing.T) {
	procs := []types.ProcID{1, 2, 3}
	c := newDetectorCluster(t, procs, DetectorOptions{Period: 2 * time.Millisecond})
	eventually(t, 2*time.Second, func() bool { return c.detectors[2].Leader() == 1 }, "initial leader should be p1")

	c.net.CrashProcess(1)
	eventually(t, 2*time.Second, func() bool {
		return c.detectors[2].Leader() == 2 && c.detectors[3].Leader() == 2
	}, "after p1 crashes the surviving processes should elect p2")

	if !c.detectors[3].Suspects().Contains(1) {
		t.Fatalf("p3 should suspect the crashed p1")
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(1, []types.ProcID{1}, nil, nil, DetectorOptions{})
	if d.opts.Period <= 0 || d.opts.Timeout <= 0 {
		t.Fatalf("defaults not applied: %+v", d.opts)
	}
	// A detector that knows only itself trusts itself.
	if d.Leader() != 1 {
		t.Fatalf("self-only detector should elect itself")
	}
}
