package netsim

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestRouterDispatchByPrefix(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	router := NewRouter(b)
	t.Cleanup(router.Close)

	paxosCh := router.Subscribe("paxos/", 0)
	cheapCh := router.Subscribe("cheap/", 0)

	if err := a.Send(2, "paxos/prepare", []byte("p"), 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := a.Send(2, "cheap/panic", []byte("c"), 0); err != nil {
		t.Fatalf("Send: %v", err)
	}

	select {
	case msg := <-paxosCh:
		if msg.Kind != "paxos/prepare" {
			t.Fatalf("paxos channel got %q", msg.Kind)
		}
	case <-time.After(time.Second):
		t.Fatalf("paxos message not routed")
	}
	select {
	case msg := <-cheapCh:
		if msg.Kind != "cheap/panic" {
			t.Fatalf("cheap channel got %q", msg.Kind)
		}
	case <-time.After(time.Second):
		t.Fatalf("cheap message not routed")
	}
}

func TestRouterLongestPrefixWins(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	router := NewRouter(b)
	t.Cleanup(router.Close)

	generic := router.Subscribe("proto/", 0)
	specific := router.Subscribe("proto/special/", 0)

	if err := a.Send(2, "proto/special/x", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case <-specific:
	case <-generic:
		t.Fatalf("message routed to generic subscription instead of the most specific one")
	case <-time.After(time.Second):
		t.Fatalf("message not routed at all")
	}
}

func TestRouterDefaultSubscription(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	router := NewRouter(b)
	t.Cleanup(router.Close)

	router.Subscribe("known/", 0)
	def := router.SubscribeDefault(0)

	if err := a.Send(2, "unknown/kind", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case msg := <-def:
		if msg.Kind != "unknown/kind" {
			t.Fatalf("default channel got %q", msg.Kind)
		}
	case <-time.After(time.Second):
		t.Fatalf("unmatched message not delivered to default subscription")
	}
}

func TestRouterUnmatchedWithoutDefaultIsDropped(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	router := NewRouter(b)
	t.Cleanup(router.Close)

	known := router.Subscribe("known/", 0)
	if err := a.Send(2, "other/kind", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := a.Send(2, "known/kind", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case msg := <-known:
		if msg.Kind != "known/kind" {
			t.Fatalf("known channel got %q", msg.Kind)
		}
	case <-time.After(time.Second):
		t.Fatalf("known message lost")
	}
}

func TestRouterCloseIdempotent(t *testing.T) {
	n := newTestNetwork(t, Options{})
	b := n.Register(2)
	router := NewRouter(b)
	router.Close()
	router.Close()
}

func TestRouterEndpointAccessor(t *testing.T) {
	n := newTestNetwork(t, Options{})
	b := n.Register(2)
	router := NewRouter(b)
	t.Cleanup(router.Close)
	if router.Endpoint() != b {
		t.Fatalf("Endpoint() should return the attached endpoint")
	}
	// Router must not interfere with sending through the endpoint.
	n.Register(3)
	if err := router.Endpoint().Send(3, "x", nil, 0); err != nil {
		t.Fatalf("Send through routed endpoint: %v", err)
	}
	// Receive on the other endpoint still works (no router attached there).
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := n.Register(3).Receive(ctx); err != nil {
		t.Fatalf("Receive: %v", err)
	}
}

// TestRouterUnsubscribeConcurrentDispatch churns subscriptions while traffic
// flows, the pattern of a replicated log opening and closing one consensus
// instance per slot over a long-lived router. It guards the dispatch path
// against reading subscription state outside the lock (a misdelivery and a
// race-detector hit before dispatch resolved the target under the mutex).
func TestRouterUnsubscribeConcurrentDispatch(t *testing.T) {
	n := newTestNetwork(t, Options{})
	sender := n.Register(1)
	router := NewRouter(n.Register(2))
	t.Cleanup(router.Close)

	keep := router.Subscribe("keep/", 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if err := sender.Send(2, "keep/msg", nil, 0); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()

	// Churn short-lived subscriptions under the sender's feet.
	for i := 0; i < 500; i++ {
		ch := router.Subscribe(fmt.Sprintf("slot/%d/", i), 0)
		router.Unsubscribe(ch)
	}

	received := 0
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for received < 2000 {
		select {
		case msg := <-keep:
			if msg.Kind != "keep/msg" {
				t.Fatalf("misdelivered message of kind %q", msg.Kind)
			}
			received++
		case <-ctx.Done():
			t.Fatalf("received %d of 2000 messages: %v", received, ctx.Err())
		}
	}
	<-done
}
