// Package netsim simulates the message-passing side of the message-and-memory
// model: a fully connected set of directed links with integrity and no-loss.
//
// Each registered process owns an Endpoint with an inbox. Sending a message
// enqueues it on a per-link FIFO queue; a forwarder goroutine applies the
// configured one-way delay and then delivers the message to the destination
// inbox. Messages carry the sender's delay-clock stamp so that receivers can
// account the one-delay cost causally.
//
// The network also provides the fault hooks the experiments and the chaos
// harness need: crashing a process (its sends fail and deliveries to it are
// dropped) and reviving it, partitioning the process set and healing it, a
// message tap that can drop messages, and a per-message jitter that delays
// deliveries to simulate asynchrony and cross-link reordering.
package netsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/types"
)

// Message is a network message. Payload encoding is protocol-specific (the
// protocols in this repository use encoding/json).
type Message struct {
	Seq     uint64
	From    types.ProcID
	To      types.ProcID
	Kind    string
	Payload []byte
	Stamp   delayclock.Stamp
	SentAt  time.Time
}

// Tap inspects a message before delivery. It returns false to drop the
// message. Taps are used by tests to simulate message loss windows and
// asynchrony (the model itself guarantees no-loss; experiments that use taps
// are exercising the protocols' abort/backup paths).
type Tap func(Message) bool

// Jitter computes an extra delivery delay for one message, on top of the
// link's configured one-way delay. Because each link delivers FIFO, a
// jittered message also holds back the messages queued behind it on the same
// link, while other links run at full speed — so a varying Jitter reorders
// deliveries across links exactly the way real network asynchrony does,
// without ever violating per-link FIFO. Jitter functions run concurrently on
// every link forwarder and must be safe for concurrent use; deriving the
// delay from Message.Seq keeps them lock-free.
type Jitter func(Message) time.Duration

// Options configure a Network.
type Options struct {
	// Delay is the one-way message delay applied by every link.
	Delay time.Duration
	// InboxCapacity is the per-process inbox buffer size. Zero means a
	// large default.
	InboxCapacity int
	// LinkQueueCapacity is the per-link queue size. Zero means a large
	// default.
	LinkQueueCapacity int
}

const (
	defaultInboxCapacity = 4096
	defaultLinkCapacity  = 4096
)

// Counters tallies network activity for experiment metrics.
type Counters struct {
	Sent      atomic.Int64
	Delivered atomic.Int64
	Dropped   atomic.Int64
}

// Snapshot returns an immutable copy of the counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{Sent: c.Sent.Load(), Delivered: c.Delivered.Load(), Dropped: c.Dropped.Load()}
}

// CounterSnapshot is a plain-struct copy of Counters.
type CounterSnapshot struct {
	Sent      int64
	Delivered int64
	Dropped   int64
}

// Endpoint is a process's attachment to the network.
type Endpoint struct {
	id    types.ProcID
	inbox chan Message
	net   *Network
}

// ID returns the process identifier this endpoint belongs to.
func (e *Endpoint) ID() types.ProcID { return e.id }

// Receive blocks until a message is delivered or ctx is cancelled.
func (e *Endpoint) Receive(ctx context.Context) (Message, error) {
	select {
	case m := <-e.inbox:
		return m, nil
	case <-ctx.Done():
		return Message{}, fmt.Errorf("receive at %s: %w", e.id, ctx.Err())
	}
}

// TryReceive returns a pending message without blocking. The boolean reports
// whether a message was available.
func (e *Endpoint) TryReceive() (Message, bool) {
	select {
	case m := <-e.inbox:
		return m, true
	default:
		return Message{}, false
	}
}

// Send sends a message from this endpoint's process.
func (e *Endpoint) Send(to types.ProcID, kind string, payload []byte, stamp delayclock.Stamp) error {
	return e.net.Send(e.id, to, kind, payload, stamp)
}

// Broadcast sends the message to every registered process, including the
// sender itself (self-delivery is cheap and simplifies protocol code).
func (e *Endpoint) Broadcast(kind string, payload []byte, stamp delayclock.Stamp) error {
	return e.net.Broadcast(e.id, kind, payload, stamp)
}

type linkKey struct {
	from, to types.ProcID
}

type link struct {
	queue chan Message
}

// Network is the simulated network. It is safe for concurrent use. Close must
// be called to stop the forwarder goroutines.
type Network struct {
	opts Options

	mu        sync.RWMutex
	endpoints map[types.ProcID]*Endpoint
	links     map[linkKey]*link
	crashed   types.ProcSet
	partition map[types.ProcID]int // partition group per process; all zero = connected
	tap       Tap
	jitter    Jitter

	counters Counters
	seq      atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed bool
}

// New creates a network with the given options.
func New(opts Options) *Network {
	if opts.InboxCapacity <= 0 {
		opts.InboxCapacity = defaultInboxCapacity
	}
	if opts.LinkQueueCapacity <= 0 {
		opts.LinkQueueCapacity = defaultLinkCapacity
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Network{
		opts:      opts,
		endpoints: make(map[types.ProcID]*Endpoint),
		links:     make(map[linkKey]*link),
		crashed:   types.NewProcSet(),
		partition: make(map[types.ProcID]int),
		ctx:       ctx,
		cancel:    cancel,
	}
}

// Close stops all forwarder goroutines and waits for them to exit. After
// Close, sends return an error.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.cancel()
	n.wg.Wait()
}

// Counters returns the network's activity counters.
func (n *Network) Counters() *Counters { return &n.counters }

// Register attaches a process to the network and returns its endpoint.
// Registering the same process twice returns the existing endpoint.
func (n *Network) Register(p types.ProcID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[p]; ok {
		return ep
	}
	ep := &Endpoint{id: p, inbox: make(chan Message, n.opts.InboxCapacity), net: n}
	n.endpoints[p] = ep
	return ep
}

// Processes returns the identifiers of all registered processes in sorted
// order.
func (n *Network) Processes() []types.ProcID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	set := types.NewProcSet()
	for p := range n.endpoints {
		set = set.Add(p)
	}
	return set.Members()
}

// SetTap installs a message tap (nil removes it).
func (n *Network) SetTap(tap Tap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = tap
}

// SetJitter installs an extra per-message delivery delay (nil removes it).
// Messages already sleeping their base link delay pick the jitter up when
// they reach the jitter point, so installation takes effect within one link
// delay; removal likewise. See Jitter for the reordering semantics.
func (n *Network) SetJitter(j Jitter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.jitter = j
}

// CrashProcess marks a process as crashed: its subsequent sends fail and
// messages destined to it are dropped.
func (n *Network) CrashProcess(p types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed = n.crashed.Add(p)
}

// ReviveProcess clears a process's crashed mark: its sends succeed and
// deliveries to it resume. Messages dropped while it was crashed stay
// dropped — a stalled process simply missed them — which is exactly the
// zombie-server model: the CPU stalls, the world moves on, and when the
// process wakes it must catch up through whatever the protocol provides
// (lease epochs fence its stale in-flight work out).
func (n *Network) ReviveProcess(p types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed = n.crashed.Remove(p)
}

// ProcessCrashed reports whether p has been crashed.
func (n *Network) ProcessCrashed(p types.ProcID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed.Contains(p)
}

// Partition splits the processes into groups; messages crossing group
// boundaries are dropped until Heal is called. Processes not mentioned stay
// in group 0.
func (n *Network) Partition(groups ...[]types.ProcID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[types.ProcID]int)
	for i, group := range groups {
		for _, p := range group {
			n.partition[p] = i + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[types.ProcID]int)
}

func (n *Network) sameSide(a, b types.ProcID) bool {
	return n.partition[a] == n.partition[b]
}

// Send sends a message from one process to another. It returns an error if
// the sender is unknown or crashed, or the destination is unknown; it never
// blocks on delivery.
func (n *Network) Send(from, to types.ProcID, kind string, payload []byte, stamp delayclock.Stamp) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("send %s->%s: network closed", from, to)
	}
	if _, ok := n.endpoints[from]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("send from %s: %w", from, types.ErrUnknownProcess)
	}
	if _, ok := n.endpoints[to]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("send to %s: %w", to, types.ErrUnknownProcess)
	}
	if n.crashed.Contains(from) {
		n.mu.Unlock()
		return fmt.Errorf("send from %s: %w", from, types.ErrProcessCrashed)
	}
	msg := Message{
		Seq:     n.seq.Add(1),
		From:    from,
		To:      to,
		Kind:    kind,
		Payload: append([]byte(nil), payload...),
		Stamp:   stamp,
		SentAt:  time.Now(),
	}
	lk := n.ensureLinkLocked(from, to)
	n.mu.Unlock()

	n.counters.Sent.Add(1)
	select {
	case lk.queue <- msg:
		return nil
	case <-n.ctx.Done():
		return fmt.Errorf("send %s->%s: network closed", from, to)
	}
}

// Broadcast sends a message from one process to every registered process
// (including itself). Errors sending to individual destinations are collected
// into a single error; delivery to the remaining destinations still happens.
func (n *Network) Broadcast(from types.ProcID, kind string, payload []byte, stamp delayclock.Stamp) error {
	var firstErr error
	for _, to := range n.Processes() {
		if err := n.Send(from, to, kind, payload, stamp); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ensureLinkLocked returns the link from->to, creating its forwarder if
// needed. Callers must hold n.mu.
func (n *Network) ensureLinkLocked(from, to types.ProcID) *link {
	key := linkKey{from: from, to: to}
	if lk, ok := n.links[key]; ok {
		return lk
	}
	lk := &link{queue: make(chan Message, n.opts.LinkQueueCapacity)}
	n.links[key] = lk
	n.wg.Add(1)
	go n.forward(lk)
	return lk
}

// forward delivers messages of one link in FIFO order, applying the link
// delay, the partition, the crash set and the tap.
func (n *Network) forward(lk *link) {
	defer n.wg.Done()
	for {
		select {
		case <-n.ctx.Done():
			return
		case msg := <-lk.queue:
			delay := n.opts.Delay
			n.mu.RLock()
			jitter := n.jitter
			n.mu.RUnlock()
			if jitter != nil {
				if extra := jitter(msg); extra > 0 {
					delay += extra
				}
			}
			if delay > 0 {
				timer := time.NewTimer(delay)
				select {
				case <-timer.C:
				case <-n.ctx.Done():
					timer.Stop()
					return
				}
				timer.Stop()
			}
			n.deliver(msg)
		}
	}
}

func (n *Network) deliver(msg Message) {
	n.mu.RLock()
	ep, ok := n.endpoints[msg.To]
	crashed := n.crashed.Contains(msg.To) || n.crashed.Contains(msg.From)
	sameSide := n.sameSide(msg.From, msg.To)
	tap := n.tap
	n.mu.RUnlock()

	if !ok || crashed || !sameSide {
		n.counters.Dropped.Add(1)
		return
	}
	if tap != nil && !tap(msg) {
		n.counters.Dropped.Add(1)
		return
	}
	select {
	case ep.inbox <- msg:
		n.counters.Delivered.Add(1)
	case <-n.ctx.Done():
	}
}
