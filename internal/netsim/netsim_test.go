package netsim

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rdmaagreement/internal/types"
)

func newTestNetwork(t *testing.T, opts Options) *Network {
	t.Helper()
	n := New(opts)
	t.Cleanup(n.Close)
	return n
}

func TestSendReceive(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)

	if err := a.Send(2, "ping", []byte("hello"), 5); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	msg, err := b.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if msg.From != 1 || msg.To != 2 || msg.Kind != "ping" || string(msg.Payload) != "hello" {
		t.Fatalf("unexpected message %+v", msg)
	}
	if msg.Stamp != 5 {
		t.Fatalf("stamp not propagated: %v", msg.Stamp)
	}
}

func TestFIFOPerLink(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(2, "seq", []byte{byte(i)}, 0); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for i := 0; i < count; i++ {
		msg, err := b.Receive(ctx)
		if err != nil {
			t.Fatalf("Receive %d: %v", i, err)
		}
		if msg.Payload[0] != byte(i) {
			t.Fatalf("out of order: got %d, want %d", msg.Payload[0], i)
		}
	}
}

func TestSendToUnknownProcess(t *testing.T) {
	n := newTestNetwork(t, Options{})
	n.Register(1)
	if err := n.Send(1, 99, "x", nil, 0); !errors.Is(err, types.ErrUnknownProcess) {
		t.Fatalf("expected unknown process, got %v", err)
	}
	if err := n.Send(99, 1, "x", nil, 0); !errors.Is(err, types.ErrUnknownProcess) {
		t.Fatalf("expected unknown process for unknown sender, got %v", err)
	}
}

func TestCrashProcess(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	n.CrashProcess(1)
	if !n.ProcessCrashed(1) || n.ProcessCrashed(2) {
		t.Fatalf("ProcessCrashed bookkeeping wrong")
	}
	if err := a.Send(2, "x", nil, 0); !errors.Is(err, types.ErrProcessCrashed) {
		t.Fatalf("crashed sender should fail, got %v", err)
	}
	// Messages to a crashed process are dropped silently.
	if err := b.Send(1, "x", nil, 0); err != nil {
		t.Fatalf("send to crashed process should not error at sender: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := n.Counters().Snapshot().Dropped; got == 0 {
		t.Fatalf("expected dropped message count > 0")
	}
}

func TestBroadcastIncludesSelf(t *testing.T) {
	n := newTestNetwork(t, Options{})
	eps := make(map[types.ProcID]*Endpoint)
	for _, p := range []types.ProcID{1, 2, 3} {
		eps[p] = n.Register(p)
	}
	if err := eps[1].Broadcast("hello", []byte("b"), 0); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for p, ep := range eps {
		msg, err := ep.Receive(ctx)
		if err != nil {
			t.Fatalf("receive at %s: %v", p, err)
		}
		if msg.Kind != "hello" {
			t.Fatalf("unexpected message %+v at %s", msg, p)
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	n.Partition([]types.ProcID{1}, []types.ProcID{2})

	if err := a.Send(2, "blocked", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Receive(shortCtx); err == nil {
		t.Fatalf("message crossed a partition")
	}

	n.Heal()
	if err := a.Send(2, "open", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	msg, err := b.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive after heal: %v", err)
	}
	if msg.Kind != "open" {
		t.Fatalf("unexpected message after heal: %+v", msg)
	}
}

func TestTapDropsMessages(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	n.SetTap(func(m Message) bool { return m.Kind != "drop-me" })

	if err := a.Send(2, "drop-me", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := a.Send(2, "keep-me", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	msg, err := b.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if msg.Kind != "keep-me" {
		t.Fatalf("tap did not drop message, got %+v", msg)
	}
	n.SetTap(nil)
}

func TestDelayIsApplied(t *testing.T) {
	n := newTestNetwork(t, Options{Delay: 30 * time.Millisecond})
	a := n.Register(1)
	b := n.Register(2)
	start := time.Now()
	if err := a.Send(2, "slow", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := b.Receive(ctx); err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
}

func TestTryReceive(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	if _, ok := b.TryReceive(); ok {
		t.Fatalf("TryReceive on empty inbox should report false")
	}
	if err := a.Send(2, "x", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		if _, ok := b.TryReceive(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("message never became available")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCounters(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	if err := a.Send(2, "x", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := b.Receive(ctx); err != nil {
		t.Fatalf("Receive: %v", err)
	}
	s := n.Counters().Snapshot()
	if s.Sent != 1 || s.Delivered != 1 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a1 := n.Register(1)
	a2 := n.Register(1)
	if a1 != a2 {
		t.Fatalf("re-registration should return the same endpoint")
	}
	if len(n.Processes()) != 1 {
		t.Fatalf("Processes() = %v", n.Processes())
	}
}

func TestCloseStopsSends(t *testing.T) {
	n := New(Options{})
	n.Register(1)
	n.Register(2)
	n.Close()
	n.Close() // idempotent
	if err := n.Send(1, 2, "x", nil, 0); err == nil {
		t.Fatalf("send after close should fail")
	}
}

func TestReceiveContextCancellation(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Receive(ctx); err == nil {
		t.Fatalf("receive with no messages should fail when context expires")
	}
}

func TestMessageUniqueness(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	const count = 50
	for i := 0; i < count; i++ {
		if err := a.Send(2, "m", []byte(fmt.Sprintf("%d", i)), 0); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	seen := make(map[uint64]bool)
	for i := 0; i < count; i++ {
		msg, err := b.Receive(ctx)
		if err != nil {
			t.Fatalf("Receive: %v", err)
		}
		if seen[msg.Seq] {
			t.Fatalf("duplicate sequence number %d (integrity violation)", msg.Seq)
		}
		seen[msg.Seq] = true
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := newTestNetwork(t, Options{})
	receiver := n.Register(1)
	const senders = 5
	const perSender = 50
	for s := 2; s < 2+senders; s++ {
		n.Register(types.ProcID(s))
	}
	for s := 2; s < 2+senders; s++ {
		go func(id types.ProcID) {
			for i := 0; i < perSender; i++ {
				_ = n.Send(id, 1, "load", nil, 0)
			}
		}(types.ProcID(s))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < senders*perSender; i++ {
		if _, err := receiver.Receive(ctx); err != nil {
			t.Fatalf("Receive %d: %v", i, err)
		}
	}
}

func TestReviveProcessRestoresFlow(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	n.CrashProcess(1)
	if err := a.Send(2, "dead", nil, 0); !errors.Is(err, types.ErrProcessCrashed) {
		t.Fatalf("send from crashed process: got %v, want ErrProcessCrashed", err)
	}
	if !n.ProcessCrashed(1) {
		t.Fatalf("process 1 should report crashed")
	}

	n.ReviveProcess(1)
	if n.ProcessCrashed(1) {
		t.Fatalf("process 1 should report revived")
	}
	if err := a.Send(2, "alive", []byte("x"), 0); err != nil {
		t.Fatalf("send after revive: %v", err)
	}
	msg, err := b.Receive(ctx)
	if err != nil {
		t.Fatalf("receive after revive: %v", err)
	}
	if msg.Kind != "alive" {
		t.Fatalf("unexpected message %+v", msg)
	}
}

func TestJitterDelaysAndRemoval(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	b := n.Register(2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	const extra = 60 * time.Millisecond
	n.SetJitter(func(Message) time.Duration { return extra })
	start := time.Now()
	if err := a.Send(2, "slow", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := b.Receive(ctx); err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if got := time.Since(start); got < extra {
		t.Fatalf("jittered delivery took %v, want >= %v", got, extra)
	}

	// Removal restores fast delivery: well under the previous jitter.
	n.SetJitter(nil)
	start = time.Now()
	if err := a.Send(2, "fast", nil, 0); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := b.Receive(ctx); err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if got := time.Since(start); got >= extra {
		t.Fatalf("post-removal delivery took %v, want < %v", got, extra)
	}
}

func TestJitterReordersAcrossLinks(t *testing.T) {
	n := newTestNetwork(t, Options{})
	a := n.Register(1)
	c := n.Register(2)
	b := n.Register(3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Delay only link 1->3; link 2->3 runs at full speed, so a message sent
	// later on the fast link overtakes the jittered one.
	n.SetJitter(func(m Message) time.Duration {
		if m.From == 1 {
			return 80 * time.Millisecond
		}
		return 0
	})
	if err := a.Send(3, "slow", nil, 0); err != nil {
		t.Fatalf("Send slow: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := c.Send(3, "fast", nil, 0); err != nil {
		t.Fatalf("Send fast: %v", err)
	}
	first, err := b.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if first.Kind != "fast" {
		t.Fatalf("expected the un-jittered message first, got %q", first.Kind)
	}
	second, err := b.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if second.Kind != "slow" {
		t.Fatalf("expected the jittered message second, got %q", second.Kind)
	}
}
