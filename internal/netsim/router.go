package netsim

import (
	"context"
	"strings"
	"sync"
)

// Router demultiplexes the messages arriving at an Endpoint to subscribers by
// message-kind prefix. Protocol stacks (for example Fast & Robust, which runs
// Cheap Quorum, Preferential Paxos and a failure detector over the same
// process endpoint) use a Router so that each layer only sees its own
// messages.
//
// A Router owns the endpoint's receive loop: once a Router is attached,
// callers must not call Receive on the endpoint directly.
type Router struct {
	ep *Endpoint

	mu       sync.Mutex
	subs     []subscription
	fallback chan Message

	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed bool
}

type subscription struct {
	prefix string
	ch     chan Message
}

// NewRouter attaches a router to the endpoint and starts its dispatch loop.
func NewRouter(ep *Endpoint) *Router {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Router{ep: ep, cancel: cancel}
	r.wg.Add(1)
	go r.loop(ctx)
	return r
}

// Endpoint returns the underlying endpoint (for sending).
func (r *Router) Endpoint() *Endpoint { return r.ep }

// Subscribe returns a channel that receives every message whose Kind starts
// with prefix. Longer prefixes win when several subscriptions match. The
// buffer parameter sizes the channel; zero means a reasonable default.
func (r *Router) Subscribe(prefix string, buffer int) <-chan Message {
	if buffer <= 0 {
		buffer = 1024
	}
	ch := make(chan Message, buffer)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, subscription{prefix: prefix, ch: ch})
	return ch
}

// Unsubscribe removes the subscription whose channel is ch. Messages already
// delivered to the channel stay readable; new messages matching its prefix
// fall through to shorter-prefix subscriptions or the fallback. Long-lived
// clusters that multiplex many short-lived consensus instances over one
// router must unsubscribe finished instances so dispatch stays O(live
// instances), not O(all instances ever).
func (r *Router) Unsubscribe(ch <-chan Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.subs {
		if r.subs[i].ch == ch {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			return
		}
	}
}

// SubscribeDefault returns a channel receiving messages that match no other
// subscription.
func (r *Router) SubscribeDefault(buffer int) <-chan Message {
	if buffer <= 0 {
		buffer = 1024
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fallback == nil {
		r.fallback = make(chan Message, buffer)
	}
	return r.fallback
}

// Close stops the dispatch loop. Subscriber channels are not closed (late
// messages are simply no longer delivered), so receivers should select on
// their own contexts.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
}

func (r *Router) loop(ctx context.Context) {
	defer r.wg.Done()
	for {
		msg, err := r.ep.Receive(ctx)
		if err != nil {
			return
		}
		r.dispatch(ctx, msg)
	}
}

func (r *Router) dispatch(ctx context.Context, msg Message) {
	// Resolve the target channel while holding the lock: Unsubscribe
	// compacts r.subs in place, so a pointer into the slice must not be
	// dereferenced after unlocking (it could alias a different
	// subscription by then).
	r.mu.Lock()
	var target chan Message
	bestLen := -1
	for i := range r.subs {
		s := &r.subs[i]
		if strings.HasPrefix(msg.Kind, s.prefix) && len(s.prefix) > bestLen {
			target = s.ch
			bestLen = len(s.prefix)
		}
	}
	if target == nil {
		target = r.fallback
	}
	r.mu.Unlock()

	if target == nil {
		return
	}
	select {
	case target <- msg:
	case <-ctx.Done():
	}
}
