package trace

import (
	"strings"
	"testing"

	"rdmaagreement/internal/types"
)

func TestRecordAndQuery(t *testing.T) {
	var r Recorder
	r.Record(1, KindPropose, types.Value("v"), 0, "proposing")
	r.Record(1, KindDecide, types.Value("v"), 2, "decided in %d delays", 2)
	r.Record(2, KindPanic, nil, 3, "timeout")

	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := len(r.Decisions()); got != 1 {
		t.Fatalf("decisions = %d", got)
	}
	if got := len(r.ByKind(KindPanic)); got != 1 {
		t.Fatalf("panics = %d", got)
	}
	if got := len(r.ByProcess(1)); got != 2 {
		t.Fatalf("events by p1 = %d", got)
	}
	if got := len(r.ByProcess(3)); got != 0 {
		t.Fatalf("events by p3 = %d", got)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	var r Recorder
	r.Record(1, KindInfo, nil, 0, "a")
	events := r.Events()
	events[0].Detail = "mutated"
	if r.Events()[0].Detail != "a" {
		t.Fatalf("Events() must return a copy")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, KindInfo, nil, 0, "ignored")
	if r.Len() != 0 || r.Events() != nil {
		t.Fatalf("nil recorder should be a no-op")
	}
	r.Reset()
}

func TestReset(t *testing.T) {
	var r Recorder
	r.Record(1, KindInfo, nil, 0, "x")
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("reset did not clear events")
	}
}

func TestStringRendering(t *testing.T) {
	var r Recorder
	r.Record(1, KindDecide, types.Value("v"), 2, "decision detail")
	out := r.String()
	if !strings.Contains(out, "decide") || !strings.Contains(out, "decision detail") {
		t.Fatalf("rendered trace missing fields: %q", out)
	}
	if !strings.Contains(r.Events()[0].String(), "p1") {
		t.Fatalf("event string missing process")
	}
}

func TestDetailFormatting(t *testing.T) {
	var r Recorder
	r.Record(2, KindLeaderChange, nil, 0, "leader is now %s", types.ProcID(3))
	if got := r.Events()[0].Detail; got != "leader is now p3" {
		t.Fatalf("detail = %q", got)
	}
}

func TestRingRetainsMostRecentInOrder(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(1, KindInfo, nil, 0, "event %d", i)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	events := r.Events()
	want := []string{"event 2", "event 3", "event 4"}
	for i, w := range want {
		if events[i].Detail != w {
			t.Fatalf("events[%d] = %q, want %q (full: %v)", i, events[i].Detail, w, events)
		}
	}
}

func TestRingUnderCapacityBehavesLikeAppend(t *testing.T) {
	r := NewRing(8)
	r.Record(1, KindInfo, nil, 0, "a")
	r.Record(1, KindInfo, nil, 0, "b")
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	events := r.Events()
	if len(events) != 2 || events[0].Detail != "a" || events[1].Detail != "b" {
		t.Fatalf("events = %v", events)
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Record(1, KindInfo, nil, 0, "e%d", i)
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("reset left len=%d dropped=%d", r.Len(), r.Dropped())
	}
	// The ring stays usable after Reset, from a clean start index.
	r.Record(1, KindInfo, nil, 0, "fresh")
	if got := r.Events()[0].Detail; got != "fresh" {
		t.Fatalf("post-reset event = %q", got)
	}
}

func TestRingRejectsBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing accepted capacity 0")
		}
	}()
	NewRing(0)
}

func TestUnboundedDroppedIsZero(t *testing.T) {
	var r Recorder
	for i := 0; i < 100; i++ {
		r.Record(1, KindInfo, nil, 0, "x")
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	var nilR *Recorder
	if nilR.Dropped() != 0 {
		t.Fatal("nil Dropped should be 0")
	}
}
