// Package trace records the structured events emitted by protocols and
// substrates during an experiment run: proposals, memory operations,
// permission changes, aborts and decisions. The harness uses traces to build
// experiment tables and to check safety properties after a run; the
// agreementsim command prints them for interactive exploration.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/types"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the protocols in this repository.
const (
	KindPropose          Kind = "propose"
	KindDecide           Kind = "decide"
	KindAbort            Kind = "abort"
	KindPanic            Kind = "panic"
	KindPermissionChange Kind = "permission-change"
	KindLeaderChange     Kind = "leader-change"
	KindBroadcast        Kind = "broadcast"
	KindDeliver          Kind = "deliver"
	KindCrash            Kind = "crash"
	KindInfo             Kind = "info"
)

// Event is one recorded occurrence.
type Event struct {
	At     time.Time
	Proc   types.ProcID
	Kind   Kind
	Detail string
	Value  types.Value
	Stamp  delayclock.Stamp
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("%s %-6s %-18s %s %s",
		e.At.Format("15:04:05.000000"), e.Proc, e.Kind, e.Value, e.Detail)
}

// Recorder collects events. The zero value is a valid, enabled recorder. A
// nil *Recorder is also valid: all methods are no-ops, so protocol code can
// record unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event with the current wall-clock time.
func (r *Recorder) Record(proc types.ProcID, kind Kind, value types.Value, stamp delayclock.Stamp, detailFormat string, args ...any) {
	if r == nil {
		return
	}
	e := Event{
		At:     time.Now(),
		Proc:   proc,
		Kind:   kind,
		Detail: fmt.Sprintf(detailFormat, args...),
		Value:  value.Clone(),
		Stamp:  stamp,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of all recorded events in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// ByKind returns the recorded events of the given kind.
func (r *Recorder) ByKind(kind Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// ByProcess returns the recorded events of the given process.
func (r *Recorder) ByProcess(p types.ProcID) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}

// Decisions returns the decide events, which safety checkers inspect.
func (r *Recorder) Decisions() []Event { return r.ByKind(KindDecide) }

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// String renders the whole trace, one event per line.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
