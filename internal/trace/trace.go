// Package trace records the structured events emitted by protocols and
// substrates during an experiment run: proposals, memory operations,
// permission changes, aborts and decisions. The harness uses traces to build
// experiment tables and to check safety properties after a run; the
// agreementsim command prints them for interactive exploration.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"rdmaagreement/internal/delayclock"
	"rdmaagreement/internal/types"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the protocols in this repository.
const (
	KindPropose          Kind = "propose"
	KindDecide           Kind = "decide"
	KindAbort            Kind = "abort"
	KindPanic            Kind = "panic"
	KindPermissionChange Kind = "permission-change"
	KindLeaderChange     Kind = "leader-change"
	KindBroadcast        Kind = "broadcast"
	KindDeliver          Kind = "deliver"
	KindCrash            Kind = "crash"
	KindInfo             Kind = "info"
)

// Event kinds emitted by the long-lived replication stack (smr, omega, the
// sharded layer) when a recorder is attached via core.Options.Recorder.
const (
	// KindLeaseTakeover marks a lease epoch bump: a new holder seized (or
	// was transferred) the proposer role.
	KindLeaseTakeover Kind = "lease-takeover"
	// KindEpochFence marks a committer observing a lease epoch newer than
	// the one it dispatched under: its in-flight slots are fenced.
	KindEpochFence Kind = "epoch-fence"
	// KindRecover marks an ambiguous-slot recovery round: a slot whose
	// agreement timed out being re-proposed as a no-op.
	KindRecover Kind = "recover"
	// KindRefusedNoOp marks a recovery no-op losing to the original batch,
	// which had persisted and was re-decided.
	KindRefusedNoOp Kind = "refused-noop"
	// KindShardMigrate marks one leg of a shard rebalance (migrate-out
	// commit on the source, migrate-in commit on the destination).
	KindShardMigrate Kind = "shard-migrate"
	// KindSnapshot marks a state-machine snapshot truncating the log.
	KindSnapshot Kind = "snapshot"
)

// Event is one recorded occurrence.
type Event struct {
	At     time.Time
	Proc   types.ProcID
	Kind   Kind
	Detail string
	Value  types.Value
	Stamp  delayclock.Stamp
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("%s %-6s %-18s %s %s",
		e.At.Format("15:04:05.000000"), e.Proc, e.Kind, e.Value, e.Detail)
}

// Recorder collects events. The zero value is a valid, enabled, unbounded
// recorder — right for experiment runs that inspect the full trace
// afterwards. A nil *Recorder is also valid: all methods are no-ops, so
// protocol code can record unconditionally.
//
// For long-lived deployments (a recorder attached to an smr Log serving
// production traffic) use NewRing: a bounded ring buffer that keeps the most
// recent cap events and counts what it dropped, so attaching a recorder can
// never grow memory without bound.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	cap     int    // 0 = unbounded append mode
	start   int    // ring mode: index of the oldest event
	dropped uint64 // ring mode: events overwritten so far
}

// NewRing returns a bounded recorder that retains the most recent capacity
// events, overwriting the oldest and counting overwrites in Dropped.
// Capacity ≤ 0 panics.
func NewRing(capacity int) *Recorder {
	if capacity <= 0 {
		panic(fmt.Sprintf("trace: ring capacity must be positive, got %d", capacity))
	}
	return &Recorder{cap: capacity}
}

// Record appends an event with the current wall-clock time.
func (r *Recorder) Record(proc types.ProcID, kind Kind, value types.Value, stamp delayclock.Stamp, detailFormat string, args ...any) {
	if r == nil {
		return
	}
	e := Event{
		At:     time.Now(),
		Proc:   proc,
		Kind:   kind,
		Detail: fmt.Sprintf(detailFormat, args...),
		Value:  value.Clone(),
		Stamp:  stamp,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap > 0 && len(r.events) == r.cap {
		r.events[r.start] = e
		r.start = (r.start + 1) % r.cap
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns a copy of the retained events in recording order (in ring
// mode: the most recent cap events, oldest first).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events[r.start:])
	copy(out[len(r.events)-r.start:], r.events[:r.start])
	return out
}

// Dropped reports how many events a ring-mode recorder has overwritten.
// Always zero for unbounded recorders.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ByKind returns the recorded events of the given kind.
func (r *Recorder) ByKind(kind Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// ByProcess returns the recorded events of the given process.
func (r *Recorder) ByProcess(p types.ProcID) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}

// Decisions returns the decide events, which safety checkers inspect.
func (r *Recorder) Decisions() []Event { return r.ByKind(KindDecide) }

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events (and, in ring mode, the dropped count).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
	r.start = 0
	r.dropped = 0
}

// String renders the whole trace, one event per line.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
