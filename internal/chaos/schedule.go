// Package chaos is the seed-reproducible fault-injection harness behind
// cmd/agreementchaos and agreementbench's -chaos mode: it composes random
// schedules of the faults the stack already models — memory crashes,
// lease-holder stalls, message jitter, forced lease transfers and
// interrupted mid-handoff rebalances — runs them against a live ShardedKV
// under concurrent client load (in-process and, optionally, through the
// kvserver/client served path), records the full operation history, and
// checks it with the internal/linearize porcupine-style checker.
//
// Everything random derives from one int64 seed: the fault schedule is a
// pure function of the Config (see Build — same seed, same schedule text,
// byte for byte), and each client's operation stream is seeded from the
// schedule seed plus its client index. Execution timing naturally varies
// between runs, but the faults injected, their targets, magnitudes and
// relative times do not — which is what makes a failing seed a one-line
// repro and a committed seed a regression test.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Fault kinds a schedule composes. Each names a failure mode the paper's
// protocols (and the layers grown on top) claim to survive.
const (
	// KindMemCrash crashes a minority of one shard's memories (operations
	// against them hang, contents survive) and revives them after Dur.
	KindMemCrash = "memcrash"
	// KindStall crashes the current lease holder's process on the network —
	// the zombie-server scenario: the CPU stalls while its memories stay
	// reachable — and revives it after Dur. Requires leases.
	KindStall = "stall"
	// KindJitter installs a seeded per-message extra delivery delay on one
	// shard's network for Dur, reordering deliveries across links.
	KindJitter = "jitter"
	// KindTransfer forces an immediate lease transfer to the next process,
	// exercising epoch fencing of whatever the old holder had in flight.
	KindTransfer = "transfer"
	// KindRebalance adds a shard mid-workload with the handoff interrupted
	// partway (context cancelled), resumes it to completion, then removes
	// the shard the same way — the migration-epoch resume path, twice.
	KindRebalance = "rebalance"
)

// AllFaults is every kind, in canonical order.
var AllFaults = []string{KindMemCrash, KindStall, KindJitter, KindTransfer, KindRebalance}

// Event is one scheduled fault.
type Event struct {
	// Index is the event's position in generation order; it seeds any
	// event-local randomness (jitter) and names rebalance shards.
	Index int
	// At is the injection time, relative to the schedule's start.
	At time.Duration
	// Dur is the fault window; the undo (revive, heal, remove) runs at
	// At+Dur. Zero means instantaneous.
	Dur time.Duration
	// Kind is one of the Kind* constants.
	Kind string
	// Shard is the target shard group ("" for kinds without one).
	Shard string
	// N is the kind-specific magnitude: memories to crash for memcrash, the
	// per-message delay cap in microseconds for jitter.
	N int
}

func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%02d t=+%-7s %-9s", e.Index, e.At, e.Kind)
	if e.Shard != "" {
		fmt.Fprintf(&b, " shard=%s", e.Shard)
	}
	if e.N > 0 {
		fmt.Fprintf(&b, " n=%d", e.N)
	}
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%s", e.Dur)
	}
	return b.String()
}

// Schedule is a complete, deterministic fault plan.
type Schedule struct {
	Seed   int64
	Window time.Duration
	Events []Event
}

// String renders the schedule. The text is a pure function of the Config
// that built it: replaying a seed reproduces it byte for byte, which is the
// repro contract cmd/agreementchaos prints on failure.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d window=%s events=%d\n", s.Seed, s.Window, len(s.Events))
	for _, e := range s.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Kinds tallies the events per kind.
func (s Schedule) Kinds() map[string]int {
	out := make(map[string]int)
	for _, e := range s.Events {
		out[e.Kind]++
	}
	return out
}

// Build generates cfg's fault schedule. It is a pure function of the Config:
// it reads nothing but cfg and draws every choice from a rand.Source seeded
// with cfg.Seed, so the same Config always yields the identical Schedule.
// Injection times land in the first 70% of the window and fault windows stay
// within it, so every fault is healed before the post-window audit. Kinds
// that need leases (stall) are excluded when cfg.Lease is zero.
func Build(cfg Config) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	kinds := enabledKinds(cfg)
	events := make([]Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		// Quantized to milliseconds so schedule text stays readable.
		atMS := rng.Int63n(int64(cfg.Window*7/10-cfg.Window/20)/int64(time.Millisecond)) + int64(cfg.Window/20/time.Millisecond)
		durMS := rng.Int63n(int64(cfg.Window/5)/int64(time.Millisecond)) + int64(cfg.Window/10/time.Millisecond)
		at := time.Duration(atMS) * time.Millisecond
		dur := time.Duration(durMS) * time.Millisecond
		ev := Event{Index: i, At: at, Dur: dur, Kind: kind}
		switch kind {
		case KindMemCrash:
			ev.Shard = fmt.Sprintf("shard-%d", rng.Intn(cfg.Shards))
			ev.N = 1 // minority of the 3-memory groups the store deploys
		case KindStall:
			ev.Shard = fmt.Sprintf("shard-%d", rng.Intn(cfg.Shards))
		case KindJitter:
			ev.Shard = fmt.Sprintf("shard-%d", rng.Intn(cfg.Shards))
			ev.N = 1000 + rng.Intn(7000) // µs cap on the extra delay
		case KindTransfer:
			ev.Shard = fmt.Sprintf("shard-%d", rng.Intn(cfg.Shards))
			ev.Dur = 0
		case KindRebalance:
			ev.Shard = fmt.Sprintf("chaos-%d", i) // the shard it adds+removes
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].At != events[b].At {
			return events[a].At < events[b].At
		}
		return events[a].Index < events[b].Index
	})
	return Schedule{Seed: cfg.Seed, Window: cfg.Window, Events: events}
}

// enabledKinds resolves cfg.Faults (nil means AllFaults) in canonical order,
// dropping kinds the configuration cannot run.
func enabledKinds(cfg Config) []string {
	want := cfg.Faults
	if len(want) == 0 {
		want = AllFaults
	}
	set := make(map[string]bool, len(want))
	for _, k := range want {
		set[k] = true
	}
	out := make([]string, 0, len(AllFaults))
	for _, k := range AllFaults {
		if !set[k] {
			continue
		}
		if k == KindStall && cfg.Lease <= 0 {
			continue // without leases a stalled leader never cedes
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		out = []string{KindMemCrash} // never build an empty schedule
	}
	return out
}

// splitmix64 is the SplitMix64 mixer: a cheap, high-quality way to derive
// independent deterministic streams (per-client seeds, per-message jitter)
// from one schedule seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
