package chaos

import (
	"testing"
	"time"
)

// Regression seeds. Each entry is a schedule that once exposed a bug (or
// guards a path that nearly shipped one) and now must stay green forever.
// Adding a line here is the whole workflow for committing a failing seed
// from cmd/agreementchaos: copy the -seed and flags from the repro line.
//
//   - seed 7 served: exposed the tenant-namespace split — in-process clients
//     hit raw keys while the serving layer prefixed the default tenant, so
//     the two paths wrote disjoint registers under one recorded name and
//     every key flip-flopped. Fixed by routing in-process ops through the
//     same tenant mapping (runner.storeKey).
//   - seed 7 in-process: the full five-kind fault mix (memcrash, stall,
//     jitter, transfer) against the embedded store.
//   - seed 11: a second fault ordering, kept as a diversity guard.
//   - seed 19 batch-boundary: adaptive group commit forced to its count
//     budget (batch ≤ 3, a 2ms coalescing horizon keeps every cut full)
//     under a schedule with two explicit lease transfers and two stalls,
//     so takeovers displace max-size batches mid-flight — the re-dispatch
//     path must replay the whole batch at a later slot exactly once, with
//     no lost or doubled command.
var regressionSeeds = []struct {
	name string
	cfg  Config
}{
	{"seed7-inproc", Config{Seed: 7, Window: 1500 * time.Millisecond}},
	{"seed7-served", Config{Seed: 7, Window: 1500 * time.Millisecond, Served: true}},
	{"seed11-inproc", Config{Seed: 11, Window: 1500 * time.Millisecond}},
	{"seed19-batch-boundary", Config{Seed: 19, Window: 1500 * time.Millisecond, Batch: 3, BatchWait: 2 * time.Millisecond}},
}

// TestRegressionSeeds replays every committed seed and requires a clean
// linearizability verdict. These run as ordinary go tests, so tier-1 CI
// replays each historical failure on every PR.
func TestRegressionSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos regression seeds need multi-second fault windows")
	}
	for _, tc := range regressionSeeds {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatalf("run failed: %v\nrepro: %s", err, tc.cfg.ReproLine())
			}
			if !res.Linearizable {
				for _, v := range res.Violations {
					t.Errorf("violation:\n%s", v.Report())
				}
				t.Fatalf("history not linearizable (%d violating keys)\nrepro: %s",
					len(res.Violations), tc.cfg.ReproLine())
			}
			if res.Ops == 0 {
				t.Fatalf("workload recorded no operations")
			}
			if len(res.Faults) == 0 {
				t.Fatalf("schedule injected no faults")
			}
		})
	}
}

// TestRunRejectsBadConfig pins the usage-error path cmd/agreementchaos maps
// to exit code 2.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Faults: []string{"no-such-kind"}}); err == nil {
		t.Fatalf("unknown fault kind must be rejected")
	}
}
