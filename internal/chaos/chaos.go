package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdmaagreement"
	"rdmaagreement/client"
	"rdmaagreement/internal/linearize"
	"rdmaagreement/internal/netsim"
	"rdmaagreement/internal/wire"
	"rdmaagreement/kvserver"
)

// Config parameterizes one chaos schedule run. The zero value of every field
// gets a sensible default (see withDefaults); Seed is the only field that
// changes a run's identity.
type Config struct {
	// Seed determines the fault schedule and every client's operation
	// stream. Same Config (Seed included) ⇒ same schedule, byte for byte.
	Seed int64
	// Shards is the initial shard-group count. Default 2.
	Shards int
	// Clients is the number of concurrent workload clients. With Served,
	// every odd-indexed client drives the kvserver/client network path and
	// the rest stay in-process. Default 8.
	Clients int
	// Keys is the keyspace size; small keyspaces maximize contention and
	// checker leverage. Default 48.
	Keys int
	// Window is the workload-and-fault window per schedule. Default 3s.
	Window time.Duration
	// Events is the number of faults per schedule. Default 6.
	Events int
	// Latency is the simulated one-way memory/network latency. Default 1ms.
	Latency time.Duration
	// Lease is the leader-lease duration (0 disables leases and with them
	// the stall fault). Default 150ms.
	Lease time.Duration
	// Batch and Pipeline configure each shard's log; zero keeps the smr
	// defaults.
	Batch, Pipeline int
	// BatchBytes and BatchWait configure adaptive group commit per shard
	// log (see smr.Options); zero keeps the smr defaults. A small Batch
	// with a non-zero BatchWait drives every cut to the count budget, the
	// boundary the displacement path re-dispatches whole.
	BatchBytes int
	BatchWait  time.Duration
	// PutPercent is the write share of the workload. Default 50.
	PutPercent int
	// Faults enables a subset of AllFaults; nil enables all.
	Faults []string
	// Served also routes half the clients through a loopback kvserver and
	// the ring-aware client package, so the recorded history spans both the
	// in-process and the served data path.
	Served bool
	// Out receives the schedule and progress lines; nil discards them.
	Out io.Writer
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 48
	}
	if cfg.Window <= 0 {
		cfg.Window = 3 * time.Second
	}
	if cfg.Events <= 0 {
		cfg.Events = 6
	}
	if cfg.Latency <= 0 {
		cfg.Latency = time.Millisecond
	}
	if cfg.Lease == 0 {
		cfg.Lease = 150 * time.Millisecond
	} else if cfg.Lease < 0 {
		cfg.Lease = 0
	}
	if cfg.PutPercent <= 0 || cfg.PutPercent > 100 {
		cfg.PutPercent = 50
	}
	return cfg
}

// ReproLine is the one-line command that replays this exact schedule: commit
// it (or its seed) as a regression test when a run fails.
func (cfg Config) ReproLine() string {
	cfg = cfg.withDefaults()
	line := fmt.Sprintf("go run ./cmd/agreementchaos -seed %d -shards %d -clients %d -keys %d -events %d -window %s -latency %s -lease %s",
		cfg.Seed, cfg.Shards, cfg.Clients, cfg.Keys, cfg.Events, cfg.Window, cfg.Latency, cfg.Lease)
	if cfg.Batch != 0 {
		line += fmt.Sprintf(" -batch %d", cfg.Batch)
	}
	if cfg.BatchWait != 0 {
		line += fmt.Sprintf(" -batch-wait %s", cfg.BatchWait)
	}
	if cfg.Served {
		line += " -net"
	}
	return line
}

// Result is the outcome of one schedule run.
type Result struct {
	Config   Config
	Schedule Schedule
	// Ops counts the operations in the checked history (acknowledged puts,
	// linearizable gets, ambiguous puts, and the final audit reads).
	Ops int
	// Puts/Gets split Ops by kind (audit reads count as Gets).
	Puts, Gets int
	// Dropped counts operations that failed with a provably-did-not-commit
	// error (lease lost, key moved, shed): excluded from the history.
	Dropped int
	// Unknown counts ambiguous puts kept in the history with open effect
	// windows (the connection died with the command possibly in flight).
	Unknown int
	// Faults tallies the faults actually injected, per kind.
	Faults map[string]int
	// Takeovers sums the lease takeovers the initial shards observed.
	Takeovers uint64
	// CheckDuration is the wall-clock cost of the linearizability check.
	CheckDuration time.Duration
	// Linearizable is the verdict; Violations holds the refuted keys.
	Linearizable bool
	Violations   []linearize.Violation
}

// Run executes one seeded schedule end to end: build the store (and, with
// cfg.Served, the loopback kvserver plus network clients), drive the
// workload while injecting the schedule's faults, heal everything, audit
// every key with a final linearizable read, and check the recorded history.
// A non-nil error means the run itself broke (infrastructure, not safety);
// a false Result.Linearizable means the store broke its contract.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	for _, k := range cfg.Faults {
		valid := false
		for _, known := range AllFaults {
			if k == known {
				valid = true
				break
			}
		}
		if !valid {
			return Result{Config: cfg}, fmt.Errorf("chaos: unknown fault kind %q (have %s)", k, strings.Join(AllFaults, ", "))
		}
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	sched := Build(cfg)
	fmt.Fprint(out, sched.String())

	res := Result{Config: cfg, Schedule: sched, Faults: make(map[string]int)}

	kv, err := rdmaagreement.NewShardedKV(rdmaagreement.ShardedKVOptions{
		Shards: cfg.Shards,
		Log: rdmaagreement.LogOptions{
			Cluster: rdmaagreement.Options{
				Processes:     3,
				Memories:      3,
				MemoryLatency: cfg.Latency,
				LeaseDuration: cfg.Lease,
			},
			MaxBatch:   cfg.Batch,
			BatchBytes: cfg.BatchBytes,
			BatchWait:  cfg.BatchWait,
			Pipeline:   cfg.Pipeline,
		},
	})
	if err != nil {
		return res, fmt.Errorf("chaos: build store: %w", err)
	}
	defer kv.Close()

	r := &runner{cfg: cfg, kv: kv, out: out, start: time.Now()}

	if cfg.Served {
		if err := r.startServer(); err != nil {
			return res, err
		}
		defer r.stopServer()
	}

	// Workload: issue until the window closes; a short grace later, cancel
	// whatever is still in flight (those puts land in the history with open
	// effect windows — exactly what Unknown models).
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	stop := make(chan struct{})
	histories := make([][]linearize.Op, cfg.Clients)
	var workers sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		workers.Add(1)
		go func(id int) {
			defer workers.Done()
			histories[id] = r.workload(runCtx, id, stop)
		}(c)
	}

	// Fault injection: every event on its own timer; rebalances serialized
	// through one queue so concurrent different rebalances never collide
	// with ErrRebalanceInProgress.
	var faults sync.WaitGroup
	faultErr := make(chan error, len(sched.Events))
	var rebalances []Event
	for _, ev := range sched.Events {
		if ev.Kind == KindRebalance {
			rebalances = append(rebalances, ev)
			continue
		}
		faults.Add(1)
		go func(ev Event) {
			defer faults.Done()
			r.inject(ev)
		}(ev)
	}
	if len(rebalances) > 0 {
		faults.Add(1)
		go func() {
			defer faults.Done()
			for _, ev := range rebalances {
				if err := r.rebalance(ev); err != nil {
					faultErr <- err
					return
				}
			}
		}()
	}

	time.Sleep(time.Until(r.start.Add(cfg.Window)))
	close(stop)
	graceTimer := time.AfterFunc(2*time.Second, cancelRun)
	workers.Wait()
	graceTimer.Stop()
	faults.Wait()
	close(faultErr)
	if err := <-faultErr; err != nil {
		return res, err
	}

	// Heal everything the schedule touched (belt and braces on top of each
	// event's own undo), then settle for a couple of lease periods so the
	// audit runs against a quiet store.
	r.healAll()
	if cfg.Lease > 0 {
		time.Sleep(2 * cfg.Lease)
	}

	audit, err := r.audit()
	if err != nil {
		return res, err
	}

	history := append([]linearize.Op(nil), audit...)
	for _, h := range histories {
		history = append(history, h...)
	}

	checkStart := time.Now()
	verdict := linearize.Check(history)
	res.CheckDuration = time.Since(checkStart)
	res.Ops = verdict.Ops
	res.Puts = int(r.puts.Load())
	res.Gets = int(r.gets.Load()) + len(audit)
	res.Dropped = int(r.dropped.Load())
	res.Unknown = int(r.unknown.Load())
	res.Linearizable = verdict.Ok
	res.Violations = verdict.Violations
	r.mu.Lock()
	for k, v := range r.faults {
		res.Faults[k] = v
	}
	r.mu.Unlock()
	for i := 0; i < cfg.Shards; i++ {
		if lg := kv.ShardLog(fmt.Sprintf("shard-%d", i)); lg != nil {
			res.Takeovers += lg.Stats().Takeovers
		}
	}
	fmt.Fprintf(out, "seed=%d ops=%d (puts=%d gets=%d unknown=%d dropped=%d) faults=%d takeovers=%d check=%s linearizable=%v\n",
		cfg.Seed, res.Ops, res.Puts, res.Gets, res.Unknown, res.Dropped, len(sched.Events), res.Takeovers, res.CheckDuration.Round(time.Microsecond), res.Linearizable)
	return res, nil
}

// runner carries one schedule run's live state.
type runner struct {
	cfg   Config
	kv    *rdmaagreement.ShardedKV
	out   io.Writer
	start time.Time

	srv      *kvserver.Server
	ln       net.Listener
	srvDone  chan error
	base     string
	netConns []*client.Client

	puts, gets, dropped, unknown atomic.Int64

	mu     sync.Mutex
	faults map[string]int
}

func (r *runner) since() int64 { return int64(time.Since(r.start)) }

func (r *runner) countFault(kind string) {
	r.mu.Lock()
	if r.faults == nil {
		r.faults = make(map[string]int)
	}
	r.faults[kind]++
	r.mu.Unlock()
}

// startServer brings the served path up on loopback: one kvserver over the
// store plus one network client per odd-indexed workload client.
func (r *runner) startServer() error {
	srv, err := kvserver.New(kvserver.Options{Store: r.kv})
	if err != nil {
		return fmt.Errorf("chaos: build kvserver: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("chaos: listen: %w", err)
	}
	r.srv, r.ln = srv, ln
	r.base = "http://" + ln.Addr().String()
	r.srvDone = make(chan error, 1)
	go func() { r.srvDone <- srv.Serve(ln) }()
	r.netConns = make([]*client.Client, r.cfg.Clients)
	for c := 1; c < r.cfg.Clients; c += 2 {
		cl, err := client.New(client.Options{Endpoints: []string{r.base}})
		if err != nil {
			return fmt.Errorf("chaos: build client: %w", err)
		}
		r.netConns[c] = cl
	}
	return nil
}

func (r *runner) stopServer() {
	for _, cl := range r.netConns {
		if cl != nil {
			cl.Close()
		}
	}
	if r.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = r.srv.Shutdown(ctx)
		cancel()
		<-r.srvDone
	}
}

// storeKey maps a logical workload key to the key the embedded store sees.
// The serving layer namespaces every request under a tenant (the default one
// when the client sends none), so in served runs the in-process clients and
// the audit must address the same tenant-prefixed register the network
// clients write — otherwise the two paths operate on disjoint keys and the
// merged history flip-flops on every key.
func (r *runner) storeKey(key string) string {
	if r.cfg.Served {
		return wire.TenantKey("", key)
	}
	return key
}

// workload is one client's closed loop: pick a key, flip a seeded coin
// between put and linearizable get, record the outcome. Every put value is
// globally unique ("c<client>-<seq>"), so if a provably-did-not-commit error
// lied and the command did commit, some read observes a value with no
// matching put in the history and the checker refutes it.
func (r *runner) workload(ctx context.Context, id int, stop <-chan struct{}) []linearize.Op {
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(r.cfg.Seed) + uint64(id)))))
	opTimeout := 4 * time.Second
	var ops []linearize.Op
	seq := 0
	served := r.cfg.Served && id%2 == 1
	for {
		select {
		case <-stop:
			return ops
		default:
		}
		key := fmt.Sprintf("k%03d", rng.Intn(r.cfg.Keys))
		opCtx, cancel := context.WithTimeout(ctx, opTimeout)
		if rng.Intn(100) < r.cfg.PutPercent {
			seq++
			value := fmt.Sprintf("c%d-%d", id, seq)
			invoke := r.since()
			var err error
			if served {
				_, _, err = r.netConns[id].Put(opCtx, key, value)
			} else {
				_, _, err = r.kv.Put(opCtx, r.storeKey(key), value)
			}
			ret := r.since()
			cancel()
			op := linearize.Op{Client: id, Kind: linearize.Put, Key: key, Input: value, Invoke: invoke, Return: ret}
			switch classify(err) {
			case committed:
				r.puts.Add(1)
				ops = append(ops, op)
			case dropped:
				r.dropped.Add(1)
			case unknown:
				op.Unknown, op.Return = true, -1
				r.unknown.Add(1)
				ops = append(ops, op)
			}
		} else {
			invoke := r.since()
			var (
				v     string
				found bool
				err   error
			)
			if served {
				v, found, err = r.netConns[id].GetLinearizable(opCtx, key)
			} else {
				v, found, err = r.kv.GetLinearizable(opCtx, r.storeKey(key))
			}
			ret := r.since()
			cancel()
			if err != nil {
				r.dropped.Add(1) // a failed read observed nothing
				continue
			}
			r.gets.Add(1)
			ops = append(ops, linearize.Op{Client: id, Kind: linearize.Get, Key: key, Output: v, Found: found, Invoke: invoke, Return: ret})
		}
	}
}

type outcome int

const (
	committed outcome = iota
	dropped
	unknown
)

// classify sorts a put error into the checker's taxonomy. Lease-lost,
// key-moved and shed errors carry the store's provably-did-not-commit
// contract (in-process and over the wire alike), so those operations are
// excluded; anything else — a deadline, a dead connection, a halted log —
// may have committed and stays in the history with an open effect window.
func classify(err error) outcome {
	switch {
	case err == nil:
		return committed
	case errors.Is(err, rdmaagreement.ErrLeaseLost),
		errors.Is(err, rdmaagreement.ErrKeyMoved),
		errors.Is(err, rdmaagreement.ErrRebalanceInProgress),
		errors.Is(err, client.ErrOverloaded),
		errors.Is(err, client.ErrDraining):
		return dropped
	default:
		return unknown
	}
}

// inject applies one non-rebalance event at its scheduled time and undoes it
// after its window.
func (r *runner) inject(ev Event) {
	time.Sleep(time.Until(r.start.Add(ev.At)))
	lg := r.kv.ShardLog(ev.Shard)
	if lg == nil {
		return // shard retired mid-schedule; nothing to fault
	}
	cl := lg.Cluster()
	switch ev.Kind {
	case KindMemCrash:
		ids := cl.CrashMemories(ev.N)
		r.countFault(ev.Kind)
		fmt.Fprintf(r.out, "  +%-8s %s %s: crashed memories %v\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Shard, ids)
		time.Sleep(ev.Dur)
		cl.ReviveMemories()
	case KindStall:
		p := cl.LeaseHolder()
		cl.CrashProcess(p)
		r.countFault(ev.Kind)
		fmt.Fprintf(r.out, "  +%-8s %s %s: stalled lease holder %v\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Shard, p)
		time.Sleep(ev.Dur)
		cl.ReviveProcess(p)
	case KindJitter:
		seed := splitmix64(uint64(r.cfg.Seed)) ^ uint64(ev.Index)<<32
		capUS := uint64(ev.N)
		cl.Network.SetJitter(func(m netsim.Message) time.Duration {
			return time.Duration(splitmix64(m.Seq^seed)%capUS) * time.Microsecond
		})
		r.countFault(ev.Kind)
		fmt.Fprintf(r.out, "  +%-8s %s %s: +[0,%dµs) per message\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Shard, ev.N)
		time.Sleep(ev.Dur)
		cl.Network.SetJitter(nil)
	case KindTransfer:
		cur := cl.LeaseHolder()
		next := cl.Procs[0]
		for i, p := range cl.Procs {
			if p == cur {
				next = cl.Procs[(i+1)%len(cl.Procs)]
				break
			}
		}
		cl.SetLeader(next)
		r.countFault(ev.Kind)
		fmt.Fprintf(r.out, "  +%-8s %s %s: lease %v -> %v\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Shard, cur, next)
	}
}

// rebalance runs one interrupted-then-resumed AddShard and the matching
// RemoveShard. The first attempt is cancelled mid-handoff (after roughly a
// third of the event window); the retry must resume from the committed
// migration state and complete — PR 5's resume semantics under fire.
func (r *runner) rebalance(ev Event) error {
	time.Sleep(time.Until(r.start.Add(ev.At)))
	// Cancel the first attempt fast enough to land mid-handoff (a handoff at
	// millisecond latency takes a few tens of milliseconds), but long enough
	// that it usually started one.
	interrupt := ev.Dur / 20
	if interrupt < 5*time.Millisecond {
		interrupt = 5 * time.Millisecond
	} else if interrupt > 30*time.Millisecond {
		interrupt = 30 * time.Millisecond
	}
	r.countFault(ev.Kind)
	phases := []struct {
		name string
		op   func(context.Context, string) error
	}{
		{"add", r.kv.AddShard},
		{"remove", r.kv.RemoveShard},
	}
	for _, ph := range phases {
		phase, op := ph.name, ph.op
		ictx, cancel := context.WithTimeout(context.Background(), interrupt)
		err := op(ictx, ev.Shard)
		cancel()
		interrupted := err != nil
		if interrupted {
			// Resume to completion: same shard name, fresh context. The
			// deadline is generous because stalls and crashes may be in
			// force concurrently.
			rctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			for {
				if err = op(rctx, ev.Shard); err == nil {
					break
				}
				if rctx.Err() != nil {
					cancel()
					return fmt.Errorf("chaos: %s shard %s never completed: %w", phase, ev.Shard, err)
				}
				time.Sleep(20 * time.Millisecond)
			}
			cancel()
		}
		state := "completed uninterrupted"
		if interrupted {
			state = "interrupted, resumed to completion"
		}
		fmt.Fprintf(r.out, "  +%-8s rebalance %s %s (%s)\n", ev.At.Round(time.Millisecond), phase, ev.Shard, state)
	}
	return nil
}

// healAll clears any fault residue across every live shard: jitter off,
// memories revived, processes revived, partitions healed. Events undo their
// own faults, but a schedule interleaving several faults on one shard can
// revive early-crashed state in a different order; the audit must start from
// a provably healthy store either way.
func (r *runner) healAll() {
	for _, name := range r.kv.Shards() {
		lg := r.kv.ShardLog(name)
		if lg == nil {
			continue
		}
		cl := lg.Cluster()
		cl.Network.SetJitter(nil)
		cl.Network.Heal()
		cl.ReviveMemories()
		for _, p := range cl.Procs {
			if cl.Network.ProcessCrashed(p) {
				cl.ReviveProcess(p)
			}
		}
	}
}

// audit closes the history with one linearizable read of every key in the
// keyspace — the generalization of the rebalance bench's lost/forked scan:
// an acknowledged write that silently vanished (or forked) surfaces here as
// a read the checker cannot explain.
func (r *runner) audit() ([]linearize.Op, error) {
	ops := make([]linearize.Op, 0, r.cfg.Keys)
	for k := 0; k < r.cfg.Keys; k++ {
		key := fmt.Sprintf("k%03d", k)
		var lastErr error
		for attempt := 0; attempt < 3; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			invoke := r.since()
			v, found, err := r.kv.GetLinearizable(ctx, r.storeKey(key))
			ret := r.since()
			cancel()
			if err == nil {
				ops = append(ops, linearize.Op{Client: -1, Kind: linearize.Get, Key: key, Output: v, Found: found, Invoke: invoke, Return: ret})
				lastErr = nil
				break
			}
			lastErr = err
			time.Sleep(50 * time.Millisecond)
		}
		if lastErr != nil {
			return nil, fmt.Errorf("chaos: audit read %q on healed store: %w", key, lastErr)
		}
	}
	return ops, nil
}
