package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestScheduleReplayByteIdentical is the repro contract: the schedule is a
// pure function of the Config, so replaying a seed reproduces the fault plan
// byte for byte. This is what makes "go run ./cmd/agreementchaos -seed N" a
// complete one-line repro.
func TestScheduleReplayByteIdentical(t *testing.T) {
	cfg := Config{Seed: 7, Window: 2500 * time.Millisecond, Events: 6}
	first := Build(cfg).String()
	for i := 0; i < 3; i++ {
		if again := Build(cfg).String(); again != first {
			t.Fatalf("replay %d diverged:\n%s\nvs\n%s", i, first, again)
		}
	}
	// The exact text is part of the contract too: a committed failing seed
	// must replay the same plan on every machine and every run.
	want := strings.Join([]string{
		"schedule seed=7 window=2.5s events=6",
		"  03 t=+605ms   memcrash  shard=shard-0 n=1 dur=347ms",
		"  04 t=+689ms   jitter    shard=shard-0 n=7106 dur=507ms",
		"  05 t=+1.05s   transfer  shard=shard-1",
		"  01 t=+1.338s  jitter    shard=shard-0 n=6952 dur=719ms",
		"  02 t=+1.498s  stall     shard=shard-0 dur=432ms",
		"  00 t=+1.724s  stall     shard=shard-1 dur=692ms",
		"",
	}, "\n")
	if first != want {
		t.Fatalf("seed 7 schedule drifted from the committed plan:\n%s\nwant:\n%s", first, want)
	}
}

func TestScheduleSeedsDiffer(t *testing.T) {
	a := Build(Config{Seed: 1}).String()
	b := Build(Config{Seed: 2}).String()
	if a == b {
		t.Fatalf("different seeds built identical schedules:\n%s", a)
	}
}

func TestScheduleRespectsFaultFilter(t *testing.T) {
	s := Build(Config{Seed: 9, Events: 12, Faults: []string{KindJitter, KindTransfer}})
	for _, e := range s.Events {
		if e.Kind != KindJitter && e.Kind != KindTransfer {
			t.Fatalf("event %s escaped the fault filter", e)
		}
	}
}

func TestScheduleStallNeedsLease(t *testing.T) {
	s := Build(Config{Seed: 3, Events: 16, Lease: -1, Faults: []string{KindStall, KindMemCrash}})
	for _, e := range s.Events {
		if e.Kind == KindStall {
			t.Fatalf("stall scheduled without leases: %s", e)
		}
	}
}

func TestScheduleEventsInsideWindow(t *testing.T) {
	s := Build(Config{Seed: 5, Events: 32, Window: 4 * time.Second})
	for _, e := range s.Events {
		if e.At <= 0 || e.At+e.Dur >= s.Window {
			t.Fatalf("event escapes the window (audit would race the fault): %s", e)
		}
	}
}

func TestReproLineRoundTrips(t *testing.T) {
	cfg := Config{Seed: 1234, Served: true}
	line := cfg.ReproLine()
	if !strings.Contains(line, "-seed 1234") || !strings.Contains(line, "-net") {
		t.Fatalf("repro line incomplete: %s", line)
	}
}
